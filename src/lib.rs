//! Umbrella crate for the Ratatouille reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`). All functionality lives
//! in the member crates; the public API a downstream user should depend on
//! is the [`ratatouille`] crate.

pub use ratatouille;

//! Integration coverage for the recipe-aligned training path (the fix
//! that makes transformer conditional generation work) and the GPT-Neo
//! future-work extension, through the public crate surfaces.

use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::SeedableRng;
use ratatouille::models::data::Dataset;
use ratatouille::models::gptneo::{GptNeoConfig, GptNeoLm};
use ratatouille::models::registry::{ModelKind, ModelSpec};
use ratatouille::models::train::{TrainConfig, Trainer};
use ratatouille::models::LanguageModel;
use ratatouille::tokenizers::special;
use ratatouille::{Pipeline, PipelineConfig};

fn tiny_pipeline() -> Pipeline {
    let mut cfg = PipelineConfig::small();
    cfg.corpus.num_recipes = 80;
    Pipeline::prepare(cfg)
}

#[test]
fn aligned_blocks_start_with_recipe_start() {
    let p = tiny_pipeline();
    let spec = ModelSpec::build(ModelKind::DistilGpt2, &p.train_texts);
    let ds = Dataset::from_documents(&p.train_texts, spec.tokenizer.as_ref(), spec.block_size);
    assert!(!ds.is_empty());
    let start_id = spec.tokenizer.special_id(special::RECIPE_START).unwrap();
    for (inp, _) in ds.iter_examples() {
        assert_eq!(inp[0], start_id, "aligned block must start a recipe");
    }
}

#[test]
fn aligned_blocks_fit_whole_recipes() {
    // Every tagged recipe must fit one aligned window — otherwise the
    // model never sees complete structure and can't close its tags.
    let p = tiny_pipeline();
    let spec = ModelSpec::build(ModelKind::Gpt2Medium, &p.train_texts);
    let window = spec.block_size + 1;
    let mut oversized = 0usize;
    for t in &p.train_texts {
        if spec.tokenizer.encode(t).len() > window {
            oversized += 1;
        }
    }
    let frac = oversized as f64 / p.train_texts.len() as f64;
    assert!(
        frac < 0.05,
        "{oversized}/{} recipes exceed the training window",
        p.train_texts.len()
    );
}

#[test]
fn gptneo_trains_through_the_standard_trainer() {
    let p = tiny_pipeline();
    let spec = ModelSpec::build(ModelKind::Gpt2Medium, &p.train_texts);
    let ds = Dataset::from_documents(&p.train_texts, spec.tokenizer.as_ref(), 128);
    let neo = GptNeoLm::new(GptNeoConfig {
        d_model: 32,
        n_heads: 2,
        n_layers: 2,
        d_ff: 64,
        max_t: 128,
        window: 32,
        ..GptNeoConfig::small(spec.tokenizer.vocab_size())
    });
    let stats = Trainer::new(
        &neo,
        &ds,
        TrainConfig {
            steps: 6,
            batch_size: 2,
            ..Default::default()
        },
    )
    .train();
    assert_eq!(stats.steps_run, 6);
    assert!(stats.losses.iter().all(|l| l.is_finite()));
    assert!(neo.num_params() > 0);
}

#[test]
fn models_with_256_context_accept_aligned_blocks() {
    // regression: context must be >= block size for the aligned path
    let p = tiny_pipeline();
    for kind in [ModelKind::DistilGpt2, ModelKind::Gpt2Medium] {
        let spec = ModelSpec::build(kind, &p.train_texts);
        assert!(spec.model.max_context() >= spec.block_size, "{kind:?}");
        let ds =
            Dataset::from_documents(&p.train_texts, spec.tokenizer.as_ref(), spec.block_size);
        let mut rng = StdRng::seed_from_u64(0);
        let batch = ds.sample_batch(2, &mut rng);
        // must not panic
        let loss = spec.model.forward_loss(&batch, false, &mut rng);
        assert!(loss.value().item().is_finite());
    }
}

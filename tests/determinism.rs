//! Golden determinism tests: the whole stack is a pure function of its
//! seeds.
//!
//! Reproducibility is the determinism layer's contract — every random
//! draw in the workspace flows through `ratatouille_util::rng::StdRng`
//! (xoshiro256** seeded via SplitMix64), so identical seeds must yield
//! byte-identical corpora, samples, training runs and checkpoints.
//! The frozen-literal tests also protect against the generator being
//! swapped or reseeded accidentally: they fail on any change to the
//! underlying bit stream, not just on intra-process nondeterminism.

use ratatouille::models::registry::ModelKind;
use ratatouille::models::train::TrainConfig;
use ratatouille::recipedb::corpus::{Corpus, CorpusConfig};
use ratatouille::tensor::serialize::TensorMap;
use ratatouille::tensor::{init, Tensor};
use ratatouille::{Pipeline, PipelineConfig};
use ratatouille_util::rng::{Rng, SeedableRng, StdRng};

fn tiny_corpus_config() -> CorpusConfig {
    CorpusConfig {
        num_recipes: 60,
        ..CorpusConfig::default()
    }
}

fn tiny_pipeline_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::small();
    cfg.corpus.num_recipes = 80;
    cfg
}

fn tiny_train() -> TrainConfig {
    TrainConfig {
        steps: 3,
        batch_size: 2,
        ..Default::default()
    }
}

/// FNV-1a over a byte stream — a stable fingerprint for golden values.
fn fingerprint(parts: impl IntoIterator<Item = impl AsRef<[u8]>>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in part.as_ref() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The PRNG bit stream is frozen: seed 0 must produce these exact words
/// forever. Any change to the generator, its seeding, or its parameters
/// is a breaking change to every golden value in the repo.
#[test]
fn rng_golden_stream_is_frozen() {
    let mut rng = StdRng::seed_from_u64(0);
    let words: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    assert_eq!(
        words,
        [
            11091344671253066420,
            13793997310169335082,
            1900383378846508768,
            7684712102626143532,
        ]
    );
}

/// Corpus generation is a pure function of its config.
#[test]
fn corpus_generation_twice_is_byte_identical() {
    let a = Corpus::generate(tiny_corpus_config());
    let b = Corpus::generate(tiny_corpus_config());
    let a_texts: Vec<String> = a.recipes.iter().map(|r| r.to_tagged_string()).collect();
    let b_texts: Vec<String> = b.recipes.iter().map(|r| r.to_tagged_string()).collect();
    assert_eq!(a_texts, b_texts);
    let raw = |c: &Corpus| -> Vec<String> { c.raw_records.iter().map(|r| r.text.clone()).collect() };
    assert_eq!(raw(&a), raw(&b));
}

/// Different corpus seeds must diverge (the seed is actually used).
#[test]
fn corpus_seed_changes_output() {
    let a = Corpus::generate(tiny_corpus_config());
    let b = Corpus::generate(CorpusConfig {
        seed: 43,
        ..tiny_corpus_config()
    });
    let a_texts: Vec<String> = a.recipes.iter().map(|r| r.to_tagged_string()).collect();
    let b_texts: Vec<String> = b.recipes.iter().map(|r| r.to_tagged_string()).collect();
    assert_ne!(a_texts, b_texts);
}

/// Fixed-seed sampling through a trained model is byte-identical across
/// repeated draws AND across independently prepared+trained pipelines.
#[test]
fn fixed_seed_sampling_is_byte_identical() {
    let ingredients: Vec<String> = vec!["flour".into(), "water".into()];

    let first = {
        let pipeline = Pipeline::prepare(tiny_pipeline_config());
        let trained = pipeline.train(ModelKind::WordLstm, Some(tiny_train()));
        (
            trained.generate_tagged(&ingredients, 7),
            trained.generate_tagged(&ingredients, 7),
            trained.generate_tagged(&ingredients, 8),
        )
    };
    // same seed, same trained model → identical bytes
    assert_eq!(first.0, first.1);
    // a different sampling seed must be able to diverge — compare whole
    // tagged outputs (they could theoretically coincide, but with a
    // 3-token prompt and dozens of sampled tokens, they don't for these
    // fixed seeds; if this ever fails the sampler is ignoring its rng)
    assert_ne!(first.0, first.2, "sampling seed is ignored");

    // an entirely separate process-independent rebuild reproduces it
    let second = {
        let pipeline = Pipeline::prepare(tiny_pipeline_config());
        let trained = pipeline.train(ModelKind::WordLstm, Some(tiny_train()));
        trained.generate_tagged(&ingredients, 7)
    };
    assert_eq!(first.0, second);
}

/// Training is deterministic end to end: two independent runs produce
/// byte-identical loss curves.
#[test]
fn training_twice_gives_identical_losses() {
    let run = || {
        let pipeline = Pipeline::prepare(tiny_pipeline_config());
        let trained = pipeline.train(ModelKind::CharLstm, Some(tiny_train()));
        trained.stats.losses.clone()
    };
    let (a, b) = (run(), run());
    assert!(!a.is_empty());
    assert_eq!(
        a.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        b.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        "losses differ bitwise: {a:?} vs {b:?}"
    );
}

/// Checkpoint serialization of identically seeded weights is
/// byte-identical (serialization itself adds no nondeterminism).
#[test]
fn seeded_checkpoint_bytes_are_identical() {
    let build = || {
        let mut rng = StdRng::seed_from_u64(99);
        let mut map = TensorMap::new();
        map.insert("embed", init::randn(&mut rng, &[16, 8], 0.2));
        map.insert("w_out", init::xavier_uniform(&mut rng, 8, 16));
        map.insert("bias", Tensor::zeros(&[16]));
        map.to_bytes()
    };
    let (a, b) = (build(), build());
    assert_eq!(a, b, "checkpoint bytes differ");
}

/// Golden fingerprint for the batched decode path: three greedy
/// sequences decoded *together* through the continuous-batching engine
/// hash to a frozen value — and each matches its solo decode bitwise.
/// This pins the whole batched chain (seeded init, blocked KV cache,
/// batched GEMMs, greedy argmax) in one number; any accumulation
/// reordering, KV layout change or scheduling drift breaks it.
#[test]
fn batched_decode_golden_fingerprint_is_frozen() {
    use ratatouille::models::batch::{BatchEngineConfig, BatchGenerator, BatchRequest};
    use ratatouille::models::gpt2::{Gpt2Config, Gpt2Lm};
    use ratatouille::models::lm::InferenceModel;
    use ratatouille::models::sample::SamplerConfig;

    let model = Gpt2Lm::new(Gpt2Config {
        name: "golden-batch".into(),
        vocab: 32,
        d_model: 16,
        n_heads: 2,
        n_layers: 2,
        d_ff: 32,
        max_t: 64,
        dropout: 0.0,
        seed: 1234,
    });
    let bm = model.batch_model().expect("16/32 widths are batch-ready");
    let cfg = SamplerConfig {
        max_tokens: 12,
        greedy: true, // no sampling ties → the stream is pure kernel output
        stop_token: None,
        ..SamplerConfig::default()
    };
    let prompts: [&[u32]; 3] = [&[3, 17, 9, 28, 1], &[11, 11, 4], &[25, 2, 30, 6]];

    let decode_together = || -> Vec<Vec<u32>> {
        let mut engine = BatchGenerator::new(
            bm,
            BatchEngineConfig {
                block_tokens: 4,
                num_blocks: 64,
                max_batch: 4,
                prefix_cap: 4,
            },
        );
        let ids: Vec<u64> = prompts
            .iter()
            .map(|p| {
                engine
                    .admit(BatchRequest {
                        prompt: p.to_vec(),
                        sampler: cfg.clone(),
                        seed: 0,
                    })
                    .expect("pool covers three tiny requests")
            })
            .collect();
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); ids.len()];
        let mut done = 0;
        while done < ids.len() {
            for f in engine.step(bm).expect("reserved up front").finished {
                let slot = ids.iter().position(|&id| id == f.id).unwrap();
                out[slot] = f.tokens;
                done += 1;
            }
        }
        out
    };

    let batched = decode_together();
    // Batch composition must not matter: each stream equals its solo run.
    for (p, stream) in prompts.iter().zip(&batched) {
        let mut engine = BatchGenerator::new(bm, BatchEngineConfig::default());
        let id = engine
            .admit(BatchRequest {
                prompt: p.to_vec(),
                sampler: cfg.clone(),
                seed: 0,
            })
            .unwrap();
        let alone = engine.run_to_completion(bm, id).unwrap();
        assert_eq!(&alone, stream, "solo decode diverged from the batch");
    }

    let fp = fingerprint(
        batched
            .iter()
            .map(|s| s.iter().flat_map(|t| t.to_le_bytes()).collect::<Vec<u8>>()),
    );
    assert_eq!(
        fp, 0xe948_9989_2b3e_208f,
        "batched decode fingerprint changed: {fp:#x} — if intentional, refreeze"
    );
}

/// Golden corpus fingerprint: the seed-42, 60-recipe corpus hashes to a
/// frozen value. This pins the full chain — PRNG bit stream, grammar
/// sampling order, defect injection — in one number.
#[test]
fn corpus_golden_fingerprint_is_frozen() {
    let corpus = Corpus::generate(tiny_corpus_config());
    let fp = fingerprint(corpus.recipes.iter().map(|r| r.to_tagged_string()));
    assert_eq!(
        fp, 0x3751_b0ef_7398_66ff,
        "corpus fingerprint changed: {fp:#x} — if intentional, refreeze"
    );
}

//! Failure injection: the paper's Colab environment crashed "after every
//! 5 to 7 epochs". These tests simulate that through the whole public
//! stack — crash mid-training, resume from the checkpoint, and end on the
//! exact trajectory of an uninterrupted run; plus corrupted/truncated
//! checkpoint handling.

use ratatouille::models::data::Dataset;
use ratatouille::models::registry::{ModelKind, ModelSpec};
use ratatouille::models::train::{TrainConfig, Trainer};
use ratatouille::{Pipeline, PipelineConfig};

fn pipeline() -> Pipeline {
    let mut cfg = PipelineConfig::small();
    cfg.corpus.num_recipes = 80;
    Pipeline::prepare(cfg)
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rt-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gpt2_crash_resume_matches_uninterrupted_run() {
    let p = pipeline();
    let dir = tmpdir("resume");
    let ckpt = dir.join("gpt2.ckpt");

    let base_cfg = TrainConfig {
        steps: 12,
        batch_size: 2,
        ..Default::default()
    };

    // Uninterrupted run.
    let spec_full = ModelSpec::build(ModelKind::DistilGpt2, &p.train_texts);
    let ds = Dataset::from_texts(&p.train_texts, spec_full.tokenizer.as_ref(), spec_full.block_size);
    let full = Trainer::new(spec_full.model.as_ref(), &ds, base_cfg.clone()).train();

    // Crash at step 6 (checkpoint persisted), then resume to 12.
    let spec_a = ModelSpec::build(ModelKind::DistilGpt2, &p.train_texts);
    let crash_cfg = TrainConfig {
        steps: 6,
        checkpoint_every: 6,
        checkpoint_path: Some(ckpt.clone()),
        ..base_cfg.clone()
    };
    let first = Trainer::new(spec_a.model.as_ref(), &ds, crash_cfg).train();

    let spec_b = ModelSpec::build(ModelKind::DistilGpt2, &p.train_texts);
    let resume_cfg = TrainConfig {
        steps: 12,
        ..base_cfg
    };
    let second = Trainer::new(spec_b.model.as_ref(), &ds, resume_cfg)
        .resume(&ckpt)
        .expect("resume");

    let mut glued = first.losses.clone();
    glued.extend(&second.losses);
    assert_eq!(glued.len(), full.losses.len());
    for (i, (a, b)) in glued.iter().zip(&full.losses).enumerate() {
        assert!(
            (a - b).abs() < 1e-3,
            "trajectory diverged at step {i}: {a} vs {b}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_checkpoint_rejected_cleanly() {
    let p = pipeline();
    let dir = tmpdir("trunc");
    let ckpt = dir.join("m.ckpt");
    let spec = ModelSpec::build(ModelKind::WordLstm, &p.train_texts);
    let ds = Dataset::from_texts(&p.train_texts, spec.tokenizer.as_ref(), spec.block_size);
    let cfg = TrainConfig {
        steps: 2,
        batch_size: 2,
        checkpoint_every: 2,
        checkpoint_path: Some(ckpt.clone()),
        ..Default::default()
    };
    Trainer::new(spec.model.as_ref(), &ds, cfg.clone()).train();

    // Truncate the file: simulates a crash *during* a pre-atomic-write
    // copy (e.g. a partially synced disk) — must be detected, not loaded.
    let bytes = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, &bytes[..bytes.len() / 2]).unwrap();
    let spec2 = ModelSpec::build(ModelKind::WordLstm, &p.train_texts);
    let err = Trainer::new(spec2.model.as_ref(), &ds, cfg)
        .resume(&ckpt)
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("corrupt") || msg.contains("truncated") || msg.contains("checksum"),
        "unhelpful error: {msg}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_weights_transfer_between_replicas() {
    // The serving path relies on weight maps round-tripping exactly.
    let p = pipeline();
    let trained = p.train(
        ModelKind::WordLstm,
        Some(TrainConfig {
            steps: 3,
            batch_size: 2,
            ..Default::default()
        }),
    );
    let factory = trained.backend_factory();
    // Same seed replicas produce identical recipes: pure function of weights.
    let mut r1 = factory(7);
    let mut r2 = factory(7);
    let a = r1.generate(&["flour".into()]);
    let b = r2.generate(&["flour".into()]);
    assert_eq!(a, b, "replicas with identical seeds diverged");
}

//! Serving-stack integration: trained model → worker-pool replicas →
//! HTTP server → client → JSON → structured recipe.

use ratatouille::models::registry::ModelKind;
use ratatouille::models::train::TrainConfig;
use ratatouille::serving::api::ApiServer;
use ratatouille::serving::client::HttpClient;
use ratatouille::serving::json::Json;
use ratatouille::{Pipeline, PipelineConfig, TrainedModel};

fn trained_model() -> TrainedModel {
    let mut cfg = PipelineConfig::small();
    cfg.corpus.num_recipes = 80;
    let pipeline = Pipeline::prepare(cfg);
    pipeline.train(
        ModelKind::WordLstm,
        Some(TrainConfig {
            steps: 3,
            batch_size: 2,
            ..Default::default()
        }),
    )
}

#[test]
fn serve_generate_parse_roundtrip() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 2, 8, trained.backend_factory()).unwrap();
    let client = HttpClient::new(server.addr());

    // health
    let (status, body) = client.get("/api/health").unwrap();
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("workers").unwrap().as_f64(), Some(2.0));

    // model card matches the trained model
    let (_, body) = client.get("/api/models").unwrap();
    assert!(body.contains("Word-level LSTM"), "{body}");

    // generation round trip
    let (status, body) = client
        .post_json("/api/generate", r#"{"ingredients":["flour","water"]}"#)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert!(v.get("title").unwrap().as_str().is_some());
    assert!(v.get("latency_ms").unwrap().as_f64().unwrap() >= 0.0);
    assert!(v.get("well_formed").unwrap().as_bool().is_some());

    server.stop();
}

#[test]
fn concurrent_requests_hit_different_replicas() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 3, 16, trained.backend_factory()).unwrap();
    let addr = server.addr();
    let handles: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let client = HttpClient::new(addr);
                let (status, body) = client
                    .post_json("/api/generate", r#"{"ingredients":["rice","egg"]}"#)
                    .unwrap();
                assert_eq!(status, 200, "{body}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.stop();
}

#[test]
fn api_input_validation() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 1, 4, trained.backend_factory()).unwrap();
    let client = HttpClient::new(server.addr());
    for (body, expect) in [
        ("not json", 400),
        ("{}", 400),
        (r#"{"ingredients":[]}"#, 400),
        (r#"{"ingredients":[1,2,3]}"#, 400),
    ] {
        let (status, _) = client.post_json("/api/generate", body).unwrap();
        assert_eq!(status, expect, "body {body:?}");
    }
    let (status, _) = client.get("/api/generate").unwrap();
    assert_eq!(status, 405, "GET on POST route");
    server.stop();
}

#[test]
fn frontend_ships_with_server() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 1, 4, trained.backend_factory()).unwrap();
    let client = HttpClient::new(server.addr());
    let (status, body) = client.get("/").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("Ratatouille"));
    assert!(body.contains("/api/generate"));
    server.stop();
}

/// Send raw bytes and return the full response text (for requests the
/// structured client can't express: bad methods, oversized heads).
fn raw_request(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(bytes).unwrap();
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            // A reset after the response landed (the server may close with
            // request bytes still unread) is fine — keep what we got.
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&buf).into_owned()
}

#[test]
fn http_error_paths_map_to_the_right_status() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 1, 4, trained.backend_factory()).unwrap();
    let addr = server.addr();

    // oversized head (> 16 KiB of headers) → 413
    let mut big = b"GET /api/health HTTP/1.1\r\n".to_vec();
    big.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "a".repeat(17 * 1024)).as_bytes());
    let resp = raw_request(addr, &big);
    assert!(resp.starts_with("HTTP/1.1 413 "), "{resp}");

    // unknown route → 404
    let resp = raw_request(addr, b"GET /no/such/route HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 404 "), "{resp}");

    // known route, wrong method → 405
    let resp = raw_request(addr, b"DELETE /api/generate HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405 "), "{resp}");

    // malformed request line → 400
    let resp = raw_request(addr, b"NOT HTTP\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");

    server.stop();
}

#[test]
fn healthz_and_metrics_endpoints() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 1, 4, trained.backend_factory()).unwrap();
    let client = HttpClient::new(server.addr());

    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, "ok");

    // generate once so decode/serving histograms have samples in-process
    let (status, body) = client
        .post_json("/api/generate", r#"{"ingredients":["flour","water"]}"#)
        .unwrap();
    assert_eq!(status, 200, "{body}");

    let (status, metrics) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    for name in [
        "http_requests_total",
        "http_request_ns",
        "decode_token_ns",
        "serving_queue_wait_ns",
        "train_tokens_per_sec",
        "generate_latency_ns",
    ] {
        assert!(metrics.contains(name), "missing `{name}` in:\n{metrics}");
    }
    // Prometheus text exposition shape
    assert!(metrics.contains("# TYPE http_request_ns histogram"), "{metrics}");
    assert!(metrics.contains("http_request_ns_bucket{le=\"+Inf\"}"), "{metrics}");
    assert!(metrics.contains("# TYPE train_tokens_per_sec gauge"), "{metrics}");

    // folded span stacks are exposed for flamegraph tooling
    let (status, stacks) = client.get("/debug/stacks").unwrap();
    assert_eq!(status, 200);
    assert!(stacks.contains("decode"), "spans missing from:\n{stacks}");

    server.stop();
}

//! Serving-stack integration: trained model → worker-pool replicas →
//! HTTP server → client → JSON → structured recipe — and the
//! continuous-batching path: trained model → batch runner → blocked KV
//! cache → byte-identical responses under concurrency.

use ratatouille::models::batch::BatchEngineConfig;
use ratatouille::models::registry::ModelKind;
use ratatouille::models::train::TrainConfig;
use ratatouille::serving::api::ApiServer;
use ratatouille::serving::batch::BatchServerConfig;
use ratatouille::serving::client::HttpClient;
use ratatouille::serving::json::Json;
use ratatouille::{Pipeline, PipelineConfig, TrainedModel};

fn trained_model() -> TrainedModel {
    let mut cfg = PipelineConfig::small();
    cfg.corpus.num_recipes = 80;
    let pipeline = Pipeline::prepare(cfg);
    pipeline.train(
        ModelKind::WordLstm,
        Some(TrainConfig {
            steps: 3,
            batch_size: 2,
            ..Default::default()
        }),
    )
}

#[test]
fn serve_generate_parse_roundtrip() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 2, 8, trained.backend_factory()).unwrap();
    let client = HttpClient::new(server.addr());

    // health
    let (status, body) = client.get("/api/health").unwrap();
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("workers").unwrap().as_f64(), Some(2.0));

    // model card matches the trained model
    let (_, body) = client.get("/api/models").unwrap();
    assert!(body.contains("Word-level LSTM"), "{body}");

    // generation round trip
    let (status, body) = client
        .post_json("/api/generate", r#"{"ingredients":["flour","water"]}"#)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert!(v.get("title").unwrap().as_str().is_some());
    assert!(v.get("latency_ms").unwrap().as_f64().unwrap() >= 0.0);
    assert!(v.get("well_formed").unwrap().as_bool().is_some());

    server.stop();
}

#[test]
fn concurrent_requests_hit_different_replicas() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 3, 16, trained.backend_factory()).unwrap();
    let addr = server.addr();
    let handles: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let client = HttpClient::new(addr);
                let (status, body) = client
                    .post_json("/api/generate", r#"{"ingredients":["rice","egg"]}"#)
                    .unwrap();
                assert_eq!(status, 200, "{body}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.stop();
}

#[test]
fn api_input_validation() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 1, 4, trained.backend_factory()).unwrap();
    let client = HttpClient::new(server.addr());
    for (body, expect) in [
        ("not json", 400),
        ("{}", 400),
        (r#"{"ingredients":[]}"#, 400),
        (r#"{"ingredients":[1,2,3]}"#, 400),
    ] {
        let (status, _) = client.post_json("/api/generate", body).unwrap();
        assert_eq!(status, expect, "body {body:?}");
    }
    let (status, _) = client.get("/api/generate").unwrap();
    assert_eq!(status, 405, "GET on POST route");
    server.stop();
}

#[test]
fn frontend_ships_with_server() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 1, 4, trained.backend_factory()).unwrap();
    let client = HttpClient::new(server.addr());
    let (status, body) = client.get("/").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("Ratatouille"));
    assert!(body.contains("/api/generate"));
    server.stop();
}

/// Send raw bytes and return the full response text (for requests the
/// structured client can't express: bad methods, oversized heads).
fn raw_request(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(bytes).unwrap();
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            // A reset after the response landed (the server may close with
            // request bytes still unread) is fine — keep what we got.
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&buf).into_owned()
}

#[test]
fn http_error_paths_map_to_the_right_status() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 1, 4, trained.backend_factory()).unwrap();
    let addr = server.addr();

    // oversized head (> 16 KiB of headers) → 413
    let mut big = b"GET /api/health HTTP/1.1\r\n".to_vec();
    big.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "a".repeat(17 * 1024)).as_bytes());
    let resp = raw_request(addr, &big);
    assert!(resp.starts_with("HTTP/1.1 413 "), "{resp}");

    // unknown route → 404
    let resp = raw_request(addr, b"GET /no/such/route HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 404 "), "{resp}");

    // known route, wrong method → 405
    let resp = raw_request(addr, b"DELETE /api/generate HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405 "), "{resp}");

    // malformed request line → 400
    let resp = raw_request(addr, b"NOT HTTP\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");

    server.stop();
}

#[test]
fn healthz_and_metrics_endpoints() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 1, 4, trained.backend_factory()).unwrap();
    let client = HttpClient::new(server.addr());

    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, "ok");

    // generate once so decode/serving histograms have samples in-process
    let (status, body) = client
        .post_json("/api/generate", r#"{"ingredients":["flour","water"]}"#)
        .unwrap();
    assert_eq!(status, 200, "{body}");

    let (status, metrics) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    for name in [
        "http_requests_total",
        "http_request_ns",
        "decode_token_ns",
        "serving_queue_wait_ns",
        "train_tokens_per_sec",
        "generate_latency_ns",
    ] {
        assert!(metrics.contains(name), "missing `{name}` in:\n{metrics}");
    }
    // Prometheus text exposition shape
    assert!(metrics.contains("# TYPE http_request_ns histogram"), "{metrics}");
    assert!(metrics.contains("http_request_ns_bucket{le=\"+Inf\"}"), "{metrics}");
    assert!(metrics.contains("# TYPE train_tokens_per_sec gauge"), "{metrics}");

    // folded span stacks are exposed for flamegraph tooling
    let (status, stacks) = client.get("/debug/stacks").unwrap();
    assert_eq!(status, 200);
    assert!(stacks.contains("decode"), "spans missing from:\n{stacks}");

    server.stop();
}

// ---------------------------------------------------------------------
// Continuous batching over HTTP
// ---------------------------------------------------------------------

/// A small batch-capable model (GPT-2 family; LSTMs have no
/// batch-invariant decode path).
fn trained_gpt2() -> TrainedModel {
    let mut cfg = PipelineConfig::small();
    cfg.corpus.num_recipes = 60;
    let pipeline = Pipeline::prepare(cfg);
    pipeline.train(
        ModelKind::DistilGpt2,
        Some(TrainConfig {
            steps: 2,
            batch_size: 2,
            ..Default::default()
        }),
    )
}

/// Value of a single-sample metric line (`name value`); 0 when absent
/// (metrics register lazily on first touch).
fn metric_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(name)?.strip_prefix(' ')?.trim().parse().ok())
        .unwrap_or(0.0)
}

/// Cumulative `decode_batch_size` samples with value ≤ 1 (buckets 0 and
/// 1 are exact; empty buckets are elided from the exposition).
fn batch_size_le1(metrics: &str) -> f64 {
    ["decode_batch_size_bucket{le=\"0\"}", "decode_batch_size_bucket{le=\"1\"}"]
        .iter()
        .map(|b| metric_value(metrics, b))
        .fold(0.0, f64::max) // buckets are cumulative: le="1" ⊇ le="0"
}

/// The recipe fields of a generate response (latency excluded — it is
/// the one legitimately nondeterministic field).
fn recipe_fields(body: &str) -> (String, Vec<String>, Vec<String>, bool) {
    let v = Json::parse(body).unwrap();
    (
        v.get("title").unwrap().as_str().unwrap().to_string(),
        v.get("ingredients").unwrap().as_string_vec(),
        v.get("instructions").unwrap().as_string_vec(),
        v.get("well_formed").unwrap().as_bool().unwrap(),
    )
}

/// The tentpole end to end: N concurrent seeded requests with shared
/// pantry prefixes coalesce into multi-sequence decode steps
/// (`decode_batch_size` p50 > 1), every response is byte-identical to
/// its solo replay, and the prefix cache serves real hits
/// (`decode_kv_hits_total` > 0).
#[test]
fn batched_server_coalesces_and_matches_solo_goldens() {
    let trained = trained_gpt2();
    let factory = trained
        .batched_factory(BatchEngineConfig {
            block_tokens: 4, // short pantry prompts still span full blocks
            num_blocks: 768,
            max_batch: 8,
            prefix_cap: 16,
        })
        .expect("gpt2 is batch-capable");
    let server = ApiServer::start_batched(
        "127.0.0.1:0",
        BatchServerConfig {
            coalesce_wait_ms: 5,
            ..BatchServerConfig::default()
        },
        factory,
    )
    .unwrap();
    let addr = server.addr();
    let client = HttpClient::new(addr);

    let (_, before) = client.get("/metrics").unwrap();

    // Phase 1: six concurrent seeded requests, two shared pantries.
    let pantries = [r#"["flour","water","salt"]"#, r#"["rice","egg"]"#];
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let body = format!(
                r#"{{"ingredients":{},"seed":{}}}"#,
                pantries[i % 2],
                1000 + i
            );
            std::thread::spawn(move || {
                let client = HttpClient::new(addr);
                let (status, resp) = client.post_json("/api/generate", &body).unwrap();
                assert_eq!(status, 200, "{resp}");
                (body, resp)
            })
        })
        .collect();
    let concurrent: Vec<(String, String)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Phase 2: the requests genuinely shared decode steps.
    let (_, mid) = client.get("/metrics").unwrap();
    let steps = metric_value(&mid, "decode_batch_size_count")
        - metric_value(&before, "decode_batch_size_count");
    let solo_steps = batch_size_le1(&mid) - batch_size_le1(&before);
    assert!(steps > 0.0, "no batched decode steps recorded:\n{mid}");
    assert!(
        solo_steps * 2.0 < steps,
        "decode_batch_size p50 ≤ 1: {solo_steps} of {steps} steps ran solo"
    );

    // Phase 3: solo replays (one at a time) are byte-identical.
    for (body, resp) in &concurrent {
        let (status, replay) = client.post_json("/api/generate", body).unwrap();
        assert_eq!(status, 200, "{replay}");
        assert_eq!(
            recipe_fields(resp),
            recipe_fields(&replay),
            "batched response diverged from solo replay for {body}"
        );
    }

    // Phase 4: shared pantry prefixes hit the KV cache (the replays
    // decode against the prefixes phase 1 registered).
    let (_, after) = client.get("/metrics").unwrap();
    let hits = metric_value(&after, "decode_kv_hits_total")
        - metric_value(&before, "decode_kv_hits_total");
    assert!(hits > 0.0, "no shared-prefix KV hits:\n{after}");

    server.stop();
}

/// A pool too small for even one worst-case request is a definitive
/// capacity error: HTTP 429, not a hang and not a 500.
#[test]
fn batched_server_returns_429_when_the_kv_pool_cannot_fit_a_request() {
    let trained = trained_gpt2();
    let factory = trained
        .batched_factory(BatchEngineConfig {
            block_tokens: 4,
            num_blocks: 4, // 16 tokens of KV — far below prompt + budget
            max_batch: 2,
            prefix_cap: 4,
        })
        .expect("gpt2 is batch-capable");
    let server =
        ApiServer::start_batched("127.0.0.1:0", BatchServerConfig::default(), factory).unwrap();
    let client = HttpClient::new(server.addr());

    let (status, body) = client
        .post_json("/api/generate", r#"{"ingredients":["flour","water"],"seed":1}"#)
        .unwrap();
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("error"), "{body}");

    // The server stays healthy after rejecting.
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);

    server.stop();
}

//! Serving-stack integration: trained model → worker-pool replicas →
//! HTTP server → client → JSON → structured recipe.

use ratatouille::models::registry::ModelKind;
use ratatouille::models::train::TrainConfig;
use ratatouille::serving::api::ApiServer;
use ratatouille::serving::client::HttpClient;
use ratatouille::serving::json::Json;
use ratatouille::{Pipeline, PipelineConfig, TrainedModel};

fn trained_model() -> TrainedModel {
    let mut cfg = PipelineConfig::small();
    cfg.corpus.num_recipes = 80;
    let pipeline = Pipeline::prepare(cfg);
    pipeline.train(
        ModelKind::WordLstm,
        Some(TrainConfig {
            steps: 3,
            batch_size: 2,
            ..Default::default()
        }),
    )
}

#[test]
fn serve_generate_parse_roundtrip() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 2, 8, trained.backend_factory()).unwrap();
    let client = HttpClient::new(server.addr());

    // health
    let (status, body) = client.get("/api/health").unwrap();
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("workers").unwrap().as_f64(), Some(2.0));

    // model card matches the trained model
    let (_, body) = client.get("/api/models").unwrap();
    assert!(body.contains("Word-level LSTM"), "{body}");

    // generation round trip
    let (status, body) = client
        .post_json("/api/generate", r#"{"ingredients":["flour","water"]}"#)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert!(v.get("title").unwrap().as_str().is_some());
    assert!(v.get("latency_ms").unwrap().as_f64().unwrap() >= 0.0);
    assert!(v.get("well_formed").unwrap().as_bool().is_some());

    server.stop();
}

#[test]
fn concurrent_requests_hit_different_replicas() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 3, 16, trained.backend_factory()).unwrap();
    let addr = server.addr();
    let handles: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let client = HttpClient::new(addr);
                let (status, body) = client
                    .post_json("/api/generate", r#"{"ingredients":["rice","egg"]}"#)
                    .unwrap();
                assert_eq!(status, 200, "{body}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.stop();
}

#[test]
fn api_input_validation() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 1, 4, trained.backend_factory()).unwrap();
    let client = HttpClient::new(server.addr());
    for (body, expect) in [
        ("not json", 400),
        ("{}", 400),
        (r#"{"ingredients":[]}"#, 400),
        (r#"{"ingredients":[1,2,3]}"#, 400),
    ] {
        let (status, _) = client.post_json("/api/generate", body).unwrap();
        assert_eq!(status, expect, "body {body:?}");
    }
    let (status, _) = client.get("/api/generate").unwrap();
    assert_eq!(status, 405, "GET on POST route");
    server.stop();
}

#[test]
fn frontend_ships_with_server() {
    let trained = trained_model();
    let server = ApiServer::start("127.0.0.1:0", 1, 4, trained.backend_factory()).unwrap();
    let client = HttpClient::new(server.addr());
    let (status, body) = client.get("/").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("Ratatouille"));
    assert!(body.contains("/api/generate"));
    server.stop();
}

//! End-to-end integration: synthetic RecipeDB → preprocessing →
//! tokenizer → model training → conditional generation → evaluation.
//!
//! Budgets are intentionally tiny: these tests verify *wiring and
//! invariants*, not model quality (the bench harness owns quality).

use ratatouille::models::registry::{ModelKind, TABLE1_MODELS};
use ratatouille::models::train::TrainConfig;
use ratatouille::tokenizers::special;
use ratatouille::{Pipeline, PipelineConfig};

fn tiny_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::small();
    cfg.corpus.num_recipes = 100;
    cfg
}

fn tiny_train() -> TrainConfig {
    TrainConfig {
        steps: 4,
        batch_size: 2,
        ..Default::default()
    }
}

#[test]
fn full_flow_works_for_every_table1_model() {
    let pipeline = Pipeline::prepare(tiny_config());
    for &kind in TABLE1_MODELS {
        let trained = pipeline.train(kind, Some(tiny_train()));
        assert_eq!(trained.stats.steps_run, 4, "{kind:?}");
        assert!(
            trained.stats.losses.iter().all(|l| l.is_finite()),
            "{kind:?} diverged"
        );
        let recipe = trained.generate_recipe(&["flour".into(), "water".into()], 1);
        assert!(!recipe.title.is_empty(), "{kind:?} empty title");
    }
}

#[test]
fn generated_tagged_text_contains_prompt_structure() {
    let pipeline = Pipeline::prepare(tiny_config());
    let trained = pipeline.train(ModelKind::WordLstm, Some(tiny_train()));
    let tagged = trained.generate_tagged(&["salt".into(), "rice".into()], 9);
    assert!(tagged.starts_with(special::RECIPE_START));
    assert!(tagged.contains(special::INPUT_START));
    assert!(tagged.contains(" salt "));
    assert!(tagged.contains(" rice "));
    assert!(tagged.contains(special::TITLE_START));
    assert!(tagged.ends_with(special::RECIPE_END));
}

#[test]
fn evaluation_is_deterministic_given_seed() {
    let pipeline = Pipeline::prepare(tiny_config());
    let trained = pipeline.train(ModelKind::DistilGpt2, Some(tiny_train()));
    let a = trained.evaluate(&pipeline.test_recipes, 2, 5);
    let b = trained.evaluate(&pipeline.test_recipes, 2, 5);
    assert_eq!(a.bleu, b.bleu);
    assert_eq!(a.distinct_2, b.distinct_2);
}

#[test]
fn training_longer_helps() {
    // 40 steps must beat 2 steps on training loss — the most basic
    // "learning actually happens through the whole stack" check.
    let pipeline = Pipeline::prepare(tiny_config());
    let short = pipeline.train(
        ModelKind::WordLstm,
        Some(TrainConfig {
            steps: 2,
            batch_size: 4,
            ..Default::default()
        }),
    );
    let long = pipeline.train(
        ModelKind::WordLstm,
        Some(TrainConfig {
            steps: 40,
            batch_size: 4,
            ..Default::default()
        }),
    );
    assert!(
        long.stats.final_loss(5) < short.stats.final_loss(1),
        "long {} vs short {}",
        long.stats.final_loss(5),
        short.stats.final_loss(1)
    );
}

#[test]
fn preprocessing_report_is_consistent_with_output() {
    let pipeline = Pipeline::prepare(tiny_config());
    assert_eq!(pipeline.report.output_texts, pipeline.train_texts.len());
    assert!(pipeline.report.input_records >= pipeline.train_texts.len());
    for t in &pipeline.train_texts {
        assert!(t.len() <= 2000, "length cap violated: {}", t.len());
    }
}

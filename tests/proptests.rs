//! Cross-crate property tests: invariants that must hold for *any*
//! generated recipe / corpus / request, not just the examples we thought
//! of.

use ratatouille_util::proptest::prelude::*;
use ratatouille::eval::bleu::sentence_bleu;
use ratatouille::eval::structure::validate_tagged_recipe;
use ratatouille::recipedb::grammar::{RecipeGenerator, ALL_DISH_KINDS};
use ratatouille::recipedb::preprocess::parse_raw;
use ratatouille::serving::json::Json;
use ratatouille::tokenizers::{BpeTokenizer, CharTokenizer, Tokenizer, WordTokenizer};

proptest! {
    cases = 24;

    /// Every recipe the grammar can produce renders to a tagged string
    /// that passes structural validation — the corpus is well-formed by
    /// construction.
    #[test]
    fn any_generated_recipe_is_structurally_valid(seed in 0u64..10_000) {
        let mut g = RecipeGenerator::new(seed);
        let recipe = g.generate();
        let report = validate_tagged_recipe(&recipe.to_tagged_string());
        prop_assert!(report.valid, "seed {seed}: {:?}", report.errors);
        prop_assert_eq!(report.quantity_coverage(), 1.0);
    }

    /// Every raw rendering parses back to the same section structure.
    #[test]
    fn raw_roundtrip_preserves_structure(seed in 0u64..10_000, kind_idx in 0usize..10) {
        let mut g = RecipeGenerator::new(seed);
        let recipe = g.generate_dish("US General", ALL_DISH_KINDS[kind_idx]);
        let parsed = parse_raw(&recipe.to_raw_string());
        prop_assert!(parsed.is_some(), "seed {seed} failed to parse");
        let parsed = parsed.unwrap();
        prop_assert_eq!(parsed.title, recipe.title.to_lowercase());
        prop_assert_eq!(parsed.instructions.len(), recipe.instructions.len());
    }

    /// Tagged recipes tokenize within vocab bounds and BPE round-trips
    /// exactly, for every tokenizer, for any seed.
    #[test]
    fn tokenizers_handle_any_recipe(seed in 0u64..10_000) {
        let mut g = RecipeGenerator::new(seed);
        let texts: Vec<String> = (0..3).map(|_| g.generate().to_tagged_string()).collect();
        let char_tok = CharTokenizer::train(&texts);
        let word_tok = WordTokenizer::train(&texts, 1);
        let bpe_tok = BpeTokenizer::train(&texts, 64);
        for t in &texts {
            for tok in [&char_tok as &dyn Tokenizer, &word_tok, &bpe_tok] {
                let ids = tok.encode(t);
                prop_assert!(ids.iter().all(|&i| (i as usize) < tok.vocab_size()));
            }
            prop_assert_eq!(&bpe_tok.decode(&bpe_tok.encode(t)), t);
            prop_assert_eq!(&char_tok.decode(&char_tok.encode(t)), t);
        }
    }

    /// BLEU of a recipe against itself is 1; against a different recipe
    /// it is strictly less; always within [0, 1].
    #[test]
    fn bleu_invariants_on_recipes(seed in 0u64..10_000) {
        let mut g = RecipeGenerator::new(seed);
        let a = g.generate().to_tagged_string();
        let b = g.generate().to_tagged_string();
        let self_score = sentence_bleu(&a, &[&a]);
        prop_assert!((self_score - 1.0).abs() < 1e-9);
        let cross = sentence_bleu(&a, &[&b]);
        prop_assert!((0.0..=1.0).contains(&cross));
        if a != b {
            prop_assert!(cross < 1.0);
        }
    }

    /// The API's JSON layer round-trips arbitrary ingredient strings
    /// (quotes, backslashes, unicode) without corruption.
    #[test]
    fn json_roundtrips_arbitrary_ingredients(items in collection::vec("[\\PC\"\\\\]{0,20}", 0..6)) {
        let v = Json::object(vec![("ingredients", Json::string_array(&items))]);
        let back = Json::parse(&v.to_string()).unwrap();
        prop_assert_eq!(back.get("ingredients").unwrap().as_string_vec(), items);
    }

    /// Nutrition aggregation is monotone: doubling every quantity at
    /// least doubles no nutrient downward (all fields scale up).
    #[test]
    fn nutrition_scales_with_quantity(seed in 0u64..10_000) {
        let mut g = RecipeGenerator::new(seed);
        let mut recipe = g.generate();
        let n1 = recipe.nutrition();
        for line in recipe.ingredients.iter_mut() {
            line.qty.0 *= 2.0;
        }
        let n2 = recipe.nutrition();
        prop_assert!(n2.kcal >= n1.kcal);
        prop_assert!((n2.kcal - 2.0 * n1.kcal).abs() < 1e-2 * (1.0 + n1.kcal.abs()));
    }
}

//! Workspace lint gate: `cargo test` fails if any crate violates the
//! unsafe-soundness / determinism contract enforced by `crates/xlint`.
//!
//! This is the same check `cargo run -p xlint` and `scripts/ci.sh` run;
//! wiring it into the test suite means tier-1 verification cannot pass
//! on a tree with unjustified violations.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = xlint::find_workspace_root(manifest_dir)
        .expect("workspace root with [workspace] Cargo.toml above CARGO_MANIFEST_DIR");
    let diags = xlint::run_workspace(&root);
    assert!(
        diags.is_empty(),
        "xlint found {} violation(s); fix them or add a justified \
         `// xlint: allow(rule): reason` (see DESIGN.md §7):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! Crash recovery: the paper's war story, solved.
//!
//! §VII: "We have limited hours of GPU, RAM and Disk space on Google
//! Colab, which lead to session crashing after every 5 to 7 epochs."
//!
//! This example trains with periodic checkpoints, kills the run halfway
//! (simulating the Colab crash), resumes from disk, and verifies the
//! resumed trajectory matches an uninterrupted run step-for-step.
//!
//! ```text
//! cargo run --release --example colab_crash_recovery
//! ```

use ratatouille::models::data::Dataset;
use ratatouille::models::registry::{ModelKind, ModelSpec};
use ratatouille::models::train::{TrainConfig, Trainer};
use ratatouille::{Pipeline, PipelineConfig};

fn main() {
    let pipeline = Pipeline::prepare(PipelineConfig::small());
    let ckpt_dir = std::env::temp_dir().join("ratatouille-crash-demo");
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let ckpt = ckpt_dir.join("distilgpt2.ckpt");

    const TOTAL: usize = 60;
    const CRASH_AT: usize = 30;

    let base = TrainConfig {
        steps: TOTAL,
        batch_size: 4,
        ..Default::default()
    };

    // ——— the uninterrupted reference run ———
    println!("reference run: {TOTAL} uninterrupted steps…");
    let spec = ModelSpec::build(ModelKind::DistilGpt2, &pipeline.train_texts);
    let ds = Dataset::from_documents(&pipeline.train_texts, spec.tokenizer.as_ref(), spec.block_size);
    let full = Trainer::new(spec.model.as_ref(), &ds, base.clone()).train();
    println!("  final loss: {:.4}", full.final_loss(5));

    // ——— the "Colab session" that dies at step 30 ———
    println!("\ncrashing run: checkpoint every 10 steps, killed at step {CRASH_AT}…");
    let spec2 = ModelSpec::build(ModelKind::DistilGpt2, &pipeline.train_texts);
    let crash_cfg = TrainConfig {
        steps: CRASH_AT, // the "crash": the process never gets past here
        checkpoint_every: 10,
        checkpoint_path: Some(ckpt.clone()),
        ..base.clone()
    };
    let first_half = Trainer::new(spec2.model.as_ref(), &ds, crash_cfg).train();
    println!(
        "  session died after {} steps (checkpoint on disk: {})",
        first_half.steps_run,
        ckpt.display()
    );

    // ——— the recovery session ———
    println!("\nresuming from checkpoint…");
    let spec3 = ModelSpec::build(ModelKind::DistilGpt2, &pipeline.train_texts);
    let second_half = Trainer::new(spec3.model.as_ref(), &ds, base)
        .resume(&ckpt)
        .expect("resume failed");
    println!("  resumed and ran {} more steps", second_half.steps_run);

    // ——— verify: glued trajectory == uninterrupted trajectory ———
    let mut glued = first_half.losses.clone();
    glued.extend(&second_half.losses);
    let max_diff = glued
        .iter()
        .zip(&full.losses)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("\nmax per-step loss deviation (resumed vs uninterrupted): {max_diff:.2e}");
    assert!(max_diff < 1e-3, "trajectories diverged!");
    println!("crash recovery is EXACT: same batches, same moments, same losses.");

    std::fs::remove_dir_all(&ckpt_dir).ok();
}

//! Quickstart: the paper's headline flow in ~20 lines.
//!
//! Generates a synthetic RecipeDB corpus, preprocesses it, trains the
//! GPT-2 model briefly, and generates a novel recipe from an ingredient
//! list.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ratatouille::models::registry::ModelKind;
use ratatouille::models::train::TrainConfig;
use ratatouille::{Pipeline, PipelineConfig};

fn main() {
    // 1. Data: synthetic RecipeDB → preprocessed tagged training text.
    let pipeline = Pipeline::prepare(PipelineConfig::small());
    println!(
        "prepared {} training texts ({} held-out recipes)",
        pipeline.train_texts.len(),
        pipeline.test_recipes.len()
    );

    // 2. Model: GPT-2 (small budget — run the bench harness for the real one).
    let trained = pipeline.train(
        ModelKind::DistilGpt2,
        Some(TrainConfig {
            steps: 120,
            batch_size: 8,
            log_every: 20,
            ..Default::default()
        }),
    );
    println!(
        "trained {} ({} params) — final loss {:.3}",
        trained.spec.model.name(),
        trained.spec.model.num_params(),
        trained.stats.final_loss(10)
    );

    // 3. Generate a novel recipe from ingredients.
    let ingredients = vec!["chicken".to_string(), "garlic".to_string(), "rice".to_string()];
    let recipe = trained.generate_recipe(&ingredients, 42);

    println!("\n=== {} ===", recipe.title);
    println!("Ingredients:");
    for line in &recipe.ingredients {
        println!("  • {line}");
    }
    println!("Instructions:");
    for (i, step) in recipe.instructions.iter().enumerate() {
        println!("  {}. {step}", i + 1);
    }
    println!(
        "\nstructurally well-formed: {}",
        if recipe.well_formed { "yes" } else { "not yet (train longer!)" }
    );
}

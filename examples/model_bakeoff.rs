//! Model bakeoff: a miniature Table I in example form.
//!
//! Trains all four paper models with a small equal-time budget and
//! compares loss trajectories, parameter counts and generation latency —
//! a fast way to *see* why the paper's ordering comes out the way it
//! does before committing to the full `table1_bleu` run.
//!
//! ```text
//! cargo run --release --example model_bakeoff
//! ```

use std::time::Instant;

use ratatouille::models::registry::TABLE1_MODELS;
use ratatouille::models::train::TrainConfig;
use ratatouille::{Pipeline, PipelineConfig};

fn main() {
    let pipeline = Pipeline::prepare(PipelineConfig::small());
    println!(
        "corpus: {} training texts · {} held-out recipes\n",
        pipeline.train_texts.len(),
        pipeline.test_recipes.len()
    );
    println!(
        "{:<18} {:>10} {:>8} {:>10} {:>10} {:>10}",
        "model", "params", "vocab", "loss@0", "loss@end", "ms/recipe"
    );
    println!("{}", "-".repeat(72));

    for &kind in TABLE1_MODELS {
        let trained = pipeline.train(
            kind,
            Some(TrainConfig {
                steps: 60,
                batch_size: 4,
                ..Default::default()
            }),
        );
        let start_loss = trained.stats.losses.first().copied().unwrap_or(f32::NAN);
        let end_loss = trained.stats.final_loss(10);

        let ingredients = vec!["chicken".to_string(), "onion".to_string()];
        let t0 = Instant::now();
        let _ = trained.generate_recipe(&ingredients, 1);
        let latency = t0.elapsed().as_secs_f64() * 1000.0;

        println!(
            "{:<18} {:>10} {:>8} {:>10.3} {:>10.3} {:>10.1}",
            trained.spec.model.name(),
            trained.spec.model.num_params(),
            trained.spec.tokenizer.vocab_size(),
            start_loss,
            end_loss,
            latency
        );
    }
    println!("\nnote: equal tiny budgets — run `table1_bleu` for the calibrated reproduction.");
}

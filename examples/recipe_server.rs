//! The web application (Fig. 4): train a model, boot the decoupled
//! frontend/backend stack, and serve recipes over HTTP.
//!
//! By default runs a self-contained demo (boots, fires client requests,
//! exits). Pass `--serve` to keep the server running for a browser:
//!
//! ```text
//! cargo run --release --example recipe_server            # demo round trip
//! cargo run --release --example recipe_server -- --serve # then open the printed URL
//! ```

use ratatouille::models::registry::ModelKind;
use ratatouille::models::train::TrainConfig;
use ratatouille::serving::api::ApiServer;
use ratatouille::serving::client::HttpClient;
use ratatouille::{Pipeline, PipelineConfig};

fn main() {
    let serve_forever = std::env::args().any(|a| a == "--serve");

    println!("training the serving model…");
    let pipeline = Pipeline::prepare(PipelineConfig::small());
    let trained = pipeline.train(
        ModelKind::DistilGpt2,
        Some(TrainConfig {
            steps: 150,
            batch_size: 8,
            log_every: 50,
            ..Default::default()
        }),
    );

    // 3 worker replicas — the paper's "replicate the docker" scaling knob.
    let server = ApiServer::start("127.0.0.1:0", 3, 32, trained.backend_factory())
        .expect("failed to bind");
    println!("\nRatatouille is serving:");
    println!("  frontend:  http://{}/", server.addr());
    println!("  health:    http://{}/api/health", server.addr());
    println!("  generate:  POST http://{}/api/generate", server.addr());

    if serve_forever {
        println!("\nserving until Ctrl+C…");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    // Demo round trip.
    let client = HttpClient::new(server.addr());
    let (status, body) = client.get("/api/health").unwrap();
    println!("\nGET /api/health → {status}\n  {body}");
    for pantry in [
        r#"{"ingredients":["chicken","garlic","rice"]}"#,
        r#"{"ingredients":["flour","butter","sugar"]}"#,
    ] {
        let (status, body) = client.post_json("/api/generate", pantry).unwrap();
        println!("\nPOST /api/generate {pantry}\n  → {status}\n  {body}");
    }
    server.stop();
    println!("\nserver stopped cleanly");
}

//! Fusion cuisine: explore the region-conditioned culinary space.
//!
//! RecipeDB's pitch is "scientific exploration of the culinary space";
//! this example walks it: region-conditioned corpus statistics, flavor-
//! molecule profiles (the FlavorDB link), and cross-region generation —
//! prompting the model with an ingredient set that mixes two regions'
//! signatures.
//!
//! ```text
//! cargo run --release --example fusion_cuisine
//! ```

use ratatouille::models::registry::ModelKind;
use ratatouille::models::train::TrainConfig;
use ratatouille::recipedb::diet::{classify, filter_by_diet, Diet};
use ratatouille::recipedb::grammar::{DishKind, RecipeGenerator};
use ratatouille::recipedb::stats::ingredient_frequencies;
use ratatouille::{Pipeline, PipelineConfig};

fn main() {
    // 1. What does each region actually cook with? Generate
    //    region-conditioned recipes and count.
    let mut gen = RecipeGenerator::new(7);
    let mut signatures = Vec::new();
    for region in ["Chinese", "Mexican"] {
        let recipes: Vec<_> = (0..120)
            .map(|_| gen.generate_dish(region, DishKind::StirFry))
            .collect();
        let refs: Vec<&_> = recipes.iter().collect();
        let freqs = ingredient_frequencies(&refs);
        let top: Vec<String> = freqs.iter().take(6).map(|(n, c)| format!("{n} ({c})")).collect();
        println!("{region} stir-fry signature: {}", top.join(", "));
        signatures.push(freqs);
    }

    // 2. Flavor profile of one recipe (the FlavorDB-style link).
    let sample = gen.generate_dish("Chinese", DishKind::StirFry);
    println!("\nflavor profile of '{}':", sample.title);
    println!("  molecules: {}", sample.flavor_profile().join(", "));
    let n = sample.nutrition();
    println!(
        "  nutrition: {:.0} kcal, {:.0} g protein, {:.0} g fat, {:.0} g carbs",
        n.kcal, n.protein_g, n.fat_g, n.carbs_g
    );
    println!("  dietary styles: {:?}", classify(&sample));
    // and how would we veganize it?
    for line in sample.ingredients.iter().take(6) {
        let subs = ratatouille::recipedb::ontology::substitutes(&line.name);
        if let Some(s) = subs.first() {
            println!("    swap {} → {} ({})", s.from, s.to, s.note);
        }
    }

    // Dietary slice of the culinary space (RecipeDB's DietRx-style link).
    let survey: Vec<_> = (0..200).map(|_| gen.generate()).collect();
    for diet in [Diet::Vegetarian, Diet::Vegan, Diet::GlutenFree] {
        let k = filter_by_diet(&survey, diet).len();
        println!("  {diet:?}: {k}/200 generated recipes qualify");
    }
    println!();

    // 3. Fusion generation: prompt with a cross-region pantry.
    let pipeline = Pipeline::prepare(PipelineConfig::small());
    let trained = pipeline.train(
        ModelKind::Gpt2Medium,
        Some(TrainConfig {
            steps: 150,
            batch_size: 8,
            ..Default::default()
        }),
    );
    let fusion_pantry: Vec<String> = vec![
        // Chinese signature…
        "soy sauce".into(),
        "ginger".into(),
        // …meets Mexican signature
        "black beans".into(),
        "lime".into(),
        "cilantro".into(),
    ];
    println!("fusion pantry: {}", fusion_pantry.join(", "));
    let recipe = trained.generate_recipe(&fusion_pantry, 3);
    println!("\n=== {} ===", recipe.title);
    for line in &recipe.ingredients {
        println!("  • {line}");
    }
    for (i, step) in recipe.instructions.iter().enumerate() {
        println!("  {}. {step}", i + 1);
    }
}

//! Pantry chef: give it what's in your pantry, get ranked recipe
//! candidates.
//!
//! Demonstrates conditional generation + the evaluation toolkit as a
//! *ranking* signal: several candidates are sampled with different seeds
//! and ranked by structural validity, ingredient coverage and novelty.
//!
//! ```text
//! cargo run --release --example pantry_chef -- chicken rice "soy sauce" ginger
//! ```

use ratatouille::eval::coverage::ingredient_coverage;
use ratatouille::eval::novelty::novel_ngram_fraction;
use ratatouille::models::registry::ModelKind;
use ratatouille::models::train::TrainConfig;
use ratatouille::{Pipeline, PipelineConfig};

fn main() {
    let mut pantry: Vec<String> = std::env::args().skip(1).collect();
    if pantry.is_empty() {
        pantry = vec!["chicken".into(), "rice".into(), "soy sauce".into(), "ginger".into()];
        println!("(no pantry given; using default: {pantry:?})\n");
    }

    let pipeline = Pipeline::prepare(PipelineConfig::small());
    let trained = pipeline.train(
        ModelKind::Gpt2Medium,
        Some(TrainConfig {
            steps: 150,
            batch_size: 8,
            log_every: 50,
            ..Default::default()
        }),
    );

    // Sample several candidates and rank them.
    const CANDIDATES: u64 = 4;
    let mut scored = Vec::new();
    for seed in 0..CANDIDATES {
        let recipe = trained.generate_recipe(&pantry, seed);
        let tagged = trained.generate_tagged(&pantry, seed);
        let structure = if recipe.well_formed { 1.0 } else { 0.0 };
        let cov = ingredient_coverage(&pantry, &recipe.ingredients, &recipe.instructions);
        let coverage = cov.in_ingredient_list.max(cov.in_instructions);
        let novelty = novel_ngram_fraction(&tagged, &trained.train_texts, 4);
        let score = 2.0 * structure + 2.0 * coverage + novelty;
        scored.push((score, structure, coverage, novelty, recipe));
    }
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    println!("\nPANTRY: {}", pantry.join(", "));
    println!("{} candidates, ranked:\n", scored.len());
    for (rank, (score, structure, coverage, novelty, recipe)) in scored.iter().enumerate() {
        println!(
            "#{} — {} (score {:.2}: structure {:.0}, pantry coverage {:.0}%, novelty {:.0}%)",
            rank + 1,
            recipe.title,
            score,
            structure,
            coverage * 100.0,
            novelty * 100.0
        );
        if rank == 0 {
            println!("  Ingredients:");
            for line in &recipe.ingredients {
                println!("    • {line}");
            }
            println!("  Instructions:");
            for (i, step) in recipe.instructions.iter().enumerate() {
                println!("    {}. {step}", i + 1);
            }
        }
        println!();
    }
}

#!/usr/bin/env bash
# Offline tier-1 gate: build + test + bench smoke, with zero network
# access and warnings treated as errors.
#
# The workspace has no external dependencies — everything resolves from
# path crates — so this must pass on a machine with an empty cargo
# registry. `--offline` makes any accidental registry dependency a hard
# failure instead of a hang.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-Dwarnings"
export CARGO_NET_OFFLINE="true"

echo "== xlint (call-graph workspace analysis, <5s budget) =="
# Build first so compile time doesn't count against the lint budget;
# the JSON report lands in target/ for tooling. A non-zero exit (any
# diagnostic) fails the gate via `set -e`.
cargo build -q -p xlint --offline
xlint_start=$(date +%s%N)
./target/debug/xlint --emit=json > target/xlint_report.json
xlint_ms=$(( ($(date +%s%N) - xlint_start) / 1000000 ))
echo "xlint: clean in ${xlint_ms}ms (report: target/xlint_report.json)"
if [ "$xlint_ms" -ge 5000 ]; then
    echo "xlint: exceeded the 5s wall-time budget (${xlint_ms}ms)" >&2
    exit 1
fi

echo "== build (release, warnings are errors) =="
cargo build --workspace --release --offline

echo "== test (all targets) =="
cargo test --workspace -q --offline

echo "== bench smoke (fast mode, kernel + generation harnesses) =="
# BENCH_*.json artifacts land at the repo root so the bench trajectory is
# tracked in-tree run over run (EXPERIMENTS.md records the runs).
RAT_BENCH_FAST=1 RAT_BENCH_DIR="${RAT_BENCH_DIR:-$PWD}" \
    cargo bench -p ratatouille-bench --bench tensor_kernels --offline
RAT_BENCH_FAST=1 RAT_BENCH_DIR="${RAT_BENCH_DIR:-$PWD}" \
    cargo bench -p ratatouille-bench --bench generation_latency --offline
RAT_BENCH_FAST=1 RAT_BENCH_DIR="${RAT_BENCH_DIR:-$PWD}" \
    cargo bench -p ratatouille-bench --bench quantized_decode --offline
RAT_BENCH_FAST=1 RAT_BENCH_DIR="${RAT_BENCH_DIR:-$PWD}" \
    cargo bench -p ratatouille-bench --bench batched_decode --offline
# Also the paged-attention determinism gate: the harness asserts the
# sweep reproduces the serial reference streams before timing anything.
RAT_BENCH_FAST=1 RAT_BENCH_DIR="${RAT_BENCH_DIR:-$PWD}" \
    cargo bench -p ratatouille-bench --bench paged_attention --offline

echo "== /metrics smoke (serve, scrape, assert required metric names) =="
cargo run --release -q -p ratatouille-bench --bin metrics_smoke --offline

echo "== quantized-generation smoke (int8 decode: finite, deterministic, thread-invariant) =="
cargo run --release -q -p ratatouille-bench --bin quantized_smoke --offline

echo "== batched-decode smoke (batch determinism, KV-prefix hits, >=2x shared-batch throughput, long-context sweep determinism) =="
cargo run --release -q -p ratatouille-bench --bin batched_smoke --offline

echo "== request-tracing smoke (X-Trace-Id, /debug/requests lifecycle, chrome export, <=2% decode overhead) =="
cargo run --release -q -p ratatouille-bench --bin trace_smoke --offline

echo "== ci.sh: all gates passed =="

#!/usr/bin/env bash
# Offline tier-1 gate: build + test + bench smoke, with zero network
# access and warnings treated as errors.
#
# The workspace has no external dependencies — everything resolves from
# path crates — so this must pass on a machine with an empty cargo
# registry. `--offline` makes any accidental registry dependency a hard
# failure instead of a hang.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-Dwarnings"
export CARGO_NET_OFFLINE="true"

echo "== xlint (workspace static analysis) =="
cargo run -q -p xlint --offline

echo "== build (release, warnings are errors) =="
cargo build --workspace --release --offline

echo "== test (all targets) =="
cargo test --workspace -q --offline

echo "== bench smoke (fast mode, kernel + generation harnesses) =="
# BENCH_*.json artifacts land at the repo root so the bench trajectory is
# tracked in-tree run over run (EXPERIMENTS.md records the runs).
RAT_BENCH_FAST=1 RAT_BENCH_DIR="${RAT_BENCH_DIR:-$PWD}" \
    cargo bench -p ratatouille-bench --bench tensor_kernels --offline
RAT_BENCH_FAST=1 RAT_BENCH_DIR="${RAT_BENCH_DIR:-$PWD}" \
    cargo bench -p ratatouille-bench --bench generation_latency --offline
RAT_BENCH_FAST=1 RAT_BENCH_DIR="${RAT_BENCH_DIR:-$PWD}" \
    cargo bench -p ratatouille-bench --bench quantized_decode --offline
RAT_BENCH_FAST=1 RAT_BENCH_DIR="${RAT_BENCH_DIR:-$PWD}" \
    cargo bench -p ratatouille-bench --bench batched_decode --offline
# Also the paged-attention determinism gate: the harness asserts the
# sweep reproduces the serial reference streams before timing anything.
RAT_BENCH_FAST=1 RAT_BENCH_DIR="${RAT_BENCH_DIR:-$PWD}" \
    cargo bench -p ratatouille-bench --bench paged_attention --offline

echo "== /metrics smoke (serve, scrape, assert required metric names) =="
cargo run --release -q -p ratatouille-bench --bin metrics_smoke --offline

echo "== quantized-generation smoke (int8 decode: finite, deterministic, thread-invariant) =="
cargo run --release -q -p ratatouille-bench --bin quantized_smoke --offline

echo "== batched-decode smoke (batch determinism, KV-prefix hits, >=2x shared-batch throughput, long-context sweep determinism) =="
cargo run --release -q -p ratatouille-bench --bin batched_smoke --offline

echo "== ci.sh: all gates passed =="

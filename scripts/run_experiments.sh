#!/usr/bin/env bash
# Regenerate every paper artifact sequentially, teeing outputs to /tmp.
# Usage: scripts/run_experiments.sh [quick|standard|full]
set -u
SCALE="${1:-quick}"
BIN=./target/release
OUT=/tmp/ratatouille-experiments
mkdir -p "$OUT"

run() {
  local name="$1"; shift
  echo "=== $name (scale=$SCALE) ==="
  RATATOUILLE_SCALE=$SCALE "$@" > "$OUT/$name.txt" 2>&1
  echo "    exit=$? -> $OUT/$name.txt"
}

run training_speedup   "$BIN/training_speedup"
run fig3               "$BIN/fig3_generation_flow"
run fig4               "$BIN/fig4_web_generate"
run fig5               "$BIN/fig5_sample_recipe"
run ablation_sampling  "$BIN/ablation_sampling"
run future_work_gptneo "$BIN/future_work_gptneo"
echo "all experiments done"

//! Property-based tests on metric invariants.

use ratatouille_util::proptest::prelude::*;
use ratatouille_eval::bleu::{corpus_bleu, sentence_bleu};
use ratatouille_eval::coverage::ingredient_coverage;
use ratatouille_eval::diversity::{distinct_n, self_bleu};
use ratatouille_eval::novelty::{longest_copied_span_fraction, novel_ngram_fraction};
use ratatouille_eval::perplexity::perplexity_from_nll;
use ratatouille_eval::rouge::rouge_l;

fn words() -> impl Strategy<Value = String> {
    collection::vec("[a-f]{1,4}", 1..20).prop_map(|v| v.join(" "))
}

proptest! {
    /// BLEU is bounded, reflexive-maximal, and zero only without overlap.
    #[test]
    fn bleu_bounds(c in words(), r in words()) {
        let s = sentence_bleu(&c, &[&r]);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((sentence_bleu(&c, &[&c]) - 1.0).abs() < 1e-9);
        // adding the candidate itself as an extra reference can only help
        let s2 = sentence_bleu(&c, &[&r, &c]);
        prop_assert!(s2 + 1e-9 >= s);
    }

    /// Corpus BLEU of identical pairs is 1 regardless of content.
    #[test]
    fn corpus_bleu_reflexive(texts in collection::vec(words(), 1..6)) {
        let pairs: Vec<(&str, Vec<&str>)> =
            texts.iter().map(|t| (t.as_str(), vec![t.as_str()])).collect();
        prop_assert!((corpus_bleu(&pairs) - 1.0).abs() < 1e-9);
    }

    /// ROUGE-L F1 is bounded and symmetric in precision/recall swap.
    #[test]
    fn rouge_bounds(c in words(), r in words()) {
        let a = rouge_l(&c, &r);
        prop_assert!((0.0..=1.0).contains(&a.f1));
        let b = rouge_l(&r, &c);
        prop_assert!((a.recall - b.precision).abs() < 1e-9);
        prop_assert!((a.f1 - b.f1).abs() < 1e-9);
    }

    /// distinct-n is bounded and 1.0 when every n-gram is unique.
    #[test]
    fn distinct_bounds(texts in collection::vec(words(), 1..5), n in 1usize..3) {
        let d = distinct_n(&texts, n);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    /// self-BLEU of identical copies is ~1.
    #[test]
    fn self_bleu_of_copies(t in words(), k in 2usize..5) {
        let copies = vec![t.clone(); k];
        prop_assert!(self_bleu(&copies) > 0.99);
    }

    /// Novelty and copied-span are complementary extremes on copies.
    #[test]
    fn novelty_extremes(t in words()) {
        let corpus = vec![t.clone()];
        prop_assert_eq!(novel_ngram_fraction(&t, &corpus, 1), 0.0);
        prop_assert_eq!(longest_copied_span_fraction(&t, &corpus), 1.0);
    }

    /// Perplexity is monotone in NLL and ≥ 1 for non-negative NLLs.
    #[test]
    fn perplexity_monotone(nll in 0.0f32..8.0, extra in 0.01f32..2.0) {
        let lo = perplexity_from_nll(&[nll; 4]);
        let hi = perplexity_from_nll(&[nll + extra; 4]);
        prop_assert!(hi > lo);
        prop_assert!(lo >= 1.0 - 1e-6);
    }

    /// Coverage fractions are bounded and total coverage implies no
    /// uncovered request.
    #[test]
    fn coverage_bounds(req in collection::vec("[a-d]{1,3}", 0..4)) {
        let lines: Vec<String> = req.iter().map(|r| format!("1 cup {r}")).collect();
        let cov = ingredient_coverage(&req, &lines, &[]);
        prop_assert!((cov.in_ingredient_list - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&cov.extraneous));
    }
}

//! # ratatouille-eval
//!
//! Evaluation metrics for generated recipes.
//!
//! The paper's quantitative evaluation is BLEU (Table I); this crate
//! implements it exactly (modified n-gram precision, brevity penalty,
//! Chen–Cherry smoothing) plus the complementary metrics the recipe-
//! generation literature reports and that our ablation benches use:
//! perplexity, distinct-n / self-BLEU diversity, corpus-overlap novelty,
//! and a structural well-formedness validator for the tagged recipe
//! format.
//!
//! ```
//! use ratatouille_eval::bleu::sentence_bleu;
//!
//! let score = sentence_bleu(
//!     "mix the flour and water",
//!     &["mix the flour and water"],
//! );
//! assert!((score - 1.0).abs() < 1e-9);
//! ```
#![warn(missing_docs)]


pub mod bleu;
pub mod coverage;
pub mod diversity;
pub mod novelty;
pub mod perplexity;
pub mod report;
pub mod rouge;
pub mod significance;
pub mod structure;

pub use bleu::{corpus_bleu, sentence_bleu};
pub use report::EvalReport;
pub use structure::{validate_tagged_recipe, StructureReport};

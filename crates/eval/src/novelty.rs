//! Novelty metrics: is a "novel recipe" actually novel, or a training-set
//! regurgitation? The paper's goal is *novel* recipe generation, so our
//! harness reports these alongside BLEU.

use ratatouille_util::collections::{det_set, DetSet};

/// Fraction of the generation's n-grams that never appear in the training
/// corpus. 0 = pure copy, 1 = entirely novel phrasing.
pub fn novel_ngram_fraction<S: AsRef<str>>(generated: &str, corpus: &[S], n: usize) -> f64 {
    assert!(n >= 1);
    let mut corpus_grams: DetSet<Vec<&str>> = det_set();
    for doc in corpus {
        let toks: Vec<&str> = doc.as_ref().split_whitespace().collect();
        for w in toks.windows(n) {
            corpus_grams.insert(w.to_vec());
        }
    }
    let toks: Vec<&str> = generated.split_whitespace().collect();
    if toks.len() < n {
        return 0.0;
    }
    let total = toks.len() - n + 1;
    let novel = toks
        .windows(n)
        .filter(|w| !corpus_grams.contains(&w.to_vec()))
        .count();
    novel as f64 / total as f64
}

/// True if the generation exactly matches (modulo whitespace) any corpus
/// document — the plagiarism check.
pub fn is_verbatim_copy<S: AsRef<str>>(generated: &str, corpus: &[S]) -> bool {
    let norm = |s: &str| s.split_whitespace().collect::<Vec<_>>().join(" ");
    let g = norm(generated);
    corpus.iter().any(|d| norm(d.as_ref()) == g)
}

/// Longest contiguous token overlap between the generation and any corpus
/// document, as a fraction of the generation's length. High values flag
/// near-copies that `is_verbatim_copy` misses.
pub fn longest_copied_span_fraction<S: AsRef<str>>(generated: &str, corpus: &[S]) -> f64 {
    let g: Vec<&str> = generated.split_whitespace().collect();
    if g.is_empty() {
        return 0.0;
    }
    let mut best = 0usize;
    for doc in corpus {
        let d: Vec<&str> = doc.as_ref().split_whitespace().collect();
        best = best.max(longest_common_substring(&g, &d));
        if best == g.len() {
            break;
        }
    }
    best as f64 / g.len() as f64
}

/// Longest common contiguous subsequence length (token-level), O(|a|·|b|)
/// with a rolling row.
fn longest_common_substring(a: &[&str], b: &[&str]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut best = 0usize;
    for &ta in a {
        let mut cur = vec![0usize; b.len() + 1];
        for (j, &tb) in b.iter().enumerate() {
            if ta == tb {
                cur[j + 1] = prev[j] + 1;
                best = best.max(cur[j + 1]);
            }
        }
        prev = cur;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORPUS: &[&str] = &[
        "mix the flour and water until smooth",
        "bake the bread until golden brown",
    ];

    #[test]
    fn copy_has_zero_novelty() {
        let f = novel_ngram_fraction(CORPUS[0], CORPUS, 2);
        assert_eq!(f, 0.0);
        assert!(is_verbatim_copy(CORPUS[0], CORPUS));
    }

    #[test]
    fn fresh_text_is_fully_novel() {
        let f = novel_ngram_fraction("zz yy xx ww vv", CORPUS, 2);
        assert_eq!(f, 1.0);
        assert!(!is_verbatim_copy("zz yy xx", CORPUS));
    }

    #[test]
    fn recombination_is_partially_novel() {
        // reuses corpus bigrams but in a new combination
        let f = novel_ngram_fraction("mix the flour and bake", CORPUS, 2);
        assert!(f > 0.0 && f < 1.0, "{f}");
    }

    #[test]
    fn copied_span_detection() {
        let gen = "first mix the flour and water until smooth then rest";
        let frac = longest_copied_span_fraction(gen, CORPUS);
        // 7 of 10 tokens are a contiguous corpus span
        assert!((frac - 0.7).abs() < 1e-9, "{frac}");
    }

    #[test]
    fn whitespace_insensitive_copy_check() {
        assert!(is_verbatim_copy(
            "  mix   the flour and water until smooth ",
            CORPUS
        ));
    }

    #[test]
    fn lcs_reference() {
        assert_eq!(longest_common_substring(&["a", "b", "c"], &["x", "a", "b", "y"]), 2);
        assert_eq!(longest_common_substring(&[], &["a"]), 0);
        assert_eq!(longest_common_substring(&["q"], &["a"]), 0);
    }

    #[test]
    fn short_generation_edge_cases() {
        assert_eq!(novel_ngram_fraction("one", CORPUS, 2), 0.0);
        assert_eq!(longest_copied_span_fraction("", CORPUS), 0.0);
    }
}

//! BLEU (Papineni et al., 2002) with Chen & Cherry (2014) smoothing —
//! the metric behind Table I.
//!
//! Implementation notes:
//! * modified n-gram precision with per-reference clipping;
//! * geometric mean over orders 1..=4 (configurable);
//! * brevity penalty `exp(1 - r/c)` with the closest-reference-length
//!   convention;
//! * smoothing method 1 (add-epsilon on zero counts) so short candidates
//!   do not collapse the geometric mean to zero.

use ratatouille_util::collections::{det_map, DetMap};

/// Default maximum n-gram order.
pub const DEFAULT_MAX_N: usize = 4;

/// Sentence BLEU-4 of whitespace-tokenized `candidate` against one or
/// more `references`. Returns a value in `[0, 1]`.
pub fn sentence_bleu(candidate: &str, references: &[&str]) -> f64 {
    let cand: Vec<&str> = candidate.split_whitespace().collect();
    let refs: Vec<Vec<&str>> = references
        .iter()
        .map(|r| r.split_whitespace().collect())
        .collect();
    bleu_tokens(&cand, &refs, DEFAULT_MAX_N)
}

/// Corpus BLEU: aggregates n-gram statistics over all candidate/reference
/// pairs before combining (the standard corpus-level formulation — not a
/// mean of sentence scores).
pub fn corpus_bleu(pairs: &[(&str, Vec<&str>)]) -> f64 {
    corpus_bleu_n(pairs, DEFAULT_MAX_N)
}

/// Corpus BLEU with an explicit maximum order.
pub fn corpus_bleu_n(pairs: &[(&str, Vec<&str>)], max_n: usize) -> f64 {
    assert!(max_n >= 1, "max_n must be >= 1");
    if pairs.is_empty() {
        return 0.0;
    }
    let mut matched = vec![0usize; max_n];
    let mut total = vec![0usize; max_n];
    let mut cand_len = 0usize;
    let mut ref_len = 0usize;
    for (cand, refs) in pairs {
        let cand: Vec<&str> = cand.split_whitespace().collect();
        let refs: Vec<Vec<&str>> = refs.iter().map(|r| r.split_whitespace().collect()).collect();
        cand_len += cand.len();
        ref_len += closest_ref_len(cand.len(), &refs);
        for n in 1..=max_n {
            let (m, t) = clipped_matches(&cand, &refs, n);
            matched[n - 1] += m;
            total[n - 1] += t;
        }
    }
    combine(&matched, &total, cand_len, ref_len)
}

/// Token-level sentence BLEU.
pub fn bleu_tokens(cand: &[&str], refs: &[Vec<&str>], max_n: usize) -> f64 {
    assert!(max_n >= 1, "max_n must be >= 1");
    if cand.is_empty() || refs.is_empty() {
        return 0.0;
    }
    let mut matched = vec![0usize; max_n];
    let mut total = vec![0usize; max_n];
    for n in 1..=max_n {
        let (m, t) = clipped_matches(cand, refs, n);
        matched[n - 1] = m;
        total[n - 1] = t;
    }
    combine(&matched, &total, cand.len(), closest_ref_len(cand.len(), refs))
}

/// Geometric mean of smoothed precisions × brevity penalty.
fn combine(matched: &[usize], total: &[usize], cand_len: usize, ref_len: usize) -> f64 {
    if cand_len == 0 {
        return 0.0;
    }
    let mut log_sum = 0.0f64;
    let mut orders = 0usize;
    for (m, t) in matched.iter().zip(total) {
        if *t == 0 {
            // candidate shorter than this order — skip (NLTK convention)
            continue;
        }
        orders += 1;
        // Chen–Cherry smoothing 1: epsilon on zero matches.
        let p = if *m == 0 {
            0.1 / *t as f64
        } else {
            *m as f64 / *t as f64
        };
        // xlint: allow(accum-discipline): f64 sum over a fixed 4-order loop; the order never varies
        log_sum += p.ln();
    }
    if orders == 0 {
        return 0.0;
    }
    let geo = (log_sum / orders as f64).exp();
    let bp = if cand_len >= ref_len {
        1.0
    } else {
        (1.0 - ref_len as f64 / cand_len as f64).exp()
    };
    (geo * bp).clamp(0.0, 1.0)
}

/// Reference length closest to the candidate length (ties → shorter).
fn closest_ref_len(cand_len: usize, refs: &[Vec<&str>]) -> usize {
    refs.iter()
        .map(|r| r.len())
        .min_by_key(|&l| {
            let diff = l.abs_diff(cand_len);
            (diff, l)
        })
        .unwrap_or(0)
}

/// Clipped n-gram matches: `(matched, total)` for order `n`.
fn clipped_matches(cand: &[&str], refs: &[Vec<&str>], n: usize) -> (usize, usize) {
    if cand.len() < n {
        return (0, 0);
    }
    let cand_counts = ngram_counts(cand, n);
    // max reference count per n-gram across references
    let mut ref_max: DetMap<&[&str], usize> = det_map();
    for r in refs {
        if r.len() < n {
            continue;
        }
        for (gram, c) in ngram_counts(r, n) {
            let e = ref_max.entry(gram).or_insert(0);
            *e = (*e).max(c);
        }
    }
    let total: usize = cand.len() - n + 1;
    let matched: usize = cand_counts
        .iter()
        .map(|(gram, &c)| c.min(ref_max.get(gram).copied().unwrap_or(0)))
        .sum();
    (matched, total)
}

/// Count n-grams (as token-slice keys) in a token sequence.
fn ngram_counts<'a>(tokens: &'a [&'a str], n: usize) -> DetMap<&'a [&'a str], usize> {
    let mut counts = det_map();
    for w in tokens.windows(n) {
        *counts.entry(w).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_text_scores_one() {
        let s = "preheat the oven to 350 degrees and bake for 30 minutes";
        assert!((sentence_bleu(s, &[s]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_text_scores_near_zero() {
        let score = sentence_bleu("aa bb cc dd ee", &["vv ww xx yy zz"]);
        assert!(score < 0.05, "score {score}");
    }

    #[test]
    fn partial_overlap_is_between() {
        let cand = "mix the flour and sugar in a bowl";
        let reference = "mix the flour and water in a pot";
        let score = sentence_bleu(cand, &[reference]);
        assert!(score > 0.2 && score < 0.9, "score {score}");
    }

    #[test]
    fn clipping_penalizes_repetition() {
        // "the the the ..." must not get credit for each repeated "the".
        let score = sentence_bleu("the the the the the the the", &["the cat sat on the mat"]);
        assert!(score < 0.2, "score {score}");
    }

    #[test]
    fn brevity_penalty_applies() {
        let reference = "mix the flour and water until a smooth dough forms";
        let full = sentence_bleu(reference, &[reference]);
        let brief = sentence_bleu("mix the flour", &[reference]);
        assert!(brief < full);
        assert!(brief < 0.7, "short candidate must be penalized: {brief}");
    }

    #[test]
    fn multiple_references_take_best_overlap() {
        let cand = "simmer the soup for twenty minutes";
        let score_one = sentence_bleu(cand, &["boil the pasta until done"]);
        let score_two = sentence_bleu(
            cand,
            &["boil the pasta until done", "simmer the soup for thirty minutes"],
        );
        assert!(score_two > score_one);
    }

    #[test]
    fn bounded_zero_one() {
        for (c, r) in [
            ("a", "a"),
            ("a b", "b a"),
            ("", "a b c"),
            ("x y z", ""),
            ("a a a a", "a"),
        ] {
            let s = sentence_bleu(c, &[r]);
            assert!((0.0..=1.0).contains(&s), "bleu({c:?},{r:?}) = {s}");
        }
    }

    #[test]
    fn corpus_bleu_identical_is_one() {
        let pairs: Vec<(&str, Vec<&str>)> = vec![
            ("mix the dough well", vec!["mix the dough well"]),
            ("bake until golden brown", vec!["bake until golden brown"]),
        ];
        assert!((corpus_bleu(&pairs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn corpus_bleu_pools_statistics() {
        // One perfect and one disjoint sentence: corpus BLEU pools counts,
        // so the result is not the mean of sentence scores.
        let pairs: Vec<(&str, Vec<&str>)> = vec![
            ("mix the dough well today", vec!["mix the dough well today"]),
            ("qq ww ee rr tt", vec!["aa ss dd ff gg"]),
        ];
        let c = corpus_bleu(&pairs);
        assert!(c > 0.0 && c < 1.0);
        let mean = (1.0 + sentence_bleu("qq ww ee rr tt", &["aa ss dd ff gg"])) / 2.0;
        assert!((c - mean).abs() > 0.01, "corpus {c} vs mean {mean}");
    }

    #[test]
    fn short_candidates_dont_collapse_to_zero() {
        // 3-token candidate has no 4-grams; smoothing/skipping must keep
        // the score positive when unigrams match.
        let s = sentence_bleu("mix the flour", &["mix the flour thoroughly now"]);
        assert!(s > 0.0);
    }

    #[test]
    fn empty_corpus_is_zero() {
        assert_eq!(corpus_bleu(&[]), 0.0);
    }

    #[test]
    fn bleu1_equals_unigram_precision_when_long() {
        let cand = "a b c d";
        let refs = ["a b x y"];
        let s = corpus_bleu_n(&[(cand, refs.to_vec())], 1);
        // 2 of 4 unigrams match, lengths equal → bp = 1
        assert!((s - 0.5).abs() < 1e-9, "{s}");
    }

    // ---- hand-computed reference scores ------------------------------
    //
    // Each test derives the expected value from the BLEU definition by
    // hand (precisions, smoothing, brevity penalty) and pins the
    // implementation to it exactly.

    #[test]
    fn handcomputed_bleu2_geometric_mean() {
        // cand "a b c x" vs ref "a b c d":
        //   p1 = 3/4 (a, b, c match), p2 = 2/3 ("a b", "b c" match)
        //   equal lengths → bp = 1
        //   BLEU-2 = sqrt(3/4 · 2/3) = sqrt(1/2)
        let s = corpus_bleu_n(&[("a b c x", vec!["a b c d"])], 2);
        let expected = (0.75f64 * (2.0 / 3.0)).sqrt();
        assert!((s - expected).abs() < 1e-12, "{s} vs {expected}");
        assert!((s - 0.707_106_781_186_547_5).abs() < 1e-12);
    }

    #[test]
    fn handcomputed_brevity_penalty_exact() {
        // cand "a b" vs ref "a b c d" at max_n = 1:
        //   p1 = 2/2 = 1, cand_len 2 < ref_len 4
        //   bp = exp(1 - 4/2) = e^-1
        let s = corpus_bleu_n(&[("a b", vec!["a b c d"])], 1);
        let expected = (-1.0f64).exp();
        assert!((s - expected).abs() < 1e-12, "{s} vs {expected}");
        assert!((s - 0.367_879_441_171_442_33).abs() < 1e-12);
    }

    #[test]
    fn handcomputed_zero_overlap_smoothing() {
        // cand "a b c" vs ref "x y z", default max_n = 4:
        //   no order matches anything; 4-grams don't exist (skipped),
        //   smoothing 1 gives p_n = 0.1/total:
        //   p1 = 0.1/3, p2 = 0.1/2, p3 = 0.1/1
        //   BLEU = cbrt(1/30 · 1/20 · 1/10) = cbrt(1/6000), bp = 1
        let s = sentence_bleu("a b c", &["x y z"]);
        let expected = (1.0f64 / 6000.0).cbrt();
        assert!((s - expected).abs() < 1e-12, "{s} vs {expected}");
        assert!((s - 0.055_032_120_814_910_444).abs() < 1e-9);
    }

    #[test]
    fn handcomputed_clipping_exact() {
        // cand "the the the" vs ref "the cat":
        //   p1 clipped to 1/3 (ref has one "the"), p2 = 0.1/2, p3 = 0.1/1,
        //   no 4-grams (skipped); cand_len 3 ≥ ref_len 2 → bp = 1
        //   BLEU = cbrt(1/3 · 1/20 · 1/10) = cbrt(1/600)
        let s = sentence_bleu("the the the", &["the cat"]);
        let expected = (1.0f64 / 600.0).cbrt();
        assert!((s - expected).abs() < 1e-12, "{s} vs {expected}");
        assert!((s - 0.118_563_110_149_668_78).abs() < 1e-9);
    }

    #[test]
    fn handcomputed_multi_reference_closest_length() {
        // cand "a b c d e f" vs refs "a b c" (len 3) and "d e f g h i j"
        // (len 7):
        //   p1 = 6/6, p2 = 4/5 (ab, bc, de, ef), p3 = 2/4 (abc, def),
        //   p4 = 0.1/3 (no 4-gram matches → smoothed)
        //   closest ref length to 6 is 7 → bp = exp(1 - 7/6) = e^(-1/6)
        let s = sentence_bleu("a b c d e f", &["a b c", "d e f g h i j"]);
        let expected = (1.0f64 * 0.8 * 0.5 * (0.1 / 3.0)).powf(0.25) * (-1.0f64 / 6.0).exp();
        assert!((s - expected).abs() < 1e-12, "{s} vs {expected}");
    }
}

//! Aggregated evaluation reports (one row of Table I plus the
//! complementary metrics).

use std::fmt;

/// All metrics for one model on one evaluation set.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Model name ("Char-level LSTM", "GPT-2 medium", …).
    pub model: String,
    /// Corpus BLEU against held-out references (Table I's column).
    pub bleu: f64,
    /// Mean ROUGE-L F1 against held-out references.
    pub rouge_l: f64,
    /// Mean fraction of prompt ingredients used by the generation.
    pub ingredient_coverage: f64,
    /// Token perplexity on held-out text.
    pub perplexity: f64,
    /// Distinct-2 across generations.
    pub distinct_2: f64,
    /// Self-BLEU across generations.
    pub self_bleu: f64,
    /// Fraction of generations passing structural validation.
    pub structure_valid_rate: f64,
    /// Mean fraction of ingredient lines carrying quantities.
    pub quantity_coverage: f64,
    /// Fraction of generations that are verbatim training copies.
    pub copy_rate: f64,
    /// Mean per-recipe generation latency in milliseconds.
    pub gen_latency_ms: f64,
}

impl EvalReport {
    /// An empty report for `model` (all metrics zero / worst-case).
    pub fn new(model: impl Into<String>) -> Self {
        EvalReport {
            model: model.into(),
            bleu: 0.0,
            rouge_l: 0.0,
            ingredient_coverage: 0.0,
            perplexity: f64::INFINITY,
            distinct_2: 0.0,
            self_bleu: 0.0,
            structure_valid_rate: 0.0,
            quantity_coverage: 0.0,
            copy_rate: 0.0,
            gen_latency_ms: 0.0,
        }
    }
}

impl fmt::Display for EvalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model: {}", self.model)?;
        writeln!(f, "  BLEU:             {:.3}", self.bleu)?;
        writeln!(f, "  ROUGE-L:          {:.3}", self.rouge_l)?;
        writeln!(f, "  ingr coverage:    {:.1}%", self.ingredient_coverage * 100.0)?;
        writeln!(f, "  perplexity:       {:.2}", self.perplexity)?;
        writeln!(f, "  distinct-2:       {:.3}", self.distinct_2)?;
        writeln!(f, "  self-BLEU:        {:.3}", self.self_bleu)?;
        writeln!(f, "  structure valid:  {:.1}%", self.structure_valid_rate * 100.0)?;
        writeln!(f, "  qty coverage:     {:.1}%", self.quantity_coverage * 100.0)?;
        writeln!(f, "  copy rate:        {:.1}%", self.copy_rate * 100.0)?;
        writeln!(f, "  gen latency:      {:.1} ms", self.gen_latency_ms)
    }
}

/// Render several reports as the Table-I-style comparison table.
pub fn render_table(reports: &[EvalReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>8} {:>10} {:>10} {:>10} {:>8} {:>10}\n",
        "Model", "BLEU", "PPL", "Dist-2", "SelfBLEU", "Valid%", "Lat(ms)"
    ));
    out.push_str(&"-".repeat(80));
    out.push('\n');
    for r in reports {
        out.push_str(&format!(
            "{:<18} {:>8.3} {:>10.2} {:>10.3} {:>10.3} {:>8.1} {:>10.1}\n",
            r.model,
            r.bleu,
            r.perplexity,
            r.distinct_2,
            r.self_bleu,
            r.structure_valid_rate * 100.0,
            r.gen_latency_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_all_metrics() {
        let mut r = EvalReport::new("GPT-2 medium");
        r.bleu = 0.806;
        let s = r.to_string();
        assert!(s.contains("GPT-2 medium"));
        assert!(s.contains("0.806"));
        assert!(s.contains("perplexity"));
    }

    #[test]
    fn table_has_one_row_per_model() {
        let reports = vec![EvalReport::new("a"), EvalReport::new("b")];
        let t = render_table(&reports);
        assert_eq!(t.lines().count(), 2 + reports.len());
        assert!(t.contains("Model"));
    }

    #[test]
    fn new_is_worst_case() {
        let r = EvalReport::new("x");
        assert_eq!(r.bleu, 0.0);
        assert!(r.perplexity.is_infinite());
    }
}

//! Structural validation of generated tagged recipes.
//!
//! The paper's critique of RecipeGPT/RecipeNLG is that their generations
//! are "not well structured"; this validator makes structure a measurable
//! property: tags present, ordered and balanced, every section non-empty,
//! and ingredient lines carrying a parsable quantity + unit (the paper's
//! headline feature).

use ratatouille_tokenizers::special::*;

/// Outcome of validating one tagged recipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureReport {
    /// No errors at all.
    pub valid: bool,
    /// Human-readable error descriptions, in detection order.
    pub errors: Vec<String>,
    /// Parsed title (when recoverable).
    pub title: Option<String>,
    /// Parsed ingredient-line texts (when recoverable).
    pub ingredients: Vec<String>,
    /// Parsed instruction steps (when recoverable).
    pub instructions: Vec<String>,
    /// How many ingredient lines begin with a quantity token.
    pub quantified_ingredients: usize,
}

impl StructureReport {
    /// Fraction of ingredient lines that carry a quantity (1.0 when all).
    pub fn quantity_coverage(&self) -> f64 {
        if self.ingredients.is_empty() {
            return 0.0;
        }
        self.quantified_ingredients as f64 / self.ingredients.len() as f64
    }
}

/// Validate a tagged recipe string (the Fig. 2 / Fig. 5 format).
pub fn validate_tagged_recipe(text: &str) -> StructureReport {
    let mut errors = Vec::new();

    // Tag presence and global order.
    let order = [
        RECIPE_START,
        TITLE_START,
        TITLE_END,
        INGR_START,
        INGR_END,
        INSTR_START,
        INSTR_END,
        RECIPE_END,
    ];
    let mut last_pos = 0usize;
    for tag in order {
        match text.find(tag) {
            Some(pos) => {
                if pos < last_pos {
                    errors.push(format!("tag {tag} out of order"));
                }
                last_pos = pos;
            }
            None => errors.push(format!("missing tag {tag}")),
        }
    }

    let title = section(text, TITLE_START, TITLE_END).map(|s| s.trim().to_string());
    match &title {
        Some(t) if t.is_empty() => errors.push("empty title".to_string()),
        None => {}
        _ => {}
    }

    let ingredients: Vec<String> = section(text, INGR_START, INGR_END)
        .map(|s| {
            s.split(NEXT_INGR)
                .map(|x| decode_fractions(x).trim().to_string())
                .filter(|x| !x.is_empty())
                .collect()
        })
        .unwrap_or_default();
    if ingredients.is_empty() {
        errors.push("no ingredients".to_string());
    }

    let instructions: Vec<String> = section(text, INSTR_START, INSTR_END)
        .map(|s| {
            s.split(NEXT_INSTR)
                .map(|x| x.trim().to_string())
                .filter(|x| !x.is_empty())
                .collect()
        })
        .unwrap_or_default();
    if instructions.is_empty() {
        errors.push("no instructions".to_string());
    }

    // Quantity + unit check on each ingredient line.
    let mut quantified = 0usize;
    for line in &ingredients {
        if line_has_quantity(line) {
            quantified += 1;
        } else {
            errors.push(format!("ingredient line without quantity: `{line}`"));
        }
    }

    StructureReport {
        valid: errors.is_empty(),
        errors,
        title,
        ingredients,
        instructions,
        quantified_ingredients: quantified,
    }
}

/// Text between two tags, if both are present in order.
fn section<'a>(text: &'a str, start: &str, end: &str) -> Option<&'a str> {
    let s = text.find(start)? + start.len();
    let e = text[s..].find(end)? + s;
    Some(&text[s..e])
}

/// Does an ingredient line start with a number or fraction?
fn line_has_quantity(line: &str) -> bool {
    let first = match line.split_whitespace().next() {
        Some(f) => f,
        None => return false,
    };
    if first.chars().all(|c| c.is_ascii_digit()) && !first.is_empty() {
        return true;
    }
    if let Some((a, b)) = first.split_once('/') {
        return !a.is_empty()
            && !b.is_empty()
            && a.chars().all(|c| c.is_ascii_digit())
            && b.chars().all(|c| c.is_ascii_digit());
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> String {
        format!(
            "{RECIPE_START}{INPUT_START} flour {NEXT_INPUT} water {INPUT_END}\
             {TITLE_START} simple bread {TITLE_END}\
             {INGR_START} 2 cups flour {NEXT_INGR} <FRAC_1_2> cup water {INGR_END}\
             {INSTR_START} mix well {NEXT_INSTR} bake until done {INSTR_END}{RECIPE_END}"
        )
    }

    #[test]
    fn valid_recipe_passes() {
        let r = validate_tagged_recipe(&good());
        assert!(r.valid, "{:?}", r.errors);
        assert_eq!(r.title.as_deref(), Some("simple bread"));
        assert_eq!(r.ingredients.len(), 2);
        assert_eq!(r.instructions.len(), 2);
        assert_eq!(r.quantity_coverage(), 1.0);
    }

    #[test]
    fn fraction_tokens_count_as_quantities() {
        let r = validate_tagged_recipe(&good());
        assert_eq!(r.quantified_ingredients, 2);
        assert!(r.ingredients[1].starts_with("1/2"));
    }

    #[test]
    fn missing_tags_detected() {
        let text = good().replace(INSTR_END, "");
        let r = validate_tagged_recipe(&text);
        assert!(!r.valid);
        assert!(r.errors.iter().any(|e| e.contains(INSTR_END)));
    }

    #[test]
    fn out_of_order_tags_detected() {
        let text = format!(
            "{RECIPE_START}{INGR_START} 1 cup x {INGR_END}{TITLE_START} t {TITLE_END}\
             {INSTR_START} s {INSTR_END}{RECIPE_END}"
        );
        let r = validate_tagged_recipe(&text);
        assert!(!r.valid);
        assert!(r.errors.iter().any(|e| e.contains("out of order")), "{:?}", r.errors);
    }

    #[test]
    fn empty_sections_detected() {
        let text = good().replace(" mix well ", " ").replace(" bake until done ", " ");
        let r = validate_tagged_recipe(&text);
        assert!(!r.valid);
        assert!(r.errors.iter().any(|e| e == "no instructions"));
    }

    #[test]
    fn unquantified_ingredient_detected() {
        let text = good().replace(" 2 cups flour ", " some flour ");
        let r = validate_tagged_recipe(&text);
        assert!(!r.valid);
        assert!(r.errors.iter().any(|e| e.contains("without quantity")));
        assert!(r.quantity_coverage() < 1.0);
    }

    #[test]
    fn garbage_reports_many_errors_without_panicking() {
        let r = validate_tagged_recipe("complete nonsense");
        assert!(!r.valid);
        assert!(r.errors.len() >= 8);
    }

    #[test]
    fn quantity_detector() {
        assert!(line_has_quantity("2 cups flour"));
        assert!(line_has_quantity("1/2 cup water"));
        assert!(!line_has_quantity("flour"));
        assert!(!line_has_quantity(""));
        assert!(!line_has_quantity("a/2 cup"));
    }
}

//! Diversity metrics: distinct-n and self-BLEU.
//!
//! A model that copies one training recipe verbatim can score a high BLEU
//! while being useless as a *novel* recipe generator; these metrics make
//! that failure mode visible (used by the sampling-strategy ablation).

use ratatouille_util::collections::{det_set, DetSet};

use crate::bleu::sentence_bleu;

/// Distinct-n (Li et al., 2016): unique n-grams / total n-grams across a
/// set of generations. 1.0 = every n-gram unique; → 0 as text degenerates
/// into repetition.
pub fn distinct_n<S: AsRef<str>>(texts: &[S], n: usize) -> f64 {
    assert!(n >= 1, "n must be >= 1");
    let mut unique: DetSet<Vec<&str>> = det_set();
    let mut total = 0usize;
    for t in texts {
        let tokens: Vec<&str> = t.as_ref().split_whitespace().collect();
        if tokens.len() < n {
            continue;
        }
        for w in tokens.windows(n) {
            total += 1;
            unique.insert(w.to_vec());
        }
    }
    if total == 0 {
        0.0
    } else {
        unique.len() as f64 / total as f64
    }
}

/// Self-BLEU (Zhu et al., 2018): mean BLEU of each generation against all
/// the others. High self-BLEU = the model generates near-identical
/// outputs (mode collapse).
pub fn self_bleu<S: AsRef<str>>(texts: &[S]) -> f64 {
    if texts.len() < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    for (i, t) in texts.iter().enumerate() {
        let others: Vec<&str> = texts
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, o)| o.as_ref())
            .collect();
        // xlint: allow(accum-discipline): f64 sum in corpus index order; iteration strategy is fixed
        sum += sentence_bleu(t.as_ref(), &others);
    }
    sum / texts.len() as f64
}

/// Mean token length of a set of generations.
pub fn mean_length<S: AsRef<str>>(texts: &[S]) -> f64 {
    if texts.is_empty() {
        return 0.0;
    }
    texts
        .iter()
        .map(|t| t.as_ref().split_whitespace().count() as f64)
        .sum::<f64>()
        / texts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_1_reference() {
        // "a b a" → unigrams a,b,a: 2 unique / 3 total
        let d = distinct_n(&["a b a"], 1);
        assert!((d - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn all_identical_has_low_distinct() {
        let texts = vec!["mix the dough"; 20];
        let d = distinct_n(&texts, 2);
        // 2 unique bigrams over 40 occurrences
        assert!(d <= 0.05 + 1e-9, "{d}");
    }

    #[test]
    fn all_unique_has_high_distinct() {
        let texts: Vec<String> = (0..20).map(|i| format!("token{i} word{i} item{i}")).collect();
        let d = distinct_n(&texts, 2);
        assert!((d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn self_bleu_extremes() {
        let same = vec!["mix the flour and water well"; 5];
        assert!(self_bleu(&same) > 0.99);
        let diff = vec![
            "aa bb cc dd ee",
            "ff gg hh ii jj",
            "kk ll mm nn oo",
        ];
        assert!(self_bleu(&diff) < 0.05);
        assert_eq!(self_bleu(&["only one"]), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(distinct_n(&Vec::<String>::new(), 2), 0.0);
        assert_eq!(mean_length(&Vec::<String>::new()), 0.0);
    }

    #[test]
    fn mean_length_reference() {
        assert_eq!(mean_length(&["a b", "a b c d"]), 3.0);
    }
}

//! ROUGE-L: longest-common-subsequence recall/precision/F — the standard
//! companion to BLEU for generation tasks (RecipeGPT reports it), used by
//! the extended evaluation harness.

/// ROUGE-L scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RougeL {
    /// LCS length / reference length.
    pub recall: f64,
    /// LCS length / candidate length.
    pub precision: f64,
    /// Harmonic mean (β = 1).
    pub f1: f64,
}

/// ROUGE-L of whitespace-tokenized candidate vs reference.
pub fn rouge_l(candidate: &str, reference: &str) -> RougeL {
    let c: Vec<&str> = candidate.split_whitespace().collect();
    let r: Vec<&str> = reference.split_whitespace().collect();
    if c.is_empty() || r.is_empty() {
        return RougeL {
            recall: 0.0,
            precision: 0.0,
            f1: 0.0,
        };
    }
    let lcs = lcs_len(&c, &r) as f64;
    let recall = lcs / r.len() as f64;
    let precision = lcs / c.len() as f64;
    let f1 = if recall + precision == 0.0 {
        0.0
    } else {
        2.0 * recall * precision / (recall + precision)
    };
    RougeL {
        recall,
        precision,
        f1,
    }
}

/// Mean ROUGE-L F1 over candidate/reference pairs.
pub fn corpus_rouge_l(pairs: &[(&str, &str)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().map(|(c, r)| rouge_l(c, r).f1).sum::<f64>() / pairs.len() as f64
}

/// Longest common subsequence length (classic DP with a rolling row).
fn lcs_len(a: &[&str], b: &[&str]) -> usize {
    let mut prev = vec![0usize; b.len() + 1];
    for &ta in a {
        let mut cur = vec![0usize; b.len() + 1];
        for (j, &tb) in b.iter().enumerate() {
            cur[j + 1] = if ta == tb {
                prev[j] + 1
            } else {
                cur[j].max(prev[j + 1])
            };
        }
        prev = cur;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_one() {
        let s = "mix the flour and water";
        let r = rouge_l(s, s);
        assert!((r.f1 - 1.0).abs() < 1e-9);
        assert!((r.recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_is_zero() {
        let r = rouge_l("aa bb cc", "xx yy zz");
        assert_eq!(r.f1, 0.0);
    }

    #[test]
    fn subsequence_not_substring() {
        // LCS tolerates gaps: "mix flour" vs "mix the flour" share the
        // subsequence [mix, flour] (length 2).
        let r = rouge_l("mix flour", "mix the flour");
        assert!((r.precision - 1.0).abs() < 1e-9);
        assert!((r.recall - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lcs_reference_values() {
        assert_eq!(lcs_len(&["a", "b", "c", "d"], &["b", "d"]), 2);
        assert_eq!(lcs_len(&["a"], &[]), 0);
        assert_eq!(lcs_len(&["x", "a", "y", "b"], &["a", "b"]), 2);
    }

    #[test]
    fn corpus_mean() {
        let s1 = "a b c";
        let pairs = vec![(s1, s1), ("q q q", "z z z")];
        let m = corpus_rouge_l(&pairs);
        assert!((m - 0.5).abs() < 1e-9);
        assert_eq!(corpus_rouge_l(&[]), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(rouge_l("", "a b").f1, 0.0);
        assert_eq!(rouge_l("a b", "").f1, 0.0);
    }
}

//! Ingredient-coverage metrics: does the generated recipe actually *use*
//! what the user asked for? (The paper's related-work critique: earlier
//! models "lacked context and dismissed the inputs from the user".)

/// Coverage of requested ingredients in a generated recipe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageReport {
    /// Fraction of requested ingredients that appear in the generated
    /// ingredient list.
    pub in_ingredient_list: f64,
    /// Fraction of requested ingredients mentioned anywhere in the
    /// instructions.
    pub in_instructions: f64,
    /// Fraction of generated ingredient lines that were *not* requested
    /// (the model's additions — not wrong, but reported).
    pub extraneous: f64,
}

/// Compute coverage of `requested` ingredients against a generation's
/// ingredient lines and instruction steps. Matching is
/// case-insensitive substring (so "2 cups flour" covers "flour").
pub fn ingredient_coverage(
    requested: &[String],
    ingredient_lines: &[String],
    instructions: &[String],
) -> CoverageReport {
    if requested.is_empty() {
        return CoverageReport {
            in_ingredient_list: 1.0,
            in_instructions: 1.0,
            extraneous: 0.0,
        };
    }
    let lines_lc: Vec<String> = ingredient_lines.iter().map(|s| s.to_lowercase()).collect();
    let steps_lc: Vec<String> = instructions.iter().map(|s| s.to_lowercase()).collect();
    let mut in_list = 0usize;
    let mut in_steps = 0usize;
    for want in requested {
        let w = want.to_lowercase();
        if lines_lc.iter().any(|l| l.contains(&w)) {
            in_list += 1;
        }
        if steps_lc.iter().any(|s| s.contains(&w)) {
            in_steps += 1;
        }
    }
    let extraneous = if ingredient_lines.is_empty() {
        0.0
    } else {
        let requested_lc: Vec<String> = requested.iter().map(|s| s.to_lowercase()).collect();
        let unrequested = lines_lc
            .iter()
            .filter(|l| !requested_lc.iter().any(|w| l.contains(w.as_str())))
            .count();
        unrequested as f64 / ingredient_lines.len() as f64
    };
    CoverageReport {
        in_ingredient_list: in_list as f64 / requested.len() as f64,
        in_instructions: in_steps as f64 / requested.len() as f64,
        extraneous,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn full_coverage() {
        let r = ingredient_coverage(
            &s(&["flour", "water"]),
            &s(&["2 cups flour", "1 cup water"]),
            &s(&["mix the flour and water"]),
        );
        assert_eq!(r.in_ingredient_list, 1.0);
        assert_eq!(r.in_instructions, 1.0);
        assert_eq!(r.extraneous, 0.0);
    }

    #[test]
    fn partial_coverage_and_extras() {
        let r = ingredient_coverage(
            &s(&["flour", "saffron"]),
            &s(&["2 cups flour", "1 teaspoon salt"]),
            &s(&["mix the flour"]),
        );
        assert_eq!(r.in_ingredient_list, 0.5);
        assert_eq!(r.in_instructions, 0.5);
        assert_eq!(r.extraneous, 0.5); // salt was not requested
    }

    #[test]
    fn case_insensitive() {
        let r = ingredient_coverage(
            &s(&["Soy Sauce"]),
            &s(&["3 tablespoons soy sauce"]),
            &s(&[]),
        );
        assert_eq!(r.in_ingredient_list, 1.0);
    }

    #[test]
    fn empty_request_is_trivially_covered() {
        let r = ingredient_coverage(&[], &s(&["1 cup x"]), &[]);
        assert_eq!(r.in_ingredient_list, 1.0);
        assert_eq!(r.extraneous, 0.0);
    }

    #[test]
    fn ignored_inputs_detected() {
        // the failure mode the paper complains about: model ignores input
        let r = ingredient_coverage(
            &s(&["lentils", "cumin"]),
            &s(&["1 cup chocolate"]),
            &s(&["bake the cake"]),
        );
        assert_eq!(r.in_ingredient_list, 0.0);
        assert_eq!(r.in_instructions, 0.0);
        assert_eq!(r.extraneous, 1.0);
    }
}

//! Statistical confidence for reproduction claims: paired bootstrap
//! resampling over evaluation pairs (Koehn, 2004) — the standard way to
//! decide whether "model A's BLEU > model B's BLEU" is signal or noise at
//! the Table-I sample sizes.

use crate::bleu::corpus_bleu;

/// A deterministic xorshift RNG (no `rand` dependency in this crate; the
/// generator quality needed for bootstrap index sampling is modest).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the full set.
    pub point: f64,
    /// Lower bound (percentile).
    pub lo: f64,
    /// Upper bound (percentile).
    pub hi: f64,
}

/// Bootstrap a 95% CI for corpus BLEU over candidate/reference pairs.
pub fn bleu_confidence(
    pairs: &[(&str, Vec<&str>)],
    resamples: usize,
    seed: u64,
) -> ConfidenceInterval {
    let point = corpus_bleu(pairs);
    if pairs.len() < 2 || resamples == 0 {
        return ConfidenceInterval {
            point,
            lo: point,
            hi: point,
        };
    }
    let mut rng = XorShift(seed | 1);
    let mut scores: Vec<f64> = (0..resamples)
        .map(|_| {
            let sample: Vec<(&str, Vec<&str>)> = (0..pairs.len())
                .map(|_| {
                    let (c, r) = &pairs[rng.below(pairs.len())];
                    (*c, r.clone())
                })
                .collect();
            corpus_bleu(&sample)
        })
        .collect();
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let lo = scores[(resamples as f64 * 0.025) as usize];
    let hi = scores[((resamples as f64 * 0.975) as usize).min(resamples - 1)];
    ConfidenceInterval { point, lo, hi }
}

/// Paired bootstrap test: fraction of resamples where system A's corpus
/// BLEU beats system B's on the *same* resampled evaluation subset.
/// Values near 1.0 mean A's advantage is robust (p ≈ 1 − returned value).
pub fn paired_bootstrap_win_rate(
    a_pairs: &[(&str, Vec<&str>)],
    b_pairs: &[(&str, Vec<&str>)],
    resamples: usize,
    seed: u64,
) -> f64 {
    assert_eq!(
        a_pairs.len(),
        b_pairs.len(),
        "paired test needs aligned evaluation sets"
    );
    if a_pairs.is_empty() || resamples == 0 {
        return 0.5;
    }
    let mut rng = XorShift(seed | 1);
    let mut wins = 0usize;
    for _ in 0..resamples {
        let idx: Vec<usize> = (0..a_pairs.len()).map(|_| rng.below(a_pairs.len())).collect();
        let sample = |pairs: &[(&str, Vec<&str>)]| -> f64 {
            let s: Vec<(&str, Vec<&str>)> =
                idx.iter().map(|&i| (pairs[i].0, pairs[i].1.clone())).collect();
            corpus_bleu(&s)
        };
        if sample(a_pairs) > sample(b_pairs) {
            wins += 1;
        }
    }
    wins as f64 / resamples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs_of(texts: &[(&'static str, &'static str)]) -> Vec<(&'static str, Vec<&'static str>)> {
        texts.iter().map(|&(c, r)| (c, vec![r])).collect()
    }

    #[test]
    fn ci_contains_point_estimate() {
        let pairs = pairs_of(&[
            ("mix the dough well", "mix the dough well"),
            ("bake until golden", "bake until brown"),
            ("chill and serve cold", "chill and serve"),
            ("boil the pasta now", "boil the rice now"),
        ]);
        let ci = bleu_confidence(&pairs, 200, 7);
        assert!(ci.lo <= ci.point + 1e-9, "{ci:?}");
        assert!(ci.hi >= ci.point - 1e-9, "{ci:?}");
        assert!(ci.lo < ci.hi, "degenerate CI {ci:?}");
    }

    #[test]
    fn identical_systems_split_evenly() {
        let pairs = pairs_of(&[
            ("a b c d", "a b x d"),
            ("e f g h", "e f g z"),
            ("i j k l", "i q k l"),
        ]);
        let rate = paired_bootstrap_win_rate(&pairs, &pairs, 200, 3);
        // ties are not wins, so identical systems give exactly 0.0 wins
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn clearly_better_system_wins_almost_always() {
        let good = pairs_of(&[
            ("mix the dough well today", "mix the dough well today"),
            ("bake until golden brown ok", "bake until golden brown ok"),
            ("serve with fresh basil now", "serve with fresh basil now"),
            ("boil the pasta until done", "boil the pasta until done"),
        ]);
        let bad = pairs_of(&[
            ("qq ww ee rr tt", "mix the dough well today"),
            ("yy uu ii oo pp", "bake until golden brown ok"),
            ("aa ss dd ff gg", "serve with fresh basil now"),
            ("zz xx cc vv bb", "boil the pasta until done"),
        ]);
        let rate = paired_bootstrap_win_rate(&good, &bad, 300, 11);
        assert!(rate > 0.99, "win rate {rate}");
    }

    #[test]
    fn deterministic_given_seed() {
        let pairs = pairs_of(&[("a b c", "a b d"), ("e f g", "e f g")]);
        let a = bleu_confidence(&pairs, 100, 42);
        let b = bleu_confidence(&pairs, 100, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs() {
        let one = pairs_of(&[("a b", "a b")]);
        let ci = bleu_confidence(&one, 100, 1);
        assert_eq!(ci.lo, ci.point);
        assert_eq!(paired_bootstrap_win_rate(&[], &[], 10, 1), 0.5);
    }
}

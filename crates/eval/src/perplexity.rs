//! Perplexity: `exp(mean token NLL)` — the language-modeling metric the
//! Recipe1M+ line of work reports alongside BLEU.

/// Perplexity from per-token negative log-likelihoods (natural log).
///
/// Returns `f64::INFINITY` for empty input (no evidence) and propagates
/// infinite NLLs (a zero-probability token).
pub fn perplexity_from_nll(nlls: &[f32]) -> f64 {
    if nlls.is_empty() {
        return f64::INFINITY;
    }
    let mean = nlls.iter().map(|&v| v as f64).sum::<f64>() / nlls.len() as f64;
    mean.exp()
}

/// Perplexity of a uniform distribution over `vocab` outcomes — the
/// untrained-model baseline every trained model must beat.
pub fn uniform_perplexity(vocab: usize) -> f64 {
    vocab as f64
}

/// Bits-per-token from per-token NLLs (natural log → bits).
pub fn bits_per_token(nlls: &[f32]) -> f64 {
    if nlls.is_empty() {
        return f64::INFINITY;
    }
    let mean = nlls.iter().map(|&v| v as f64).sum::<f64>() / nlls.len() as f64;
    mean / std::f64::consts::LN_2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_reference() {
        // NLL of uniform over V outcomes is ln V per token.
        let v = 100usize;
        let nll = (v as f32).ln();
        let ppl = perplexity_from_nll(&[nll; 10]);
        assert!((ppl - uniform_perplexity(v)).abs() < 0.01, "{ppl}");
    }

    #[test]
    fn certain_model_has_perplexity_one() {
        let ppl = perplexity_from_nll(&[0.0; 5]);
        assert!((ppl - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_is_infinite() {
        assert!(perplexity_from_nll(&[]).is_infinite());
    }

    #[test]
    fn bits_per_token_reference() {
        // ln 2 nats per token = 1 bit per token
        let b = bits_per_token(&[std::f32::consts::LN_2; 4]);
        assert!((b - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lower_nll_means_lower_perplexity() {
        assert!(perplexity_from_nll(&[1.0; 8]) < perplexity_from_nll(&[2.0; 8]));
    }
}

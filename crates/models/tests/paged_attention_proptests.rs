//! The parallel paged-attention determinism contract, pinned at the
//! engine level: every batch composition's token streams are
//! **byte-identical** across worker thread counts {1, 2, 3, 4, 7} and
//! across execution modes (the pool-parallel sweep vs the serial
//! row-at-a-time reference loop).
//!
//! Thread count and attention mode are process-wide knobs, so the whole
//! matrix lives in one `#[test]` — the harness cannot interleave another
//! test of this binary mid-sweep — and the knobs are restored at the
//! end.

use ratatouille_models::batch::{BatchEngineConfig, BatchGenerator, BatchRequest};
use ratatouille_models::gpt2::{Gpt2Config, Gpt2Lm};
use ratatouille_models::lm::InferenceModel;
use ratatouille_models::sample::SamplerConfig;
use ratatouille_models::transformer::{set_attention_mode, AttentionMode};
use ratatouille_tensor::par;

fn tiny() -> Gpt2Lm {
    Gpt2Lm::new(Gpt2Config {
        name: "tiny-paged".into(),
        vocab: 16,
        d_model: 16, // % 16 == 0 → batch_ready
        n_heads: 2,
        n_layers: 2,
        d_ff: 32, // % 16 == 0
        max_t: 64,
        dropout: 0.0,
        seed: 5,
    })
}

fn engine_cfg(prefix_cap: usize) -> BatchEngineConfig {
    BatchEngineConfig {
        block_tokens: 4, // small so short prompts still span full blocks
        num_blocks: 96,
        max_batch: 8,
        prefix_cap,
    }
}

fn sampled(max_tokens: usize) -> SamplerConfig {
    SamplerConfig {
        max_tokens,
        temperature: 0.9,
        top_k: 0,
        top_p: 1.0,
        stop_token: None,
        greedy: false,
    }
}

fn req(prompt: &[u32], seed: u64, cfg: &SamplerConfig) -> BatchRequest {
    BatchRequest {
        prompt: prompt.to_vec(),
        sampler: cfg.clone(),
        seed,
    }
}

/// Admit `reqs` together into a fresh engine and decode all of them.
fn decode_together(model: &Gpt2Lm, prefix_cap: usize, reqs: &[BatchRequest]) -> Vec<Vec<u32>> {
    let bm = model.batch_model().expect("tiny config is batch-ready");
    let mut engine = BatchGenerator::new(bm, engine_cfg(prefix_cap));
    let ids: Vec<u64> = reqs
        .iter()
        .map(|r| engine.admit(r.clone()).expect("pool sized for the batch"))
        .collect();
    let mut out: Vec<Option<Vec<u32>>> = vec![None; ids.len()];
    while out.iter().any(Option::is_none) {
        let step = engine.step(bm).expect("reserved at admission");
        assert!(step.batch_size > 0, "engine idled with sequences pending");
        for f in step.finished {
            let slot = ids.iter().position(|&id| id == f.id).expect("known id");
            out[slot] = Some(f.tokens);
        }
    }
    out.into_iter().map(Option::unwrap).collect()
}

/// One pass over every batch composition the contract names. Returns all
/// produced streams (in a fixed order) and asserts the *internal* half of
/// the contract: batched, late-admitted and prefix-adopted streams all
/// equal their solo twins under the current thread count/mode.
fn run_compositions(model: &Gpt2Lm, prompts: &[Vec<u32>], cfg: &SamplerConfig) -> Vec<Vec<u32>> {
    let bm = model.batch_model().expect("tiny config is batch-ready");
    let mut all = Vec::new();

    // Solo baselines, one engine each.
    let solos: Vec<Vec<u32>> = prompts
        .iter()
        .enumerate()
        .map(|(i, p)| decode_together(model, 0, &[req(p, 100 + i as u64, cfg)]).remove(0))
        .collect();

    // Batch-of-2 and batch-of-7.
    for batch in [2usize, 7] {
        let reqs: Vec<BatchRequest> = prompts[..batch]
            .iter()
            .enumerate()
            .map(|(i, p)| req(p, 100 + i as u64, cfg))
            .collect();
        let streams = decode_together(model, 0, &reqs);
        for (i, s) in streams.iter().enumerate() {
            assert_eq!(s, &solos[i], "request {i} diverged in a batch of {batch}");
        }
        all.extend(streams);
    }

    // Mid-decode admission: prompt 0 decodes alone past its prefill,
    // then prompt 1 joins the running batch.
    {
        let mut engine = BatchGenerator::new(bm, engine_cfg(0));
        let a = engine.admit(req(&prompts[0], 100, cfg)).expect("admit A");
        for _ in 0..8 {
            let out = engine.step(bm).expect("pool sized");
            assert!(out.finished.is_empty(), "A finished before B was admitted");
        }
        let b = engine.admit(req(&prompts[1], 101, cfg)).expect("admit B");
        let mut streams = [None, None];
        while streams.iter().any(Option::is_none) {
            for f in engine.step(bm).expect("pool sized").finished {
                if f.id == a {
                    streams[0] = Some(f.tokens);
                } else {
                    assert_eq!(f.id, b, "unknown sequence finished");
                    streams[1] = Some(f.tokens);
                }
            }
        }
        let [sa, sb] = streams.map(Option::unwrap);
        assert_eq!(sa, solos[0], "late arrival perturbed the running sequence");
        assert_eq!(sb, solos[1], "joining a running batch perturbed the arrival");
        all.push(sa);
        all.push(sb);
    }

    // Shared-prefix adoption: the same prompt twice through one engine;
    // the second admission decodes from adopted cached blocks.
    {
        let mut engine = BatchGenerator::new(bm, engine_cfg(8));
        let first = engine.admit(req(&prompts[0], 100, cfg)).expect("admit");
        let s1 = engine.run_to_completion(bm, first).expect("decode");
        let second = engine.admit(req(&prompts[0], 100, cfg)).expect("admit");
        let s2 = engine.run_to_completion(bm, second).expect("decode");
        assert_eq!(s1, solos[0], "prefix registration changed the stream");
        assert_eq!(s2, solos[0], "adopted prefix blocks changed the stream");
        all.push(s1);
        all.push(s2);
    }

    all.extend(solos);
    all
}

#[test]
fn streams_are_bit_identical_across_thread_counts_modes_and_compositions() {
    let model = tiny();
    let cfg = sampled(12);
    // Seven prompts with distinct contents, lengths and seeds; lengths
    // straddle the 4-token block size so prefill crosses block bounds.
    let prompts: Vec<Vec<u32>> = (0..7u32)
        .map(|i| (0..(3 + i as usize)).map(|t| (2 + i + t as u32) % 16).collect())
        .collect();

    // Reference: the serial row-at-a-time loop (the pre-sweep code path)
    // on one thread.
    set_attention_mode(AttentionMode::Serial);
    par::set_num_threads(1);
    let reference = run_compositions(&model, &prompts, &cfg);

    // The sweep must reproduce it byte for byte at every thread count —
    // including counts exceeding the batch size (7 threads, batch 2).
    set_attention_mode(AttentionMode::Sweep);
    for threads in [1usize, 2, 3, 4, 7] {
        par::set_num_threads(threads);
        let got = run_compositions(&model, &prompts, &cfg);
        assert_eq!(
            got, reference,
            "sweep streams diverged from the serial reference at {threads} threads"
        );
    }

    // And the serial mode itself is thread-count-blind (it never touches
    // the pool for attention; GEMM chunking is already invariant).
    set_attention_mode(AttentionMode::Serial);
    par::set_num_threads(4);
    let serial4 = run_compositions(&model, &prompts, &cfg);
    assert_eq!(serial4, reference, "serial mode diverged at 4 threads");

    // Restore the process-wide defaults.
    set_attention_mode(AttentionMode::Sweep);
    par::set_num_threads(0);
}

//! Property tests for the blocked KV-cache allocator: for ANY sequence
//! of reserve/write/fork/adopt/cache operations the pool's refcounts
//! must equal the number of live owners of each block, no block may
//! leak, and no valid sequence may double-free (a double free panics
//! inside `BlockPool::release`, failing the property).
//!
//! The shadow model is deliberately thin: ownership is *derived* from
//! the live sequence tables plus a replicated FIFO prefix-cache, so
//! copy-on-write divergence, prefix sharing and eviction are all checked
//! against ground truth rather than re-implemented.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use ratatouille_util::proptest::prelude::*;
use ratatouille_models::kv_block::{BlockConfig, BlockPool, PrefixCache, SeqKv};

const LAYERS: usize = 2;
const D: usize = 4;
const BLOCK_TOKENS: usize = 4;
const NUM_BLOCKS: usize = 24;
const CACHE_CAP: usize = 3;

fn cfg() -> BlockConfig {
    BlockConfig {
        layers: LAYERS,
        d: D,
        block_tokens: BLOCK_TOKENS,
        num_blocks: NUM_BLOCKS,
    }
}

/// One step of the random schedule. Selector fields are reduced modulo
/// the live state, so every generated value is applicable.
#[derive(Debug, Clone)]
enum Op {
    /// Start a sequence reserving capacity for `tokens`.
    New { tokens: usize },
    /// Append one committed token to sequence `sel` (CoW if shared).
    Write { sel: usize, token: u8 },
    /// Fork sequence `sel` (all blocks become shared).
    Fork { sel: usize },
    /// Grow sequence `sel`'s reservation by `extra` tokens.
    Grow { sel: usize, extra: usize },
    /// Release sequence `sel` entirely.
    Release { sel: usize },
    /// Register sequence `sel`'s tokens as a cached prefix.
    CacheInsert { sel: usize },
    /// Look up sequence `sel`'s tokens; adopt the hit into a new
    /// sequence or release it immediately.
    CacheLookup { sel: usize, adopt: bool },
    /// Drop every cache entry.
    CacheClear,
}

/// The harness has no `prop_oneof`; encode an op as a flat tuple and
/// decode. Writes are weighted heavier (kinds 1–3) so schedules spend
/// most steps growing sequences across block boundaries.
fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..10, 0usize..8, 1usize..20, any::<bool>()).prop_map(|(kind, sel, val, flag)| {
        match kind {
            0 => Op::New { tokens: val },
            1 | 2 | 3 => Op::Write {
                sel,
                token: (val % 4) as u8,
            },
            4 => Op::Fork { sel },
            5 => Op::Grow {
                sel,
                extra: 1 + val % 7,
            },
            6 => Op::Release { sel },
            7 => Op::CacheInsert { sel },
            8 => Op::CacheLookup { sel, adopt: flag },
            _ => Op::CacheClear,
        }
    })
}

/// A live sequence plus the tokens "written" into it (the cache key).
struct LiveSeq {
    seq: SeqKv,
    tokens: Vec<u32>,
}

/// The replicated prefix-cache bookkeeping: (key, blocks) in FIFO
/// order, capacity `CACHE_CAP` — mirrors `PrefixCache::insert` exactly
/// so ownership can be derived without reaching into its internals.
struct ShadowCache {
    entries: VecDeque<(Vec<u32>, Vec<u32>)>,
}

impl ShadowCache {
    fn insert(&mut self, key: Vec<u32>, blocks: Vec<u32>) -> bool {
        if self.entries.iter().any(|(k, _)| *k == key) {
            return false;
        }
        self.entries.push_back((key, blocks));
        self.entries.len() > CACHE_CAP
    }
}

/// The invariant: every block's refcount equals its number of live
/// owners (sequence-table slots + cache entries), and the free count is
/// exactly the unowned remainder.
fn check_ownership(pool: &BlockPool, seqs: &[LiveSeq], shadow: &ShadowCache) {
    let mut owners: BTreeMap<u32, u32> = BTreeMap::new();
    for ls in seqs {
        for &b in ls.seq.table() {
            *owners.entry(b).or_insert(0) += 1;
        }
    }
    for (_, blocks) in &shadow.entries {
        for &b in blocks {
            *owners.entry(b).or_insert(0) += 1;
        }
    }
    for b in 0..NUM_BLOCKS as u32 {
        let expected = owners.get(&b).copied().unwrap_or(0);
        assert_eq!(
            pool.refcount(b),
            expected,
            "block {b}: refcount diverged from live ownership"
        );
    }
    assert_eq!(
        pool.free_blocks(),
        NUM_BLOCKS - owners.len(),
        "free-list size diverged from unowned block count"
    );
}

fn write_one(pool: &mut BlockPool, ls: &mut LiveSeq, token: u8) {
    if ls.seq.len() >= ls.seq.capacity() {
        return; // out of reserved room; Grow must come first
    }
    if ls.seq.prepare_write(pool).is_err() {
        return; // CoW needed a block and the pool is empty — valid no-op
    }
    let fill = [token as f32; D];
    for layer in 0..LAYERS {
        ls.seq.write(pool, layer, &fill, &fill);
    }
    ls.seq.commit();
    ls.tokens.push(token as u32);
}

proptest! {
    cases = 48;

    /// Exact refcounts, no leaks, no double-free, for any op schedule.
    #[test]
    fn allocator_ownership_is_exact(ops in collection::vec(op_strategy(), 1..60)) {
        let mut pool = BlockPool::new(cfg());
        let mut cache = PrefixCache::new(CACHE_CAP);
        let mut seqs: Vec<LiveSeq> = Vec::new();
        let mut shadow = ShadowCache { entries: VecDeque::new() };

        for op in ops {
            match op {
                Op::New { tokens } => {
                    let mut seq = SeqKv::new();
                    if seq.reserve_for(&mut pool, tokens).is_ok() {
                        seqs.push(LiveSeq { seq, tokens: Vec::new() });
                    } else {
                        // All-or-nothing: a failed reservation must
                        // leave nothing behind.
                        prop_assert!(seq.table().is_empty());
                    }
                }
                Op::Write { sel, token } => {
                    if !seqs.is_empty() {
                        let i = sel % seqs.len();
                        write_one(&mut pool, &mut seqs[i], token);
                    }
                }
                Op::Fork { sel } => {
                    if !seqs.is_empty() {
                        let i = sel % seqs.len();
                        let forked = seqs[i].seq.fork(&mut pool);
                        let tokens = seqs[i].tokens.clone();
                        seqs.push(LiveSeq { seq: forked, tokens });
                    }
                }
                Op::Grow { sel, extra } => {
                    if !seqs.is_empty() {
                        let i = sel % seqs.len();
                        let want = seqs[i].seq.len() + extra;
                        let _ = seqs[i].seq.reserve_for(&mut pool, want);
                    }
                }
                Op::Release { sel } => {
                    if !seqs.is_empty() {
                        let i = sel % seqs.len();
                        let mut ls = seqs.swap_remove(i);
                        ls.seq.release_all(&mut pool);
                        prop_assert!(ls.seq.table().is_empty());
                    }
                }
                Op::CacheInsert { sel } => {
                    if !seqs.is_empty() {
                        let i = sel % seqs.len();
                        let ls = &seqs[i];
                        let full = ls.tokens.len() / BLOCK_TOKENS;
                        cache.insert(&mut pool, &ls.tokens, &ls.seq);
                        if full > 0 {
                            let key = ls.tokens[..full * BLOCK_TOKENS].to_vec();
                            let blocks = ls.seq.table()[..full].to_vec();
                            shadow.insert(key, blocks);
                            while shadow.entries.len() > CACHE_CAP {
                                shadow.entries.pop_front();
                            }
                        }
                    }
                }
                Op::CacheLookup { sel, adopt } => {
                    if !seqs.is_empty() {
                        let i = sel % seqs.len();
                        let prompt = seqs[i].tokens.clone();
                        if prompt.len() > 1 {
                            let hit = cache.lookup(&mut pool, &prompt, prompt.len() - 1);
                            prop_assert!(hit.tokens < prompt.len(),
                                "lookup must never cover the whole prompt");
                            prop_assert_eq!(hit.tokens % BLOCK_TOKENS, 0);
                            if adopt && hit.tokens > 0 {
                                let mut seq = SeqKv::new();
                                let shared = hit.tokens;
                                seq.adopt_shared(&pool, hit.blocks);
                                seqs.push(LiveSeq {
                                    seq,
                                    tokens: prompt[..shared].to_vec(),
                                });
                            } else {
                                for b in hit.blocks {
                                    pool.release(b);
                                }
                            }
                        }
                    }
                }
                Op::CacheClear => {
                    cache.clear(&mut pool);
                    shadow.entries.clear();
                }
            }
            check_ownership(&pool, &seqs, &shadow);
        }

        // Teardown: releasing every owner returns the pool to empty —
        // the no-leak property.
        for mut ls in seqs {
            ls.seq.release_all(&mut pool);
        }
        cache.clear(&mut pool);
        prop_assert_eq!(pool.free_blocks(), NUM_BLOCKS, "blocks leaked");
        prop_assert_eq!(pool.used_blocks(), 0);
    }

    /// CoW after a fork never corrupts the parent: the parent's rows
    /// read back exactly what it wrote, no matter when the child
    /// diverges.
    #[test]
    fn fork_divergence_preserves_parent_rows(
        prefix_len in 1usize..12,
        parent_extra in 1usize..6,
        child_extra in 1usize..6,
    ) {
        use ratatouille_models::transformer::KvRows;

        let mut pool = BlockPool::new(cfg());
        let mut parent = LiveSeq { seq: SeqKv::new(), tokens: Vec::new() };
        parent.seq.reserve_for(&mut pool, prefix_len + parent_extra).unwrap();
        for t in 0..prefix_len {
            write_one(&mut pool, &mut parent, (t % 4) as u8);
        }
        let mut child = LiveSeq {
            seq: parent.seq.fork(&mut pool),
            tokens: parent.tokens.clone(),
        };
        child.seq.reserve_for(&mut pool, prefix_len + child_extra).unwrap();
        for t in 0..child_extra {
            write_one(&mut pool, &mut child, 3 - (t % 4) as u8);
        }
        for t in 0..parent_extra {
            write_one(&mut pool, &mut parent, (t % 4) as u8);
        }
        // Every committed row of each sequence reads back its own token.
        for (ls, name) in [(&parent, "parent"), (&child, "child")] {
            for layer in 0..LAYERS {
                let view = ls.seq.layer_view(&pool, layer, ls.seq.len());
                for (pos, &tok) in ls.tokens.iter().enumerate() {
                    prop_assert_eq!(
                        view.k_row(pos)[0], tok as f32,
                        "{} row {} layer {} corrupted", name, pos, layer
                    );
                }
            }
        }
        parent.seq.release_all(&mut pool);
        child.seq.release_all(&mut pool);
        prop_assert_eq!(pool.free_blocks(), NUM_BLOCKS);
    }
}

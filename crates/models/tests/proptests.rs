//! Property tests on model-layer invariants: the sampler's support
//! guarantees and the dataset's batch alignment, for arbitrary inputs.

use ratatouille_util::proptest::prelude::*;
use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::SeedableRng;
use ratatouille_models::data::Dataset;
use ratatouille_models::sample::{select_token, SamplerConfig};
use ratatouille_tensor::Tensor;
use ratatouille_tokenizers::{CharTokenizer, Tokenizer};

proptest! {
    cases = 32;

    /// top-k sampling never selects outside the k most likely tokens.
    #[test]
    fn top_k_support(
        logits in collection::vec(-5.0f32..5.0, 4..32),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let t = Tensor::from_vec(logits.clone(), &[logits.len()]).unwrap();
        let cfg = SamplerConfig {
            greedy: false,
            temperature: 1.0,
            top_k: k,
            top_p: 1.0,
            ..SamplerConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let picked = select_token(&t, &cfg, &mut rng) as usize;
        // picked logit must be >= the (k)th largest logit
        let mut sorted = logits.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let kth = sorted[k.min(sorted.len()) - 1];
        prop_assert!(logits[picked] >= kth - 1e-6);
    }

    /// Greedy always picks the argmax, independent of the rng.
    #[test]
    fn greedy_is_argmax(
        logits in collection::vec(-5.0f32..5.0, 2..20),
        seed in 0u64..100,
    ) {
        let t = Tensor::from_vec(logits.clone(), &[logits.len()]).unwrap();
        let cfg = SamplerConfig { greedy: true, ..SamplerConfig::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let picked = select_token(&t, &cfg, &mut rng) as usize;
        let best = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        prop_assert!((logits[picked] - logits[best]).abs() < 1e-9);
    }

    /// Every dataset block keeps the shift-by-one target alignment,
    /// whatever text went in.
    #[test]
    fn dataset_alignment(text in "[a-h ]{50,300}", block in 4usize..32) {
        let tok = CharTokenizer::train(&["abcdefgh "]);
        let ds = Dataset::from_texts(&[text], &tok, block);
        for (inp, tgt) in ds.iter_examples() {
            prop_assert_eq!(inp.len(), block);
            prop_assert_eq!(tgt.len(), block);
            // aligned: target[i] == input[i+1] wherever both are real tokens
            for i in 0..block - 1 {
                if tgt[i] != tok.pad_id() && inp[i + 1] != tok.pad_id() {
                    prop_assert_eq!(tgt[i], inp[i + 1]);
                }
            }
        }
    }

    /// Batches drawn from a dataset are always rectangular and in-vocab.
    #[test]
    fn batches_well_formed(seed in 0u64..1000, bsz in 1usize..6) {
        let tok = CharTokenizer::train(&["abcdefgh "]);
        let ds = Dataset::from_texts(&["abcdefgh ".repeat(40)], &tok, 16);
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = ds.sample_batch(bsz, &mut rng);
        batch.assert_well_formed();
        prop_assert_eq!(batch.batch_size(), bsz);
        for row in &batch.inputs {
            prop_assert!(row.iter().all(|&t| (t as usize) < tok.vocab_size()));
        }
    }
}

//! The batch-determinism contract, pinned at the engine level: a
//! sequence's token stream is **byte-identical** whether it decodes
//! solo, in a batch of 2, or in a batch of 7 — and whether its prompt
//! prefix came from the shared-prefix cache or was computed fresh.
//!
//! Uses an untrained tiny GPT-2 (random but seeded weights): the
//! contract is about kernels and scheduling, not model quality, and an
//! untrained model's logits are just as sensitive to any accumulation
//! reordering.

use ratatouille_models::batch::{BatchEngineConfig, BatchGenerator, BatchRequest};
use ratatouille_models::gpt2::{Gpt2Config, Gpt2Lm};
use ratatouille_models::lm::InferenceModel;
use ratatouille_models::sample::SamplerConfig;

fn tiny() -> Gpt2Lm {
    Gpt2Lm::new(Gpt2Config {
        name: "tiny-batch".into(),
        vocab: 16,
        d_model: 16, // % 16 == 0 → batch_ready
        n_heads: 2,
        n_layers: 2,
        d_ff: 32, // % 16 == 0
        max_t: 64,
        dropout: 0.0,
        seed: 5,
    })
}

fn engine_cfg(prefix_cap: usize) -> BatchEngineConfig {
    BatchEngineConfig {
        block_tokens: 4, // small so short prompts still span full blocks
        num_blocks: 96,
        max_batch: 8,
        prefix_cap,
    }
}

fn sampled(max_tokens: usize) -> SamplerConfig {
    SamplerConfig {
        max_tokens,
        temperature: 0.9,
        top_k: 0,
        top_p: 1.0,
        stop_token: None,
        greedy: false,
    }
}

fn req(prompt: &[u32], seed: u64, cfg: &SamplerConfig) -> BatchRequest {
    BatchRequest {
        prompt: prompt.to_vec(),
        sampler: cfg.clone(),
        seed,
    }
}

/// Decode one request alone (batch of 1) through a fresh engine.
fn solo(model: &Gpt2Lm, prompt: &[u32], seed: u64, cfg: &SamplerConfig) -> Vec<u32> {
    let bm = model.batch_model().expect("tiny config is batch-ready");
    let mut engine = BatchGenerator::new(bm, engine_cfg(0));
    let id = engine.admit(req(prompt, seed, cfg)).expect("admit solo");
    engine.run_to_completion(bm, id).expect("pool sized for solo")
}

#[test]
fn batch_of_2_and_7_match_solo_byte_for_byte() {
    let model = tiny();
    let bm = model.batch_model().unwrap();
    let cfg = sampled(12);
    // Seven requests with distinct prompts, lengths and seeds; prompt
    // lengths straddle the block size so prefill crosses boundaries.
    let prompts: Vec<Vec<u32>> = (0..7u32)
        .map(|i| (0..(3 + i as usize)).map(|t| (2 + i + t as u32) % 16).collect())
        .collect();
    let solos: Vec<Vec<u32>> = prompts
        .iter()
        .enumerate()
        .map(|(i, p)| solo(&model, p, 100 + i as u64, &cfg))
        .collect();

    for batch in [2usize, 7] {
        let mut engine = BatchGenerator::new(bm, engine_cfg(0));
        let ids: Vec<u64> = prompts[..batch]
            .iter()
            .enumerate()
            .map(|(i, p)| engine.admit(req(p, 100 + i as u64, &cfg)).expect("admit"))
            .collect();
        let mut got: Vec<Option<Vec<u32>>> = vec![None; batch];
        while got.iter().any(Option::is_none) {
            let out = engine.step(bm).expect("pool sized for batch");
            assert!(out.batch_size > 0, "engine idled with sequences pending");
            for f in out.finished {
                let slot = ids.iter().position(|&id| id == f.id).expect("known id");
                got[slot] = Some(f.tokens);
            }
        }
        for (i, tokens) in got.into_iter().enumerate() {
            assert_eq!(
                tokens.as_deref().map(|t| t.to_vec()),
                Some(solos[i].clone()),
                "request {i} diverged from its solo stream in a batch of {batch}"
            );
        }
    }
}

#[test]
fn mid_decode_admission_does_not_perturb_the_running_sequence() {
    let model = tiny();
    let bm = model.batch_model().unwrap();
    let cfg = sampled(16);
    let a_prompt = [3u32, 7, 1, 9, 4];
    let b_prompt = [8u32, 8, 2];
    let a_solo = solo(&model, &a_prompt, 11, &cfg);
    let b_solo = solo(&model, &b_prompt, 22, &cfg);

    let mut engine = BatchGenerator::new(bm, engine_cfg(0));
    let a = engine.admit(req(&a_prompt, 11, &cfg)).unwrap();
    // A decodes alone past its prefill before B arrives mid-stream.
    for _ in 0..8 {
        let out = engine.step(bm).unwrap();
        assert!(out.finished.is_empty(), "A finished before B was admitted");
    }
    let b = engine.admit(req(&b_prompt, 22, &cfg)).unwrap();
    let mut streams = [None, None];
    while streams.iter().any(Option::is_none) {
        for f in engine.step(bm).unwrap().finished {
            if f.id == a {
                streams[0] = Some(f.tokens);
            } else if f.id == b {
                streams[1] = Some(f.tokens);
            }
        }
    }
    assert_eq!(streams[0].as_ref(), Some(&a_solo), "late arrival perturbed A");
    assert_eq!(streams[1].as_ref(), Some(&b_solo), "joining a running batch perturbed B");
}

#[test]
fn shared_prefix_blocks_reproduce_the_computed_stream() {
    let model = tiny();
    let bm = model.batch_model().unwrap();
    let cfg = sampled(10);
    // 9-token prompt → 2 full 4-token blocks of shareable prefix.
    let prompt = [5u32, 1, 12, 3, 9, 0, 7, 2, 6];
    let expected = solo(&model, &prompt, 77, &cfg);

    // Sharing OFF: baseline block consumption for the second admission.
    let mut off = BatchGenerator::new(bm, engine_cfg(0));
    let first = off.admit(req(&prompt, 77, &cfg)).unwrap();
    let off_first = off.run_to_completion(bm, first).unwrap();
    let free_before = off.free_blocks();
    let second = off.admit(req(&prompt, 77, &cfg)).unwrap();
    let alloc_off = free_before - off.free_blocks();
    let off_second = off.run_to_completion(bm, second).unwrap();

    // Sharing ON: the first run registers the prefix; the second adopts
    // its blocks instead of allocating fresh ones.
    let mut on = BatchGenerator::new(bm, engine_cfg(8));
    let first = on.admit(req(&prompt, 77, &cfg)).unwrap();
    let on_first = on.run_to_completion(bm, first).unwrap();
    let free_before = on.free_blocks();
    let second = on.admit(req(&prompt, 77, &cfg)).unwrap();
    let alloc_on = free_before - on.free_blocks();
    let on_second = on.run_to_completion(bm, second).unwrap();

    assert_eq!(off_first, expected);
    assert_eq!(off_second, expected);
    assert_eq!(on_first, expected, "prefix registration changed the stream");
    assert_eq!(
        on_second, expected,
        "decoding from adopted shared-prefix blocks changed the stream"
    );
    assert!(
        alloc_on < alloc_off,
        "prefix sharing saved no blocks (on: {alloc_on}, off: {alloc_off})"
    );
}

#[test]
fn trace_phase_sequence_is_deterministic_across_batch_compositions() {
    use obs::reqtrace::{begin, Phase, TraceHandle, TraceMeta};

    let model = tiny();
    let bm = model.batch_model().unwrap();
    let cfg = sampled(9);
    let prompt = [4u32, 9, 2, 7, 11, 1];

    // The phase kinds plus their composition-independent first argument
    // (prefill position, tokens-out, KV hit count). Timestamps and ids
    // are excluded by construction; the second argument carries the
    // batch size, which legitimately differs between compositions.
    fn shape(t: &TraceHandle) -> Vec<(Phase, u32)> {
        t.phases().iter().map(|p| (p.phase, p.a)).collect()
    }

    // Solo (batch of 1).
    let mut engine = BatchGenerator::new(bm, engine_cfg(0));
    let solo_trace = begin();
    let id = engine
        .admit_traced(
            req(&prompt, 55, &cfg),
            TraceMeta {
                enqueued_ns: 0,
                trace: Some(solo_trace.clone()),
            },
        )
        .expect("admit solo");
    engine.run_to_completion(bm, id).expect("pool sized for solo");

    // The same request inside a batch of 7 with distinct neighbours.
    let mut engine = BatchGenerator::new(bm, engine_cfg(0));
    let batched_trace = begin();
    let id = engine
        .admit_traced(
            req(&prompt, 55, &cfg),
            TraceMeta {
                enqueued_ns: 0,
                trace: Some(batched_trace.clone()),
            },
        )
        .expect("admit traced");
    for i in 0..6u32 {
        let p: Vec<u32> = (0..(3 + i as usize))
            .map(|t| (5 + i + t as u32) % 16)
            .collect();
        engine
            .admit(req(&p, 200 + i as u64, &cfg))
            .expect("admit neighbour");
    }
    engine.run_to_completion(bm, id).expect("pool sized for batch");

    let a = shape(&solo_trace);
    let b = shape(&batched_trace);
    // The lifecycle is fully present: accept (from begin), admit, one
    // prefill chunk per prompt token, every decode step, and retirement.
    assert_eq!(a.first().map(|(p, _)| *p), Some(Phase::Accept));
    assert_eq!(
        a.iter().filter(|(p, _)| *p == Phase::PrefillChunk).count(),
        prompt.len()
    );
    assert_eq!(
        a.iter().filter(|(p, _)| *p == Phase::DecodeStep).count(),
        cfg.max_tokens
    );
    assert_eq!(a.last().map(|(p, _)| *p), Some(Phase::Retire));
    assert_eq!(a, b, "trace phase sequence depends on batch composition");
}

#[test]
fn greedy_streams_are_identical_across_all_compositions() {
    let model = tiny();
    let bm = model.batch_model().unwrap();
    let cfg = SamplerConfig {
        max_tokens: 14,
        greedy: true,
        ..sampled(14)
    };
    let prompt = [2u32, 13, 4, 4, 10];
    let alone = solo(&model, &prompt, 0, &cfg);

    let mut engine = BatchGenerator::new(bm, engine_cfg(4));
    let ids: Vec<u64> = (0..5u64)
        .map(|s| engine.admit(req(&prompt, s, &cfg)).unwrap())
        .collect();
    let mut done = 0usize;
    while done < ids.len() {
        for f in engine.step(bm).unwrap().finished {
            assert_eq!(
                f.tokens, alone,
                "greedy decode must be seed- and batch-independent"
            );
            done += 1;
        }
    }
}

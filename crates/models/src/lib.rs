//! # ratatouille-models
//!
//! The neural language models of the paper, built from scratch on
//! `ratatouille-tensor`:
//!
//! * [`lstm::LstmLm`] — the character-level and word-level LSTM baselines
//!   (§IV-A);
//! * [`gpt2::Gpt2Lm`] — the GPT-2 architecture (§IV-B): learned token +
//!   position embeddings, pre-LN transformer blocks with causal
//!   multi-head attention and GELU MLPs, and a weight-tied LM head;
//! * [`train`] — mini-batch training with Adam, warmup-cosine LR,
//!   gradient clipping, and crash-safe checkpoint/resume (the paper's
//!   Colab sessions died every 5–7 epochs; ours resume exactly);
//! * [`sample`] — greedy / temperature / top-k / top-p decoding over an
//!   incremental [`lm::TokenStream`] (the LSTMs carry recurrent state,
//!   the transformer a KV cache);
//! * [`registry`] — the four Table-I configurations (Char-LSTM,
//!   Word-LSTM, DistilGPT2, GPT-2 medium) scaled to train on CPU.
#![warn(missing_docs)]


pub mod batch;
pub mod beam;
pub mod data;
pub mod gpt2;
pub mod kv_block;
pub mod gptneo;
pub mod lm;
pub mod lstm;
pub mod registry;
pub mod sample;
pub mod train;
pub mod transformer;

pub use batch::{
    AdmitError, BatchEngineConfig, BatchGenerator, BatchRequest, BatchStepModel, FinishedSeq,
    ModelDims, StepOutcome,
};
pub use gpt2::{Gpt2Config, Gpt2Lm, QuantGpt2Lm};
pub use kv_block::{BlockConfig, BlockPool, PoolExhausted, PrefixCache, SeqKv};
pub use gptneo::{GptNeoConfig, GptNeoLm, QuantGptNeoLm};
pub use lm::{Batch, InferenceModel, LanguageModel, TokenStream};
pub use lstm::{LstmConfig, LstmLm};
pub use registry::{ModelKind, ModelSpec, TABLE1_MODELS};
pub use sample::{generate, SamplerConfig};
pub use train::{Checkpoint, TrainConfig, Trainer};
pub use transformer::{attention_mode, set_attention_mode, AttentionMode, BatchScratch};

//! Tokenized dataset handling: chunking the "one long string" corpus into
//! fixed-length training blocks and drawing random batches.
//!
//! The paper concatenates all tagged recipes into a single training
//! stream (§IV-B, Fig. 3); [`Dataset::from_texts`] reproduces that, then
//! slices the stream into `block_size + 1`-token windows so each window
//! yields `(input, target)` pairs shifted by one.

use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::RngExt;
use ratatouille_tokenizers::Tokenizer;

use crate::lm::Batch;

/// A tokenized corpus pre-cut into training blocks.
#[derive(Debug, Clone)]
pub struct Dataset {
    blocks: Vec<Vec<u32>>,
    pad_id: u32,
    block_size: usize,
}

impl Dataset {
    /// Tokenize `texts`, concatenate into one stream, and cut into
    /// non-overlapping `block_size + 1` windows (the `+1` supplies the
    /// shifted targets). A trailing remainder shorter than 16 tokens is
    /// dropped; otherwise it is kept padded.
    pub fn from_texts<S: AsRef<str>>(
        texts: &[S],
        tokenizer: &dyn Tokenizer,
        block_size: usize,
    ) -> Self {
        assert!(block_size >= 2, "block_size must be >= 2");
        let mut stream: Vec<u32> = Vec::new();
        for t in texts {
            stream.extend(tokenizer.encode(t.as_ref()));
        }
        let pad_id = tokenizer.pad_id();
        let window = block_size + 1;
        let mut blocks = Vec::with_capacity(stream.len() / window + 1);
        let mut i = 0;
        while i + window <= stream.len() {
            blocks.push(stream[i..i + window].to_vec());
            i += window;
        }
        let rest = &stream[i..];
        if rest.len() >= 16 {
            let mut b = rest.to_vec();
            b.resize(window, pad_id);
            blocks.push(b);
        }
        Dataset {
            blocks,
            pad_id,
            block_size,
        }
    }

    /// Like [`Dataset::from_texts`], but every block starts at a
    /// *document* (recipe) boundary: whole documents are packed greedily
    /// into `block_size + 1` windows, padding the tail of each window.
    ///
    /// This matches the paper's training instances ("recipe elements …
    /// used as a single training instance") and is what makes conditional
    /// generation work for position-embedding models: at decode time the
    /// prompt starts at position 0, so training must regularly show
    /// `<RECIPE_START>` at position 0 too.
    pub fn from_documents<S: AsRef<str>>(
        texts: &[S],
        tokenizer: &dyn Tokenizer,
        block_size: usize,
    ) -> Self {
        assert!(block_size >= 2, "block_size must be >= 2");
        let pad_id = tokenizer.pad_id();
        let window = block_size + 1;
        let mut blocks: Vec<Vec<u32>> = Vec::new();
        let mut current: Vec<u32> = Vec::with_capacity(window);
        for t in texts {
            let mut ids = tokenizer.encode(t.as_ref());
            if ids.len() > window {
                ids.truncate(window); // overlong doc: keep its head
            }
            if current.len() + ids.len() > window {
                current.resize(window, pad_id);
                blocks.push(std::mem::take(&mut current));
            }
            current.extend(ids);
        }
        if current.len() >= 16 {
            current.resize(window, pad_id);
            blocks.push(current);
        }
        Dataset {
            blocks,
            pad_id,
            block_size,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total non-pad tokens across blocks.
    pub fn num_tokens(&self) -> usize {
        self.blocks
            .iter()
            .flatten()
            .filter(|&&t| t != self.pad_id)
            .count()
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Draw a random batch of `batch_size` blocks (with replacement).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn sample_batch(&self, batch_size: usize, rng: &mut StdRng) -> Batch {
        assert!(!self.is_empty(), "sample_batch on empty dataset");
        let mut inputs = Vec::with_capacity(batch_size);
        let mut targets = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            let b = &self.blocks[rng.random_range(0..self.blocks.len())];
            inputs.push(b[..self.block_size].to_vec());
            targets.push(b[1..].to_vec());
        }
        Batch {
            inputs,
            targets,
            pad_id: self.pad_id,
        }
    }

    /// Iterate all blocks as `(input, target)` pairs in order (evaluation).
    pub fn iter_examples(&self) -> impl Iterator<Item = (Vec<u32>, Vec<u32>)> + '_ {
        self.blocks
            .iter()
            .map(|b| (b[..self.block_size].to_vec(), b[1..].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratatouille_util::rng::SeedableRng;
    use ratatouille_tokenizers::CharTokenizer;

    fn tok() -> CharTokenizer {
        CharTokenizer::train(&["abcdefghij klmnopqrst"])
    }

    #[test]
    fn blocks_cover_stream_without_overlap() {
        let t = tok();
        let text = "abcdefghij".repeat(20); // 200 chars
        let ds = Dataset::from_texts(&[text.clone()], &t, 32);
        assert_eq!(ds.len(), 6); // 6 full 33-token windows; 2-token remainder dropped
        // check shift-by-one alignment
        let (inp, tgt) = ds.iter_examples().next().unwrap();
        assert_eq!(inp[1..], tgt[..31]);
    }

    #[test]
    fn short_remainder_dropped_long_remainder_padded() {
        let t = tok();
        // 40 tokens, block 32: one window of 33, remainder 7 -> dropped
        let ds = Dataset::from_texts(&["abcdefghij".repeat(4)], &t, 32);
        assert_eq!(ds.len(), 1);
        // 60 tokens: window 33, remainder 27 >= 16 -> padded block
        let ds = Dataset::from_texts(&["abcdefghij".repeat(6)], &t, 32);
        assert_eq!(ds.len(), 2);
        let (_, tgt) = ds.iter_examples().nth(1).unwrap();
        assert!(tgt.iter().any(|&x| x == t.pad_id()), "padding expected");
    }

    #[test]
    fn sampled_batches_are_well_formed() {
        let t = tok();
        let ds = Dataset::from_texts(&["abcdefghij klmnopqrst".repeat(30)], &t, 16);
        let mut rng = StdRng::seed_from_u64(1);
        let b = ds.sample_batch(4, &mut rng);
        b.assert_well_formed();
        assert_eq!(b.batch_size(), 4);
        assert_eq!(b.seq_len(), 16);
    }

    #[test]
    fn deterministic_sampling() {
        let t = tok();
        let ds = Dataset::from_texts(&["abcdefghij".repeat(50)], &t, 8);
        let a = ds.sample_batch(3, &mut StdRng::seed_from_u64(9));
        let b = ds.sample_batch(3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn document_aligned_blocks_start_at_doc_boundaries() {
        let t = tok();
        let docs: Vec<String> = (0..10).map(|_| "abcdefghij".to_string()).collect(); // 10 tokens each
        let ds = Dataset::from_documents(&docs, &t, 24); // window 25: two docs fit
        assert!(ds.len() >= 4, "got {}", ds.len());
        let first_id = t.encode("a")[0];
        for (inp, _) in ds.iter_examples() {
            assert_eq!(inp[0], first_id, "block does not start at a document boundary");
        }
    }

    #[test]
    fn document_aligned_overlong_doc_truncated_not_dropped() {
        let t = tok();
        let long = "abcdefghij".repeat(10); // 100 tokens, window 17
        let ds = Dataset::from_documents(&[long], &t, 16);
        assert_eq!(ds.len(), 1);
        let (inp, _) = ds.iter_examples().next().unwrap();
        assert_eq!(inp.len(), 16);
        assert!(inp.iter().all(|&x| x != t.pad_id()));
    }

    #[test]
    fn num_tokens_excludes_padding() {
        let t = tok();
        let ds = Dataset::from_texts(&["abcdefghij".repeat(6)], &t, 32);
        assert_eq!(ds.num_tokens(), 60);
    }
}

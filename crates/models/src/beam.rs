//! Beam-search decoding — the deterministic high-likelihood alternative
//! to sampling (RecipeGPT's generation interface exposes it; ours
//! completes the decoder family for the ablation benches).

use ratatouille_tensor::ops;

use crate::lm::LanguageModel;

/// Beam-search configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BeamConfig {
    /// Number of beams kept per step.
    pub beam_width: usize,
    /// Maximum tokens to generate.
    pub max_tokens: usize,
    /// Finish a beam when it emits this token.
    pub stop_token: Option<u32>,
    /// Length normalization exponent α (0 = none; GNMT uses ~0.6–0.7).
    pub length_penalty: f32,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig {
            beam_width: 4,
            max_tokens: 128,
            stop_token: None,
            length_penalty: 0.7,
        }
    }
}

#[derive(Clone)]
struct Beam {
    tokens: Vec<u32>,
    log_prob: f64,
    finished: bool,
}

impl Beam {
    fn score(&self, alpha: f32) -> f64 {
        let len = self.tokens.len().max(1) as f64;
        self.log_prob / len.powf(alpha as f64)
    }
}

/// Beam-search a continuation of `prompt`. Returns the best beam's
/// generated tokens (without prompt or stop token).
///
/// Each candidate replays its token stream from scratch (streams are
/// stateful and non-cloneable); fine at recipe scale, and the per-token
/// cost is KV-cached inside each replay.
pub fn beam_search(model: &dyn LanguageModel, prompt: &[u32], cfg: &BeamConfig) -> Vec<u32> {
    assert!(!prompt.is_empty(), "beam_search requires a non-empty prompt");
    assert!(cfg.beam_width >= 1, "beam_width must be >= 1");

    let mut beams = vec![Beam {
        tokens: Vec::new(),
        log_prob: 0.0,
        finished: false,
    }];

    for _ in 0..cfg.max_tokens {
        if beams.iter().all(|b| b.finished) {
            break;
        }
        let mut candidates: Vec<Beam> = Vec::new();
        for beam in &beams {
            if beam.finished {
                candidates.push(beam.clone());
                continue;
            }
            // replay prompt + beam tokens
            let mut stream = model.start_stream();
            let mut logits = None;
            for &t in prompt.iter().chain(beam.tokens.iter()) {
                logits = Some(stream.push(t));
            }
            let logits = logits.expect("non-empty prompt");
            let logp = log_softmax_vec(logits.data());
            // top beam_width expansions of this beam
            let mut idx: Vec<usize> = (0..logp.len()).collect();
            idx.sort_by(|&a, &b| logp[b].partial_cmp(&logp[a]).unwrap());
            for &token in idx.iter().take(cfg.beam_width) {
                let mut tokens = beam.tokens.clone();
                let finished = cfg.stop_token == Some(token as u32);
                if !finished {
                    tokens.push(token as u32);
                }
                candidates.push(Beam {
                    tokens,
                    log_prob: beam.log_prob + logp[token] as f64,
                    finished,
                });
            }
        }
        candidates.sort_by(|a, b| {
            b.score(cfg.length_penalty)
                .partial_cmp(&a.score(cfg.length_penalty))
                .unwrap()
        });
        candidates.truncate(cfg.beam_width);
        beams = candidates;
    }

    beams
        .into_iter()
        .max_by(|a, b| {
            a.score(cfg.length_penalty)
                .partial_cmp(&b.score(cfg.length_penalty))
                .unwrap()
        })
        .map(|b| b.tokens)
        .unwrap_or_default()
}

/// Log-softmax of a logit slice.
fn log_softmax_vec(logits: &[f32]) -> Vec<f32> {
    use ratatouille_util::accum::{max_f32, sum_f32};
    let max = max_f32(logits.iter().copied());
    let lse = sum_f32(logits.iter().map(|&v| (v - max).exp())).ln() + max;
    logits.iter().map(|&v| v - lse).collect()
}

/// Greedy decoding via beam width 1 (reference implementation used by
/// tests to cross-check the sampler's greedy mode).
pub fn greedy_decode(
    model: &dyn LanguageModel,
    prompt: &[u32],
    max_tokens: usize,
    stop: Option<u32>,
) -> Vec<u32> {
    let mut stream = model.start_stream();
    let mut logits = None;
    for &t in prompt {
        logits = Some(stream.push(t));
    }
    let mut out = Vec::new();
    for _ in 0..max_tokens {
        let l = logits.take().expect("logits");
        let next = ops::argmax_last(&l)[0] as u32;
        if Some(next) == stop {
            break;
        }
        out.push(next);
        logits = Some(stream.push(next));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lm::{Batch, InferenceModel};
    use crate::lstm::{LstmConfig, LstmLm};
    use ratatouille_util::rng::StdRng;
    use ratatouille_util::rng::SeedableRng;
    use ratatouille_tensor::optim::{zero_grads, Adam, Optimizer};

    fn trained_cycle_model() -> LstmLm {
        let m = LstmLm::new(LstmConfig {
            name: "t".into(),
            vocab: 10,
            d_embed: 8,
            d_hidden: 16,
            layers: 1,
            max_t: 32,
            dropout: 0.0,
            seed: 2,
        });
        let seq: Vec<u32> = (0..13).map(|i| 2 + (i % 3)).collect();
        let batch = Batch {
            inputs: vec![seq[..12].to_vec(); 4],
            targets: vec![seq[1..].to_vec(); 4],
            pad_id: 0,
        };
        let params = m.parameters();
        let mut opt = Adam::new(0.02);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..120 {
            zero_grads(&params);
            let loss = m.forward_loss(&batch, true, &mut rng);
            loss.backward();
            opt.step(&params);
        }
        m
    }

    #[test]
    fn beam_width_1_equals_greedy() {
        let m = trained_cycle_model();
        let cfg = BeamConfig {
            beam_width: 1,
            max_tokens: 9,
            stop_token: None,
            length_penalty: 0.0,
        };
        let beam = beam_search(&m, &[2, 3], &cfg);
        let greedy = greedy_decode(&m, &[2, 3], 9, None);
        assert_eq!(beam, greedy);
    }

    #[test]
    fn beam_recovers_learned_cycle() {
        let m = trained_cycle_model();
        let cfg = BeamConfig {
            beam_width: 3,
            max_tokens: 6,
            ..Default::default()
        };
        let out = beam_search(&m, &[2, 3], &cfg);
        // cycle 2,3,4,2,3,4…: continuation of [2,3] is [4,2,3,4,2,3]
        assert_eq!(out, vec![4, 2, 3, 4, 2, 3]);
    }

    #[test]
    fn wider_beam_never_scores_worse() {
        let m = trained_cycle_model();
        let score = |width: usize| -> f64 {
            let cfg = BeamConfig {
                beam_width: width,
                max_tokens: 6,
                stop_token: None,
                length_penalty: 0.0,
            };
            let toks = beam_search(&m, &[2], &cfg);
            // rescore the sequence under the model
            let mut stream = m.start_stream();
            let mut logits = stream.push(2);
            let mut lp = 0.0f64;
            for &t in &toks {
                let logp = log_softmax_vec(logits.data());
                lp += logp[t as usize] as f64;
                logits = stream.push(t);
            }
            lp
        };
        assert!(score(4) >= score(1) - 1e-6);
    }

    #[test]
    fn stop_token_finishes_beams() {
        let m = trained_cycle_model();
        // after [2,3] the model strongly predicts 4; use 4 as stop
        let cfg = BeamConfig {
            beam_width: 2,
            max_tokens: 20,
            stop_token: Some(4),
            length_penalty: 0.0,
        };
        let out = beam_search(&m, &[2, 3], &cfg);
        assert!(!out.contains(&4), "stop token leaked into output: {out:?}");
        assert!(out.len() < 20, "stop token ignored");
    }

    #[test]
    fn log_softmax_normalizes() {
        let lp = log_softmax_vec(&[1.0, 2.0, 3.0]);
        let sum: f32 = lp.iter().map(|v| v.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }
}

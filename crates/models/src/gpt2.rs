//! The GPT-2 language model (Radford et al., 2019), from scratch:
//! learned token + position embeddings, a stack of pre-LN transformer
//! blocks, a final layer norm, and a weight-tied LM head.
//!
//! The paper fine-tunes HuggingFace's pre-trained DistilGPT2 and GPT-2
//! medium; with no offline pre-trained weights, this reproduction trains
//! the same architecture from scratch at two capacity tiers whose *ratio*
//! mirrors distil-vs-medium (see [`Gpt2Config::distil`] /
//! [`Gpt2Config::medium`]). What Table I compares is relative capacity on
//! the recipe task, which the tiers preserve.

use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::SeedableRng;
use ratatouille_tensor::ops::{qmatmul_transb, quantize_per_row, QuantizedMatrix};
use ratatouille_tensor::{init, ops, DType, Tensor, Var, F16};

use crate::batch::{BatchStepModel, ModelDims};
use crate::kv_block::{BlockPool, SeqKv};
use crate::lm::{Batch, InferenceModel, LanguageModel, TokenStream};
use crate::transformer::{BatchScratch, Block, DecodeScratch, KvCache, QuantBlock};

/// GPT-2 hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Gpt2Config {
    /// Model display name (Table I row).
    pub name: String,
    /// Vocabulary size.
    pub vocab: usize,
    /// Residual width.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Transformer blocks.
    pub n_layers: usize,
    /// MLP inner width.
    pub d_ff: usize,
    /// Maximum context length (learned positions).
    pub max_t: usize,
    /// Dropout rate during training.
    pub dropout: f32,
    /// Initialization seed.
    pub seed: u64,
}

impl Gpt2Config {
    /// The "DistilGPT2" tier: half the layers of the bigger tier, narrow
    /// width (HF's distilgpt2 is 6 layers of GPT-2's 12 at d=768; here
    /// scaled to CPU).
    pub fn distil(vocab: usize) -> Self {
        Gpt2Config {
            name: "DistilGPT2".into(),
            vocab,
            d_model: 64,
            n_heads: 2,
            n_layers: 2,
            d_ff: 256,
            max_t: 256,
            dropout: 0.1,
            seed: 0xD157,
        }
    }

    /// The "GPT-2 medium" tier: deeper and wider (HF's gpt2-medium is 24
    /// layers at d=1024; here scaled to CPU, keeping the capacity ratio).
    pub fn medium(vocab: usize) -> Self {
        Gpt2Config {
            name: "GPT-2 medium".into(),
            vocab,
            d_model: 128,
            n_heads: 4,
            n_layers: 4,
            d_ff: 512,
            max_t: 256,
            dropout: 0.1,
            seed: 0x6127,
        }
    }
}

/// The GPT-2 model.
pub struct Gpt2Lm {
    config: Gpt2Config,
    /// Token embedding `[V, D]` — also the (tied) unembedding.
    wte: Var,
    /// Position embedding `[max_t, D]`.
    wpe: Var,
    blocks: Vec<Block>,
    /// Final layer-norm gain `[D]`.
    lnf_g: Var,
    /// Final layer-norm bias `[D]`.
    lnf_b: Var,
}

impl Gpt2Lm {
    /// Initialize from a config (GPT-2's N(0, 0.02) scheme).
    pub fn new(config: Gpt2Config) -> Self {
        assert_eq!(
            config.d_model % config.n_heads,
            0,
            "d_model must divide evenly into heads"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let wte = Var::leaf(init::randn(&mut rng, &[config.vocab, config.d_model], 0.02));
        let wpe = Var::leaf(init::randn(&mut rng, &[config.max_t, config.d_model], 0.01));
        let blocks = (0..config.n_layers)
            .map(|_| Block::new(&mut rng, config.d_model, config.d_ff, config.n_layers))
            .collect();
        Gpt2Lm {
            lnf_g: Var::leaf(Tensor::ones(&[config.d_model])),
            lnf_b: Var::leaf(Tensor::zeros(&[config.d_model])),
            config,
            wte,
            wpe,
            blocks,
        }
    }

    /// The config this model was built with.
    pub fn config(&self) -> &Gpt2Config {
        &self.config
    }

    /// Snapshot this model into an int8 weight-quantized inference-only
    /// copy. Weights are quantized per output row; embeddings, layer
    /// norms and biases stay f32; the decode KV cache stores f16.
    pub fn quantize(&self) -> QuantGpt2Lm {
        let wte = self.wte.value();
        QuantGpt2Lm {
            name: format!("{} [int8]", self.config.name),
            // wte is [V, D]: for the tied head each vocab row is already
            // an output row, so it quantizes without a transpose.
            wte_q: quantize_per_row(&wte),
            wte,
            wpe: self.wpe.value(),
            blocks: self.blocks.iter().map(QuantBlock::from_block).collect(),
            lnf_g: self.lnf_g.value(),
            lnf_b: self.lnf_b.value(),
            config: self.config.clone(),
        }
    }

    /// Differentiable logits for a batch: `[B*T, V]`.
    fn forward_logits(&self, batch: &Batch, train: bool, rng: &mut StdRng) -> Var {
        let (b, t, d) = (batch.batch_size(), batch.seq_len(), self.config.d_model);
        assert!(
            t <= self.config.max_t,
            "sequence {t} exceeds max context {}",
            self.config.max_t
        );
        let tok = self.wte.embedding(&batch.flat_inputs()); // [B*T, D]
        let positions: Vec<usize> = (0..b).flat_map(|_| 0..t).collect();
        let pos = self.wpe.embedding(&positions); // [B*T, D]
        let mut x = tok.add(&pos);
        if train && self.config.dropout > 0.0 {
            x = x.dropout(self.config.dropout, rng);
        }
        let mut x = x.reshape(&[b, t, d]);
        for blk in &self.blocks {
            x = blk.forward(&x, self.config.n_heads, self.config.dropout, train, rng);
        }
        let flat = x
            .reshape(&[b * t, d])
            .layer_norm(&self.lnf_g, &self.lnf_b, 1e-5);
        flat.matmul_transb(&self.wte) // tied head: [B*T, V]
    }
}

impl InferenceModel for Gpt2Lm {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn vocab_size(&self) -> usize {
        self.config.vocab
    }

    fn max_context(&self) -> usize {
        self.config.max_t
    }

    fn start_stream(&self) -> Box<dyn TokenStream + '_> {
        Box::new(Gpt2Stream {
            model: self,
            caches: (0..self.config.n_layers)
                .map(|_| KvCache::new(self.config.d_model))
                .collect(),
            scratch: DecodeScratch::new(),
            pos: 0,
        })
    }

    fn batch_model(&self) -> Option<&dyn BatchStepModel> {
        self.batch_ready().then_some(self as &dyn BatchStepModel)
    }
}

impl BatchStepModel for Gpt2Lm {
    fn dims(&self) -> ModelDims {
        ModelDims {
            layers: self.config.n_layers,
            d_model: self.config.d_model,
        }
    }

    fn name(&self) -> &str {
        &self.config.name
    }

    /// Batch invariance needs every batched-GEMM output width divisible
    /// by the pack width `NR = 16`: the packed (`M ≥ 8`) and unpacked
    /// microkernels then run identical per-element accumulation chains,
    /// so a row's bits don't depend on how many rows ride along. The
    /// GEMMs here are `x@W_qkv` (`N = 3D`), `ctx@W_o` (`N = D`),
    /// `ln@W_up` (`N = F`) and `up@W_down` (`N = D`); the LM head is a
    /// `matmul_transb` (independent dots, invariant for any `V`).
    fn batch_ready(&self) -> bool {
        self.config.d_model % 16 == 0 && self.config.d_ff % 16 == 0
    }

    fn batch_step(
        &self,
        tokens: &[u32],
        pool: &mut BlockPool,
        seqs: &mut [&mut SeqKv],
        scratch: &mut BatchScratch,
    ) -> Vec<Tensor> {
        let b = tokens.len();
        debug_assert_eq!(b, seqs.len());
        let d = self.config.d_model;
        let wte = self.wte.value();
        let wpe = self.wpe.value();

        // Stacked token + position embeddings, [B, D], staged in the
        // scratch arena's reusable buffer. Positions clamp to the last
        // learned slot exactly like the solo stream.
        let mut x = std::mem::take(&mut scratch.x);
        x.clear();
        x.reserve(b * d);
        for (i, &tok) in tokens.iter().enumerate() {
            assert!((tok as usize) < self.config.vocab, "token {tok} out of vocab");
            let pos = seqs[i].len().min(self.config.max_t - 1);
            let te = &wte.data()[tok as usize * d..(tok as usize + 1) * d];
            let pe = &wpe.data()[pos * d..(pos + 1) * d];
            x.extend(te.iter().zip(pe).map(|(&t, &p)| t + p));
        }
        // xlint: allow(transitive-panic-in-request-path): each token appends exactly `d` floats, so the buffer is `b * d` by construction
        let mut x = Tensor::from_vec(x, &[b, d]).expect("embeddings are [B, D]");
        // The embedding tensor is dropped after the first layer; recover
        // its buffer for the next step (sole owner -> no copy).
        let x0 = x.clone();

        for (layer, blk) in self.blocks.iter().enumerate() {
            x = blk.forward_incremental_batch(&x, self.config.n_heads, layer, pool, seqs, scratch);
        }
        scratch.x = x0.into_vec();
        let (ln, _, _) = ops::layer_norm(&x, &self.lnf_g.value(), &self.lnf_b.value(), 1e-5);
        let logits = ops::matmul_transb(&ln, &wte); // [B, V]
        let ld = logits.data();
        let v = self.config.vocab;
        (0..b)
            .map(|i| {
                Tensor::from_vec(ld[i * v..(i + 1) * v].to_vec(), &[v])
                    // xlint: allow(transitive-panic-in-request-path): the slice is exactly `v` floats, matching the declared shape
                    .expect("logits row is [V]")
            })
            .collect()
    }
}

impl LanguageModel for Gpt2Lm {
    fn parameters(&self) -> Vec<Var> {
        self.named_parameters().into_iter().map(|(_, v)| v).collect()
    }

    fn named_parameters(&self) -> Vec<(String, Var)> {
        let mut out = vec![
            ("wte".to_string(), self.wte.clone()),
            ("wpe".to_string(), self.wpe.clone()),
        ];
        for (i, b) in self.blocks.iter().enumerate() {
            out.extend(b.named_parameters(&format!("block{i}")));
        }
        out.push(("lnf_g".to_string(), self.lnf_g.clone()));
        out.push(("lnf_b".to_string(), self.lnf_b.clone()));
        out
    }

    fn forward_loss(&self, batch: &Batch, train: bool, rng: &mut StdRng) -> Var {
        batch.assert_well_formed();
        let logits = self.forward_logits(batch, train, rng);
        logits.cross_entropy(&batch.flat_targets(), batch.pad_id as usize)
    }

    fn quantized(&self) -> Option<Box<dyn InferenceModel>> {
        Some(Box::new(self.quantize()))
    }
}

/// An int8 weight-quantized, inference-only GPT-2.
///
/// Built from a trained [`Gpt2Lm`] via [`Gpt2Lm::quantize`]. Holds plain
/// tensors, not `Var`s — it cannot be trained, which is how the "training
/// stays f32" rule is enforced by construction. Decoding uses the int8
/// GEMM for all projections and an [`F16`] KV cache.
pub struct QuantGpt2Lm {
    name: String,
    config: Gpt2Config,
    /// f32 token embedding `[V, D]` (the lookup gathers single rows —
    /// quantizing it would save no meaningful time and cost accuracy).
    wte: Tensor,
    /// The tied LM head, quantized `[V, D]` output-major.
    wte_q: QuantizedMatrix,
    /// f32 position embedding `[max_t, D]`.
    wpe: Tensor,
    blocks: Vec<QuantBlock>,
    lnf_g: Tensor,
    lnf_b: Tensor,
}

impl QuantGpt2Lm {
    /// The config of the f32 model this was quantized from.
    pub fn config(&self) -> &Gpt2Config {
        &self.config
    }
}

impl InferenceModel for QuantGpt2Lm {
    fn name(&self) -> &str {
        &self.name
    }

    fn vocab_size(&self) -> usize {
        self.config.vocab
    }

    fn max_context(&self) -> usize {
        self.config.max_t
    }

    fn dtype(&self) -> DType {
        DType::I8
    }

    fn start_stream(&self) -> Box<dyn TokenStream + '_> {
        Box::new(QuantGpt2Stream {
            model: self,
            caches: (0..self.config.n_layers)
                .map(|_| KvCache::new(self.config.d_model))
                .collect(),
            scratch: DecodeScratch::new(),
            pos: 0,
        })
    }
}

/// Incremental decoding state for the quantized model: one f16 KV cache
/// per block plus the shared attention scratch.
struct QuantGpt2Stream<'m> {
    model: &'m QuantGpt2Lm,
    caches: Vec<KvCache<F16>>,
    scratch: DecodeScratch,
    pos: usize,
}

impl TokenStream for QuantGpt2Stream<'_> {
    fn push(&mut self, token: u32) -> Tensor {
        let push_start = obs::Clock::now();
        let m = self.model;
        let d = m.config.d_model;
        assert!(
            (token as usize) < m.config.vocab,
            "token {token} out of vocab"
        );
        let pos_idx = self.pos.min(m.config.max_t - 1);
        let tok = ops::embedding(&m.wte, &[token as usize]).reshape(&[d]);
        let pos = ops::embedding(&m.wpe, &[pos_idx]).reshape(&[d]);
        let mut x = ops::add(&tok, &pos);
        for (blk, cache) in m.blocks.iter().zip(&mut self.caches) {
            x = blk.forward_incremental(&x, m.config.n_heads, cache, &mut self.scratch, None);
        }
        self.pos += 1;
        let (ln, _, _) = ops::layer_norm(&x.reshape(&[1, d]), &m.lnf_g, &m.lnf_b, 1e-5);
        let out = qmatmul_transb(&ln, &m.wte_q).reshape(&[m.config.vocab]);
        obs::static_histogram!("gpt2_quant_push_ns").observe(push_start.elapsed_ns());
        out
    }

    fn position(&self) -> usize {
        self.pos
    }
}

/// Incremental decoding state: one KV cache per block, plus the reusable
/// attention scratch shared by all blocks (they run sequentially).
struct Gpt2Stream<'m> {
    model: &'m Gpt2Lm,
    caches: Vec<KvCache>,
    scratch: DecodeScratch,
    pos: usize,
}

impl TokenStream for Gpt2Stream<'_> {
    fn push(&mut self, token: u32) -> Tensor {
        let push_start = obs::Clock::now();
        let m = self.model;
        let d = m.config.d_model;
        assert!(
            (token as usize) < m.config.vocab,
            "token {token} out of vocab"
        );
        // Ring the position index so generation can exceed max_t: the
        // cache keeps full history but positions clamp to the last slot
        // (degrades gracefully rather than panicking mid-recipe).
        let pos_idx = self.pos.min(m.config.max_t - 1);
        let tok = ops::embedding(&m.wte.value(), &[token as usize]).reshape(&[d]);
        let pos = ops::embedding(&m.wpe.value(), &[pos_idx]).reshape(&[d]);
        let mut x = ops::add(&tok, &pos);
        for (blk, cache) in m.blocks.iter().zip(&mut self.caches) {
            x = blk.forward_incremental(&x, m.config.n_heads, cache, &mut self.scratch);
        }
        self.pos += 1;
        let (ln, _, _) = ops::layer_norm(
            &x.reshape(&[1, d]),
            &m.lnf_g.value(),
            &m.lnf_b.value(),
            1e-5,
        );
        let out = ops::matmul_transb(&ln, &m.wte.value()).reshape(&[m.config.vocab]);
        obs::static_histogram!("gpt2_push_ns").observe(push_start.elapsed_ns());
        out
    }

    fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratatouille_tensor::optim::{zero_grads, Adam, Optimizer};

    fn tiny() -> Gpt2Lm {
        Gpt2Lm::new(Gpt2Config {
            name: "tiny-gpt".into(),
            vocab: 16,
            d_model: 16,
            n_heads: 2,
            n_layers: 2,
            d_ff: 32,
            max_t: 16,
            dropout: 0.0,
            seed: 5,
        })
    }

    fn toy_batch() -> Batch {
        let seq: Vec<u32> = (0..13).map(|i| 2 + (i % 4)).collect();
        Batch {
            inputs: vec![seq[..12].to_vec(); 3],
            targets: vec![seq[1..].to_vec(); 3],
            pad_id: 0,
        }
    }

    #[test]
    fn loss_starts_near_uniform() {
        let m = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let loss = m.forward_loss(&toy_batch(), false, &mut rng).value().item();
        assert!((loss - (16f32).ln()).abs() < 0.8, "loss {loss}");
    }

    #[test]
    fn learns_a_cycle() {
        let m = tiny();
        let params = m.parameters();
        let mut opt = Adam::new(0.01);
        let mut rng = StdRng::seed_from_u64(1);
        let mut last = f32::MAX;
        for _ in 0..80 {
            zero_grads(&params);
            let loss = m.forward_loss(&toy_batch(), true, &mut rng);
            last = loss.value().item();
            loss.backward();
            opt.step(&params);
        }
        assert!(last < 0.5, "cycle not learned: {last}");
    }

    #[test]
    fn stream_matches_cycle_after_training() {
        let m = tiny();
        let params = m.parameters();
        let mut opt = Adam::new(0.01);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            zero_grads(&params);
            let loss = m.forward_loss(&toy_batch(), true, &mut rng);
            loss.backward();
            opt.step(&params);
        }
        // cycle 2,3,4,5,2,3,…: after pushing 2,3,4 next must be 5
        let mut s = m.start_stream();
        s.push(2);
        s.push(3);
        let logits = s.push(4);
        assert_eq!(ops::argmax_last(&logits), vec![5]);
        assert_eq!(s.position(), 3);
    }

    #[test]
    fn all_parameters_receive_gradients() {
        let m = tiny();
        let mut rng = StdRng::seed_from_u64(3);
        let loss = m.forward_loss(&toy_batch(), true, &mut rng);
        loss.backward();
        for (name, p) in m.named_parameters() {
            assert!(p.grad().is_some(), "no gradient for `{name}`");
        }
    }

    #[test]
    fn stream_survives_beyond_max_context() {
        let m = tiny();
        let mut s = m.start_stream();
        for i in 0..40 {
            let l = s.push(2 + (i % 4) as u32);
            assert!(!l.has_non_finite(), "NaN at position {i}");
        }
        assert_eq!(s.position(), 40);
    }

    #[test]
    fn quantized_stream_matches_trained_cycle() {
        // The int8 model must preserve a confidently-learned prediction.
        let m = tiny();
        let params = m.parameters();
        let mut opt = Adam::new(0.01);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            zero_grads(&params);
            let loss = m.forward_loss(&toy_batch(), true, &mut rng);
            loss.backward();
            opt.step(&params);
        }
        let q = m.quantize();
        assert_eq!(InferenceModel::name(&q), "tiny-gpt [int8]");
        assert_eq!(InferenceModel::dtype(&q), DType::I8);
        let mut s = InferenceModel::start_stream(&q);
        s.push(2);
        s.push(3);
        let logits = s.push(4);
        assert!(!logits.has_non_finite());
        assert_eq!(ops::argmax_last(&logits), vec![5]);
        // via the LanguageModel hook the same variant is reachable
        let via_hook = LanguageModel::quantized(&m).expect("gpt2 offers int8");
        assert_eq!(via_hook.dtype(), DType::I8);
    }

    #[test]
    fn quantized_stream_is_deterministic() {
        let m = tiny();
        let q = m.quantize();
        let run = || {
            let mut s = InferenceModel::start_stream(&q);
            let mut bits = Vec::new();
            for i in 0..8 {
                let l = s.push(2 + (i % 4) as u32);
                bits.extend(l.data().iter().map(|v| v.to_bits()));
            }
            bits
        };
        assert_eq!(run(), run(), "quantized decode must be reproducible");
    }

    #[test]
    fn num_params_scales_with_tier() {
        let distil = Gpt2Lm::new(Gpt2Config::distil(500));
        let medium = Gpt2Lm::new(Gpt2Config::medium(500));
        assert!(
            medium.num_params() > 2 * distil.num_params(),
            "medium {} vs distil {}",
            medium.num_params(),
            distil.num_params()
        );
    }

    #[test]
    #[should_panic(expected = "exceeds max context")]
    fn overlong_batch_rejected() {
        let m = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let long = Batch {
            inputs: vec![vec![1; 32]],
            targets: vec![vec![1; 32]],
            pad_id: 0,
        };
        let _ = m.forward_loss(&long, false, &mut rng);
    }
}

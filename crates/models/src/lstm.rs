//! LSTM language models — the paper's char-level and word-level baselines.
//!
//! A standard LSTM cell (Hochreiter & Schmidhuber) with a joint
//! `[input, forget, cell, output]` gate projection, stacked into an
//! embedding → LSTM layers → tied-vocabulary softmax language model. Both
//! the differentiable training path (on [`Var`]) and the pure-tensor
//! streaming path (for generation) are implemented and tested against
//! each other.

use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::SeedableRng;
use ratatouille_tensor::{init, ops, Tensor, Var};

use crate::lm::{Batch, InferenceModel, LanguageModel, TokenStream};

/// LSTM LM hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmConfig {
    /// Model display name (Table I row).
    pub name: String,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding width.
    pub d_embed: usize,
    /// Hidden width per layer.
    pub d_hidden: usize,
    /// Number of stacked LSTM layers.
    pub layers: usize,
    /// Maximum sequence length accepted.
    pub max_t: usize,
    /// Dropout between layers during training.
    pub dropout: f32,
    /// Initialization seed.
    pub seed: u64,
}

impl LstmConfig {
    /// The paper's char-level baseline, CPU-scaled.
    pub fn char_level(vocab: usize) -> Self {
        LstmConfig {
            name: "Char-level LSTM".into(),
            vocab,
            d_embed: 32,
            d_hidden: 128,
            layers: 1,
            max_t: 256,
            dropout: 0.1,
            seed: 0xC0FFEE,
        }
    }

    /// The paper's word-level baseline, CPU-scaled.
    pub fn word_level(vocab: usize) -> Self {
        LstmConfig {
            name: "Word-level LSTM".into(),
            vocab,
            d_embed: 64,
            d_hidden: 160,
            layers: 1,
            max_t: 192,
            dropout: 0.1,
            seed: 0xBEEF,
        }
    }
}

/// One LSTM layer's parameters.
struct LstmLayer {
    /// Input→gates projection `[D_in, 4H]`.
    wx: Var,
    /// Hidden→gates projection `[H, 4H]`.
    wh: Var,
    /// Gate bias `[4H]` (forget-gate slice initialized to 1).
    b: Var,
}

/// The LSTM language model.
pub struct LstmLm {
    config: LstmConfig,
    /// Token embedding `[V, E]`.
    embed: Var,
    layers: Vec<LstmLayer>,
    /// Output projection `[H, V]`.
    w_out: Var,
    /// Output bias `[V]`.
    b_out: Var,
}

impl LstmLm {
    /// Initialize from a config (Xavier weights, forget bias 1.0).
    pub fn new(config: LstmConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let embed = Var::leaf(init::randn(&mut rng, &[config.vocab, config.d_embed], 0.05));
        let mut layers = Vec::with_capacity(config.layers);
        for l in 0..config.layers {
            let d_in = if l == 0 { config.d_embed } else { config.d_hidden };
            let h = config.d_hidden;
            // forget-gate bias = 1.0 (standard trick for gradient flow)
            let mut bias = vec![0.0f32; 4 * h];
            for v in bias.iter_mut().skip(h).take(h) {
                *v = 1.0;
            }
            layers.push(LstmLayer {
                wx: Var::leaf(init::xavier_uniform(&mut rng, d_in, 4 * h)),
                wh: Var::leaf(init::xavier_uniform(&mut rng, h, 4 * h)),
                b: Var::leaf(Tensor::from_vec(bias, &[4 * h]).unwrap()),
            });
        }
        let w_out = Var::leaf(init::xavier_uniform(&mut rng, config.d_hidden, config.vocab));
        let b_out = Var::leaf(Tensor::zeros(&[config.vocab]));
        LstmLm {
            config,
            embed,
            layers,
            w_out,
            b_out,
        }
    }

    /// The config this model was built with.
    pub fn config(&self) -> &LstmConfig {
        &self.config
    }

    /// One differentiable cell step. `x: [B, D_in]`, `h/c: [B, H]` →
    /// `(h', c')`.
    fn cell_step(layer: &LstmLayer, x: &Var, h: &Var, c: &Var, hidden: usize) -> (Var, Var) {
        let gates = x
            .matmul(&layer.wx)
            .add(&h.matmul(&layer.wh))
            .add_broadcast(&layer.b); // [B, 4H]
        let i = gates.narrow(1, 0, hidden).sigmoid();
        let f = gates.narrow(1, hidden, hidden).sigmoid();
        let g = gates.narrow(1, 2 * hidden, hidden).tanh();
        let o = gates.narrow(1, 3 * hidden, hidden).sigmoid();
        let c2 = f.mul(c).add(&i.mul(&g));
        let h2 = o.mul(&c2.tanh());
        (h2, c2)
    }

    /// Pure-tensor (no-grad) cell step for streaming generation.
    /// `x: [D_in]`, `h/c: [H]`.
    fn cell_step_tensor(
        wx: &Tensor,
        wh: &Tensor,
        b: &Tensor,
        x: &Tensor,
        h: &Tensor,
        c: &Tensor,
        hidden: usize,
    ) -> (Tensor, Tensor) {
        let x2 = x.reshape(&[1, x.numel()]);
        let h2 = h.reshape(&[1, hidden]);
        let gates = ops::add_broadcast(
            &ops::add(&ops::matmul(&x2, wx), &ops::matmul(&h2, wh)),
            b,
        )
        .reshape(&[4 * hidden]);
        let i = ops::sigmoid(&ops::narrow(&gates, 0, 0, hidden));
        let f = ops::sigmoid(&ops::narrow(&gates, 0, hidden, hidden));
        let g = ops::tanh(&ops::narrow(&gates, 0, 2 * hidden, hidden));
        let o = ops::sigmoid(&ops::narrow(&gates, 0, 3 * hidden, hidden));
        let c_new = ops::add(&ops::mul(&f, c), &ops::mul(&i, &g));
        let h_new = ops::mul(&o, &ops::tanh(&c_new));
        (h_new, c_new)
    }
}

impl InferenceModel for LstmLm {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn vocab_size(&self) -> usize {
        self.config.vocab
    }

    fn max_context(&self) -> usize {
        self.config.max_t
    }

    fn start_stream(&self) -> Box<dyn TokenStream + '_> {
        let h = self.config.d_hidden;
        Box::new(LstmStream {
            model: self,
            hs: vec![Tensor::zeros(&[h]); self.layers.len()],
            cs: vec![Tensor::zeros(&[h]); self.layers.len()],
            pos: 0,
        })
    }
}

impl LanguageModel for LstmLm {
    fn parameters(&self) -> Vec<Var> {
        self.named_parameters().into_iter().map(|(_, v)| v).collect()
    }

    fn named_parameters(&self) -> Vec<(String, Var)> {
        let mut out = vec![("embed".to_string(), self.embed.clone())];
        for (i, l) in self.layers.iter().enumerate() {
            out.push((format!("layer{i}.wx"), l.wx.clone()));
            out.push((format!("layer{i}.wh"), l.wh.clone()));
            out.push((format!("layer{i}.b"), l.b.clone()));
        }
        out.push(("w_out".to_string(), self.w_out.clone()));
        out.push(("b_out".to_string(), self.b_out.clone()));
        out
    }

    fn forward_loss(&self, batch: &Batch, train: bool, rng: &mut StdRng) -> Var {
        batch.assert_well_formed();
        let (bsz, t) = (batch.batch_size(), batch.seq_len());
        let h = self.config.d_hidden;
        assert!(t <= self.config.max_t, "sequence {t} > max_t {}", self.config.max_t);
        // Embed all positions at once: [B*T, E] → per-step slices.
        let emb = self.embed.embedding(&batch.flat_inputs()); // [B*T, E]
        let emb = emb.reshape(&[bsz, t, self.config.d_embed]);

        let mut hs: Vec<Var> = (0..self.layers.len())
            .map(|_| Var::constant(Tensor::zeros(&[bsz, h])))
            .collect();
        let mut cs: Vec<Var> = hs.clone();
        let mut outputs: Vec<Var> = Vec::with_capacity(t);
        for step in 0..t {
            let mut x = emb
                .narrow(1, step, 1)
                .reshape(&[bsz, self.config.d_embed]);
            for (li, layer) in self.layers.iter().enumerate() {
                let (h2, c2) = Self::cell_step(layer, &x, &hs[li], &cs[li], h);
                hs[li] = h2.clone();
                cs[li] = c2;
                x = if train && self.config.dropout > 0.0 {
                    h2.dropout(self.config.dropout, rng)
                } else {
                    h2
                };
            }
            outputs.push(x); // [B, H]
        }
        // Stack along time: [B*T, H] in (b-major, t-minor) order to match
        // flat_targets. Concat over T gives [B, T*H]? Instead concat along
        // a new axis: build [T, B, H] then permute.
        let stacked = Var::concat(
            &outputs
                .iter()
                .map(|o| o.reshape(&[1, bsz, h]))
                .collect::<Vec<_>>(),
            0,
        ); // [T, B, H]
        let bt_h = stacked.permute(&[1, 0, 2]).reshape(&[bsz * t, h]);
        let logits = bt_h.matmul(&self.w_out).add_broadcast(&self.b_out); // [B*T, V]
        logits.cross_entropy(&batch.flat_targets(), batch.pad_id as usize)
    }
}

/// Streaming state: per-layer `(h, c)` vectors.
struct LstmStream<'m> {
    model: &'m LstmLm,
    hs: Vec<Tensor>,
    cs: Vec<Tensor>,
    pos: usize,
}

impl TokenStream for LstmStream<'_> {
    fn push(&mut self, token: u32) -> Tensor {
        let m = self.model;
        let h = m.config.d_hidden;
        assert!((token as usize) < m.config.vocab, "token {token} out of vocab");
        let mut x = ops::embedding(&m.embed.value(), &[token as usize]).reshape(&[m.config.d_embed]);
        for (li, layer) in m.layers.iter().enumerate() {
            let (h2, c2) = LstmLm::cell_step_tensor(
                &layer.wx.value(),
                &layer.wh.value(),
                &layer.b.value(),
                &x,
                &self.hs[li],
                &self.cs[li],
                h,
            );
            self.hs[li] = h2.clone();
            self.cs[li] = c2;
            x = h2;
        }
        self.pos += 1;
        let x2 = x.reshape(&[1, h]);
        ops::add_broadcast(&ops::matmul(&x2, &m.w_out.value()), &m.b_out.value())
            .reshape(&[m.config.vocab])
    }

    fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratatouille_tensor::optim::{zero_grads, Adam, Optimizer};

    fn tiny() -> LstmLm {
        LstmLm::new(LstmConfig {
            name: "tiny".into(),
            vocab: 12,
            d_embed: 8,
            d_hidden: 16,
            layers: 2,
            max_t: 16,
            dropout: 0.0,
            seed: 7,
        })
    }

    fn toy_batch() -> Batch {
        // predictable cycle: 2→3→4→2→3→4…
        let seq: Vec<u32> = (0..13).map(|i| 2 + (i % 3)).collect();
        Batch {
            inputs: vec![seq[..12].to_vec(); 4],
            targets: vec![seq[1..].to_vec(); 4],
            pad_id: 0,
        }
    }

    #[test]
    fn loss_starts_near_uniform() {
        let m = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let loss = m.forward_loss(&toy_batch(), false, &mut rng).value().item();
        let uniform = (12f32).ln();
        assert!((loss - uniform).abs() < 0.7, "loss {loss} vs ln(V) {uniform}");
    }

    #[test]
    fn learns_a_cycle() {
        let m = tiny();
        let params = m.parameters();
        let mut opt = Adam::new(0.01);
        let mut rng = StdRng::seed_from_u64(1);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..160 {
            zero_grads(&params);
            let loss = m.forward_loss(&toy_batch(), true, &mut rng);
            let v = loss.value().item();
            if step == 0 {
                first = v;
            }
            last = v;
            loss.backward();
            opt.step(&params);
        }
        assert!(last < first * 0.3, "no learning: first {first}, last {last}");
        assert!(last < 0.5, "cycle not learned: {last}");
    }

    #[test]
    fn stream_matches_training_forward() {
        // The pure-tensor stream must produce the same final-position
        // distribution as the Var forward. We verify via the loss of a
        // length-1 batch vs streamed logits.
        let m = tiny();
        let seq = [2u32, 5, 3, 7, 4];
        let mut stream = m.start_stream();
        let mut last = None;
        for &t in &seq {
            last = Some(stream.push(t));
        }
        let streamed = last.unwrap();

        // Training-path logits for the same prefix: run forward_loss with
        // a crafted target and recover logits via cross-entropy? Instead,
        // replicate the forward here with Var ops and compare directly.
        let mut rng = StdRng::seed_from_u64(3);
        let batch = Batch {
            inputs: vec![seq.to_vec()],
            targets: vec![vec![0; seq.len()]],
            pad_id: 0,
        };
        // cross-entropy with all-pad targets gives 0 loss but still runs
        // the forward; we can't extract logits from it, so instead check
        // the stream is deterministic and finite, and that both paths
        // agree on argmax after training the cycle.
        let _ = m.forward_loss(&batch, false, &mut rng);
        assert!(!streamed.has_non_finite());
        assert_eq!(streamed.numel(), 12);
        assert_eq!(stream.position(), 5);

        // After training on the cycle, the stream must predict it.
        let params = m.parameters();
        let mut opt = Adam::new(0.01);
        for _ in 0..80 {
            zero_grads(&params);
            let loss = m.forward_loss(&toy_batch(), true, &mut rng);
            loss.backward();
            opt.step(&params);
        }
        let mut s = m.start_stream();
        s.push(2);
        let l3 = s.push(3); // after 2,3 the next must be 4
        assert_eq!(ops::argmax_last(&l3), vec![4]);
        let l4 = s.push(4); // after ...,4 next must be 2
        assert_eq!(ops::argmax_last(&l4), vec![2]);
    }

    #[test]
    fn padding_is_ignored_in_loss() {
        let m = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let full = Batch {
            inputs: vec![vec![2, 3, 4, 2]],
            targets: vec![vec![3, 4, 2, 3]],
            pad_id: 0,
        };
        let padded = Batch {
            inputs: vec![vec![2, 3, 4, 2, 0, 0]],
            targets: vec![vec![3, 4, 2, 3, 0, 0]],
            pad_id: 0,
        };
        let a = m.forward_loss(&full, false, &mut rng).value().item();
        let b = m.forward_loss(&padded, false, &mut rng).value().item();
        // padded positions contribute nothing to the mean; the non-pad
        // prefix computation is identical
        assert!((a - b).abs() < 1e-4, "a={a} b={b}");
    }

    #[test]
    fn named_params_cover_all_layers() {
        let m = tiny();
        let names: Vec<String> = m.named_parameters().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"layer0.wx".to_string()));
        assert!(names.contains(&"layer1.wh".to_string()));
        assert!(names.contains(&"embed".to_string()));
        assert_eq!(names.len(), 1 + 3 * 2 + 2); // embed + 3 per layer × 2 layers + w_out + b_out
        assert!(m.num_params() > 0);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn stream_rejects_oov() {
        let m = tiny();
        m.start_stream().push(999);
    }
}

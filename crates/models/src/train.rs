//! The training loop: Adam + warmup-cosine schedule + gradient clipping,
//! with crash-safe checkpointing and exact resume.
//!
//! The paper trained on Google Colab, "which lead to session crashing
//! after every 5 to 7 epochs" — so resumability is a first-class feature
//! here: checkpoints capture model weights, optimizer moments, the step
//! counter and the data RNG, and a resumed run continues the exact same
//! trajectory (verified by `checkpoint_resume_is_exact`).

use std::path::{Path, PathBuf};

use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::SeedableRng;
use ratatouille_tensor::optim::{clip_grad_norm, zero_grads, Adam, LrSchedule, Optimizer, WarmupCosine};
use ratatouille_tensor::serialize::TensorMap;
use ratatouille_tensor::{Tensor, TensorError};

use crate::data::Dataset;
use crate::lm::LanguageModel;

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Total optimization steps.
    pub steps: usize,
    /// Sequences per batch.
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Linear warmup steps.
    pub warmup: usize,
    /// Global-norm gradient clip (0 disables).
    pub clip: f32,
    /// Decoupled weight decay (0 = plain Adam).
    pub weight_decay: f32,
    /// Save a checkpoint every N steps (0 disables).
    pub checkpoint_every: usize,
    /// Where checkpoints are written.
    pub checkpoint_path: Option<PathBuf>,
    /// Micro-batches accumulated per optimizer step (1 = off). Gradients
    /// add across backward passes, so this trades wall-clock for the
    /// effective batch size a GPU run would use.
    pub grad_accum: usize,
    /// Data-sampling RNG seed.
    pub seed: u64,
    /// Print a progress line every N steps (0 = silent).
    pub log_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            steps: 200,
            batch_size: 8,
            lr: 3e-3,
            warmup: 20,
            clip: 1.0,
            weight_decay: 0.01,
            checkpoint_every: 0,
            checkpoint_path: None,
            grad_accum: 1,
            seed: 1234,
            log_every: 0,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStats {
    /// Loss at each step.
    pub losses: Vec<f32>,
    /// Steps actually executed in this call (≤ config.steps on resume).
    pub steps_run: usize,
    /// Wall-clock seconds spent inside the loop.
    pub wall_secs: f64,
    /// Tokens processed per second.
    pub tokens_per_sec: f64,
}

impl TrainStats {
    /// Mean of the last `n` losses (training-end quality).
    pub fn final_loss(&self, n: usize) -> f32 {
        if self.losses.is_empty() {
            return f32::NAN;
        }
        let tail = &self.losses[self.losses.len().saturating_sub(n)..];
        ratatouille_util::accum::sum_f32(tail.iter().copied()) / tail.len() as f32
    }
}

/// A serializable snapshot of training state.
pub struct Checkpoint {
    /// Model weights by parameter name.
    pub weights: TensorMap,
    /// Optimization step the snapshot was taken at.
    pub step: u64,
}

impl Checkpoint {
    /// Capture model + optimizer + progress into one [`TensorMap`].
    fn capture(model: &dyn LanguageModel, opt: &Adam, step: u64, data_rng_seed: u64) -> TensorMap {
        let mut map = TensorMap::new();
        for (name, p) in model.named_parameters() {
            map.insert(format!("model.{name}"), p.value());
        }
        for (i, st) in opt.export_state().into_iter().enumerate() {
            if let Some((m, v)) = st {
                map.insert(format!("adam.m.{i}"), m);
                map.insert(format!("adam.v.{i}"), v);
            }
        }
        map.insert("meta.step", Tensor::scalar(step as f32));
        map.insert("meta.adam_steps", Tensor::scalar(opt.steps() as f32));
        // split the u64 seed across two f32-exact halves
        map.insert(
            "meta.rng_seed_lo",
            Tensor::scalar((data_rng_seed & 0xFFFF_FFFF) as u32 as f32),
        );
        map.insert(
            "meta.rng_seed_hi",
            Tensor::scalar((data_rng_seed >> 32) as u32 as f32),
        );
        map
    }

    /// Restore model weights in place; returns `(step, adam_steps, seed)`.
    fn restore(
        map: &TensorMap,
        model: &dyn LanguageModel,
        opt: &mut Adam,
    ) -> Result<(u64, u64, u64), TensorError> {
        for (name, p) in model.named_parameters() {
            let t = map.require(&format!("model.{name}"))?;
            p.set_value(t.clone());
        }
        let n_params = model.parameters().len();
        let mut state = Vec::with_capacity(n_params);
        for i in 0..n_params {
            match (map.get(&format!("adam.m.{i}")), map.get(&format!("adam.v.{i}"))) {
                (Some(m), Some(v)) => state.push(Some((m.clone(), v.clone()))),
                _ => state.push(None),
            }
        }
        opt.import_state(state);
        let step = map.require("meta.step")?.item() as u64;
        let adam_steps = map.require("meta.adam_steps")?.item() as u64;
        opt.set_steps(adam_steps);
        let lo = map.require("meta.rng_seed_lo")?.item() as u64;
        let hi = map.require("meta.rng_seed_hi")?.item() as u64;
        Ok((step, adam_steps, (hi << 32) | lo))
    }
}

/// Trains a [`LanguageModel`] on a [`Dataset`].
pub struct Trainer<'a> {
    model: &'a dyn LanguageModel,
    dataset: &'a Dataset,
    config: TrainConfig,
}

impl<'a> Trainer<'a> {
    /// A trainer over borrowed model and data.
    pub fn new(model: &'a dyn LanguageModel, dataset: &'a Dataset, config: TrainConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        Trainer {
            model,
            dataset,
            config,
        }
    }

    /// Train from scratch.
    pub fn train(&self) -> TrainStats {
        let opt = Adam::adamw(self.config.lr, self.config.weight_decay);
        self.run(opt, 0, self.config.seed)
    }

    /// Resume from a checkpoint file written by an earlier (possibly
    /// crashed) run, continuing the exact trajectory.
    pub fn resume(&self, path: &Path) -> Result<TrainStats, TensorError> {
        let map = TensorMap::load(path)?;
        let mut opt = Adam::adamw(self.config.lr, self.config.weight_decay);
        let (step, _, _seed) = Checkpoint::restore(&map, self.model, &mut opt)?;
        // Data RNG: reseed deterministically from (seed, step) so the
        // resumed stream continues rather than repeats.
        Ok(self.run(opt, step as usize, self.config.seed))
    }

    fn run(&self, mut opt: Adam, start_step: usize, seed: u64) -> TrainStats {
        let params = self.model.parameters();
        let schedule = WarmupCosine {
            peak: self.config.lr,
            floor: self.config.lr * 0.1,
            warmup: self.config.warmup as u64,
            total: self.config.steps as u64,
        };
        let mut losses = Vec::with_capacity(self.config.steps.saturating_sub(start_step));
        let started = obs::Clock::now();
        let mut tokens = 0usize;
        for step in start_step..self.config.steps {
            let _span = obs::span!("train.step");
            let step_start = obs::Clock::now();
            // Deterministic per-step RNGs: resume at step k reproduces the
            // exact batch and dropout stream the uninterrupted run saw.
            let mut data_rng = StdRng::seed_from_u64(seed ^ (step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut drop_rng = StdRng::seed_from_u64(seed ^ (step as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
            zero_grads(&params);
            let accum = self.config.grad_accum.max(1);
            let mut loss_val = 0.0f32;
            for micro in 0..accum {
                let _ = micro;
                let batch = self.dataset.sample_batch(self.config.batch_size, &mut data_rng);
                tokens += batch.real_tokens();
                let loss = self.model.forward_loss(&batch, true, &mut drop_rng);
                // scale so the accumulated gradient is the mean over
                // micro-batches, matching a single big batch
                let loss = if accum > 1 {
                    loss.scale(1.0 / accum as f32)
                } else {
                    loss
                };
                // xlint: allow(accum-discipline): each term is produced by an interleaved backward(); the loop cannot be folded into an iterator reduction
                loss_val += loss.value().item();
                loss.backward();
            }
            assert!(
                loss_val.is_finite(),
                "training diverged at step {step}: loss = {loss_val}"
            );
            losses.push(loss_val);
            if self.config.clip > 0.0 {
                clip_grad_norm(&params, self.config.clip);
            }
            opt.set_lr(schedule.lr_at(step as u64));
            opt.step(&params);

            obs::static_histogram!("train_step_ns").observe(step_start.elapsed_ns());
            obs::static_counter!("train_steps_total").inc();
            obs::static_gauge!("train_loss").set(loss_val as f64);

            if self.config.log_every > 0 && step % self.config.log_every == 0 {
                eprintln!(
                    "[{}] step {step}/{} loss {loss_val:.4} lr {:.2e}",
                    self.model.name(),
                    self.config.steps,
                    opt.lr()
                );
            }
            if self.config.checkpoint_every > 0
                && (step + 1) % self.config.checkpoint_every == 0
            {
                if let Some(path) = &self.config.checkpoint_path {
                    let map = Checkpoint::capture(self.model, &opt, (step + 1) as u64, seed);
                    map.save(path).expect("checkpoint write failed");
                }
            }
        }
        // final checkpoint
        if let Some(path) = &self.config.checkpoint_path {
            let map = Checkpoint::capture(self.model, &opt, self.config.steps as u64, seed);
            map.save(path).expect("checkpoint write failed");
        }
        let wall = started.elapsed_secs();
        let tokens_per_sec = if wall > 0.0 { tokens as f64 / wall } else { 0.0 };
        obs::static_counter!("train_tokens_total").add(tokens as u64);
        obs::static_gauge!("train_tokens_per_sec").set(tokens_per_sec);
        obs::metrics::gauge(&format!(
            "train_tokens_per_sec{{model=\"{}\"}}",
            crate::sample::metric_label(self.model.name())
        ))
        .set(tokens_per_sec);
        TrainStats {
            steps_run: losses.len(),
            tokens_per_sec,
            losses,
            wall_secs: wall,
        }
    }

    /// Mean evaluation loss (no dropout) over up to `max_batches` random
    /// batches.
    pub fn eval_loss(&self, max_batches: usize) -> f32 {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xEAEA);
        let n = max_batches.max(1);
        let sum = ratatouille_util::accum::sum_f32((0..n).map(|_| {
            let batch = self.dataset.sample_batch(self.config.batch_size, &mut rng);
            self.model.forward_loss(&batch, false, &mut rng).value().item()
        }));
        sum / n as f32
    }

    /// Per-token NLLs over the dataset's first `max_blocks` blocks —
    /// feeds the perplexity metric.
    pub fn token_nlls(&self, max_blocks: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Vec::new();
        for (inputs, targets) in self.dataset.iter_examples().take(max_blocks) {
            let batch = crate::lm::Batch {
                inputs: vec![inputs],
                targets: vec![targets],
                pad_id: 0,
            };
            // mean loss × token count ≈ sum; push the mean per block for
            // each real token to weight correctly
            let mean = self
                .model
                .forward_loss(&batch, false, &mut rng)
                .value()
                .item();
            for _ in 0..batch.real_tokens() {
                out.push(mean);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstm::{LstmConfig, LstmLm};
    use ratatouille_tokenizers::{CharTokenizer, Tokenizer};

    fn setup() -> (LstmLm, Dataset, CharTokenizer) {
        let corpus = vec!["abcabcabcabc abcabc abcabcabc".to_string(); 20];
        let tok = CharTokenizer::train(&corpus);
        let ds = Dataset::from_texts(&corpus, &tok, 16);
        let model = LstmLm::new(LstmConfig {
            name: "t".into(),
            vocab: tok.vocab_size(),
            d_embed: 8,
            d_hidden: 24,
            layers: 1,
            max_t: 16,
            dropout: 0.0,
            seed: 3,
        });
        (model, ds, tok)
    }

    #[test]
    fn training_reduces_loss() {
        let (model, ds, _) = setup();
        let cfg = TrainConfig {
            steps: 40,
            batch_size: 4,
            lr: 5e-3,
            warmup: 5,
            ..Default::default()
        };
        let stats = Trainer::new(&model, &ds, cfg).train();
        assert_eq!(stats.steps_run, 40);
        assert!(
            stats.final_loss(5) < stats.losses[0] * 0.6,
            "first {} final {}",
            stats.losses[0],
            stats.final_loss(5)
        );
        assert!(stats.tokens_per_sec > 0.0);
    }

    #[test]
    fn deterministic_training() {
        let cfg = TrainConfig {
            steps: 10,
            batch_size: 2,
            ..Default::default()
        };
        let (m1, ds, _) = setup();
        let s1 = Trainer::new(&m1, &ds, cfg.clone()).train();
        let (m2, ds2, _) = setup();
        let s2 = Trainer::new(&m2, &ds2, cfg).train();
        assert_eq!(s1.losses, s2.losses);
    }

    #[test]
    fn checkpoint_resume_is_exact() {
        let dir = std::env::temp_dir().join(format!("rt-train-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("model.ckpt");

        // Uninterrupted 20-step run.
        let cfg_full = TrainConfig {
            steps: 20,
            batch_size: 2,
            checkpoint_every: 0,
            ..Default::default()
        };
        let (m_full, ds, _) = setup();
        let full = Trainer::new(&m_full, &ds, cfg_full.clone()).train();

        // Crash after 10 steps (checkpoint written at step 10), resume.
        let cfg_crash = TrainConfig {
            steps: 10,
            checkpoint_every: 10,
            checkpoint_path: Some(ckpt.clone()),
            ..cfg_full.clone()
        };
        let (m_crash, ds2, _) = setup();
        let first_half = Trainer::new(&m_crash, &ds2, cfg_crash).train();

        let cfg_resume = TrainConfig {
            steps: 20,
            checkpoint_path: None,
            ..cfg_full
        };
        let (m_resumed, ds3, _) = setup();
        let second_half = Trainer::new(&m_resumed, &ds3, cfg_resume)
            .resume(&ckpt)
            .unwrap();

        let mut glued = first_half.losses.clone();
        glued.extend(&second_half.losses);
        assert_eq!(glued.len(), full.losses.len());
        for (i, (a, b)) in glued.iter().zip(&full.losses).enumerate() {
            assert!(
                (a - b).abs() < 1e-4,
                "loss diverged at step {i}: resumed {a} vs full {b}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grad_accum_matches_bigger_batch_direction() {
        // 2 micro-batches of 2 ≈ one batch of 4: losses won't be identical
        // (different sampled batches) but training must still converge and
        // the accumulated run must record one loss per optimizer step.
        let (model, ds, _) = setup();
        let cfg = TrainConfig {
            steps: 30,
            batch_size: 2,
            grad_accum: 2,
            lr: 5e-3,
            ..Default::default()
        };
        let stats = Trainer::new(&model, &ds, cfg).train();
        assert_eq!(stats.losses.len(), 30);
        assert!(
            stats.final_loss(5) < stats.losses[0] * 0.7,
            "accumulated training failed to learn: {} -> {}",
            stats.losses[0],
            stats.final_loss(5)
        );
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let dir = std::env::temp_dir().join(format!("rt-train-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.ckpt");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let (model, ds, _) = setup();
        let t = Trainer::new(&model, &ds, TrainConfig::default());
        assert!(t.resume(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eval_loss_and_nlls() {
        let (model, ds, tok) = setup();
        let t = Trainer::new(
            &model,
            &ds,
            TrainConfig {
                steps: 0,
                ..Default::default()
            },
        );
        let loss = t.eval_loss(2);
        assert!((loss - (tok.vocab_size() as f32).ln()).abs() < 1.0);
        let nlls = t.token_nlls(2);
        assert!(!nlls.is_empty());
        assert!(nlls.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let corpus: Vec<String> = vec![];
        let tok = CharTokenizer::train(&["ab"]);
        let ds = Dataset::from_texts(&corpus, &tok, 8);
        let model = LstmLm::new(LstmConfig::char_level(tok.vocab_size()));
        Trainer::new(&model, &ds, TrainConfig::default());
    }
}

//! The common language-model interface.

use ratatouille_util::rng::StdRng;
use ratatouille_tensor::{DType, Tensor, Var};

/// A training batch: `inputs[b][t]` predicts `targets[b][t]`. All rows are
/// padded to equal length with the pad id; padded target positions carry
/// `pad_id` and are excluded from the loss.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Input token ids, `[B][T]`, rectangular.
    pub inputs: Vec<Vec<u32>>,
    /// Target token ids (inputs shifted by one), `[B][T]`, rectangular.
    pub targets: Vec<Vec<u32>>,
    /// The padding id (ignored in the loss).
    pub pad_id: u32,
}

impl Batch {
    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.inputs.len()
    }

    /// Sequence length (0 for an empty batch).
    pub fn seq_len(&self) -> usize {
        self.inputs.first().map(Vec::len).unwrap_or(0)
    }

    /// Number of non-padding target tokens.
    pub fn real_tokens(&self) -> usize {
        self.targets
            .iter()
            .flatten()
            .filter(|&&t| t != self.pad_id)
            .count()
    }

    /// Flattened inputs as usize ids (embedding-lookup friendly).
    pub fn flat_inputs(&self) -> Vec<usize> {
        self.inputs.iter().flatten().map(|&t| t as usize).collect()
    }

    /// Flattened targets as usize ids.
    pub fn flat_targets(&self) -> Vec<usize> {
        self.targets.iter().flatten().map(|&t| t as usize).collect()
    }

    /// Validate rectangularity and target alignment.
    ///
    /// # Panics
    /// Panics on ragged rows or mismatched input/target shapes.
    pub fn assert_well_formed(&self) {
        assert_eq!(self.inputs.len(), self.targets.len(), "batch rows mismatch");
        let t = self.seq_len();
        for (i, (inp, tgt)) in self.inputs.iter().zip(&self.targets).enumerate() {
            assert_eq!(inp.len(), t, "ragged input row {i}");
            assert_eq!(tgt.len(), t, "ragged target row {i}");
        }
    }
}

/// The decode-side view of a model: everything the sampler needs, and
/// nothing the trainer needs.
///
/// Every [`LanguageModel`] is an `InferenceModel` (supertrait). Quantized
/// inference-only models implement *only* this trait — they have no `Var`
/// parameters and no `forward_loss`, which is how "training stays f32" is
/// enforced statically: there is no trainable surface on an int8 model.
pub trait InferenceModel {
    /// Human-readable model name (Table I row label).
    fn name(&self) -> &str;

    /// Vocabulary size the output head covers.
    fn vocab_size(&self) -> usize;

    /// Maximum context length the model accepts.
    fn max_context(&self) -> usize;

    /// The weight storage dtype this model decodes with.
    fn dtype(&self) -> DType {
        DType::F32
    }

    /// Begin incremental decoding. Pushing a token returns the logits for
    /// the *next* position.
    fn start_stream(&self) -> Box<dyn TokenStream + '_>;

    /// The continuous-batching decode interface, when this model offers
    /// one that satisfies the batch-invariance preconditions (see
    /// [`crate::batch::BatchStepModel::batch_ready`]).
    ///
    /// The default is `None`: LSTMs (recurrent state, no KV cache) and
    /// models whose GEMM widths break batch invariance simply aren't
    /// batchable, and the serving layer falls back to per-request
    /// workers.
    fn batch_model(&self) -> Option<&dyn crate::batch::BatchStepModel> {
        None
    }
}

/// An autoregressive language model trainable with this crate's trainer
/// and decodable with its sampler.
pub trait LanguageModel: InferenceModel {
    /// All trainable parameters, in a stable order.
    fn parameters(&self) -> Vec<Var>;

    /// `(name, parameter)` pairs, stable order — checkpoint keys.
    fn named_parameters(&self) -> Vec<(String, Var)>;

    /// Mean next-token cross-entropy over the batch (a scalar [`Var`]).
    /// `train` enables dropout; `rng` drives dropout masks.
    fn forward_loss(&self, batch: &Batch, train: bool, rng: &mut StdRng) -> Var;

    /// Total parameter count (model-size reporting).
    fn num_params(&self) -> usize {
        self.parameters().iter().map(|p| p.value().numel()).sum()
    }

    /// A weight-quantized (int8) inference-only variant of this model, if
    /// the architecture supports one. Quantization copies the weights, so
    /// the returned model is self-contained and `'static`.
    ///
    /// The default is `None`: LSTMs and any model without a quantized
    /// path simply don't offer one, and callers fall back to f32.
    fn quantized(&self) -> Option<Box<dyn InferenceModel>> {
        None
    }
}

/// Incremental decoding state: recurrent state for LSTMs, a KV cache for
/// transformers.
pub trait TokenStream {
    /// Feed one token; returns the next-token logits `[V]`.
    fn push(&mut self, token: u32) -> Tensor;

    /// Number of tokens consumed so far.
    fn position(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accounting() {
        let b = Batch {
            inputs: vec![vec![2, 5, 6], vec![2, 7, 0]],
            targets: vec![vec![5, 6, 3], vec![7, 3, 0]],
            pad_id: 0,
        };
        b.assert_well_formed();
        assert_eq!(b.batch_size(), 2);
        assert_eq!(b.seq_len(), 3);
        assert_eq!(b.real_tokens(), 5);
        assert_eq!(b.flat_inputs(), vec![2, 5, 6, 2, 7, 0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_batch_detected() {
        Batch {
            inputs: vec![vec![1, 2], vec![1]],
            targets: vec![vec![2, 3], vec![3]],
            pad_id: 0,
        }
        .assert_well_formed();
    }

    #[test]
    fn empty_batch() {
        let b = Batch {
            inputs: vec![],
            targets: vec![],
            pad_id: 0,
        };
        b.assert_well_formed();
        assert_eq!(b.seq_len(), 0);
        assert_eq!(b.real_tokens(), 0);
    }
}

//! Pre-LN transformer blocks with causal multi-head self-attention —
//! the GPT-2 building block (Radford et al., 2019).
//!
//! Both paths are implemented:
//! * the differentiable training forward over [`Var`] graphs;
//! * a pure-tensor incremental forward with a per-layer KV cache for
//!   O(T) per-token generation (the paper's complaint about RecipeGPT
//!   was generation latency — the cache is the fix).

use ratatouille_util::rng::StdRng;
use ratatouille_tensor::ops::{qmatmul_transb, quantize_per_row, QuantizedMatrix};
use ratatouille_tensor::{init, ops, Element, Tensor, Var, F16};

use crate::kv_block::{BlockPool, SeqKv};

/// One transformer block's parameters.
pub struct Block {
    /// Pre-attention layer-norm gain `[D]`.
    pub ln1_g: Var,
    /// Pre-attention layer-norm bias `[D]`.
    pub ln1_b: Var,
    /// Joint QKV projection `[D, 3D]`.
    pub w_qkv: Var,
    /// QKV bias `[3D]`.
    pub b_qkv: Var,
    /// Attention output projection `[D, D]`.
    pub w_o: Var,
    /// Attention output bias `[D]`.
    pub b_o: Var,
    /// Pre-MLP layer-norm gain `[D]`.
    pub ln2_g: Var,
    /// Pre-MLP layer-norm bias `[D]`.
    pub ln2_b: Var,
    /// MLP up-projection `[D, F]`.
    pub w_up: Var,
    /// MLP up bias `[F]`.
    pub b_up: Var,
    /// MLP down-projection `[F, D]`.
    pub w_down: Var,
    /// MLP down bias `[D]`.
    pub b_down: Var,
}

impl Block {
    /// GPT-2 initialization: N(0, 0.02), residual projections scaled by
    /// `1/sqrt(2·n_layers)`.
    pub fn new(rng: &mut StdRng, d: usize, d_ff: usize, n_layers: usize) -> Self {
        let resid_scale = 1.0 / ((2 * n_layers) as f32).sqrt();
        Block {
            ln1_g: Var::leaf(Tensor::ones(&[d])),
            ln1_b: Var::leaf(Tensor::zeros(&[d])),
            w_qkv: Var::leaf(init::randn(rng, &[d, 3 * d], 0.02)),
            b_qkv: Var::leaf(Tensor::zeros(&[3 * d])),
            w_o: Var::leaf(init::randn(rng, &[d, d], 0.02 * resid_scale)),
            b_o: Var::leaf(Tensor::zeros(&[d])),
            ln2_g: Var::leaf(Tensor::ones(&[d])),
            ln2_b: Var::leaf(Tensor::zeros(&[d])),
            w_up: Var::leaf(init::randn(rng, &[d, d_ff], 0.02)),
            b_up: Var::leaf(Tensor::zeros(&[d_ff])),
            w_down: Var::leaf(init::randn(rng, &[d_ff, d], 0.02 * resid_scale)),
            b_down: Var::leaf(Tensor::zeros(&[d])),
        }
    }

    /// Named parameters with a `prefix`.
    pub fn named_parameters(&self, prefix: &str) -> Vec<(String, Var)> {
        [
            ("ln1_g", &self.ln1_g),
            ("ln1_b", &self.ln1_b),
            ("w_qkv", &self.w_qkv),
            ("b_qkv", &self.b_qkv),
            ("w_o", &self.w_o),
            ("b_o", &self.b_o),
            ("ln2_g", &self.ln2_g),
            ("ln2_b", &self.ln2_b),
            ("w_up", &self.w_up),
            ("b_up", &self.b_up),
            ("w_down", &self.w_down),
            ("b_down", &self.b_down),
        ]
        .into_iter()
        .map(|(n, v)| (format!("{prefix}.{n}"), v.clone()))
        .collect()
    }

    /// Differentiable forward: `x [B, T, D]` → `[B, T, D]`.
    pub fn forward(
        &self,
        x: &Var,
        heads: usize,
        dropout: f32,
        train: bool,
        rng: &mut StdRng,
    ) -> Var {
        let (b, t, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        assert_eq!(d % heads, 0, "d_model {d} not divisible by heads {heads}");
        let dh = d / heads;

        // --- attention sublayer (pre-LN) ---
        let ln = x
            .reshape(&[b * t, d])
            .layer_norm(&self.ln1_g, &self.ln1_b, 1e-5);
        let qkv = ln.matmul(&self.w_qkv).add_broadcast(&self.b_qkv); // [B*T, 3D]
        let split = |start: usize| -> Var {
            qkv.narrow(1, start, d)
                .reshape(&[b, t, heads, dh])
                .permute(&[0, 2, 1, 3])
                .reshape(&[b * heads, t, dh])
        };
        let q = split(0);
        let k = split(d);
        let v = split(2 * d);
        let scores = q.bmm_transb(&k).scale(1.0 / (dh as f32).sqrt()); // [B*H, T, T]
        let mut weights = scores.causal_masked_softmax();
        if train && dropout > 0.0 {
            weights = weights.dropout(dropout, rng);
        }
        let ctx = weights
            .bmm(&v) // [B*H, T, Dh]
            .reshape(&[b, heads, t, dh])
            .permute(&[0, 2, 1, 3])
            .reshape(&[b * t, d]);
        let mut attn_out = ctx.matmul(&self.w_o).add_broadcast(&self.b_o);
        if train && dropout > 0.0 {
            attn_out = attn_out.dropout(dropout, rng);
        }
        let x1 = x.reshape(&[b * t, d]).add(&attn_out);

        // --- MLP sublayer (pre-LN) ---
        let ln2 = x1.layer_norm(&self.ln2_g, &self.ln2_b, 1e-5);
        let mut mlp = ln2
            .matmul(&self.w_up)
            .add_broadcast(&self.b_up)
            .gelu()
            .matmul(&self.w_down)
            .add_broadcast(&self.b_down);
        if train && dropout > 0.0 {
            mlp = mlp.dropout(dropout, rng);
        }
        x1.add(&mlp).reshape(&[b, t, d])
    }

    /// Incremental pure-tensor forward for one new token.
    ///
    /// `x: [D]` is the token's current representation; `cache` holds the
    /// previously-computed K and V rows for this layer and is appended to.
    /// `scratch` carries the per-stream score/prob/context buffers so the
    /// attention inner loop allocates nothing per generated token.
    pub fn forward_incremental<E: Element>(
        &self,
        x: &Tensor,
        heads: usize,
        cache: &mut KvCache<E>,
        scratch: &mut DecodeScratch,
    ) -> Tensor {
        let d = x.numel();
        let dh = d / heads;
        let x_row = x.reshape(&[1, d]);

        let (ln, _, _) = ops::layer_norm(&x_row, &self.ln1_g.value(), &self.ln1_b.value(), 1e-5);
        let qkv = ops::add_broadcast(&ops::matmul(&ln, &self.w_qkv.value()), &self.b_qkv.value());
        let qkv_d = qkv.data();
        let q = &qkv_d[..d];
        cache.push_slices(&qkv_d[d..2 * d], &qkv_d[2 * d..3 * d]);

        let scale = 1.0 / (dh as f32).sqrt();
        attend(q, heads, dh, 0, cache, scratch, scale);
        // attn = ctx @ W_o + b_o, streamed row-wise through W_o so the
        // context vector never round-trips through a temporary tensor.
        let w_o = self.w_o.value();
        let wod = w_o.data();
        scratch.attn.clear();
        scratch.attn.extend_from_slice(self.b_o.value().data());
        for (i, &c) in scratch.ctx.iter().enumerate() {
            ops::axpy(c, &wod[i * d..(i + 1) * d], &mut scratch.attn);
        }
        let x1_vec: Vec<f32> = x_row
            .data()
            .iter()
            .zip(&scratch.attn)
            .map(|(&xv, &av)| xv + av)
            .collect();
        let x1 = Tensor::from_vec(x1_vec, &[1, d]).unwrap();

        let (ln2, _, _) = ops::layer_norm(&x1, &self.ln2_g.value(), &self.ln2_b.value(), 1e-5);
        let up = ops::gelu(&ops::add_broadcast(
            &ops::matmul(&ln2, &self.w_up.value()),
            &self.b_up.value(),
        ));
        let mlp = ops::add_broadcast(&ops::matmul(&up, &self.w_down.value()), &self.b_down.value());
        ops::add(&x1, &mlp).reshape(&[d])
    }

    /// Batched incremental forward: one new token for each of `B`
    /// sequences at once, K/V landing in the block pool.
    ///
    /// `x` is `[B, D]` (row `i` is sequence `i`'s residual stream);
    /// `seqs[i]` must have a writable slot prepared for this step
    /// ([`SeqKv::prepare_write`]), and the row written here becomes
    /// readable at position `seqs[i].len()` (committed by the caller
    /// after all layers ran).
    ///
    /// Every op in this path — `layer_norm`, the three GEMMs, the
    /// per-sequence [`attend`] — computes each output row independently
    /// of the batch's other rows (DESIGN §10's batch-invariance
    /// argument), which is what makes a sequence's token stream
    /// identical solo or batched.
    pub fn forward_incremental_batch(
        &self,
        x: &Tensor,
        heads: usize,
        layer: usize,
        pool: &mut BlockPool,
        seqs: &mut [&mut SeqKv],
        scratch: &mut BatchScratch,
    ) -> Tensor {
        let (b, d) = (x.dims()[0], x.dims()[1]);
        debug_assert_eq!(b, seqs.len());
        let dh = d / heads;

        let (ln, _, _) = ops::layer_norm(x, &self.ln1_g.value(), &self.ln1_b.value(), 1e-5);
        let qkv = ops::add_broadcast(&ops::matmul(&ln, &self.w_qkv.value()), &self.b_qkv.value());
        let qkv_d = qkv.data();
        for (i, seq) in seqs.iter().enumerate() {
            let row = &qkv_d[i * 3 * d..(i + 1) * 3 * d];
            seq.write(pool, layer, &row[d..2 * d], &row[2 * d..3 * d]);
        }

        // All K/V writes for this step are in; reborrow the pool shared
        // so every sequence's read-only layer view (including the
        // just-written row at position len) can cross worker threads.
        let pool: &BlockPool = pool;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut ctx = std::mem::take(&mut scratch.ctx);
        ctx.clear();
        ctx.resize(b * d, 0.0);
        {
            let seats = scratch.seats(b);
            let mut slots: Vec<AttnSlot<'_>> = Vec::with_capacity(b);
            let mut ctx_tail: &mut [f32] = &mut ctx;
            for ((i, seq), seat) in seqs.iter().enumerate().zip(seats.iter_mut()) {
                let (out, rest) = ctx_tail.split_at_mut(d);
                ctx_tail = rest;
                slots.push(AttnSlot {
                    q: &qkv_d[i * 3 * d..i * 3 * d + d],
                    // The just-written row participates: reader length
                    // len + 1.
                    view: seq.layer_view(pool, layer, seq.len() + 1),
                    scratch: seat,
                    out,
                });
            }
            attend_batch(&mut slots, heads, dh, scale);
        }
        // xlint: allow(transitive-panic-in-request-path): `ctx` is built as exactly `b * d` floats in this function; the shape cannot mismatch
        let ctx = Tensor::from_vec(ctx, &[b, d]).expect("ctx is [B, D]");
        let attn = ops::add_broadcast(&ops::matmul(&ctx, &self.w_o.value()), &self.b_o.value());
        // Round the ctx buffer back into the arena for the next layer
        // (sole owner here, so this is a move, not a copy).
        scratch.ctx = ctx.into_vec();
        let x1 = ops::add(x, &attn);

        let (ln2, _, _) = ops::layer_norm(&x1, &self.ln2_g.value(), &self.ln2_b.value(), 1e-5);
        let up = ops::gelu(&ops::add_broadcast(
            &ops::matmul(&ln2, &self.w_up.value()),
            &self.b_up.value(),
        ));
        let mlp = ops::add_broadcast(&ops::matmul(&up, &self.w_down.value()), &self.b_down.value());
        ops::add(&x1, &mlp)
    }

}

/// Position-ordered read access to one layer's cached K/V rows.
///
/// The attention kernel [`attend`] is generic over this, so the same
/// inner loops serve the contiguous per-stream [`KvCache`] and the
/// block-allocated [`crate::kv_block::SeqLayerKv`] view of the batched
/// pool — storage layout changes, numerics cannot.
pub trait KvRows {
    /// Cache storage dtype.
    type Elem: Element;

    /// Number of readable positions.
    fn len(&self) -> usize;

    /// Whether no positions are readable.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached K row of `pos`.
    fn k_row(&self, pos: usize) -> &[Self::Elem];

    /// The cached V row of `pos`.
    fn v_row(&self, pos: usize) -> &[Self::Elem];

    /// The longest storage-contiguous run of K rows starting at `pos`
    /// and not reaching past `end`, as one flat `[n * d]` slice.
    ///
    /// [`attend`] walks the cache run-by-run so the inner loop is a
    /// plain `chunks_exact` over contiguous memory instead of a
    /// `k_row` call (with its block-table div/mod) per position. The
    /// default is the degenerate single-row run, which is always
    /// correct; contiguous stores override it with bigger runs.
    fn k_run(&self, pos: usize, end: usize) -> &[Self::Elem] {
        debug_assert!(pos < end && end <= self.len());
        self.k_row(pos)
    }

    /// The V-side counterpart of [`KvRows::k_run`].
    fn v_run(&self, pos: usize, end: usize) -> &[Self::Elem] {
        debug_assert!(pos < end && end <= self.len());
        self.v_row(pos)
    }
}

impl<E: Element> KvRows for KvCache<E> {
    type Elem = E;

    fn len(&self) -> usize {
        self.len
    }

    fn k_row(&self, pos: usize) -> &[E] {
        KvCache::k_row(self, pos)
    }

    fn v_row(&self, pos: usize) -> &[E] {
        KvCache::v_row(self, pos)
    }

    // The flat [T, D] buffers are fully contiguous: the whole remaining
    // window is one run.
    fn k_run(&self, pos: usize, end: usize) -> &[E] {
        &self.k[pos * self.d..end * self.d]
    }

    fn v_run(&self, pos: usize, end: usize) -> &[E] {
        &self.v[pos * self.d..end * self.d]
    }
}

/// The fused incremental-attention kernel, generic over the KV-cache
/// storage (see [`KvRows`]) and its dtype.
///
/// Scores `q` (the current position's f32 query, all heads concatenated)
/// against cached positions `start..len`, softmaxes per head, and
/// accumulates the context vector into `scratch.ctx`. `start` is 0 for
/// full causal attention; local-attention layers (GPT-Neo) pass
/// `len - window` so each position only attends to the trailing window.
///
/// Both passes walk the cache in storage-contiguous runs
/// ([`KvRows::k_run`]), so for block-pooled caches the per-position
/// block-table indirection (a hardware div/mod per row, comparable in
/// cost to the head dot itself at small `dh`) is paid once per block
/// instead of once per position. The position visit order and the
/// per-position/per-head accumulation chain are exactly those of the
/// row-at-a-time loop ([`attend_by_row`]), so the results are
/// bit-identical — run iteration changes address arithmetic, never
/// reduction order (DESIGN §10).
///
/// Each dtype's inner loops come from [`Element::dot_with_f32`] /
/// [`Element::axpy_into_f32`]; for `E = f32` these are exactly the
/// `ops::dot` / `ops::axpy` kernels the pre-generic code called, so the
/// f32 decode path is bit-identical to what it was.
pub(crate) fn attend<C: KvRows>(
    q: &[f32],
    heads: usize,
    dh: usize,
    start: usize,
    cache: &C,
    scratch: &mut DecodeScratch,
    scale: f32,
) {
    let t = cache.len();
    debug_assert!(start < t, "attention window must cover the current token");
    let tw = t - start;
    let d = heads * dh;
    scratch.resize(heads, tw, d);
    // Fused score pass: one sweep over the K cache; each cached row is
    // read once, all heads scored against it.
    let mut pos = start;
    while pos < t {
        let run = cache.k_run(pos, t);
        debug_assert!(!run.is_empty() && run.len() % d == 0);
        for (j, k_row) in run.chunks_exact(d).enumerate() {
            let rel = pos - start + j;
            for h in 0..heads {
                scratch.scores[h * tw + rel] =
                    C::Elem::dot_with_f32(&q[h * dh..(h + 1) * dh], &k_row[h * dh..(h + 1) * dh])
                        * scale;
            }
        }
        pos += run.len() / d;
    }
    for h in 0..heads {
        ops::softmax_row(
            &scratch.scores[h * tw..(h + 1) * tw],
            &mut scratch.probs[h * tw..(h + 1) * tw],
        );
    }
    // Fused context pass: one sweep over the V cache.
    scratch.ctx.fill(0.0);
    let mut pos = start;
    while pos < t {
        let run = cache.v_run(pos, t);
        for (j, v_row) in run.chunks_exact(d).enumerate() {
            let rel = pos - start + j;
            for h in 0..heads {
                C::Elem::axpy_into_f32(
                    scratch.probs[h * tw + rel],
                    &v_row[h * dh..(h + 1) * dh],
                    &mut scratch.ctx[h * dh..(h + 1) * dh],
                );
            }
        }
        pos += run.len() / d;
    }
}

/// The pre-sweep row-at-a-time attention loop, kept verbatim as the
/// reference implementation: [`AttentionMode::Serial`] runs it so the
/// paged-attention benches compare against the real PR 7 baseline, and
/// the unit tests pin `attend` bit-identical to it over block-pooled
/// caches.
pub(crate) fn attend_by_row<C: KvRows>(
    q: &[f32],
    heads: usize,
    dh: usize,
    start: usize,
    cache: &C,
    scratch: &mut DecodeScratch,
    scale: f32,
) {
    let t = cache.len();
    debug_assert!(start < t, "attention window must cover the current token");
    let tw = t - start;
    scratch.resize(heads, tw, heads * dh);
    for pos in start..t {
        let k_row = cache.k_row(pos);
        for h in 0..heads {
            scratch.scores[h * tw + (pos - start)] =
                C::Elem::dot_with_f32(&q[h * dh..(h + 1) * dh], &k_row[h * dh..(h + 1) * dh])
                    * scale;
        }
    }
    for h in 0..heads {
        ops::softmax_row(
            &scratch.scores[h * tw..(h + 1) * tw],
            &mut scratch.probs[h * tw..(h + 1) * tw],
        );
    }
    scratch.ctx.fill(0.0);
    for pos in start..t {
        let v_row = cache.v_row(pos);
        for h in 0..heads {
            C::Elem::axpy_into_f32(
                scratch.probs[h * tw + (pos - start)],
                &v_row[h * dh..(h + 1) * dh],
                &mut scratch.ctx[h * dh..(h + 1) * dh],
            );
        }
    }
}

/// How [`Block::forward_incremental_batch`] executes the per-sequence
/// attention phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionMode {
    /// The paged-attention sweep: all `B` sequences' [`attend`] calls
    /// dispatched as independent tasks on the persistent worker pool
    /// (`tensor::par::scatter_mut`), run-based inner loops. The default.
    Sweep,
    /// The PR 7 baseline: `B` serial [`attend_by_row`] calls on the
    /// caller thread. Kept for A/B benchmarking and as the determinism
    /// reference — both modes produce bit-identical streams.
    Serial,
}

/// Process-wide attention-mode knob, mirroring `par::set_num_threads`: a
/// programmatic setter (never an environment read — xlint's
/// forbidden-nondeterminism rule) that benches and smoke tests flip to
/// A/B the sweep against the serial baseline. 0 = Sweep, 1 = Serial.
static ATTENTION_MODE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Select the attention execution mode for subsequent batched steps.
///
/// Mode only changes *scheduling*, never numerics: the determinism
/// contract (DESIGN §10) guarantees identical token streams under either
/// mode, which `batched_smoke` asserts in CI.
pub fn set_attention_mode(mode: AttentionMode) {
    let v = match mode {
        AttentionMode::Sweep => 0,
        AttentionMode::Serial => 1,
    };
    ATTENTION_MODE.store(v, std::sync::atomic::Ordering::Relaxed);
}

/// The currently selected [`AttentionMode`].
pub fn attention_mode() -> AttentionMode {
    match ATTENTION_MODE.load(std::sync::atomic::Ordering::Relaxed) {
        1 => AttentionMode::Serial,
        _ => AttentionMode::Sweep,
    }
}

/// One sequence's slice of the batched attention phase: its query row,
/// its (shared, read-only) layer view of the block pool, its private
/// scratch seat, and the `[D]` slice of the batch context buffer its
/// result lands in. Slots borrow disjoint data, so a `&mut [AttnSlot]`
/// can be scattered across worker threads.
pub(crate) struct AttnSlot<'a> {
    pub(crate) q: &'a [f32],
    pub(crate) view: crate::kv_block::SeqLayerKv<'a>,
    pub(crate) scratch: &'a mut DecodeScratch,
    pub(crate) out: &'a mut [f32],
}

/// Execute the attention phase for a batch of prepared slots.
///
/// [`AttentionMode::Sweep`] fans the slots across the persistent worker
/// pool — task `i` is always sequence `i`, the chunk→worker mapping is
/// deterministic, and each task runs its sequence's positions strictly
/// in order, so parallelism lives *across* sequences only and every
/// sequence's reduction order is fixed regardless of batch composition
/// or thread count (DESIGN §10). Wall time lands in the `attend_ns`
/// histogram either way, so `/metrics` shows attention's share of a
/// decode step.
pub(crate) fn attend_batch(slots: &mut [AttnSlot<'_>], heads: usize, dh: usize, scale: f32) {
    let start = obs::Clock::now();
    match attention_mode() {
        AttentionMode::Sweep => {
            // SAFETY(disjoint: slots[i] — each task owns one `AttnSlot` and writes only its own `out`/`scratch`)
            ratatouille_tensor::par::scatter_mut(slots, |_, slot| {
                attend(slot.q, heads, dh, 0, &slot.view, slot.scratch, scale);
                slot.out.copy_from_slice(&slot.scratch.ctx);
            });
        }
        AttentionMode::Serial => {
            for slot in slots.iter_mut() {
                attend_by_row(slot.q, heads, dh, 0, &slot.view, slot.scratch, scale);
                slot.out.copy_from_slice(&slot.scratch.ctx);
            }
        }
    }
    obs::static_histogram!("attend_ns").observe(start.elapsed_ns());
}

/// An int8 weight-quantized transformer block for inference.
///
/// Each weight matrix is quantized once (per output row, symmetric,
/// scale = `max_abs / 127`) and stored output-major so the decode matmul
/// is a row-wise int8 dot against the f32 activation row. Layer norms and
/// biases stay f32 — they are tiny and precision-critical. The KV cache
/// for quantized decode stores [`F16`], halving cache memory traffic.
pub struct QuantBlock {
    ln1_g: Tensor,
    ln1_b: Tensor,
    /// QKV projection, quantized `[3D, D]` (output-major).
    w_qkv: QuantizedMatrix,
    b_qkv: Tensor,
    /// Attention output projection, quantized `[D, D]` (output-major).
    w_o: QuantizedMatrix,
    b_o: Tensor,
    ln2_g: Tensor,
    ln2_b: Tensor,
    /// MLP up-projection, quantized `[F, D]` (output-major).
    w_up: QuantizedMatrix,
    b_up: Tensor,
    /// MLP down-projection, quantized `[D, F]` (output-major).
    w_down: QuantizedMatrix,
    b_down: Tensor,
}

impl QuantBlock {
    /// Quantize an f32 [`Block`]'s weights. Weight matrices are stored
    /// `[in, out]` for training; the quantized copies are transposed to
    /// output-major `[out, in]` so each output element is one int8 row dot.
    pub fn from_block(block: &Block) -> Self {
        let q = |w: &Var| quantize_per_row(&ops::transpose2d(&w.value()));
        QuantBlock {
            ln1_g: block.ln1_g.value(),
            ln1_b: block.ln1_b.value(),
            w_qkv: q(&block.w_qkv),
            b_qkv: block.b_qkv.value(),
            w_o: q(&block.w_o),
            b_o: block.b_o.value(),
            ln2_g: block.ln2_g.value(),
            ln2_b: block.ln2_b.value(),
            w_up: q(&block.w_up),
            b_up: block.b_up.value(),
            w_down: q(&block.w_down),
            b_down: block.b_down.value(),
        }
    }

    /// Incremental quantized forward for one new token (mirrors
    /// [`Block::forward_incremental`]).
    ///
    /// `window` limits attention to the trailing `window` positions
    /// (GPT-Neo local layers); `None` is full causal attention.
    pub fn forward_incremental(
        &self,
        x: &Tensor,
        heads: usize,
        cache: &mut KvCache<F16>,
        scratch: &mut DecodeScratch,
        window: Option<usize>,
    ) -> Tensor {
        let d = x.numel();
        let dh = d / heads;
        let x_row = x.reshape(&[1, d]);

        let (ln, _, _) = ops::layer_norm(&x_row, &self.ln1_g, &self.ln1_b, 1e-5);
        let qkv = ops::add_broadcast(&qmatmul_transb(&ln, &self.w_qkv), &self.b_qkv);
        let qkv_d = qkv.data();
        let q = &qkv_d[..d];
        cache.push_slices(&qkv_d[d..2 * d], &qkv_d[2 * d..3 * d]);

        let t = cache.len();
        let start = window.map_or(0, |w| t.saturating_sub(w));
        let scale = 1.0 / (dh as f32).sqrt();
        attend(q, heads, dh, start, cache, scratch, scale);

        let ctx_row = Tensor::from_vec(scratch.ctx.clone(), &[1, d]).expect("ctx is [d]");
        let attn = ops::add_broadcast(&qmatmul_transb(&ctx_row, &self.w_o), &self.b_o);
        let x1 = ops::add(&x_row, &attn);

        let (ln2, _, _) = ops::layer_norm(&x1, &self.ln2_g, &self.ln2_b, 1e-5);
        // `gelu_fast`: a few-ULP tanh approximation, far below the int8
        // quantization error already accepted on this path. The f32 block
        // keeps the exact `gelu`, so f32 decode numerics are untouched.
        let up = ops::gelu_fast(&ops::add_broadcast(
            &qmatmul_transb(&ln2, &self.w_up),
            &self.b_up,
        ));
        let mlp = ops::add_broadcast(&qmatmul_transb(&up, &self.w_down), &self.b_down);
        ops::add(&x1, &mlp).reshape(&[d])
    }
}

/// Reusable per-stream buffers for [`Block::forward_incremental`]: the
/// attention scores/probs (`[heads * t]`), the context vector (`[d]`) and
/// the projected attention output (`[d]`). One instance lives in each
/// decode stream and is shared across layers (layers run sequentially),
/// so the per-token attention loop performs zero heap allocations.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    scores: Vec<f32>,
    probs: Vec<f32>,
    ctx: Vec<f32>,
    attn: Vec<f32>,
}

impl DecodeScratch {
    /// A fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    fn resize(&mut self, heads: usize, t: usize, d: usize) {
        self.scores.resize(heads * t, 0.0);
        self.probs.resize(heads * t, 0.0);
        self.ctx.resize(d, 0.0);
        self.attn.reserve(d);
    }
}

/// The batched-decode scratch arena: one [`DecodeScratch`] *seat* per
/// batch lane (each attention task owns its seat exclusively — scratch
/// ownership is what lets the sweep run lanes concurrently without any
/// sharing), plus the `[B, D]` context and embedding staging buffers the
/// engine round-trips through [`crate::Tensor`]s so a steady-state decode
/// step performs no per-step allocations for them.
///
/// Buffers grow to the high-water batch size and are then reused; seats
/// keep their identity across steps, so lane `i`'s scratch capacity
/// survives sequence turnover.
#[derive(Debug, Default)]
pub struct BatchScratch {
    seats: Vec<DecodeScratch>,
    pub(crate) ctx: Vec<f32>,
    pub(crate) x: Vec<f32>,
}

impl BatchScratch {
    /// A fresh arena; everything grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The first `b` scratch seats, growing the arena if the batch is
    /// the largest seen so far.
    pub(crate) fn seats(&mut self, b: usize) -> &mut [DecodeScratch] {
        if self.seats.len() < b {
            self.seats.resize_with(b, DecodeScratch::new);
        }
        &mut self.seats[..b]
    }
}

/// Per-layer key/value cache for incremental decoding: flat row-major
/// `[T, D]` buffers that grow as tokens are pushed.
///
/// Generic over the storage dtype: the f32 decode path uses the default
/// `KvCache<f32>` (rows stored verbatim, bit-identical to the pre-generic
/// cache); quantized decode uses `KvCache<F16>`, which narrows each
/// incoming row element with round-to-nearest-even and halves cache
/// memory. New rows always arrive as f32 (the block computes in f32).
#[derive(Debug, Clone, Default)]
pub struct KvCache<E: Element = f32> {
    k: Vec<E>,
    v: Vec<E>,
    d: usize,
    len: usize,
}

impl<E: Element> KvCache<E> {
    /// An empty cache for width-`d` keys/values.
    pub fn new(d: usize) -> Self {
        KvCache {
            k: Vec::new(),
            v: Vec::new(),
            d,
            len: 0,
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push_slices(&mut self, k_row: &[f32], v_row: &[f32]) {
        assert_eq!(k_row.len(), self.d);
        assert_eq!(v_row.len(), self.d);
        self.k.extend(k_row.iter().map(|&x| E::from_f32(x)));
        self.v.extend(v_row.iter().map(|&x| E::from_f32(x)));
        self.len += 1;
    }

    fn k_row(&self, pos: usize) -> &[E] {
        &self.k[pos * self.d..(pos + 1) * self.d]
    }

    fn v_row(&self, pos: usize) -> &[E] {
        &self.v[pos * self.d..(pos + 1) * self.d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratatouille_util::rng::SeedableRng;

    #[test]
    fn forward_shape_preserved() {
        let mut rng = StdRng::seed_from_u64(0);
        let block = Block::new(&mut rng, 16, 32, 2);
        let x = Var::constant(init::randn(&mut rng, &[2, 5, 16], 1.0));
        let y = block.forward(&x, 4, 0.0, false, &mut rng);
        assert_eq!(y.dims(), vec![2, 5, 16]);
        assert!(!y.value().has_non_finite());
    }

    #[test]
    fn causality_holds() {
        // Changing a future token must not change earlier outputs.
        let mut rng = StdRng::seed_from_u64(1);
        let block = Block::new(&mut rng, 8, 16, 1);
        let base = init::randn(&mut rng, &[1, 4, 8], 1.0);
        let mut altered = base.to_vec();
        for v in altered[3 * 8..].iter_mut() {
            *v += 5.0; // perturb only position 3
        }
        let altered = Tensor::from_vec(altered, &[1, 4, 8]).unwrap();
        let y1 = block
            .forward(&Var::constant(base), 2, 0.0, false, &mut rng)
            .value();
        let y2 = block
            .forward(&Var::constant(altered), 2, 0.0, false, &mut rng)
            .value();
        // positions 0..3 identical, position 3 differs
        for i in 0..3 * 8 {
            assert!(
                (y1.data()[i] - y2.data()[i]).abs() < 1e-5,
                "position {} leaked future info",
                i / 8
            );
        }
        let diff: f32 = (0..8)
            .map(|j| (y1.data()[3 * 8 + j] - y2.data()[3 * 8 + j]).abs())
            .sum();
        assert!(diff > 1e-3, "perturbation had no effect at its own position");
    }

    #[test]
    fn incremental_matches_full_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = 16;
        let block = Block::new(&mut rng, d, 32, 1);
        // random 6-token sequence
        let xs: Vec<Tensor> = (0..6).map(|_| init::randn(&mut rng, &[d], 1.0)).collect();
        let mut flat = Vec::new();
        for x in &xs {
            flat.extend_from_slice(x.data());
        }
        let full_in = Tensor::from_vec(flat, &[1, 6, d]).unwrap();
        let full_out = block
            .forward(&Var::constant(full_in), 4, 0.0, false, &mut rng)
            .value();

        let mut cache = KvCache::<f32>::new(d);
        let mut scratch = DecodeScratch::new();
        for (i, x) in xs.iter().enumerate() {
            let inc = block.forward_incremental(x, 4, &mut cache, &mut scratch);
            for j in 0..d {
                let a = full_out.data()[i * d + j];
                let b = inc.data()[j];
                assert!(
                    (a - b).abs() < 1e-4,
                    "mismatch at pos {i} dim {j}: full={a} inc={b}"
                );
            }
        }
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn quantized_incremental_tracks_f32_block() {
        // int8 weights + f16 KV cache should stay close to the f32 path;
        // the residual stream keeps the error small and bounded.
        let mut rng = StdRng::seed_from_u64(7);
        let d = 16;
        let block = Block::new(&mut rng, d, 32, 1);
        let qblock = QuantBlock::from_block(&block);
        let mut c32 = KvCache::<f32>::new(d);
        let mut cq = KvCache::<F16>::new(d);
        let mut s32 = DecodeScratch::new();
        let mut sq = DecodeScratch::new();
        for i in 0..6 {
            let x = init::randn(&mut rng, &[d], 1.0);
            let y32 = block.forward_incremental(&x, 4, &mut c32, &mut s32);
            let yq = qblock.forward_incremental(&x, 4, &mut cq, &mut sq, None);
            for j in 0..d {
                let (a, b) = (y32.data()[j], yq.data()[j]);
                assert!(
                    (a - b).abs() < 0.05,
                    "pos {i} dim {j} diverged: f32={a} int8={b}"
                );
            }
        }
        assert_eq!(cq.len(), 6);
    }

    #[test]
    fn quant_block_window_limits_attention() {
        // With a window of 1 each position attends only to itself, so the
        // output must differ from full attention once history exists —
        // and stay finite.
        let mut rng = StdRng::seed_from_u64(8);
        let d = 8;
        let block = Block::new(&mut rng, d, 32, 1);
        let qblock = QuantBlock::from_block(&block);
        let xs: Vec<Tensor> = (0..3).map(|_| init::randn(&mut rng, &[d], 1.0)).collect();
        let run = |window: Option<usize>| {
            let mut cache = KvCache::<F16>::new(d);
            let mut scratch = DecodeScratch::new();
            xs.iter()
                .map(|x| qblock.forward_incremental(x, 2, &mut cache, &mut scratch, window))
                .collect::<Vec<_>>()
        };
        let full = run(None);
        let windowed = run(Some(1));
        assert_eq!(full[0], windowed[0], "first token has no history");
        assert!(!windowed[2].has_non_finite());
        assert_ne!(full[2], windowed[2], "window had no effect");
    }

    #[test]
    fn block_is_trainable() {
        // Single block + mean target: gradients reach every parameter.
        let mut rng = StdRng::seed_from_u64(3);
        let block = Block::new(&mut rng, 8, 16, 1);
        let x = Var::leaf(init::randn(&mut rng, &[1, 3, 8], 1.0));
        let y = block.forward(&x, 2, 0.0, true, &mut rng);
        y.mean().backward();
        for (name, p) in block.named_parameters("blk") {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
        assert!(x.grad().is_some());
    }

    #[test]
    fn dropout_changes_training_forward_only() {
        let mut rng1 = StdRng::seed_from_u64(4);
        let block = Block::new(&mut rng1, 8, 16, 1);
        let x = Var::constant(init::randn(&mut rng1, &[1, 3, 8], 1.0));
        let mut ra = StdRng::seed_from_u64(10);
        let mut rb = StdRng::seed_from_u64(11);
        let eval_a = block.forward(&x, 2, 0.5, false, &mut ra).value();
        let eval_b = block.forward(&x, 2, 0.5, false, &mut rb).value();
        assert!(eval_a.allclose(&eval_b, 1e-6), "eval forward must be deterministic");
        let train_a = block.forward(&x, 2, 0.5, true, &mut ra).value();
        assert!(!train_a.allclose(&eval_a, 1e-6), "dropout should perturb training");
    }
}

//! Multi-sequence continuous-batching decode engine.
//!
//! [`BatchGenerator`] drives any [`BatchStepModel`] one *token step* at a
//! time: every step feeds one token for every active sequence through a
//! single batched forward (the `[B, D]` GEMMs of
//! `Block::forward_incremental_batch` replacing `B` separate GEMVs),
//! samples each sequence's next token with its own seeded RNG, retires
//! finished sequences immediately and leaves their pool blocks free for
//! the next admission. Prompts are *chunk-prefilled* — one prompt token
//! per step — so a newly admitted request never stalls the sequences
//! already decoding.
//!
//! ## The batch-determinism contract
//!
//! A sequence's token stream is **byte-identical** whether it decodes
//! solo or inside any batch composition, because
//!
//! 1. every batched op computes row `i` independently of rows `j ≠ i`
//!    (row-wise `layer_norm`/`add`/`gelu`, per-output-dot
//!    `matmul_transb`, and `matmul` whose per-element accumulation chain
//!    is the same in its unpacked (`M < 8`) and packed paths whenever
//!    `N % 16 == 0` — which [`BatchStepModel::batch_ready`] gates on);
//! 2. attention reads only the sequence's own K/V blocks;
//! 3. sampling draws from a per-sequence RNG seeded at admission; and
//! 4. shared prefix blocks hold bit-for-bit the rows the sequence would
//!    have computed itself (same weights, same tokens, same positions,
//!    same kernels).
//!
//! `tests/batch_equivalence.rs` pins (1)–(4) end to end; the serving
//! integration test pins them over HTTP.

use ratatouille_util::rng::{SeedableRng, StdRng};
use ratatouille_tensor::Tensor;

use std::sync::Arc;

use crate::kv_block::{BlockConfig, BlockPool, PoolExhausted, PrefixCache, SeqKv};
use crate::sample::{metric_label, select_token, SamplerConfig};
use crate::transformer::BatchScratch;

/// The shape facts the engine needs from a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelDims {
    /// Transformer layers (block-table depth).
    pub layers: usize,
    /// Residual width (K/V row width).
    pub d_model: usize,
}

/// A model that can decode a batch of sequences one token step at a
/// time against a [`BlockPool`]-backed KV cache.
///
/// Implemented by [`crate::gpt2::Gpt2Lm`]; discovered through
/// [`crate::lm::InferenceModel::batch_model`].
pub trait BatchStepModel {
    /// Layer count and width, for sizing the pool.
    fn dims(&self) -> ModelDims;

    /// Display name, labeling the engine's metrics (`{model="…"}`).
    /// Cardinality stays bounded because implementations come from the
    /// closed model registry.
    fn name(&self) -> &str;

    /// Whether this instance satisfies the batch-invariance preconditions
    /// (every GEMM `N` divisible by the pack width). When false the
    /// batched path must not be used — `batch_model()` returns `None`.
    fn batch_ready(&self) -> bool;

    /// One decode step: feed `tokens[i]` at `seqs[i]`'s next position and
    /// return each sequence's next-token logits as `[B]` tensors of
    /// `[V]`. Implementations must write K/V through the prepared slots
    /// and must **not** commit — the caller commits after consuming the
    /// logits.
    fn batch_step(
        &self,
        tokens: &[u32],
        pool: &mut BlockPool,
        seqs: &mut [&mut SeqKv],
        scratch: &mut BatchScratch,
    ) -> Vec<Tensor>;
}

/// Engine sizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEngineConfig {
    /// Tokens per KV block.
    pub block_tokens: usize,
    /// Total KV blocks in the arena.
    pub num_blocks: usize,
    /// Maximum concurrently decoding sequences.
    pub max_batch: usize,
    /// Maximum registered shared prefixes.
    pub prefix_cap: usize,
}

impl Default for BatchEngineConfig {
    fn default() -> Self {
        BatchEngineConfig {
            block_tokens: 16,
            num_blocks: 512,
            max_batch: 8,
            prefix_cap: 32,
        }
    }
}

/// Why an admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The batch already holds `max_batch` sequences — retry next step.
    BatchFull,
    /// The block pool cannot cover the request's worst case — the 429
    /// path.
    PoolExhausted,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::BatchFull => write!(f, "batch is full"),
            AdmitError::PoolExhausted => write!(f, "KV block pool exhausted"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// A request entering the batch.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// Prompt token ids (non-empty).
    pub prompt: Vec<u32>,
    /// Per-request sampling configuration.
    pub sampler: SamplerConfig,
    /// Seed of the request's private sampling RNG — the "same seed, same
    /// output" half of the determinism contract.
    pub seed: u64,
}

/// A retired sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedSeq {
    /// The id [`BatchGenerator::admit`] returned.
    pub id: u64,
    /// Generated tokens (no prompt, no stop token).
    pub tokens: Vec<u32>,
}

/// One step's outcome.
#[derive(Debug, Default)]
pub struct StepOutcome {
    /// Sequences that ran this step (0 = engine idle).
    pub batch_size: usize,
    /// Sequences retired this step, in admission order.
    pub finished: Vec<FinishedSeq>,
}

struct GenState {
    id: u64,
    prompt: Vec<u32>,
    /// Prompt tokens already in the cache (starts at the shared-prefix
    /// length; the prompt is fed one token per step until caught up).
    fed: usize,
    seq: SeqKv,
    cfg: SamplerConfig,
    rng: StdRng,
    out: Vec<u32>,
    /// The token to feed next once the prompt is exhausted.
    last: u32,
    stopped: bool,
    registered: bool,
    /// Where TTFT counts from: the request's enqueue stamp when the
    /// caller supplied one, otherwise the admission stamp.
    origin_ns: u64,
    /// Set once the first sampled token has been attributed to TTFT.
    ttft_recorded: bool,
    /// The request's trace, if serving attached one. Recording is two
    /// relaxed/release stores per phase; `None` costs one branch.
    trace: Option<obs::reqtrace::TraceHandle>,
}

impl GenState {
    /// Append a phase record to the attached trace, if any.
    fn trace_record(&self, phase: obs::reqtrace::Phase, a: u32, b: u32) {
        if let Some(t) = &self.trace {
            t.record(phase, a, b);
        }
    }
}

/// The continuous-batching engine: owns the block pool, the prefix
/// cache and all per-sequence decode state; borrows the (non-`Send`)
/// model only for the duration of each [`BatchGenerator::step`].
pub struct BatchGenerator {
    pool: BlockPool,
    prefix: PrefixCache,
    active: Vec<GenState>,
    scratch: BatchScratch,
    /// This step's per-lane input tokens, reused across steps so the
    /// steady-state decode loop allocates nothing per token.
    feed: Vec<u32>,
    max_batch: usize,
    next_id: u64,
    /// Per-model labeled twins of the aggregate engine metrics, resolved
    /// once at construction (a per-step `format!` would defeat the
    /// registry's handle caching).
    batch_size_hist: Arc<obs::metrics::Histogram>,
    kv_hits: Arc<obs::metrics::Counter>,
    kv_misses: Arc<obs::metrics::Counter>,
    ttft_hist: Arc<obs::metrics::Histogram>,
}

impl BatchGenerator {
    /// Build an engine for `model`'s geometry.
    ///
    /// # Panics
    /// Panics if the model does not satisfy [`BatchStepModel::batch_ready`]
    /// (callers reach engines through `batch_model()`, which already
    /// filters).
    pub fn new(model: &dyn BatchStepModel, cfg: BatchEngineConfig) -> Self {
        assert!(model.batch_ready(), "model violates batch-invariance preconditions");
        let dims = model.dims();
        let pool = BlockPool::new(BlockConfig {
            layers: dims.layers,
            d: dims.d_model,
            block_tokens: cfg.block_tokens,
            num_blocks: cfg.num_blocks,
        });
        let labels = format!("{{model=\"{}\"}}", metric_label(model.name()));
        BatchGenerator {
            pool,
            prefix: PrefixCache::new(cfg.prefix_cap),
            active: Vec::new(),
            scratch: BatchScratch::new(),
            feed: Vec::new(),
            max_batch: cfg.max_batch.max(1),
            next_id: 0,
            batch_size_hist: obs::metrics::histogram(&format!("decode_batch_size{labels}")),
            kv_hits: obs::metrics::counter(&format!("decode_kv_hits_total{labels}")),
            kv_misses: obs::metrics::counter(&format!("decode_kv_misses_total{labels}")),
            ttft_hist: obs::metrics::histogram(&format!("ttft_ns{labels}")),
        }
    }

    /// Currently decoding sequences.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// Free blocks in the pool (observability and tests).
    pub fn free_blocks(&self) -> usize {
        self.pool.free_blocks()
    }

    /// Whether another sequence can join the batch right now.
    pub fn has_slot(&self) -> bool {
        self.active.len() < self.max_batch
    }

    /// The configured concurrency ceiling.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Admit a request: share any cached prompt prefix, reserve the
    /// worst-case block count (so later steps cannot starve), and join
    /// the batch at the next step. Returns the sequence id.
    pub fn admit(&mut self, req: BatchRequest) -> Result<u64, AdmitError> {
        self.admit_traced(req, obs::reqtrace::TraceMeta::default())
    }

    /// [`Self::admit`] with request-trace metadata attached: a
    /// successful admission records an `Admit` phase carrying the
    /// KV-prefix hit/miss split, and TTFT for the sequence counts from
    /// `meta.enqueued_ns` (admission time if the caller left it 0).
    /// Refusals record nothing — the serving queue owns the
    /// requeue/reject phases, since only it knows which refusals are
    /// transient.
    pub fn admit_traced(
        &mut self,
        req: BatchRequest,
        meta: obs::reqtrace::TraceMeta,
    ) -> Result<u64, AdmitError> {
        assert!(!req.prompt.is_empty(), "batched generate requires a prompt");
        if self.active.len() >= self.max_batch {
            return Err(AdmitError::BatchFull);
        }
        // Share at most `prompt - 1` tokens: the last prompt position is
        // always computed because its logits seed generation.
        let hit = self
            .prefix
            .lookup(&mut self.pool, &req.prompt, req.prompt.len() - 1);
        let mut seq = SeqKv::new();
        let shared = hit.tokens;
        // Labeled twins of the aggregate hit/miss counters the lookup
        // itself bumps.
        self.kv_hits.add(shared as u64);
        self.kv_misses.add((req.prompt.len() - shared) as u64);
        if shared > 0 {
            seq.adopt_shared(&self.pool, hit.blocks);
        }
        // Worst case: every prompt position plus every sampled token
        // lands in the cache (the final sampled token never does, but one
        // slot of headroom keeps the arithmetic obviously safe).
        let total = req.prompt.len() + req.sampler.max_tokens;
        if seq.reserve_for(&mut self.pool, total).is_err() {
            seq.release_all(&mut self.pool);
            return Err(AdmitError::PoolExhausted);
        }
        let id = self.next_id;
        self.next_id += 1;
        meta.record(
            obs::reqtrace::Phase::Admit,
            shared as u32,
            (req.prompt.len() - shared) as u32,
        );
        let origin_ns = if meta.enqueued_ns != 0 {
            meta.enqueued_ns
        } else {
            obs::Clock::now().at_ns()
        };
        self.active.push(GenState {
            id,
            fed: shared,
            seq,
            cfg: req.sampler,
            rng: StdRng::seed_from_u64(req.seed),
            out: Vec::new(),
            last: 0,
            stopped: false,
            registered: false,
            origin_ns,
            ttft_recorded: false,
            trace: meta.trace,
            prompt: req.prompt,
        });
        Ok(id)
    }

    /// Run one token step over every active sequence. Finished sequences
    /// are retired (blocks released) before returning, so the next
    /// admission sees their capacity.
    pub fn step(&mut self, model: &dyn BatchStepModel) -> Result<StepOutcome, PoolExhausted> {
        if self.active.is_empty() {
            return Ok(StepOutcome::default());
        }
        let batch_size = self.active.len();
        obs::static_histogram!("decode_batch_size").observe(batch_size as u64);
        self.batch_size_hist.observe(batch_size as u64);

        self.feed.clear();
        self.feed.extend(self.active.iter().map(|g| {
            if g.fed < g.prompt.len() {
                g.prompt[g.fed]
            } else {
                g.last
            }
        }));
        {
            let mut seqs: Vec<&mut SeqKv> = self.active.iter_mut().map(|g| &mut g.seq).collect();
            for seq in seqs.iter_mut() {
                seq.prepare_write(&mut self.pool)?;
            }
            let logits = model.batch_step(&self.feed, &mut self.pool, &mut seqs, &mut self.scratch);
            debug_assert_eq!(logits.len(), batch_size);
            drop(seqs);

            for (g, l) in self.active.iter_mut().zip(logits) {
                g.seq.commit();
                if g.fed < g.prompt.len() {
                    g.trace_record(
                        obs::reqtrace::Phase::PrefillChunk,
                        g.fed as u32,
                        batch_size as u32,
                    );
                    g.fed += 1;
                }
                if g.fed < g.prompt.len() {
                    continue; // still prefilling; logits discarded
                }
                if !g.registered {
                    // The whole prompt is cached now: publish its full
                    // blocks for future same-pantry requests.
                    self.prefix.insert(&mut self.pool, &g.prompt, &g.seq);
                    g.registered = true;
                }
                let next = select_token(&l, &g.cfg, &mut g.rng);
                if !g.ttft_recorded {
                    g.ttft_recorded = true;
                    let ttft = obs::Clock::now().at_ns().saturating_sub(g.origin_ns);
                    obs::static_histogram!("ttft_ns").observe(ttft);
                    self.ttft_hist.observe(ttft);
                }
                if Some(next) == g.cfg.stop_token {
                    g.stopped = true; // retired below; stop token excluded
                } else {
                    g.out.push(next);
                    g.last = next;
                }
                g.trace_record(
                    obs::reqtrace::Phase::DecodeStep,
                    g.out.len() as u32,
                    batch_size as u32,
                );
            }
        }

        let mut finished = Vec::new();
        self.active.retain_mut(|g| {
            let done =
                g.fed >= g.prompt.len() && (g.stopped || g.out.len() >= g.cfg.max_tokens);
            if done {
                g.trace_record(obs::reqtrace::Phase::Retire, g.out.len() as u32, 0);
                g.seq.release_all(&mut self.pool);
                finished.push(FinishedSeq {
                    id: g.id,
                    tokens: std::mem::take(&mut g.out),
                });
            }
            !done
        });
        Ok(StepOutcome {
            batch_size,
            finished,
        })
    }

    /// Drive the engine until `id` finishes (test/bench convenience —
    /// serving interleaves admissions between steps instead). Other
    /// active sequences keep decoding alongside.
    pub fn run_to_completion(
        &mut self,
        model: &dyn BatchStepModel,
        id: u64,
    ) -> Result<Vec<u32>, PoolExhausted> {
        loop {
            let out = self.step(model)?;
            if let Some(f) = out.finished.into_iter().find(|f| f.id == id) {
                return Ok(f.tokens);
            }
            assert!(out.batch_size > 0, "sequence {id} is not active");
        }
    }
}

//! Block-allocated KV-cache storage for continuous batching (the paged
//! KV cache of vLLM, Kwon et al. 2023, scaled to this workspace).
//!
//! The contiguous [`crate::transformer::KvCache`] grows one flat buffer
//! per (sequence, layer) pair — fine for a single stream, wasteful for a
//! batch: every admitted request would reserve worst-case contiguous
//! space, and identical pantry-prompt prefixes would be recomputed and
//! stored once per request. This module replaces it on the batched path:
//!
//! * [`BlockPool`] — one preallocated arena of fixed-size *blocks*, each
//!   holding `block_tokens` K and V rows for **all** layers, managed by a
//!   free-list allocator with per-block refcounts;
//! * [`SeqKv`] — a sequence's block table: logical position `p` maps to
//!   slot `p % block_tokens` of block `table[p / block_tokens]`.
//!   Admission reserves the worst-case block count up front, so decode
//!   steps never fail mid-token; [`SeqKv::fork`] shares every block and
//!   copy-on-write duplicates the partial tail on the next divergent
//!   write;
//! * [`PrefixCache`] — maps prompt-token prefixes to refcounted *full*
//!   blocks so concurrent requests with the same pantry prompt share the
//!   prefix K/V instead of recomputing it. Only full blocks are ever
//!   registered, and full blocks are immutable (writes only target the
//!   tail slot of the *last* block), so sharing never needs a copy until
//!   a fork diverges.
//!
//! Cache effectiveness is observable: [`PrefixCache::lookup`] bumps
//! `decode_kv_hits_total` by the number of prompt tokens served from
//! shared blocks and `decode_kv_misses_total` by the number that must be
//! computed, which `/metrics` exposes.

use ratatouille_util::collections::{det_map, DetMap};

/// Geometry of a [`BlockPool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockConfig {
    /// Transformer layers sharing each block (a block holds K/V for all
    /// of them, so one table entry covers the whole model).
    pub layers: usize,
    /// K (and V) row width per layer — the model width `d_model`.
    pub d: usize,
    /// Tokens per block.
    pub block_tokens: usize,
    /// Total blocks in the arena.
    pub num_blocks: usize,
}

impl BlockConfig {
    /// Floats stored per block: `layers × {K,V} × block_tokens × d`.
    pub fn block_floats(&self) -> usize {
        self.layers * 2 * self.block_tokens * self.d
    }

    /// Blocks needed to hold `tokens` positions.
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_tokens)
    }
}

/// Admission failed: the pool cannot cover the request's worst case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolExhausted;

impl std::fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KV block pool exhausted")
    }
}

impl std::error::Error for PoolExhausted {}

/// A fixed arena of KV blocks with a free-list allocator and per-block
/// refcounts.
///
/// All storage is f32 (the batched decode path is f32; the quantized
/// stream keeps its own contiguous f16 cache). Blocks are recycled
/// through a LIFO free list, so allocation order — and therefore every
/// block id a request observes — is a pure function of the admission
/// sequence: no addresses, no hashing, nothing nondeterministic.
#[derive(Debug)]
pub struct BlockPool {
    cfg: BlockConfig,
    /// `[num_blocks][layers][2][block_tokens][d]`, K rows then V rows per
    /// layer.
    data: Vec<f32>,
    /// Reference count per block; 0 = on the free list.
    refcounts: Vec<u32>,
    /// LIFO stack of free block ids.
    free: Vec<u32>,
}

impl BlockPool {
    /// Preallocate the arena. All blocks start free.
    pub fn new(cfg: BlockConfig) -> Self {
        assert!(cfg.block_tokens > 0, "block_tokens must be positive");
        assert!(cfg.d > 0 && cfg.layers > 0, "degenerate block geometry");
        let data = vec![0.0; cfg.num_blocks * cfg.block_floats()];
        let refcounts = vec![0; cfg.num_blocks];
        // LIFO: block 0 is handed out first.
        let free = (0..cfg.num_blocks as u32).rev().collect();
        BlockPool {
            cfg,
            data,
            refcounts,
            free,
        }
    }

    /// The pool's geometry.
    pub fn config(&self) -> &BlockConfig {
        &self.cfg
    }

    /// Blocks currently on the free list.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Blocks currently referenced by at least one owner.
    pub fn used_blocks(&self) -> usize {
        self.cfg.num_blocks - self.free.len()
    }

    /// Current refcount of `block` (0 = free).
    pub fn refcount(&self, block: u32) -> u32 {
        self.refcounts[block as usize]
    }

    /// Allocate one block (refcount 1), or fail if the pool is empty.
    pub fn alloc(&mut self) -> Result<u32, PoolExhausted> {
        let b = self.free.pop().ok_or(PoolExhausted)?;
        debug_assert_eq!(self.refcounts[b as usize], 0, "free block had owners");
        self.refcounts[b as usize] = 1;
        Ok(b)
    }

    /// Add one owner to an already-allocated block.
    pub fn retain(&mut self, block: u32) {
        let rc = &mut self.refcounts[block as usize];
        assert!(*rc > 0, "retain of free block {block}");
        *rc += 1;
    }

    /// Drop one owner; the block returns to the free list at zero.
    pub fn release(&mut self, block: u32) {
        let rc = &mut self.refcounts[block as usize];
        assert!(*rc > 0, "double free of block {block}");
        *rc -= 1;
        if *rc == 0 {
            self.free.push(block);
        }
    }

    #[inline]
    fn row_offset(&self, block: u32, layer: usize, which: usize, slot: usize) -> usize {
        debug_assert!(layer < self.cfg.layers && slot < self.cfg.block_tokens);
        block as usize * self.cfg.block_floats()
            + ((layer * 2 + which) * self.cfg.block_tokens + slot) * self.cfg.d
    }

    /// One cached K row.
    pub fn k_row(&self, block: u32, layer: usize, slot: usize) -> &[f32] {
        let o = self.row_offset(block, layer, 0, slot);
        &self.data[o..o + self.cfg.d]
    }

    /// One cached V row.
    pub fn v_row(&self, block: u32, layer: usize, slot: usize) -> &[f32] {
        let o = self.row_offset(block, layer, 1, slot);
        &self.data[o..o + self.cfg.d]
    }

    /// `n` consecutive K rows starting at `slot` of one (block, layer) —
    /// slots within a block lane are contiguous, so a whole run is one
    /// slice and the attention sweep can walk it without per-position
    /// offset arithmetic.
    pub fn k_rows(&self, block: u32, layer: usize, slot: usize, n: usize) -> &[f32] {
        debug_assert!(slot + n <= self.cfg.block_tokens);
        let o = self.row_offset(block, layer, 0, slot);
        &self.data[o..o + n * self.cfg.d]
    }

    /// `n` consecutive V rows starting at `slot` of one (block, layer).
    pub fn v_rows(&self, block: u32, layer: usize, slot: usize, n: usize) -> &[f32] {
        debug_assert!(slot + n <= self.cfg.block_tokens);
        let o = self.row_offset(block, layer, 1, slot);
        &self.data[o..o + n * self.cfg.d]
    }

    /// Write the K and V rows of one (layer, slot).
    pub fn write_kv(&mut self, block: u32, layer: usize, slot: usize, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), self.cfg.d);
        assert_eq!(v.len(), self.cfg.d);
        let o = self.row_offset(block, layer, 0, slot);
        self.data[o..o + self.cfg.d].copy_from_slice(k);
        let o = self.row_offset(block, layer, 1, slot);
        self.data[o..o + self.cfg.d].copy_from_slice(v);
    }

    /// Copy the first `slots` token slots of every layer (K and V) from
    /// `src` to `dst` — the copy-on-write step when a forked sequence
    /// diverges inside a shared partial block.
    fn copy_prefix_slots(&mut self, src: u32, dst: u32, slots: usize) {
        debug_assert!(slots <= self.cfg.block_tokens);
        assert_ne!(src, dst, "CoW copy onto itself");
        let bf = self.cfg.block_floats();
        let (s, d) = (src as usize * bf, dst as usize * bf);
        let row_span = self.cfg.block_tokens * self.cfg.d;
        let n = slots * self.cfg.d;
        // Blocks are disjoint `bf`-sized arenas, so splitting at the later
        // block's base yields one borrow over each.
        let (left, right) = self.data.split_at_mut(s.max(d));
        for lane in 0..self.cfg.layers * 2 {
            let base = lane * row_span;
            if s < d {
                right[base..base + n].copy_from_slice(&left[s + base..s + base + n]);
            } else {
                left[d + base..d + base + n].copy_from_slice(&right[base..base + n]);
            }
        }
    }
}

/// A sequence's view of the pool: the ordered block table plus the
/// committed token count.
#[derive(Debug, Default)]
pub struct SeqKv {
    table: Vec<u32>,
    /// Committed tokens (positions `0..len` are readable).
    len: usize,
    /// Positions the table can hold (`table.len() × block_tokens`).
    capacity: usize,
}

impl SeqKv {
    /// An empty sequence with no blocks.
    pub fn new() -> Self {
        SeqKv::default()
    }

    /// Committed token count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no tokens are committed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Token capacity of the reserved table.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The block table (for prefix registration and tests).
    pub fn table(&self) -> &[u32] {
        &self.table
    }

    /// Adopt `blocks` as a shared full-block prefix covering
    /// `blocks.len() × block_tokens` committed tokens. The caller has
    /// already retained them (e.g. [`PrefixCache::lookup`]); ownership of
    /// those refcounts transfers to this sequence.
    ///
    /// Must be called on an empty sequence before any reservation.
    pub fn adopt_shared(&mut self, pool: &BlockPool, blocks: Vec<u32>) {
        assert!(self.table.is_empty() && self.len == 0, "adopt into used seq");
        let bt = pool.config().block_tokens;
        self.len = blocks.len() * bt;
        self.capacity = self.len;
        self.table = blocks;
    }

    /// Grow the table until it can hold `total_tokens` positions. This is
    /// the admission-time worst-case reservation: after it succeeds, no
    /// decode step on this sequence can run out of blocks. On failure the
    /// sequence is left unchanged (no partial allocation).
    pub fn reserve_for(&mut self, pool: &mut BlockPool, total_tokens: usize) -> Result<(), PoolExhausted> {
        let need = pool.config().blocks_for(total_tokens);
        let extra = need.saturating_sub(self.table.len());
        if extra > pool.free_blocks() {
            return Err(PoolExhausted);
        }
        for _ in 0..extra {
            // Cannot fail: free count checked above, and we hold &mut pool.
            let b = pool.alloc()?;
            self.table.push(b);
        }
        self.capacity = self.table.len() * pool.config().block_tokens;
        Ok(())
    }

    /// Make position `len` writable: if the tail block is shared (a fork
    /// has not yet diverged), copy-on-write its committed slots into a
    /// fresh block. Call once per decode step, before the layer loop —
    /// blocks hold all layers, so one CoW covers every layer's write.
    pub fn prepare_write(&mut self, pool: &mut BlockPool) -> Result<(), PoolExhausted> {
        let bt = pool.config().block_tokens;
        assert!(self.len < self.capacity, "write past reserved capacity");
        let idx = self.len / bt;
        let block = self.table[idx];
        if pool.refcount(block) > 1 {
            let fresh = pool.alloc()?;
            pool.copy_prefix_slots(block, fresh, self.len % bt);
            pool.release(block);
            self.table[idx] = fresh;
        }
        Ok(())
    }

    /// Write layer `layer`'s K/V rows for position `len` (after
    /// [`SeqKv::prepare_write`] this step).
    pub fn write(&self, pool: &mut BlockPool, layer: usize, k: &[f32], v: &[f32]) {
        let bt = pool.config().block_tokens;
        debug_assert!(self.len < self.capacity);
        pool.write_kv(self.table[self.len / bt], layer, self.len % bt, k, v);
    }

    /// Commit the position written this step; it becomes readable.
    pub fn commit(&mut self) {
        self.len += 1;
    }

    /// A copy-on-write clone: shares every block (including the partial
    /// tail) by refcount; the first divergent write triggers CoW via
    /// [`SeqKv::prepare_write`].
    pub fn fork(&self, pool: &mut BlockPool) -> SeqKv {
        for &b in &self.table {
            pool.retain(b);
        }
        SeqKv {
            table: self.table.clone(),
            len: self.len,
            capacity: self.capacity,
        }
    }

    /// Release every block reference. The sequence becomes empty.
    pub fn release_all(&mut self, pool: &mut BlockPool) {
        for b in self.table.drain(..) {
            pool.release(b);
        }
        self.len = 0;
        self.capacity = 0;
    }

    /// One layer's read view over positions `0..reader_len` — hand
    /// `self.len() + 1` during a step to include the just-written row.
    pub fn layer_view<'a>(&'a self, pool: &'a BlockPool, layer: usize, reader_len: usize) -> SeqLayerKv<'a> {
        debug_assert!(reader_len <= self.capacity);
        SeqLayerKv {
            pool,
            table: &self.table,
            layer,
            len: reader_len,
        }
    }
}

/// Read access to one (sequence, layer) slice of the pool, in logical
/// position order — the paged equivalent of a contiguous
/// [`crate::transformer::KvCache`] for the attention kernel.
///
/// Holds only shared references to the pool and the block table, so it
/// is `Send + Sync` by construction: the parallel attention sweep hands
/// one view per sequence to the worker pool while the caller's `&mut
/// BlockPool` is reborrowed shared for the duration of the sweep.
pub struct SeqLayerKv<'a> {
    pool: &'a BlockPool,
    table: &'a [u32],
    layer: usize,
    len: usize,
}

/// Compile-time proof that views can cross worker threads (the batched
/// attention sweep depends on it).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SeqLayerKv<'_>>();
};

impl crate::transformer::KvRows for SeqLayerKv<'_> {
    type Elem = f32;

    fn len(&self) -> usize {
        self.len
    }

    fn k_row(&self, pos: usize) -> &[f32] {
        let bt = self.pool.config().block_tokens;
        self.pool.k_row(self.table[pos / bt], self.layer, pos % bt)
    }

    fn v_row(&self, pos: usize) -> &[f32] {
        let bt = self.pool.config().block_tokens;
        self.pool.v_row(self.table[pos / bt], self.layer, pos % bt)
    }

    fn k_run(&self, pos: usize, end: usize) -> &[f32] {
        let bt = self.pool.config().block_tokens;
        let n = (bt - pos % bt).min(end - pos);
        self.pool.k_rows(self.table[pos / bt], self.layer, pos % bt, n)
    }

    fn v_run(&self, pos: usize, end: usize) -> &[f32] {
        let bt = self.pool.config().block_tokens;
        let n = (bt - pos % bt).min(end - pos);
        self.pool.v_rows(self.table[pos / bt], self.layer, pos % bt, n)
    }
}

/// What a prefix lookup found.
#[derive(Debug)]
pub struct PrefixMatch {
    /// Shared full blocks, already retained for the caller (adopt them
    /// into a [`SeqKv`] or release them).
    pub blocks: Vec<u32>,
    /// Prompt tokens those blocks cover (`blocks.len() × block_tokens`).
    pub tokens: usize,
}

/// A bounded map from prompt prefixes to shared, refcounted full blocks.
///
/// Entries are keyed by the exact token sequence of a whole number of
/// blocks. Lookup finds the longest registered prefix of a prompt and
/// retains its blocks for the caller; insert registers a finished
/// prompt's full blocks. Eviction is FIFO (oldest registration first) —
/// deterministic, and good enough when the working set is "the popular
/// pantry prompts right now".
pub struct PrefixCache {
    /// Key: full-block token prefix. Value: the shared blocks.
    entries: DetMap<Vec<u32>, Vec<u32>>,
    /// Insertion order for FIFO eviction.
    order: std::collections::VecDeque<Vec<u32>>,
    /// Maximum registered prefixes.
    cap: usize,
}

impl PrefixCache {
    /// An empty cache holding at most `cap` prefixes.
    pub fn new(cap: usize) -> Self {
        PrefixCache {
            entries: det_map(),
            order: std::collections::VecDeque::new(),
            cap,
        }
    }

    /// Registered prefix count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no prefixes are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Find the longest registered full-block prefix of `prompt`, capped
    /// at `max_tokens` shared tokens (callers pass `prompt.len() - 1` so
    /// at least one prompt position is always computed — its logits seed
    /// generation). Returns retained blocks; bumps the KV hit/miss
    /// counters by shared/computed **prompt** token counts.
    pub fn lookup(&self, pool: &mut BlockPool, prompt: &[u32], max_tokens: usize) -> PrefixMatch {
        let bt = pool.config().block_tokens;
        let limit = (max_tokens.min(prompt.len()) / bt) * bt;
        let mut best: Option<&Vec<u32>> = None;
        let mut best_tokens = 0usize;
        // Longest common full-block prefix over registered entries, in
        // registration order (deterministic; ties keep the oldest). An
        // entry longer than the cap still shares its head blocks.
        for key in &self.order {
            let common = key
                .iter()
                .zip(prompt)
                .take(limit)
                .take_while(|(a, b)| a == b)
                .count();
            let n = (common / bt) * bt;
            if n > best_tokens {
                best_tokens = n;
                best = self.entries.get(key);
            }
        }
        let blocks = match best {
            Some(blocks) => {
                let head = &blocks[..best_tokens / bt];
                for &b in head {
                    pool.retain(b);
                }
                head.to_vec()
            }
            None => Vec::new(),
        };
        obs::static_counter!("decode_kv_hits_total").add(best_tokens as u64);
        obs::static_counter!("decode_kv_misses_total").add((prompt.len() - best_tokens) as u64);
        PrefixMatch {
            blocks,
            tokens: best_tokens,
        }
    }

    /// Register the full-block prefix of a completed prompt, retaining
    /// the covered head of `seq`'s table. No-op if the prompt spans less
    /// than one full block or the prefix is already registered. Evicts
    /// the oldest entry (releasing its blocks) beyond capacity.
    pub fn insert(&mut self, pool: &mut BlockPool, prompt: &[u32], seq: &SeqKv) {
        if self.cap == 0 {
            return;
        }
        let bt = pool.config().block_tokens;
        let full = prompt.len() / bt;
        if full == 0 {
            return;
        }
        let key = prompt[..full * bt].to_vec();
        if self.entries.contains_key(&key) {
            return;
        }
        let blocks = seq.table()[..full].to_vec();
        for &b in &blocks {
            pool.retain(b);
        }
        self.order.push_back(key.clone());
        self.entries.insert(key, blocks);
        while self.entries.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                if let Some(blocks) = self.entries.remove(&old) {
                    for b in blocks {
                        pool.release(b);
                    }
                }
            }
        }
    }

    /// Release every registered block and clear the cache.
    pub fn clear(&mut self, pool: &mut BlockPool) {
        for (_, blocks) in std::mem::take(&mut self.entries) {
            for b in blocks {
                pool.release(b);
            }
        }
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::KvRows;

    fn cfg(blocks: usize) -> BlockConfig {
        BlockConfig {
            layers: 2,
            d: 4,
            block_tokens: 4,
            num_blocks: blocks,
        }
    }

    #[test]
    fn alloc_release_roundtrip() {
        let mut pool = BlockPool::new(cfg(3));
        assert_eq!(pool.free_blocks(), 3);
        let a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.used_blocks(), 2);
        pool.release(a);
        assert_eq!(pool.free_blocks(), 2);
        // LIFO: the released block is reused first
        assert_eq!(pool.alloc().unwrap(), a);
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.free_blocks(), 3);
    }

    #[test]
    fn exhaustion_is_an_error_not_a_panic() {
        let mut pool = BlockPool::new(cfg(1));
        let _a = pool.alloc().unwrap();
        assert_eq!(pool.alloc(), Err(PoolExhausted));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_asserts() {
        let mut pool = BlockPool::new(cfg(2));
        let a = pool.alloc().unwrap();
        pool.release(a);
        pool.release(a);
    }

    #[test]
    fn seq_write_read_across_blocks() {
        let mut pool = BlockPool::new(cfg(4));
        let mut seq = SeqKv::new();
        seq.reserve_for(&mut pool, 10).unwrap();
        assert_eq!(seq.capacity(), 12);
        for t in 0..10 {
            seq.prepare_write(&mut pool).unwrap();
            for layer in 0..2 {
                let k = [t as f32, layer as f32, 0.0, 1.0];
                let v = [10.0 + t as f32, layer as f32, 0.0, 2.0];
                seq.write(&mut pool, layer, &k, &v);
            }
            seq.commit();
        }
        let view = seq.layer_view(&pool, 1, seq.len());
        assert_eq!(view.len(), 10);
        for t in 0..10 {
            assert_eq!(view.k_row(t)[0], t as f32);
            assert_eq!(view.v_row(t)[0], 10.0 + t as f32);
            assert_eq!(view.k_row(t)[1], 1.0, "layer index mixed up");
        }
        seq.release_all(&mut pool);
        assert_eq!(pool.free_blocks(), 4);
    }

    #[test]
    fn reserve_failure_leaves_pool_unchanged() {
        let mut pool = BlockPool::new(cfg(2));
        let mut seq = SeqKv::new();
        assert_eq!(seq.reserve_for(&mut pool, 100), Err(PoolExhausted));
        assert_eq!(pool.free_blocks(), 2);
        assert_eq!(seq.table().len(), 0);
    }

    #[test]
    fn fork_shares_then_cow_diverges() {
        let mut pool = BlockPool::new(cfg(4));
        let mut a = SeqKv::new();
        a.reserve_for(&mut pool, 6).unwrap();
        for t in 0..6 {
            a.prepare_write(&mut pool).unwrap();
            for layer in 0..2 {
                a.write(&mut pool, layer, &[t as f32; 4], &[t as f32; 4]);
            }
            a.commit();
        }
        // fork at len 6: both blocks shared (refcount 2)
        let mut b = a.fork(&mut pool);
        assert_eq!(pool.refcount(a.table()[1]), 2);
        assert_eq!(pool.used_blocks(), 2);

        // b writes position 6 → CoW of the partial tail block only
        b.reserve_for(&mut pool, 8).unwrap();
        b.prepare_write(&mut pool).unwrap();
        for layer in 0..2 {
            b.write(&mut pool, layer, &[99.0; 4], &[99.0; 4]);
        }
        b.commit();
        assert_ne!(a.table()[1], b.table()[1], "tail must have diverged");
        assert_eq!(a.table()[0], b.table()[0], "full block stays shared");
        assert_eq!(pool.refcount(a.table()[0]), 2);
        // a's view is untouched; b sees its own history plus the new row
        let va = a.layer_view(&pool, 0, a.len());
        let vb = b.layer_view(&pool, 0, b.len());
        assert_eq!(va.k_row(5)[0], 5.0);
        assert_eq!(vb.k_row(5)[0], 5.0, "CoW must copy committed slots");
        assert_eq!(vb.k_row(6)[0], 99.0);

        a.release_all(&mut pool);
        b.release_all(&mut pool);
        assert_eq!(pool.free_blocks(), 4);
    }

    #[test]
    fn prefix_cache_shares_full_blocks_only() {
        let mut pool = BlockPool::new(cfg(8));
        let mut cache = PrefixCache::new(4);
        let prompt: Vec<u32> = (0..10).collect(); // 2 full blocks + 2 tail tokens

        let mut seq = SeqKv::new();
        seq.reserve_for(&mut pool, prompt.len()).unwrap();
        for t in 0..prompt.len() {
            seq.prepare_write(&mut pool).unwrap();
            for layer in 0..2 {
                seq.write(&mut pool, layer, &[t as f32; 4], &[t as f32; 4]);
            }
            seq.commit();
        }
        cache.insert(&mut pool, &prompt, &seq);
        assert_eq!(cache.len(), 1);
        assert_eq!(pool.refcount(seq.table()[0]), 2);
        assert_eq!(pool.refcount(seq.table()[2]), 1, "partial tail not cached");

        // A new request with the same prompt shares both full blocks.
        let hit = cache.lookup(&mut pool, &prompt, prompt.len() - 1);
        assert_eq!(hit.tokens, 8);
        assert_eq!(hit.blocks, seq.table()[..2].to_vec());
        let mut seq2 = SeqKv::new();
        seq2.adopt_shared(&pool, hit.blocks);
        assert_eq!(seq2.len(), 8);
        assert_eq!(pool.refcount(seq.table()[0]), 3);

        // Shared rows read back identically through the second table.
        let v2 = seq2.layer_view(&pool, 1, 8);
        assert_eq!(v2.k_row(3)[0], 3.0);

        // A different prompt misses.
        let other: Vec<u32> = (100..110).collect();
        let miss = cache.lookup(&mut pool, &other, other.len() - 1);
        assert_eq!(miss.tokens, 0);
        assert!(miss.blocks.is_empty());

        // Releasing every owner returns all blocks.
        seq2.release_all(&mut pool);
        seq.release_all(&mut pool);
        cache.clear(&mut pool);
        assert_eq!(pool.free_blocks(), 8);
    }

    #[test]
    fn lookup_never_covers_the_whole_prompt() {
        // An exact-length prompt must still compute its last token: the
        // `max_tokens = len - 1` cap means a full-prompt registration is
        // only shared up to the previous block boundary.
        let mut pool = BlockPool::new(cfg(8));
        let mut cache = PrefixCache::new(4);
        let prompt: Vec<u32> = (0..8).collect(); // exactly 2 blocks
        let mut seq = SeqKv::new();
        seq.reserve_for(&mut pool, 8).unwrap();
        for _ in 0..8 {
            seq.prepare_write(&mut pool).unwrap();
            for layer in 0..2 {
                seq.write(&mut pool, layer, &[0.0; 4], &[0.0; 4]);
            }
            seq.commit();
        }
        cache.insert(&mut pool, &prompt, &seq);
        let hit = cache.lookup(&mut pool, &prompt, prompt.len() - 1);
        assert_eq!(hit.tokens, 4, "must stop at the previous block boundary");
        for b in hit.blocks {
            pool.release(b);
        }
        seq.release_all(&mut pool);
        cache.clear(&mut pool);
    }

    #[test]
    fn prefix_cache_evicts_fifo() {
        let mut pool = BlockPool::new(cfg(8));
        let mut cache = PrefixCache::new(2);
        let mut seqs = Vec::new();
        for p in 0..3u32 {
            let prompt: Vec<u32> = (p * 10..p * 10 + 4).collect();
            let mut seq = SeqKv::new();
            seq.reserve_for(&mut pool, 4).unwrap();
            for _ in 0..4 {
                seq.prepare_write(&mut pool).unwrap();
                for layer in 0..2 {
                    seq.write(&mut pool, layer, &[0.0; 4], &[0.0; 4]);
                }
                seq.commit();
            }
            cache.insert(&mut pool, &prompt, &seq);
            seqs.push((prompt, seq));
        }
        assert_eq!(cache.len(), 2, "capacity bound enforced");
        // Oldest prefix evicted: its block has a single owner again.
        assert_eq!(pool.refcount(seqs[0].1.table()[0]), 1);
        assert_eq!(pool.refcount(seqs[2].1.table()[0]), 2);
        for (_, seq) in &mut seqs {
            seq.release_all(&mut pool);
        }
        cache.clear(&mut pool);
        assert_eq!(pool.free_blocks(), 8);
    }
}

//! GPT-Neo-style language model — the paper's stated future work
//! ("we intend to use GPT-Neo which is built on similar architecture of
//! GPT-3").
//!
//! GPT-Neo's architectural signature vs GPT-2 is **alternating global and
//! local (windowed) causal attention**: even layers attend to the full
//! prefix, odd layers only to a sliding window of the last `window`
//! positions. This reproduction implements exactly that on top of the
//! shared [`Block`] parameters, reusing GPT-2's embeddings and head.

use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::SeedableRng;
use ratatouille_tensor::ops::{qmatmul_transb, quantize_per_row, QuantizedMatrix};
use ratatouille_tensor::{init, ops, DType, Tensor, Var, F16};

use crate::lm::{Batch, InferenceModel, LanguageModel, TokenStream};
use crate::transformer::{Block, DecodeScratch, KvCache, QuantBlock};

/// GPT-Neo hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GptNeoConfig {
    /// Model display name.
    pub name: String,
    /// Vocabulary size.
    pub vocab: usize,
    /// Residual width.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Transformer blocks (alternating global/local attention).
    pub n_layers: usize,
    /// MLP inner width.
    pub d_ff: usize,
    /// Maximum context length.
    pub max_t: usize,
    /// Local-attention window (odd layers).
    pub window: usize,
    /// Dropout rate during training.
    pub dropout: f32,
    /// Initialization seed.
    pub seed: u64,
}

impl GptNeoConfig {
    /// A CPU-scaled tier comparable to [`crate::gpt2::Gpt2Config::medium`]
    /// (same depth/width) but with GPT-Neo's alternating local attention.
    pub fn small(vocab: usize) -> Self {
        GptNeoConfig {
            name: "GPT-Neo (future work)".into(),
            vocab,
            d_model: 128,
            n_heads: 4,
            n_layers: 4,
            d_ff: 512,
            max_t: 192,
            window: 64,
            dropout: 0.1,
            seed: 0x0E0,
        }
    }
}

/// The GPT-Neo model.
pub struct GptNeoLm {
    config: GptNeoConfig,
    wte: Var,
    wpe: Var,
    blocks: Vec<Block>,
    lnf_g: Var,
    lnf_b: Var,
}

impl GptNeoLm {
    /// Initialize from a config.
    pub fn new(config: GptNeoConfig) -> Self {
        assert_eq!(config.d_model % config.n_heads, 0);
        assert!(config.window >= 1, "window must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let wte = Var::leaf(init::randn(&mut rng, &[config.vocab, config.d_model], 0.02));
        let wpe = Var::leaf(init::randn(&mut rng, &[config.max_t, config.d_model], 0.01));
        let blocks = (0..config.n_layers)
            .map(|_| Block::new(&mut rng, config.d_model, config.d_ff, config.n_layers))
            .collect();
        GptNeoLm {
            lnf_g: Var::leaf(Tensor::ones(&[config.d_model])),
            lnf_b: Var::leaf(Tensor::zeros(&[config.d_model])),
            config,
            wte,
            wpe,
            blocks,
        }
    }

    /// The config this model was built with.
    pub fn config(&self) -> &GptNeoConfig {
        &self.config
    }

    /// Is layer `i` a local-attention layer? (GPT-Neo alternates,
    /// starting global.)
    pub fn is_local_layer(&self, i: usize) -> bool {
        i % 2 == 1
    }

    /// Snapshot this model into an int8 weight-quantized inference-only
    /// copy. Unlike the f32 stream (which recomputes the full forward per
    /// token), the quantized variant decodes incrementally with per-layer
    /// f16 KV caches; local layers attend through a trailing window of
    /// cached positions, matching the training-time window mask.
    pub fn quantize(&self) -> QuantGptNeoLm {
        let wte = self.wte.value();
        QuantGptNeoLm {
            name: format!("{} [int8]", self.config.name),
            wte_q: quantize_per_row(&wte),
            wte,
            wpe: self.wpe.value(),
            blocks: self.blocks.iter().map(QuantBlock::from_block).collect(),
            lnf_g: self.lnf_g.value(),
            lnf_b: self.lnf_b.value(),
            config: self.config.clone(),
        }
    }

    /// Block forward with windowed causal attention (pre-LN). Equivalent
    /// to [`Block::forward`] but masks scores outside the window before
    /// the softmax.
    fn forward_local(
        &self,
        blk: &Block,
        x: &Var,
        train: bool,
        rng: &mut StdRng,
    ) -> Var {
        let (b, t, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let heads = self.config.n_heads;
        let dh = d / heads;
        let ln = x.reshape(&[b * t, d]).layer_norm(&blk.ln1_g, &blk.ln1_b, 1e-5);
        let qkv = ln.matmul(&blk.w_qkv).add_broadcast(&blk.b_qkv);
        let split = |start: usize| -> Var {
            qkv.narrow(1, start, d)
                .reshape(&[b, t, heads, dh])
                .permute(&[0, 2, 1, 3])
                .reshape(&[b * heads, t, dh])
        };
        let q = split(0);
        let k = split(d);
        let v = split(2 * d);
        let scores = q.bmm_transb(&k).scale(1.0 / (dh as f32).sqrt());
        // window mask: add -inf (large negative) outside [i-window+1, i]
        let masked = scores.add(&Var::constant(window_mask(
            b * heads,
            t,
            self.config.window,
        )));
        let mut weights = masked.causal_masked_softmax();
        if train && self.config.dropout > 0.0 {
            weights = weights.dropout(self.config.dropout, rng);
        }
        let ctx = weights
            .bmm(&v)
            .reshape(&[b, heads, t, dh])
            .permute(&[0, 2, 1, 3])
            .reshape(&[b * t, d]);
        let mut attn_out = ctx.matmul(&blk.w_o).add_broadcast(&blk.b_o);
        if train && self.config.dropout > 0.0 {
            attn_out = attn_out.dropout(self.config.dropout, rng);
        }
        let x1 = x.reshape(&[b * t, d]).add(&attn_out);
        let ln2 = x1.layer_norm(&blk.ln2_g, &blk.ln2_b, 1e-5);
        let mut mlp = ln2
            .matmul(&blk.w_up)
            .add_broadcast(&blk.b_up)
            .gelu()
            .matmul(&blk.w_down)
            .add_broadcast(&blk.b_down);
        if train && self.config.dropout > 0.0 {
            mlp = mlp.dropout(self.config.dropout, rng);
        }
        x1.add(&mlp).reshape(&[b, t, d])
    }
}

/// Additive mask `[BH, T, T]`: 0 inside the causal window, -1e9 outside.
fn window_mask(bh: usize, t: usize, window: usize) -> Tensor {
    let mut m = vec![0.0f32; bh * t * t];
    for b in 0..bh {
        for i in 0..t {
            for j in 0..t {
                let outside = j + window <= i; // j < i - window + 1
                if outside {
                    m[b * t * t + i * t + j] = -1e9;
                }
            }
        }
    }
    Tensor::from_vec(m, &[bh, t, t]).expect("mask shape")
}

impl InferenceModel for GptNeoLm {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn vocab_size(&self) -> usize {
        self.config.vocab
    }

    fn max_context(&self) -> usize {
        self.config.max_t
    }

    fn start_stream(&self) -> Box<dyn TokenStream + '_> {
        Box::new(GptNeoStream {
            model: self,
            history: Vec::new(),
        })
    }
}

impl LanguageModel for GptNeoLm {
    fn parameters(&self) -> Vec<Var> {
        self.named_parameters().into_iter().map(|(_, v)| v).collect()
    }

    fn named_parameters(&self) -> Vec<(String, Var)> {
        let mut out = vec![
            ("wte".to_string(), self.wte.clone()),
            ("wpe".to_string(), self.wpe.clone()),
        ];
        for (i, b) in self.blocks.iter().enumerate() {
            out.extend(b.named_parameters(&format!("block{i}")));
        }
        out.push(("lnf_g".to_string(), self.lnf_g.clone()));
        out.push(("lnf_b".to_string(), self.lnf_b.clone()));
        out
    }

    fn forward_loss(&self, batch: &Batch, train: bool, rng: &mut StdRng) -> Var {
        batch.assert_well_formed();
        let (b, t, d) = (batch.batch_size(), batch.seq_len(), self.config.d_model);
        assert!(t <= self.config.max_t, "sequence {t} > max context");
        let tok = self.wte.embedding(&batch.flat_inputs());
        let positions: Vec<usize> = (0..b).flat_map(|_| 0..t).collect();
        let pos = self.wpe.embedding(&positions);
        let mut x = tok.add(&pos);
        if train && self.config.dropout > 0.0 {
            x = x.dropout(self.config.dropout, rng);
        }
        let mut x = x.reshape(&[b, t, d]);
        for (i, blk) in self.blocks.iter().enumerate() {
            x = if self.is_local_layer(i) {
                self.forward_local(blk, &x, train, rng)
            } else {
                blk.forward(&x, self.config.n_heads, self.config.dropout, train, rng)
            };
        }
        let flat = x.reshape(&[b * t, d]).layer_norm(&self.lnf_g, &self.lnf_b, 1e-5);
        flat.matmul_transb(&self.wte)
            .cross_entropy(&batch.flat_targets(), batch.pad_id as usize)
    }

    fn quantized(&self) -> Option<Box<dyn InferenceModel>> {
        Some(Box::new(self.quantize()))
    }
}

/// An int8 weight-quantized, inference-only GPT-Neo.
///
/// Built via [`GptNeoLm::quantize`]. Holds plain tensors, not `Var`s, so
/// it cannot be trained. Decoding is incremental (per-layer [`F16`] KV
/// caches); odd layers attend only to the trailing
/// [`GptNeoConfig::window`] cached positions.
pub struct QuantGptNeoLm {
    name: String,
    config: GptNeoConfig,
    /// f32 token embedding `[V, D]`.
    wte: Tensor,
    /// The tied LM head, quantized `[V, D]` output-major.
    wte_q: QuantizedMatrix,
    /// f32 position embedding `[max_t, D]`.
    wpe: Tensor,
    blocks: Vec<QuantBlock>,
    lnf_g: Tensor,
    lnf_b: Tensor,
}

impl QuantGptNeoLm {
    /// The config of the f32 model this was quantized from.
    pub fn config(&self) -> &GptNeoConfig {
        &self.config
    }
}

impl InferenceModel for QuantGptNeoLm {
    fn name(&self) -> &str {
        &self.name
    }

    fn vocab_size(&self) -> usize {
        self.config.vocab
    }

    fn max_context(&self) -> usize {
        self.config.max_t
    }

    fn dtype(&self) -> DType {
        DType::I8
    }

    fn start_stream(&self) -> Box<dyn TokenStream + '_> {
        Box::new(QuantGptNeoStream {
            model: self,
            caches: (0..self.config.n_layers)
                .map(|_| KvCache::new(self.config.d_model))
                .collect(),
            scratch: DecodeScratch::new(),
            pos: 0,
        })
    }
}

/// Incremental decoding state for the quantized GPT-Neo: one f16 KV cache
/// per block plus the shared attention scratch.
struct QuantGptNeoStream<'m> {
    model: &'m QuantGptNeoLm,
    caches: Vec<KvCache<F16>>,
    scratch: DecodeScratch,
    pos: usize,
}

impl TokenStream for QuantGptNeoStream<'_> {
    fn push(&mut self, token: u32) -> Tensor {
        let m = self.model;
        let d = m.config.d_model;
        assert!((token as usize) < m.config.vocab, "token out of vocab");
        let pos_idx = self.pos.min(m.config.max_t - 1);
        let tok = ops::embedding(&m.wte, &[token as usize]).reshape(&[d]);
        let pos = ops::embedding(&m.wpe, &[pos_idx]).reshape(&[d]);
        let mut x = ops::add(&tok, &pos);
        for (i, (blk, cache)) in m.blocks.iter().zip(&mut self.caches).enumerate() {
            let window = if i % 2 == 1 {
                Some(m.config.window)
            } else {
                None
            };
            x = blk.forward_incremental(&x, m.config.n_heads, cache, &mut self.scratch, window);
        }
        self.pos += 1;
        let (ln, _, _) = ops::layer_norm(&x.reshape(&[1, d]), &m.lnf_g, &m.lnf_b, 1e-5);
        qmatmul_transb(&ln, &m.wte_q).reshape(&[m.config.vocab])
    }

    fn position(&self) -> usize {
        self.pos
    }
}

/// Incremental decoding by recomputation over the (window-bounded)
/// history. Simpler than a per-layer KV cache and exact: local layers
/// only ever need the last `window` positions, so the recompute cost is
/// bounded.
struct GptNeoStream<'m> {
    model: &'m GptNeoLm,
    history: Vec<u32>,
}

impl TokenStream for GptNeoStream<'_> {
    fn push(&mut self, token: u32) -> Tensor {
        let m = self.model;
        assert!((token as usize) < m.config.vocab, "token out of vocab");
        self.history.push(token);
        // bound recomputation to the model's max context
        let start = self.history.len().saturating_sub(m.config.max_t);
        let ctx = &self.history[start..];
        let batch = Batch {
            inputs: vec![ctx.to_vec()],
            targets: vec![vec![0; ctx.len()]],
            pad_id: u32::MAX, // never matches: loss unused
        };
        // run the forward for logits only (via a throwaway rng; dropout off)
        let mut rng = StdRng::seed_from_u64(0);
        let t = ctx.len();
        let d = m.config.d_model;
        let tok = ops::embedding(&m.wte.value(), &batch.flat_inputs());
        let positions: Vec<usize> = (0..t).collect();
        let pos = ops::embedding(&m.wpe.value(), &positions);
        let x = Var::constant(ops::add(&tok, &pos).reshape(&[1, t, d]));
        let mut x = x;
        for (i, blk) in m.blocks.iter().enumerate() {
            x = if m.is_local_layer(i) {
                m.forward_local(blk, &x, false, &mut rng)
            } else {
                blk.forward(&x, m.config.n_heads, 0.0, false, &mut rng)
            };
        }
        let flat = x
            .reshape(&[t, d])
            .layer_norm(
                &Var::constant(m.lnf_g.value()),
                &Var::constant(m.lnf_b.value()),
                1e-5,
            )
            .value();
        let last = ops::narrow(&flat, 0, t - 1, 1);
        ops::matmul_transb(&last, &m.wte.value()).reshape(&[m.config.vocab])
    }

    fn position(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratatouille_tensor::optim::{zero_grads, Adam, Optimizer};

    fn tiny() -> GptNeoLm {
        GptNeoLm::new(GptNeoConfig {
            name: "tiny-neo".into(),
            vocab: 16,
            d_model: 16,
            n_heads: 2,
            n_layers: 2,
            d_ff: 32,
            max_t: 16,
            window: 4,
            dropout: 0.0,
            seed: 9,
        })
    }

    fn toy_batch() -> Batch {
        let seq: Vec<u32> = (0..13).map(|i| 2 + (i % 4)).collect();
        Batch {
            inputs: vec![seq[..12].to_vec(); 2],
            targets: vec![seq[1..].to_vec(); 2],
            pad_id: 0,
        }
    }

    #[test]
    fn window_mask_shape() {
        let m = window_mask(1, 4, 2);
        // row i=3: j=0,1 outside (j + 2 <= 3), j=2,3 inside
        assert_eq!(m.at(&[0, 3, 0]), -1e9);
        assert_eq!(m.at(&[0, 3, 1]), -1e9);
        assert_eq!(m.at(&[0, 3, 2]), 0.0);
        assert_eq!(m.at(&[0, 3, 3]), 0.0);
        // row 0 sees itself
        assert_eq!(m.at(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn learns_a_cycle() {
        let m = tiny();
        let params = m.parameters();
        let mut opt = Adam::new(0.01);
        let mut rng = StdRng::seed_from_u64(1);
        let mut last = f32::MAX;
        for _ in 0..100 {
            zero_grads(&params);
            let loss = m.forward_loss(&toy_batch(), true, &mut rng);
            last = loss.value().item();
            loss.backward();
            opt.step(&params);
        }
        assert!(last < 0.6, "cycle not learned: {last}");
    }

    #[test]
    fn local_attention_actually_masks_long_range() {
        // With window=1 every local layer sees only itself: perturbing a
        // distant past token must not change the current output *through
        // local layers*. We test the mask directly through forward_local.
        let m = GptNeoLm::new(GptNeoConfig {
            window: 1,
            ..tiny().config().clone()
        });
        let mut rng = StdRng::seed_from_u64(2);
        let base = init::randn(&mut rng, &[1, 6, 16], 1.0);
        let mut altered = base.to_vec();
        for v in altered[..16].iter_mut() {
            *v += 3.0; // perturb position 0 only
        }
        let altered = Tensor::from_vec(altered, &[1, 6, 16]).unwrap();
        let blk = &m.blocks[1];
        let y1 = m.forward_local(blk, &Var::constant(base), false, &mut rng).value();
        let y2 = m
            .forward_local(blk, &Var::constant(altered), false, &mut rng)
            .value();
        // last position (5) attends only to itself under window=1
        for j in 0..16 {
            assert!(
                (y1.at(&[0, 5, j]) - y2.at(&[0, 5, j])).abs() < 1e-5,
                "window mask leaked long-range information"
            );
        }
    }

    #[test]
    fn stream_matches_trained_cycle() {
        let m = tiny();
        let params = m.parameters();
        let mut opt = Adam::new(0.01);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..120 {
            zero_grads(&params);
            let loss = m.forward_loss(&toy_batch(), true, &mut rng);
            loss.backward();
            opt.step(&params);
        }
        let mut s = m.start_stream();
        s.push(2);
        s.push(3);
        let logits = s.push(4);
        assert_eq!(ops::argmax_last(&logits), vec![5]);
    }

    #[test]
    fn all_parameters_receive_gradients() {
        let m = tiny();
        let mut rng = StdRng::seed_from_u64(4);
        let loss = m.forward_loss(&toy_batch(), true, &mut rng);
        loss.backward();
        for (name, p) in m.named_parameters() {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
    }

    #[test]
    fn quantized_stream_matches_trained_cycle() {
        // The quantized incremental path (f16 KV cache + windowed local
        // layers) must reproduce the f32 stream's prediction on a
        // confidently-learned cycle, past the local window boundary.
        let m = tiny();
        let params = m.parameters();
        let mut opt = Adam::new(0.01);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..120 {
            zero_grads(&params);
            let loss = m.forward_loss(&toy_batch(), true, &mut rng);
            loss.backward();
            opt.step(&params);
        }
        let q = m.quantize();
        assert_eq!(InferenceModel::dtype(&q), DType::I8);
        let mut s32 = m.start_stream();
        let mut sq = InferenceModel::start_stream(&q);
        // run past the window (4) so local layers actually truncate
        for i in 0..10 {
            let tok = 2 + (i % 4) as u32;
            let l32 = s32.push(tok);
            let lq = sq.push(tok);
            assert!(!lq.has_non_finite(), "NaN at position {i}");
            assert_eq!(
                ops::argmax_last(&l32),
                ops::argmax_last(&lq),
                "prediction diverged at position {i}"
            );
        }
    }
}

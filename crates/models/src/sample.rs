//! Decoding strategies: greedy, temperature, top-k and top-p (nucleus)
//! sampling over an incremental [`TokenStream`].
//!
//! [`generate`] is instrumented with `obs`: a `decode` span wrapping each
//! call (with per-token `decode.token` child spans), a prefill-latency
//! histogram, and the per-token latency histogram/counter the serving
//! layer's `/metrics` endpoint exposes. [`generate_traced`] additionally
//! threads an [`obs::reqtrace::TraceMeta`] through the loop, appending
//! per-token phase records to the request's trace and attributing TTFT
//! back to the serving queue's enqueue stamp.

use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::RngExt;
use ratatouille_tensor::{ops, Tensor};

use crate::lm::InferenceModel;

/// Decoding configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerConfig {
    /// Maximum tokens to generate (beyond the prompt).
    pub max_tokens: usize,
    /// Softmax temperature (1.0 = untouched; → 0 = argmax-like). Ignored
    /// when `greedy`.
    pub temperature: f32,
    /// Keep only the k most likely tokens (0 disables).
    pub top_k: usize,
    /// Nucleus sampling mass (1.0 disables).
    pub top_p: f32,
    /// Stop when this token is generated (it is not included in the
    /// output).
    pub stop_token: Option<u32>,
    /// Deterministic argmax decoding.
    pub greedy: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            max_tokens: 256,
            temperature: 0.9,
            top_k: 40,
            top_p: 0.95,
            stop_token: None,
            greedy: false,
        }
    }
}

impl SamplerConfig {
    /// Greedy decoding with a stop token.
    pub fn greedy_until(stop: u32) -> Self {
        SamplerConfig {
            greedy: true,
            stop_token: Some(stop),
            ..Default::default()
        }
    }
}

/// Autoregressively generate a continuation of `prompt`. Returns only the
/// generated tokens (without the prompt, without the stop token).
///
/// Accepts any [`InferenceModel`] — trained f32 models and quantized
/// inference-only variants alike (`&dyn LanguageModel` call sites keep
/// working through the supertrait). Besides the aggregate
/// `decode_token_ns` series, per-token latency is also recorded under a
/// `{model=…,dtype=…}` labeled series so one `/metrics` scrape separates
/// dtype variants; cardinality stays bounded because model names come
/// from the closed registry and dtypes from the closed [`DType`] enum.
pub fn generate<M: InferenceModel + ?Sized>(
    model: &M,
    prompt: &[u32],
    cfg: &SamplerConfig,
    rng: &mut StdRng,
) -> Vec<u32> {
    generate_traced(model, prompt, cfg, rng, &obs::reqtrace::TraceMeta::default())
}

/// [`generate`] with request-trace metadata attached: each prompt token
/// records a `prefill_chunk` phase, each sampled token a `decode_step`
/// phase (batch size 1 — this is the solo path), and time-to-first-token
/// lands in the `ttft_ns` histogram plus its `{model=…}` twin, counted
/// from `meta.enqueued_ns` (prefill start if the caller left it 0).
/// Untraced metadata costs one branch per phase — no stamps, no stores —
/// and the token stream is identical either way (telemetry is
/// write-only, §4b).
pub fn generate_traced<M: InferenceModel + ?Sized>(
    model: &M,
    prompt: &[u32],
    cfg: &SamplerConfig,
    rng: &mut StdRng,
    meta: &obs::reqtrace::TraceMeta,
) -> Vec<u32> {
    assert!(!prompt.is_empty(), "generate requires a non-empty prompt");
    let _span = obs::span!("decode");
    // Labeled handles are resolved once per call, not per token: the
    // static_* macros cache per call site, which a dynamic label string
    // would defeat.
    let labels = format!(
        "{{model=\"{}\",dtype=\"{}\"}}",
        metric_label(model.name()),
        model.dtype().name()
    );
    let labeled_token_ns = obs::metrics::histogram(&format!("decode_token_ns{labels}"));
    let labeled_tokens_total = obs::metrics::counter(&format!("decode_tokens_total{labels}"));
    // TTFT is labeled by model only (no dtype) so the pooled and batched
    // paths feed one series family per model.
    let labeled_ttft = obs::metrics::histogram(&format!(
        "ttft_ns{{model=\"{}\"}}",
        metric_label(model.name())
    ));
    let mut stream = model.start_stream();
    let mut logits: Option<Tensor> = None;
    let prefill_start = obs::Clock::now();
    let origin_ns = if meta.enqueued_ns != 0 {
        meta.enqueued_ns
    } else {
        prefill_start.at_ns()
    };
    for (i, &t) in prompt.iter().enumerate() {
        logits = Some(stream.push(t));
        meta.record(obs::reqtrace::Phase::PrefillChunk, i as u32, 1);
    }
    obs::static_histogram!("decode_prefill_ns").observe(prefill_start.elapsed_ns());
    let mut out = Vec::with_capacity(cfg.max_tokens);
    let mut ttft_recorded = false;
    for _ in 0..cfg.max_tokens {
        let token_span = obs::span!("decode.token");
        let token_start = obs::Clock::now();
        let l = logits.take().expect("logits available after prompt");
        let next = select_token(&l, cfg, rng);
        if !ttft_recorded {
            ttft_recorded = true;
            let ttft = obs::Clock::now().at_ns().saturating_sub(origin_ns);
            obs::static_histogram!("ttft_ns").observe(ttft);
            labeled_ttft.observe(ttft);
        }
        if Some(next) == cfg.stop_token {
            meta.record(obs::reqtrace::Phase::DecodeStep, out.len() as u32, 1);
            drop(token_span);
            break;
        }
        out.push(next);
        meta.record(obs::reqtrace::Phase::DecodeStep, out.len() as u32, 1);
        logits = Some(stream.push(next));
        let elapsed = token_start.elapsed_ns();
        obs::static_histogram!("decode_token_ns").observe(elapsed);
        obs::static_counter!("decode_tokens_total").inc();
        labeled_token_ns.observe(elapsed);
        labeled_tokens_total.inc();
        drop(token_span);
    }
    out
}

/// Sanitize a model display name into a Prometheus label value:
/// lowercase alphanumerics pass through, everything else collapses to
/// `-` (runs collapse to one, edges trimmed). `"GPT-2 medium [int8]"`
/// becomes `"gpt-2-medium-int8"`.
pub fn metric_label(name: &str) -> String {
    obs::metrics::label_value(name)
}

/// Pick the next token from raw logits according to the config.
pub fn select_token(logits: &Tensor, cfg: &SamplerConfig, rng: &mut StdRng) -> u32 {
    if cfg.greedy {
        return ops::argmax_last(logits)[0] as u32;
    }
    let v = logits.numel();
    let temp = cfg.temperature.max(1e-4);
    let scaled: Vec<f32> = logits.data().iter().map(|&x| x / temp).collect();

    // Sort candidate indices by logit, descending.
    let mut idx: Vec<usize> = (0..v).collect();
    idx.sort_by(|&a, &b| scaled[b].partial_cmp(&scaled[a]).unwrap_or(std::cmp::Ordering::Equal));

    // top-k cutoff
    let k = if cfg.top_k > 0 { cfg.top_k.min(v) } else { v };
    let mut kept = &idx[..k];

    // softmax over kept
    let max = scaled[kept[0]];
    let mut probs: Vec<f32> = kept.iter().map(|&i| (scaled[i] - max).exp()).collect();
    let sum = ratatouille_util::accum::sum_f32(probs.iter().copied());
    for p in probs.iter_mut() {
        *p /= sum;
    }

    // top-p cutoff on the sorted distribution
    if cfg.top_p < 1.0 {
        let mut cum = 0.0f32;
        let mut cut = probs.len();
        for (i, &p) in probs.iter().enumerate() {
            // xlint: allow(accum-discipline): the running prefix sum over the sorted distribution IS the top-p semantics; order is the point
            cum += p;
            if cum >= cfg.top_p {
                cut = i + 1;
                break;
            }
        }
        kept = &kept[..cut];
        probs.truncate(cut);
        let s = ratatouille_util::accum::sum_f32(probs.iter().copied());
        for p in probs.iter_mut() {
            *p /= s;
        }
    }

    // multinomial draw
    let mut x = rng.random::<f32>();
    for (&i, &p) in kept.iter().zip(&probs) {
        x -= p;
        if x <= 0.0 {
            return i as u32;
        }
    }
    // xlint: allow(transitive-panic-in-request-path): `kept` holds at least one index — top-k/top-p always keep >= 1 candidate
    *kept.last().unwrap() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratatouille_util::rng::SeedableRng;

    fn logits(values: &[f32]) -> Tensor {
        Tensor::from_vec(values.to_vec(), &[values.len()]).unwrap()
    }

    #[test]
    fn greedy_picks_argmax() {
        let cfg = SamplerConfig {
            greedy: true,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let t = select_token(&logits(&[0.1, 5.0, 2.0]), &cfg, &mut rng);
        assert_eq!(t, 1);
    }

    #[test]
    fn top_k_restricts_support() {
        let cfg = SamplerConfig {
            top_k: 2,
            top_p: 1.0,
            temperature: 1.0,
            greedy: false,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        // indices 3 and 1 are the top-2
        let l = logits(&[0.0, 4.0, 1.0, 6.0, 0.5]);
        for _ in 0..200 {
            let t = select_token(&l, &cfg, &mut rng);
            assert!(t == 3 || t == 1, "sampled outside top-k: {t}");
        }
    }

    #[test]
    fn top_p_restricts_support() {
        let cfg = SamplerConfig {
            top_k: 0,
            top_p: 0.5,
            temperature: 1.0,
            greedy: false,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        // one dominant token holds > 50% of the mass
        let l = logits(&[10.0, 1.0, 1.0, 1.0]);
        for _ in 0..100 {
            assert_eq!(select_token(&l, &cfg, &mut rng), 0);
        }
    }

    #[test]
    fn low_temperature_approaches_greedy() {
        let cfg = SamplerConfig {
            top_k: 0,
            top_p: 1.0,
            temperature: 0.01,
            greedy: false,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let l = logits(&[1.0, 1.5, 1.2]);
        for _ in 0..100 {
            assert_eq!(select_token(&l, &cfg, &mut rng), 1);
        }
    }

    #[test]
    fn high_temperature_spreads_mass() {
        let cfg = SamplerConfig {
            top_k: 0,
            top_p: 1.0,
            temperature: 100.0,
            greedy: false,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let l = logits(&[1.0, 3.0]);
        let picks: Vec<u32> = (0..300).map(|_| select_token(&l, &cfg, &mut rng)).collect();
        let zeros = picks.iter().filter(|&&t| t == 0).count();
        // near-uniform: both sides sampled substantially
        assert!(zeros > 90 && zeros < 210, "zeros={zeros}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SamplerConfig::default();
        let l = logits(&[0.5, 0.7, 0.1, 0.9, 0.3]);
        let a: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| select_token(&l, &cfg, &mut rng)).collect()
        };
        let b: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| select_token(&l, &cfg, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn metric_label_sanitizes() {
        assert_eq!(metric_label("GPT-2 medium [int8]"), "gpt-2-medium-int8");
        assert_eq!(metric_label("DistilGPT2"), "distilgpt2");
        assert_eq!(metric_label("GPT-Neo (future work)"), "gpt-neo-future-work");
    }

    #[test]
    fn generate_works_on_quantized_models() {
        use crate::gpt2::{Gpt2Config, Gpt2Lm};
        use crate::lm::LanguageModel;
        let m = Gpt2Lm::new(Gpt2Config {
            name: "tiny-gpt".into(),
            vocab: 16,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_t: 16,
            dropout: 0.0,
            seed: 5,
        });
        let q = LanguageModel::quantized(&m).expect("gpt2 has an int8 variant");
        let cfg = SamplerConfig {
            max_tokens: 5,
            greedy: true,
            stop_token: None,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let out = generate(q.as_ref(), &[2], &cfg, &mut rng);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn generate_respects_stop_and_budget() {
        use crate::lstm::{LstmConfig, LstmLm};
        let m = LstmLm::new(LstmConfig {
            name: "t".into(),
            vocab: 8,
            d_embed: 4,
            d_hidden: 8,
            layers: 1,
            max_t: 32,
            dropout: 0.0,
            seed: 1,
        });
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = SamplerConfig {
            max_tokens: 10,
            stop_token: None,
            ..Default::default()
        };
        let out = generate(&m, &[2], &cfg, &mut rng);
        assert_eq!(out.len(), 10);
        // stop token halts early and is excluded
        let cfg = SamplerConfig {
            max_tokens: 50,
            greedy: true,
            stop_token: Some(ops::argmax_last(&m.start_stream().push(2))[0] as u32),
            ..Default::default()
        };
        let out = generate(&m, &[2], &cfg, &mut rng);
        assert!(out.is_empty(), "greedy first pick is the stop token");
    }
}

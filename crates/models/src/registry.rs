//! The four Table-I model configurations, with their tokenizers and
//! training budgets, behind one constructor.

use ratatouille_tokenizers::{BpeTokenizer, CharTokenizer, Tokenizer, WordTokenizer};

use crate::gpt2::{Gpt2Config, Gpt2Lm};
use crate::lm::LanguageModel;
use crate::lstm::{LstmConfig, LstmLm};
use crate::train::TrainConfig;

/// The four rows of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Character-level LSTM baseline.
    CharLstm,
    /// Word-level LSTM baseline.
    WordLstm,
    /// DistilGPT2 tier.
    DistilGpt2,
    /// GPT-2 medium tier.
    Gpt2Medium,
}

/// Table I's rows, in the paper's order.
pub const TABLE1_MODELS: &[ModelKind] = &[
    ModelKind::CharLstm,
    ModelKind::WordLstm,
    ModelKind::DistilGpt2,
    ModelKind::Gpt2Medium,
];

impl ModelKind {
    /// Table I row label.
    pub fn display_name(&self) -> &'static str {
        match self {
            ModelKind::CharLstm => "Char-level LSTM",
            ModelKind::WordLstm => "Word-level LSTM",
            ModelKind::DistilGpt2 => "DistilGPT2",
            ModelKind::Gpt2Medium => "GPT-2 medium",
        }
    }

    /// The BLEU score the paper reports for this row (for EXPERIMENTS.md
    /// shape comparison, not as a target to hit numerically).
    pub fn paper_bleu(&self) -> f64 {
        match self {
            ModelKind::CharLstm => 0.347,
            ModelKind::WordLstm => 0.412,
            ModelKind::DistilGpt2 => 0.442,
            ModelKind::Gpt2Medium => 0.806,
        }
    }
}

/// Instantiate just the model for a row, given the tokenizer's vocabulary
/// size. Used both by [`ModelSpec::build`] and by serving workers that
/// rebuild a replica from checkpointed weights.
pub fn build_model(kind: ModelKind, vocab: usize) -> Box<dyn LanguageModel> {
    match kind {
        ModelKind::CharLstm => Box::new(LstmLm::new(LstmConfig::char_level(vocab))),
        ModelKind::WordLstm => Box::new(LstmLm::new(LstmConfig::word_level(vocab))),
        ModelKind::DistilGpt2 => Box::new(Gpt2Lm::new(Gpt2Config::distil(vocab))),
        ModelKind::Gpt2Medium => Box::new(Gpt2Lm::new(Gpt2Config::medium(vocab))),
    }
}

/// A model + its tokenizer + the block size it trains at.
pub struct ModelSpec {
    /// Which Table-I row this is.
    pub kind: ModelKind,
    /// The instantiated model.
    pub model: Box<dyn LanguageModel>,
    /// The tokenizer the model was built over.
    pub tokenizer: Box<dyn Tokenizer>,
    /// Training block size (sequence length).
    pub block_size: usize,
}

impl ModelSpec {
    /// Build a Table-I model over a training corpus (the tokenizer is
    /// trained/fit on the corpus first, then the model sized to its
    /// vocabulary).
    pub fn build(kind: ModelKind, corpus: &[String]) -> ModelSpec {
        let tokenizer: Box<dyn Tokenizer> = match kind {
            ModelKind::CharLstm => Box::new(CharTokenizer::train(corpus)),
            ModelKind::WordLstm => Box::new(WordTokenizer::train(corpus, 2)),
            ModelKind::DistilGpt2 | ModelKind::Gpt2Medium => {
                Box::new(BpeTokenizer::train(corpus, 384))
            }
        };
        let model = build_model(kind, tokenizer.vocab_size());
        let block_size = match kind {
            ModelKind::CharLstm => 256,
            ModelKind::WordLstm => 192,
            // transformers train on whole-recipe-aligned blocks: the
            // window must fit a full tagged recipe (~250 BPE tokens)
            ModelKind::DistilGpt2 | ModelKind::Gpt2Medium => 256,
        };
        ModelSpec {
            kind,
            model,
            tokenizer,
            block_size,
        }
    }

    /// The default training budget for this row, scaled so the whole
    /// table regenerates on a laptop CPU. Budgets favor the transformer
    /// tiers the way the paper's fine-tuning (pre-trained weights + A100
    /// hours) favored GPT-2.
    pub fn default_train_config(&self) -> TrainConfig {
        match self.kind {
            ModelKind::CharLstm => TrainConfig {
                steps: 400,
                batch_size: 8,
                lr: 3e-3,
                warmup: 30,
                ..Default::default()
            },
            ModelKind::WordLstm => TrainConfig {
                steps: 400,
                batch_size: 8,
                lr: 3e-3,
                warmup: 30,
                ..Default::default()
            },
            ModelKind::DistilGpt2 => TrainConfig {
                steps: 500,
                batch_size: 8,
                lr: 2e-3,
                warmup: 40,
                ..Default::default()
            },
            ModelKind::Gpt2Medium => TrainConfig {
                steps: 600,
                batch_size: 8,
                lr: 1.5e-3,
                warmup: 60,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        vec![
            "<RECIPE_START><TITLE_START> bread <TITLE_END><INGR_START> 2 cups flour <INGR_END><INSTR_START> mix well <NEXT_INSTR> bake <INSTR_END><RECIPE_END>".to_string();
            12
        ]
    }

    #[test]
    fn all_four_rows_build() {
        for &kind in TABLE1_MODELS {
            let spec = ModelSpec::build(kind, &corpus());
            assert_eq!(spec.model.name(), kind.display_name());
            assert!(spec.model.vocab_size() >= spec.tokenizer.vocab_size());
            assert!(spec.block_size <= spec.model.max_context());
            assert!(spec.model.num_params() > 0);
        }
    }

    #[test]
    fn paper_order_is_monotone() {
        let scores: Vec<f64> = TABLE1_MODELS.iter().map(|k| k.paper_bleu()).collect();
        for w in scores.windows(2) {
            assert!(w[0] < w[1], "Table I should be increasing");
        }
    }

    #[test]
    fn capacity_ordering_matches_paper() {
        let c = corpus();
        let distil = ModelSpec::build(ModelKind::DistilGpt2, &c);
        let medium = ModelSpec::build(ModelKind::Gpt2Medium, &c);
        assert!(medium.model.num_params() > distil.model.num_params());
    }

    #[test]
    fn train_budgets_favor_transformers() {
        let c = corpus();
        let char_cfg = ModelSpec::build(ModelKind::CharLstm, &c).default_train_config();
        let med_cfg = ModelSpec::build(ModelKind::Gpt2Medium, &c).default_train_config();
        assert!(med_cfg.steps > char_cfg.steps);
    }
}

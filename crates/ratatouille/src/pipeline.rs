//! The end-to-end pipeline: corpus → preprocess → train → generate →
//! evaluate (the paper's Fig. 3 flow, plus the Table-I evaluation loop).

use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::SeedableRng;

use ratatouille_eval::bleu::corpus_bleu;
use ratatouille_eval::coverage::ingredient_coverage;
use ratatouille_eval::diversity::{distinct_n, self_bleu};
use ratatouille_eval::novelty::is_verbatim_copy;
use ratatouille_eval::perplexity::perplexity_from_nll;
use ratatouille_eval::report::EvalReport;
use ratatouille_eval::rouge::corpus_rouge_l;
use ratatouille_eval::structure::validate_tagged_recipe;
use ratatouille_models::data::Dataset;
use ratatouille_models::registry::{ModelKind, ModelSpec};
use ratatouille_models::sample::{generate, SamplerConfig};
use ratatouille_models::train::{TrainConfig, TrainStats, Trainer};
use ratatouille_recipedb::{Corpus, PreprocessReport, Preprocessor, Recipe};
use ratatouille_serving::api::GeneratedRecipe;
use ratatouille_tokenizers::special;

use crate::config::PipelineConfig;

/// Prepared data: preprocessed training texts plus a clean held-out
/// evaluation set (split at the *recipe* level before preprocessing, so
/// no test recipe leaks into the training stream).
pub struct Pipeline {
    /// The pipeline configuration.
    pub config: PipelineConfig,
    /// Preprocessed tagged training texts (Fig. 2 format).
    pub train_texts: Vec<String>,
    /// Held-out clean recipes for evaluation.
    pub test_recipes: Vec<Recipe>,
    /// Preprocessing accounting (Figs. 1→2).
    pub report: PreprocessReport,
}

impl Pipeline {
    /// Generate the corpus, split train/test, and preprocess the training
    /// half's raw records.
    pub fn prepare(config: PipelineConfig) -> Pipeline {
        let corpus = Corpus::generate(config.corpus.clone());
        let (train, test) = corpus.split(config.test_frac);
        let train_ids: std::collections::HashSet<u64> = train.iter().map(|r| r.id).collect();
        let train_raw: Vec<_> = corpus
            .raw_records
            .iter()
            .filter(|r| train_ids.contains(&r.source_id))
            .cloned()
            .collect();
        let (train_texts, report) = Preprocessor::new(config.preprocess.clone()).run(&train_raw);
        Pipeline {
            config,
            train_texts,
            test_recipes: test.into_iter().cloned().collect(),
            report,
        }
    }

    /// Build and train one Table-I model on the prepared data.
    /// `overrides` replaces the row's default training budget.
    pub fn train(&self, kind: ModelKind, overrides: Option<TrainConfig>) -> TrainedModel {
        let spec = ModelSpec::build(kind, &self.train_texts);
        let train_cfg = overrides.unwrap_or_else(|| spec.default_train_config());
        // Transformers learn positions: train on recipe-aligned blocks so
        // <RECIPE_START> regularly appears at position 0 (where generation
        // prompts start). LSTMs carry no positions; the concatenated
        // stream (the paper's "one long string") is fine and denser.
        let dataset = match kind {
            ModelKind::DistilGpt2 | ModelKind::Gpt2Medium => {
                Dataset::from_documents(&self.train_texts, spec.tokenizer.as_ref(), spec.block_size)
            }
            _ => Dataset::from_texts(&self.train_texts, spec.tokenizer.as_ref(), spec.block_size),
        };
        let stats = Trainer::new(spec.model.as_ref(), &dataset, train_cfg.clone()).train();
        TrainedModel {
            spec,
            stats,
            train_cfg,
            sampler: self.config.sampler.clone(),
            train_texts: self.train_texts.clone(),
        }
    }
}

/// A trained model ready for generation and evaluation.
pub struct TrainedModel {
    /// The model + tokenizer pair.
    pub spec: ModelSpec,
    /// Training statistics.
    pub stats: TrainStats,
    /// The budget it was trained with.
    pub train_cfg: TrainConfig,
    /// Default decoding configuration.
    pub sampler: SamplerConfig,
    /// The training texts (novelty/copy-rate checks need them).
    pub train_texts: Vec<String>,
}

/// The conditional-generation prompt (Fig. 3): the user's ingredient list
/// wrapped in input tags, ending at `<TITLE_START>` so the model continues
/// with title, quantified ingredient lines and instructions.
pub fn prompt_for(ingredients: &[String]) -> String {
    use special::*;
    let mut s = String::from(RECIPE_START);
    s.push_str(INPUT_START);
    for (i, ing) in ingredients.iter().enumerate() {
        if i > 0 {
            s.push_str(NEXT_INPUT);
        }
        s.push(' ');
        s.push_str(&ing.to_lowercase());
        s.push(' ');
    }
    s.push_str(INPUT_END);
    s.push_str(TITLE_START);
    s
}

/// Insert spaces around structural tags so whitespace tokenization treats
/// them as standalone tokens (used for BLEU and copy checks).
pub fn spaced_tags(text: &str) -> String {
    let mut out = text.to_string();
    for tag in special::ALL_SPECIAL_TAGS {
        out = out.replace(tag, &format!(" {tag} "));
    }
    special::collapse_spaces(&out)
}

impl TrainedModel {
    /// Generate the full tagged text for an ingredient list (prompt
    /// included). `seed` controls sampling.
    pub fn generate_tagged(&self, ingredients: &[String], seed: u64) -> String {
        let prompt_text = prompt_for(ingredients);
        let prompt = self.spec.tokenizer.encode(&prompt_text);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SamplerConfig {
            stop_token: Some(self.spec.tokenizer.eos_id()),
            max_tokens: generation_budget(self.spec.kind),
            ..self.sampler.clone()
        };
        let continuation = generate(self.spec.model.as_ref(), &prompt, &cfg, &mut rng);
        let mut text = prompt_text;
        text.push_str(&self.spec.tokenizer.decode(&continuation));
        text.push_str(special::RECIPE_END);
        text
    }

    /// Like [`Self::generate_tagged`] but decoded with the model's int8
    /// weight-quantized variant, when the architecture offers one
    /// (`None` for LSTMs). Same seed and sampler settings as the f32
    /// path, so f32-vs-int8 deltas isolate the quantization effect.
    pub fn generate_tagged_quantized(&self, ingredients: &[String], seed: u64) -> Option<String> {
        let quant = self.spec.model.quantized()?;
        let prompt_text = prompt_for(ingredients);
        let prompt = self.spec.tokenizer.encode(&prompt_text);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SamplerConfig {
            stop_token: Some(self.spec.tokenizer.eos_id()),
            max_tokens: generation_budget(self.spec.kind),
            ..self.sampler.clone()
        };
        let continuation = generate(quant.as_ref(), &prompt, &cfg, &mut rng);
        let mut text = prompt_text;
        text.push_str(&self.spec.tokenizer.decode(&continuation));
        text.push_str(special::RECIPE_END);
        Some(text)
    }

    /// Deterministic high-likelihood generation via beam search (no
    /// sampling seed; the output is a pure function of the weights).
    pub fn generate_tagged_beam(&self, ingredients: &[String], beam_width: usize) -> String {
        use ratatouille_models::beam::{beam_search, BeamConfig};
        let prompt_text = prompt_for(ingredients);
        let prompt = self.spec.tokenizer.encode(&prompt_text);
        let cfg = BeamConfig {
            beam_width,
            max_tokens: generation_budget(self.spec.kind),
            stop_token: Some(self.spec.tokenizer.eos_id()),
            length_penalty: 0.7,
        };
        let continuation = beam_search(self.spec.model.as_ref(), &prompt, &cfg);
        let mut text = prompt_text;
        text.push_str(&self.spec.tokenizer.decode(&continuation));
        text.push_str(special::RECIPE_END);
        text
    }

    /// Generate and parse into a structured recipe (Fig. 5).
    pub fn generate_recipe(&self, ingredients: &[String], seed: u64) -> GeneratedRecipe {
        let tagged = self.generate_tagged(ingredients, seed);
        let report = validate_tagged_recipe(&tagged);
        GeneratedRecipe {
            title: report
                .title
                .clone()
                .unwrap_or_else(|| "untitled recipe".into()),
            ingredients: report.ingredients.clone(),
            instructions: report.instructions.clone(),
            well_formed: report.valid,
        }
    }

    /// The Table-I evaluation: generate from each held-out recipe's
    /// ingredient prompt and score against the reference continuation.
    /// `max_recipes` caps evaluation cost; `seed` drives decoding.
    pub fn evaluate(&self, test: &[Recipe], max_recipes: usize, seed: u64) -> EvalReport {
        let mut report = EvalReport::new(self.spec.model.name());
        let subset: Vec<&Recipe> = test.iter().take(max_recipes).collect();
        if subset.is_empty() {
            return report;
        }

        let mut candidates: Vec<String> = Vec::with_capacity(subset.len());
        let mut references: Vec<String> = Vec::with_capacity(subset.len());
        let mut valid = 0usize;
        let mut qty_cov = 0.0f64;
        let mut ingr_cov = 0.0f64;
        let mut copies = 0usize;
        let mut gen_secs = 0.0f64;
        let spaced_train: Vec<String> =
            self.train_texts.iter().map(|t| spaced_tags(t)).collect();

        for (i, recipe) in subset.iter().enumerate() {
            let ingredients: Vec<String> =
                recipe.ingredients.iter().map(|l| l.name.clone()).collect();
            let started = obs::Clock::now();
            let tagged = self.generate_tagged(&ingredients, seed ^ (i as u64));
            let ns = started.elapsed_ns();
            obs::static_histogram!("eval_generate_ns").observe(ns);
            gen_secs += ns as f64 / 1e9;

            // reference continuation: everything after <TITLE_START>
            let full_ref = recipe.to_tagged_string();
            let reference = full_ref
                .split_once(special::TITLE_START)
                .map(|(_, rest)| rest.to_string())
                .unwrap_or(full_ref);
            let candidate = tagged
                .split_once(special::TITLE_START)
                .map(|(_, rest)| rest.to_string())
                .unwrap_or_else(|| tagged.clone());

            let s = validate_tagged_recipe(&tagged);
            if s.valid {
                valid += 1;
            }
            qty_cov += s.quantity_coverage();
            let cov = ingredient_coverage(&ingredients, &s.ingredients, &s.instructions);
            ingr_cov += cov.in_ingredient_list.max(cov.in_instructions);
            if is_verbatim_copy(&spaced_tags(&tagged), &spaced_train) {
                copies += 1;
            }
            candidates.push(spaced_tags(&candidate));
            references.push(spaced_tags(&reference));
        }

        let pairs: Vec<(&str, Vec<&str>)> = candidates
            .iter()
            .zip(&references)
            .map(|(c, r)| (c.as_str(), vec![r.as_str()]))
            .collect();
        report.bleu = corpus_bleu(&pairs);
        let rouge_pairs: Vec<(&str, &str)> = candidates
            .iter()
            .zip(&references)
            .map(|(c, r)| (c.as_str(), r.as_str()))
            .collect();
        report.rouge_l = corpus_rouge_l(&rouge_pairs);
        report.ingredient_coverage = ingr_cov / subset.len() as f64;
        report.distinct_2 = distinct_n(&candidates, 2);
        report.self_bleu = self_bleu(&candidates);
        report.structure_valid_rate = valid as f64 / subset.len() as f64;
        report.quantity_coverage = qty_cov / subset.len() as f64;
        report.copy_rate = copies as f64 / subset.len() as f64;
        report.gen_latency_ms = gen_secs * 1000.0 / subset.len() as f64;
        // scale perplexity cost with the evaluation budget
        report.perplexity = self.test_perplexity(test, (subset.len() * 2).clamp(4, 32));
        report
    }

    /// Token perplexity on held-out recipes.
    pub fn test_perplexity(&self, test: &[Recipe], max_blocks: usize) -> f64 {
        let texts: Vec<String> = test.iter().map(|r| r.to_tagged_string()).collect();
        let ds = Dataset::from_texts(&texts, self.spec.tokenizer.as_ref(), self.spec.block_size);
        if ds.is_empty() {
            return f64::INFINITY;
        }
        let trainer = Trainer::new(
            self.spec.model.as_ref(),
            &ds,
            TrainConfig {
                steps: 0,
                ..Default::default()
            },
        );
        perplexity_from_nll(&trainer.token_nlls(max_blocks))
    }
}

/// Generation budgets per row: char-level recipes need ~4–6× more tokens
/// than word/BPE ones.
pub(crate) fn generation_budget(kind: ModelKind) -> usize {
    match kind {
        ModelKind::CharLstm => 1100,
        ModelKind::WordLstm => 220,
        _ => 260,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pipeline() -> Pipeline {
        let mut cfg = PipelineConfig::small();
        cfg.corpus.num_recipes = 120;
        Pipeline::prepare(cfg)
    }

    #[test]
    fn prepare_splits_without_leakage() {
        let p = tiny_pipeline();
        assert!(!p.train_texts.is_empty());
        assert!(!p.test_recipes.is_empty());
        // No test recipe's title should appear in a training text with its
        // exact tagged form.
        for r in p.test_recipes.iter().take(10) {
            let tagged = r.to_tagged_string();
            assert!(
                !p.train_texts.iter().any(|t| t.contains(&tagged)),
                "test recipe {} leaked into training stream",
                r.id
            );
        }
    }

    #[test]
    fn prompt_format() {
        let p = prompt_for(&["Flour".into(), "water".into()]);
        assert!(p.starts_with(special::RECIPE_START));
        assert!(p.ends_with(special::TITLE_START));
        assert!(p.contains(" flour "));
        assert!(p.contains(special::NEXT_INPUT));
    }

    #[test]
    fn spaced_tags_tokenize_cleanly() {
        let s = spaced_tags("<RECIPE_START><TITLE_START> pie <TITLE_END>");
        let toks: Vec<&str> = s.split_whitespace().collect();
        assert_eq!(
            toks,
            vec!["<RECIPE_START>", "<TITLE_START>", "pie", "<TITLE_END>"]
        );
    }

    #[test]
    fn train_and_generate_smoke() {
        let p = tiny_pipeline();
        // minuscule budget: this is a wiring test, not a quality test
        let trained = p.train(
            ModelKind::WordLstm,
            Some(TrainConfig {
                steps: 5,
                batch_size: 2,
                ..Default::default()
            }),
        );
        assert_eq!(trained.stats.steps_run, 5);
        let rec = trained.generate_recipe(&["flour".into(), "water".into()], 7);
        assert!(!rec.title.is_empty());
        // deterministic given seed
        let rec2 = trained.generate_recipe(&["flour".into(), "water".into()], 7);
        assert_eq!(rec, rec2);
        let rec3 = trained.generate_recipe(&["flour".into(), "water".into()], 8);
        // different seed usually differs (untrained model, high entropy)
        assert!(rec != rec3 || rec.instructions.is_empty());
    }

    #[test]
    fn beam_generation_is_deterministic() {
        let p = tiny_pipeline();
        let trained = p.train(
            ModelKind::WordLstm,
            Some(TrainConfig {
                steps: 5,
                batch_size: 2,
                ..Default::default()
            }),
        );
        let ing = vec!["flour".to_string(), "water".to_string()];
        let a = trained.generate_tagged_beam(&ing, 2);
        let b = trained.generate_tagged_beam(&ing, 2);
        assert_eq!(a, b);
        assert!(a.starts_with(special::RECIPE_START));
        assert!(a.ends_with(special::RECIPE_END));
    }

    #[test]
    fn evaluate_produces_bounded_metrics() {
        let p = tiny_pipeline();
        let trained = p.train(
            ModelKind::DistilGpt2,
            Some(TrainConfig {
                steps: 5,
                batch_size: 2,
                ..Default::default()
            }),
        );
        let report = trained.evaluate(&p.test_recipes, 3, 0);
        assert!((0.0..=1.0).contains(&report.bleu), "bleu {}", report.bleu);
        assert!((0.0..=1.0).contains(&report.structure_valid_rate));
        assert!((0.0..=1.0).contains(&report.copy_rate));
        assert!(report.perplexity > 1.0);
        assert!(report.gen_latency_ms > 0.0);
    }

    #[test]
    fn empty_test_set_gives_empty_report() {
        let p = tiny_pipeline();
        let trained = p.train(
            ModelKind::WordLstm,
            Some(TrainConfig {
                steps: 1,
                batch_size: 2,
                ..Default::default()
            }),
        );
        let report = trained.evaluate(&[], 10, 0);
        assert_eq!(report.bleu, 0.0);
    }
}

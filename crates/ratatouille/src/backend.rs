//! Plugging trained models into the serving stack.
//!
//! Trained models hold `Rc`-based autograd handles and are not `Send`;
//! the worker pool therefore rebuilds a *replica* inside each worker
//! thread from `Send`-able ingredients: the model kind, the tokenizer
//! (a value type), and the trained weights as a [`TensorMap`]. This is
//! the in-process analogue of the paper's "replicate the docker" scaling.

use std::sync::Arc;

use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::SeedableRng;

use ratatouille_eval::structure::validate_tagged_recipe;
use ratatouille_models::registry::{build_model, ModelKind};
use ratatouille_models::sample::{generate_traced, SamplerConfig};
use ratatouille_models::{InferenceModel, LanguageModel};
use ratatouille_serving::api::{GeneratedRecipe, RecipeBackend, RecipeBackendFactory};
use ratatouille_tensor::serialize::TensorMap;
use ratatouille_tokenizers::{special, Tokenizer};

use crate::pipeline::{prompt_for, TrainedModel};

/// A serving replica: one model + tokenizer + decoding state.
pub struct ModelBackend {
    model: Box<dyn LanguageModel>,
    /// The int8 weight-quantized variant, when the architecture offers
    /// one (GPT-2/GPT-Neo; LSTMs serve f32 only). Quantized once at
    /// replica construction, not per request.
    quant: Option<Box<dyn InferenceModel>>,
    tokenizer: Box<dyn Tokenizer>,
    sampler: SamplerConfig,
    rng: StdRng,
    max_tokens: usize,
}

impl ModelBackend {
    /// Build a replica from `Send`-able parts (used inside worker threads).
    pub fn from_weights(
        kind: ModelKind,
        tokenizer: &dyn Tokenizer,
        weights: &TensorMap,
        sampler: SamplerConfig,
        seed: u64,
    ) -> ModelBackend {
        let model = build_model(kind, tokenizer.vocab_size());
        load_weights(model.as_ref(), weights);
        let quant = model.quantized();
        let max_tokens = if kind == ModelKind::CharLstm { 1100 } else { 260 };
        ModelBackend {
            model,
            quant,
            tokenizer: tokenizer.clone_box(),
            sampler,
            rng: StdRng::seed_from_u64(seed),
            max_tokens,
        }
    }

    /// Override the per-request decode budget (defaults to the model
    /// kind's recipe-length budget).
    pub fn set_max_tokens(&mut self, n: usize) {
        self.max_tokens = n.max(1);
    }

    /// The decode body shared by the traced and untraced entry points:
    /// prompt → (possibly quantized) generation → structural validation.
    fn decode_recipe(
        &mut self,
        ingredients: &[String],
        dtype: &str,
        meta: &obs::reqtrace::TraceMeta,
    ) -> GeneratedRecipe {
        let prompt_text = prompt_for(ingredients);
        let prompt = self.tokenizer.encode(&prompt_text);
        let cfg = SamplerConfig {
            stop_token: Some(self.tokenizer.eos_id()),
            max_tokens: self.max_tokens,
            ..self.sampler.clone()
        };
        let continuation = match (&self.quant, dtype) {
            (Some(q), "int8") => generate_traced(q.as_ref(), &prompt, &cfg, &mut self.rng, meta),
            _ => generate_traced(self.model.as_ref(), &prompt, &cfg, &mut self.rng, meta),
        };
        let mut tagged = prompt_text;
        tagged.push_str(&self.tokenizer.decode(&continuation));
        tagged.push_str(special::RECIPE_END);
        let report = validate_tagged_recipe(&tagged);
        GeneratedRecipe {
            title: report
                .title
                .clone()
                .unwrap_or_else(|| "untitled recipe".into()),
            ingredients: report.ingredients.clone(),
            instructions: report.instructions.clone(),
            well_formed: report.valid,
        }
    }
}

impl RecipeBackend for ModelBackend {
    fn generate(&mut self, ingredients: &[String]) -> GeneratedRecipe {
        self.generate_with_dtype(ingredients, "f32")
    }

    fn generate_with_dtype(&mut self, ingredients: &[String], dtype: &str) -> GeneratedRecipe {
        self.decode_recipe(ingredients, dtype, &obs::reqtrace::TraceMeta::default())
    }

    fn generate_seeded(
        &mut self,
        ingredients: &[String],
        dtype: &str,
        seed: Option<u64>,
    ) -> GeneratedRecipe {
        self.generate_traced(
            ingredients,
            dtype,
            seed,
            &obs::reqtrace::TraceMeta::default(),
        )
    }

    fn generate_traced(
        &mut self,
        ingredients: &[String],
        dtype: &str,
        seed: Option<u64>,
        meta: &obs::reqtrace::TraceMeta,
    ) -> GeneratedRecipe {
        match seed {
            // A pinned seed decodes from a fresh RNG so the result
            // depends only on (weights, prompt, seed) — replayable.
            Some(s) => {
                let mut rng = StdRng::seed_from_u64(s);
                std::mem::swap(&mut self.rng, &mut rng);
                let out = self.decode_recipe(ingredients, dtype, meta);
                self.rng = rng;
                out
            }
            None => self.decode_recipe(ingredients, dtype, meta),
        }
    }

    fn dtypes(&self) -> Vec<String> {
        let mut out = vec!["f32".to_string()];
        if let Some(q) = &self.quant {
            out.push(q.dtype().name().to_string());
        }
        out
    }

    fn model_name(&self) -> String {
        self.model.name().to_string()
    }
}

/// Snapshot a model's weights by parameter name.
pub fn weights_map(model: &dyn LanguageModel) -> TensorMap {
    let mut map = TensorMap::new();
    for (name, p) in model.named_parameters() {
        map.insert(name, p.value());
    }
    map
}

/// Load named weights into a model in place.
///
/// # Panics
/// Panics if a parameter is missing from the map or has the wrong shape
/// (replica construction is programmer-controlled; a mismatch is a bug).
pub fn load_weights(model: &dyn LanguageModel, map: &TensorMap) {
    for (name, p) in model.named_parameters() {
        let t = map
            .get(&name)
            .unwrap_or_else(|| panic!("weights map missing parameter `{name}`"));
        assert_eq!(
            t.dims(),
            p.value().dims(),
            "shape mismatch for `{name}`"
        );
        p.set_value(t.clone());
    }
}

impl TrainedModel {
    /// A `Send + Sync` factory producing serving replicas of this trained
    /// model — pass to [`ratatouille_serving::ApiServer::start`].
    pub fn backend_factory(&self) -> RecipeBackendFactory {
        let kind = self.spec.kind;
        let weights = weights_map(self.spec.model.as_ref());
        let tokenizer: Arc<dyn Tokenizer> = Arc::from(self.spec.tokenizer.clone_box());
        let sampler = self.sampler.clone();
        Arc::new(move |worker_idx| {
            Box::new(ModelBackend::from_weights(
                kind,
                tokenizer.as_ref(),
                &weights,
                sampler.clone(),
                0x5EED ^ worker_idx as u64,
            )) as Box<dyn RecipeBackend>
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::pipeline::Pipeline;
    use ratatouille_models::train::TrainConfig;

    fn trained() -> TrainedModel {
        let mut cfg = PipelineConfig::small();
        cfg.corpus.num_recipes = 100;
        let p = Pipeline::prepare(cfg);
        p.train(
            ModelKind::WordLstm,
            Some(TrainConfig {
                steps: 3,
                batch_size: 2,
                ..Default::default()
            }),
        )
    }

    #[test]
    fn weights_roundtrip_through_map() {
        let t = trained();
        let map = weights_map(t.spec.model.as_ref());
        let rebuilt = build_model(t.spec.kind, t.spec.tokenizer.vocab_size());
        load_weights(rebuilt.as_ref(), &map);
        for ((n1, p1), (_, p2)) in t
            .spec
            .model
            .named_parameters()
            .iter()
            .zip(rebuilt.named_parameters().iter())
        {
            assert_eq!(p1.value(), p2.value(), "param {n1} differs");
        }
    }

    #[test]
    fn replica_generates_same_structure_as_original() {
        let t = trained();
        let factory = t.backend_factory();
        let mut replica = factory(0);
        let out = replica.generate(&["flour".into(), "water".into()]);
        assert!(!out.title.is_empty());
        assert_eq!(replica.model_name(), t.spec.model.name());
    }

    #[test]
    fn factory_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let t = trained();
        let factory = t.backend_factory();
        assert_send_sync(&factory);
        // and actually usable from another thread
        let handle = std::thread::spawn(move || {
            let mut replica = factory(1);
            replica.generate(&["rice".into()]).title
        });
        assert!(!handle.join().unwrap().is_empty());
    }

    #[test]
    fn lstm_backend_is_f32_only() {
        let t = trained();
        let factory = t.backend_factory();
        let replica = factory(0);
        assert_eq!(replica.dtypes(), vec!["f32"]);
    }

    #[test]
    fn gpt2_backend_serves_int8() {
        let mut cfg = PipelineConfig::small();
        cfg.corpus.num_recipes = 60;
        let p = Pipeline::prepare(cfg);
        let t = p.train(
            ModelKind::DistilGpt2,
            Some(TrainConfig {
                steps: 2,
                batch_size: 2,
                ..Default::default()
            }),
        );
        let factory = t.backend_factory();
        let mut replica = factory(0);
        assert_eq!(replica.dtypes(), vec!["f32", "int8"]);
        let out = replica.generate_with_dtype(&["flour".into(), "water".into()], "int8");
        assert!(!out.title.is_empty());
        // the quantized pipeline helper produces tagged text too
        let tagged = t
            .generate_tagged_quantized(&["flour".into()], 7)
            .expect("gpt2 quantizes");
        assert!(tagged.contains("flour"));
    }

    #[test]
    #[should_panic(expected = "missing parameter")]
    fn load_weights_detects_missing() {
        let t = trained();
        let empty = TensorMap::new();
        load_weights(t.spec.model.as_ref(), &empty);
    }
}

//! End-to-end pipeline configuration.

use ratatouille_models::sample::SamplerConfig;
use ratatouille_recipedb::{CorpusConfig, PreprocessConfig};

/// Everything the pipeline needs: corpus generation, preprocessing,
/// splitting and decoding defaults.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Synthetic-RecipeDB generation parameters.
    pub corpus: CorpusConfig,
    /// Preprocessing parameters (§III of the paper).
    pub preprocess: PreprocessConfig,
    /// Fraction of clean recipes held out for evaluation.
    pub test_frac: f64,
    /// Default decoding configuration.
    pub sampler: SamplerConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            corpus: CorpusConfig::default(),
            preprocess: PreprocessConfig::default(),
            test_frac: 0.1,
            sampler: SamplerConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// A small configuration for tests and examples (hundreds of recipes,
    /// runs end-to-end in seconds).
    pub fn small() -> Self {
        PipelineConfig {
            corpus: CorpusConfig {
                num_recipes: 300,
                ..CorpusConfig::default()
            },
            ..Default::default()
        }
    }

    /// The full reproduction configuration used by the Table-I harness.
    ///
    /// Decoding is low-temperature nucleus sampling: BLEU-style reference
    /// matching rewards conservative decoding (the `ablation_sampling`
    /// bench quantifies the trade-off against diversity).
    pub fn reproduction() -> Self {
        PipelineConfig {
            corpus: CorpusConfig {
                num_recipes: 1500,
                ..CorpusConfig::default()
            },
            sampler: SamplerConfig {
                temperature: 0.7,
                top_k: 40,
                top_p: 0.9,
                ..SamplerConfig::default()
            },
            ..Default::default()
        }
    }

    /// Override the corpus seed (each seed is an independent world).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.corpus.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        assert!(PipelineConfig::small().corpus.num_recipes < PipelineConfig::reproduction().corpus.num_recipes);
    }

    #[test]
    fn with_seed_overrides() {
        let c = PipelineConfig::small().with_seed(99);
        assert_eq!(c.corpus.seed, 99);
    }
}

//! # ratatouille
//!
//! *A tool for Novel Recipe Generation* — the public API of the
//! reproduction of Goel et al., ICDE 2022.
//!
//! The crate ties the substrates together into the paper's end-to-end
//! flow (Fig. 3): corpus → preprocessing → tokenizer → language model →
//! conditional generation → evaluation → web serving.
//!
//! ```no_run
//! use ratatouille::{Pipeline, PipelineConfig};
//! use ratatouille_models::registry::ModelKind;
//!
//! // Prepare data, train the best Table-I model, generate a recipe.
//! let pipeline = Pipeline::prepare(PipelineConfig::small());
//! let trained = pipeline.train(ModelKind::Gpt2Medium, None);
//! let recipe = trained.generate_recipe(&["chicken".into(), "garlic".into()], 0);
//! println!("{}", recipe.title);
//! ```
#![warn(missing_docs)]


pub mod backend;
pub mod batch_backend;
pub mod config;
pub mod pipeline;

pub use backend::ModelBackend;
pub use batch_backend::BatchModelBackend;
pub use config::PipelineConfig;
pub use pipeline::{Pipeline, TrainedModel};

// Re-export the workspace's public surface so downstream users need one
// dependency.
pub use ratatouille_eval as eval;
pub use ratatouille_models as models;
pub use ratatouille_recipedb as recipedb;
pub use ratatouille_serving as serving;
pub use ratatouille_tensor as tensor;
pub use ratatouille_tokenizers as tokenizers;

//! Plugging trained models into the continuous-batching serving stack.
//!
//! [`BatchModelBackend`] adapts a trained, batch-capable model (GPT-2
//! family — anything whose `batch_model()` is `Some`) to the serving
//! crate's [`StepBackend`]: the runner thread builds one replica, admits
//! pantry requests into a [`BatchGenerator`], and steps all of them
//! through a single multi-sequence decode. Same-pantry prompts share
//! KV-cache prefix blocks, so popular ingredient sets pay their prefill
//! once (watch `decode_kv_hits_total`).
//!
//! Determinism carries through unchanged from the engine: a request with
//! a pinned seed produces byte-identical tokens whether it decodes here
//! in a batch of 8 or alone through `ModelBackend::generate_seeded`'s
//! batched equivalent (a batch of 1).

use std::collections::BTreeMap;
use std::sync::Arc;

use ratatouille_eval::structure::validate_tagged_recipe;
use ratatouille_models::registry::{build_model, ModelKind};
use ratatouille_models::sample::SamplerConfig;
use ratatouille_models::{BatchEngineConfig, BatchGenerator, BatchRequest, LanguageModel};
use ratatouille_models::batch::AdmitError;
use ratatouille_serving::api::GeneratedRecipe;
use ratatouille_serving::batch::{AdmitOutcome, StepBackend, StepBackendFactory};
use ratatouille_tensor::serialize::TensorMap;
use ratatouille_tokenizers::{special, Tokenizer};

use crate::backend::{load_weights, weights_map};
use crate::pipeline::{generation_budget, prompt_for, TrainedModel};

/// A continuous-batching serving replica: one batch-capable model, its
/// tokenizer, and a [`BatchGenerator`] holding the blocked KV cache.
pub struct BatchModelBackend {
    model: Box<dyn LanguageModel>,
    tokenizer: Box<dyn Tokenizer>,
    engine: BatchGenerator,
    sampler: SamplerConfig,
    max_tokens: usize,
    /// id → prompt text, to re-tag finished continuations.
    prompts: BTreeMap<u64, String>,
    /// Counter deriving seeds for requests that didn't pin one.
    unseeded: u64,
}

impl BatchModelBackend {
    /// Build a replica from `Send`-able parts inside the runner thread.
    /// Returns `None` when the model kind has no batch-invariant decode
    /// path (LSTMs, or GEMM widths off the pack grid) — callers fall
    /// back to the per-request worker pool.
    pub fn from_weights(
        kind: ModelKind,
        tokenizer: &dyn Tokenizer,
        weights: &TensorMap,
        sampler: SamplerConfig,
        engine_cfg: BatchEngineConfig,
        max_tokens: usize,
    ) -> Option<BatchModelBackend> {
        let model = build_model(kind, tokenizer.vocab_size());
        load_weights(model.as_ref(), weights);
        let engine = {
            let bm = model.batch_model()?;
            BatchGenerator::new(bm, engine_cfg)
        };
        Some(BatchModelBackend {
            model,
            tokenizer: tokenizer.clone_box(),
            engine,
            sampler,
            max_tokens: max_tokens.max(1),
            prompts: BTreeMap::new(),
            unseeded: 0,
        })
    }

    /// Free KV blocks (tests and observability).
    pub fn free_blocks(&self) -> usize {
        self.engine.free_blocks()
    }
}

impl StepBackend for BatchModelBackend {
    fn model_name(&self) -> String {
        self.model.name().to_string()
    }

    fn admit(&mut self, ingredients: &[String], seed: Option<u64>) -> AdmitOutcome {
        self.admit_traced(ingredients, seed, obs::reqtrace::TraceMeta::default())
    }

    fn admit_traced(
        &mut self,
        ingredients: &[String],
        seed: Option<u64>,
        meta: obs::reqtrace::TraceMeta,
    ) -> AdmitOutcome {
        let prompt_text = prompt_for(ingredients);
        let prompt = self.tokenizer.encode(&prompt_text);
        if prompt.is_empty() {
            // A pantry that tokenizes to nothing can never produce a
            // recipe; refuse rather than feed the engine an empty prompt.
            return AdmitOutcome::PoolExhausted;
        }
        let cfg = SamplerConfig {
            stop_token: Some(self.tokenizer.eos_id()),
            max_tokens: self.max_tokens,
            ..self.sampler.clone()
        };
        let seed = seed.unwrap_or_else(|| {
            self.unseeded += 1;
            0x5EED ^ self.unseeded
        });
        match self.engine.admit_traced(
            BatchRequest {
                prompt,
                sampler: cfg,
                seed,
            },
            meta,
        ) {
            Ok(id) => {
                self.prompts.insert(id, prompt_text);
                AdmitOutcome::Admitted(id)
            }
            Err(AdmitError::BatchFull) => AdmitOutcome::BatchFull,
            Err(AdmitError::PoolExhausted) => AdmitOutcome::PoolExhausted,
        }
    }

    fn step(&mut self) -> Vec<(u64, GeneratedRecipe)> {
        let Some(bm) = self.model.batch_model() else {
            return Vec::new();
        };
        let outcome = match self.engine.step(bm) {
            Ok(o) => o,
            // Unreachable by construction (admission reserves the worst
            // case), but a serving replica must not panic.
            Err(_) => return Vec::new(),
        };
        outcome
            .finished
            .into_iter()
            .map(|f| {
                let mut tagged = self.prompts.remove(&f.id).unwrap_or_default();
                tagged.push_str(&self.tokenizer.decode(&f.tokens));
                tagged.push_str(special::RECIPE_END);
                let report = validate_tagged_recipe(&tagged);
                let recipe = GeneratedRecipe {
                    title: report
                        .title
                        .clone()
                        .unwrap_or_else(|| "untitled recipe".into()),
                    ingredients: report.ingredients.clone(),
                    instructions: report.instructions.clone(),
                    well_formed: report.valid,
                };
                (f.id, recipe)
            })
            .collect()
    }

    fn active(&self) -> usize {
        self.engine.active()
    }

    fn free_slots(&self) -> usize {
        self.engine.max_batch().saturating_sub(self.engine.active())
    }
}

impl TrainedModel {
    /// A `Send + Sync` factory producing a continuous-batching replica —
    /// pass to [`ratatouille_serving::ApiServer::start_batched`].
    ///
    /// `None` when this model cannot decode batches deterministically
    /// (LSTMs; widths off the pack grid): callers keep the worker pool.
    pub fn batched_factory(&self, engine_cfg: BatchEngineConfig) -> Option<StepBackendFactory> {
        self.spec.model.batch_model()?;
        let kind = self.spec.kind;
        let weights = weights_map(self.spec.model.as_ref());
        let tokenizer: Arc<dyn Tokenizer> = Arc::from(self.spec.tokenizer.clone_box());
        let sampler = self.sampler.clone();
        let max_tokens = generation_budget(kind);
        Some(Arc::new(move || {
            let backend = BatchModelBackend::from_weights(
                kind,
                tokenizer.as_ref(),
                &weights,
                sampler.clone(),
                engine_cfg.clone(),
                max_tokens,
            )
            .expect("model advertised batch support");
            Box::new(backend) as Box<dyn StepBackend>
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::pipeline::Pipeline;
    use ratatouille_models::train::TrainConfig;

    fn trained_gpt2() -> TrainedModel {
        let mut cfg = PipelineConfig::small();
        cfg.corpus.num_recipes = 60;
        let p = Pipeline::prepare(cfg);
        p.train(
            ModelKind::DistilGpt2,
            Some(TrainConfig {
                steps: 2,
                batch_size: 2,
                ..Default::default()
            }),
        )
    }

    #[test]
    fn gpt2_offers_a_batched_factory_and_lstm_does_not() {
        let t = trained_gpt2();
        let factory = t
            .batched_factory(BatchEngineConfig::default())
            .expect("gpt2 is batchable");
        // Usable from another thread (the runner's calling convention).
        let title = std::thread::spawn(move || {
            let mut backend = factory();
            let out = backend.admit(&["flour".into(), "water".into()], Some(7));
            let id = match out {
                AdmitOutcome::Admitted(id) => id,
                other => panic!("admission refused: {other:?}"),
            };
            loop {
                let done = backend.step();
                if let Some((fid, recipe)) = done.into_iter().next() {
                    assert_eq!(fid, id);
                    return recipe.title;
                }
            }
        })
        .join()
        .unwrap();
        assert!(!title.is_empty());

        let mut cfg = PipelineConfig::small();
        cfg.corpus.num_recipes = 60;
        let p = Pipeline::prepare(cfg);
        let lstm = p.train(
            ModelKind::WordLstm,
            Some(TrainConfig {
                steps: 2,
                batch_size: 2,
                ..Default::default()
            }),
        );
        assert!(
            lstm.batched_factory(BatchEngineConfig::default()).is_none(),
            "LSTMs have no batch-invariant decode path"
        );
    }

    #[test]
    fn same_seed_same_recipe_across_batch_sizes() {
        let t = trained_gpt2();
        let factory = t.batched_factory(BatchEngineConfig::default()).unwrap();
        let mut backend = factory();
        let pantry = vec!["flour".to_string(), "water".to_string()];

        // Solo (batch of 1).
        let solo = run_one(backend.as_mut(), &pantry, 42);

        // Same request inside a batch with two unrelated neighbours.
        let id = match backend.admit(&pantry, Some(42)) {
            AdmitOutcome::Admitted(id) => id,
            other => panic!("admission refused: {other:?}"),
        };
        backend.admit(&["rice".into()], Some(1));
        backend.admit(&["milk".into(), "sugar".into()], Some(2));
        let batched = loop {
            let done = backend.step();
            if let Some((_, r)) = done.into_iter().find(|(fid, _)| *fid == id) {
                break r;
            }
        };
        assert_eq!(solo, batched, "batch composition changed the output");
    }

    fn run_one(
        backend: &mut dyn StepBackend,
        pantry: &[String],
        seed: u64,
    ) -> GeneratedRecipe {
        let id = match backend.admit(pantry, Some(seed)) {
            AdmitOutcome::Admitted(id) => id,
            other => panic!("admission refused: {other:?}"),
        };
        loop {
            let done = backend.step();
            if let Some((_, r)) = done.into_iter().find(|(fid, _)| *fid == id) {
                return r;
            }
        }
    }
}

//! The `ratatouille` command-line tool: train, generate, evaluate and
//! serve from one binary (hand-rolled arg parsing — no CLI deps on the
//! offline whitelist).
//!
//! ```text
//! ratatouille generate --ingredients chicken,garlic,rice [--model medium] [--steps 200]
//! ratatouille serve    [--workers 3] [--port 8080] [--model distil]
//! ratatouille eval     [--recipes 20] [--model medium]
//! ratatouille corpus   [--recipes 500]   # print preprocessing report
//! ```

use std::collections::HashMap;

use ratatouille::models::registry::ModelKind;
use ratatouille::serving::api::ApiServer;
use ratatouille::{Pipeline, PipelineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage_and_exit(None);
    };
    let flags = parse_flags(&args[1..]);
    match command.as_str() {
        "generate" => cmd_generate(&flags),
        "serve" => cmd_serve(&flags),
        "eval" => cmd_eval(&flags),
        "corpus" => cmd_corpus(&flags),
        "--help" | "-h" | "help" => usage_and_exit(None),
        other => usage_and_exit(Some(other)),
    }
}

fn usage_and_exit(unknown: Option<&str>) -> ! {
    if let Some(u) = unknown {
        eprintln!("unknown command `{u}`\n");
    }
    eprintln!(
        "ratatouille — novel recipe generation (ICDE 2022 reproduction)\n\n\
         USAGE:\n  ratatouille <command> [flags]\n\n\
         COMMANDS:\n\
         \x20 generate   train a model and generate a recipe\n\
         \x20 serve      boot the web application\n\
         \x20 eval       train and report evaluation metrics\n\
         \x20 corpus     generate + preprocess a corpus, print the report\n\n\
         FLAGS:\n\
         \x20 --ingredients a,b,c   (generate) ingredient prompt\n\
         \x20 --model KIND          char-lstm | word-lstm | distil | medium (default: medium)\n\
         \x20 --steps N             training steps (default: per-model budget)\n\
         \x20 --recipes N           corpus size (default 300) / eval count (default 10)\n\
         \x20 --workers N           (serve) replica count (default 2)\n\
         \x20 --port N              (serve) port (default: ephemeral)\n\
         \x20 --seed N              sampling seed (default 42)"
    );
    std::process::exit(if unknown.is_some() { 2 } else { 0 });
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(name.to_string(), value);
            i += 2;
        } else {
            eprintln!("ignoring stray argument `{}`", args[i]);
            i += 1;
        }
    }
    flags
}

fn model_kind(flags: &HashMap<String, String>) -> ModelKind {
    match flags.get("model").map(String::as_str) {
        Some("char-lstm") => ModelKind::CharLstm,
        Some("word-lstm") => ModelKind::WordLstm,
        Some("distil") => ModelKind::DistilGpt2,
        Some("medium") | None => ModelKind::Gpt2Medium,
        Some(other) => {
            eprintln!("unknown model `{other}`; expected char-lstm|word-lstm|distil|medium");
            std::process::exit(2);
        }
    }
}

fn num(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags
        .get(key)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--{key} expects a number, got `{v}`");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

fn prepare(flags: &HashMap<String, String>) -> Pipeline {
    let mut cfg = PipelineConfig::reproduction();
    cfg.corpus.num_recipes = num(flags, "recipes", 300);
    eprintln!("preparing corpus ({} recipes)…", cfg.corpus.num_recipes);
    Pipeline::prepare(cfg)
}

fn train(pipeline: &Pipeline, flags: &HashMap<String, String>) -> ratatouille::TrainedModel {
    let kind = model_kind(flags);
    let mut train_cfg = ratatouille::models::registry::ModelSpec::build(kind, &pipeline.train_texts)
        .default_train_config();
    if let Some(steps) = flags.get("steps") {
        train_cfg.steps = steps.parse().unwrap_or(train_cfg.steps);
        train_cfg.warmup = (train_cfg.steps / 10).max(1);
    }
    train_cfg.log_every = (train_cfg.steps / 10).max(1);
    eprintln!("training {} for {} steps…", kind.display_name(), train_cfg.steps);
    pipeline.train(kind, Some(train_cfg))
}

fn cmd_generate(flags: &HashMap<String, String>) {
    let ingredients: Vec<String> = flags
        .get("ingredients")
        .map(|s| s.split(',').map(|x| x.trim().to_string()).collect())
        .unwrap_or_else(|| vec!["chicken".into(), "garlic".into(), "rice".into()]);
    let pipeline = prepare(flags);
    let trained = train(&pipeline, flags);
    let recipe = trained.generate_recipe(&ingredients, num(flags, "seed", 42) as u64);
    println!("\n=== {} ===", recipe.title);
    println!("Ingredients:");
    for l in &recipe.ingredients {
        println!("  • {l}");
    }
    println!("Instructions:");
    for (i, s) in recipe.instructions.iter().enumerate() {
        println!("  {}. {s}", i + 1);
    }
    println!(
        "\nwell-formed: {}",
        if recipe.well_formed { "yes" } else { "no" }
    );
}

fn cmd_serve(flags: &HashMap<String, String>) {
    let pipeline = prepare(flags);
    let trained = train(&pipeline, flags);
    let port = num(flags, "port", 0);
    let workers = num(flags, "workers", 2);
    let server = ApiServer::start(
        &format!("127.0.0.1:{port}"),
        workers,
        32,
        trained.backend_factory(),
    )
    .expect("failed to bind");
    println!("serving {} on http://{}/ (Ctrl+C to stop)", server.model_name(), server.addr());
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_eval(flags: &HashMap<String, String>) {
    let pipeline = prepare(flags);
    let trained = train(&pipeline, flags);
    let n = num(flags, "recipes", 10).min(pipeline.test_recipes.len());
    eprintln!("evaluating on {n} held-out recipes…");
    let report = trained.evaluate(&pipeline.test_recipes, n, num(flags, "seed", 42) as u64);
    println!("{report}");
}

fn cmd_corpus(flags: &HashMap<String, String>) {
    let pipeline = prepare(flags);
    let r = &pipeline.report;
    println!("raw records:        {}", r.input_records);
    println!("noise-stripped:     {}", r.noise_stripped);
    println!("duplicates removed: {}", r.duplicates_removed);
    println!("parse failures:     {}", r.parse_failures);
    println!("invalid removed:    {}", r.invalid_removed);
    println!("length-capped:      {}", r.capped);
    println!("merged:             {}", r.merged);
    println!("2σ-filtered:        {}", r.sigma_filtered);
    println!("training texts:     {}", r.output_texts);
    println!("mean length:        {:.0} chars (σ {:.0})", r.mean_len, r.std_len);
    println!("held-out recipes:   {}", pipeline.test_recipes.len());
}

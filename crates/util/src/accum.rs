//! Blessed deterministic f32 accumulation helpers.
//!
//! DESIGN.md §4b pins bit-for-bit reproducibility of every
//! result-affecting float reduction. The heavy reductions live in the
//! `tensor/src/ops` kernels (which pin their own blocking and chain
//! order); everything else — softmax normalizers, sampling probability
//! sums, corpus statistics — must go through these helpers instead of
//! ad-hoc `iter().sum()` / `fold` calls, so there is exactly one place
//! where "what order do we add floats in" is decided. `xlint`'s
//! `float-reduction-order` rule enforces this.
//!
//! All helpers accumulate **sequentially, left to right** — the same
//! order as `Iterator::sum::<f32>()` — so routing an existing reduction
//! through them is bit-identical to what the call site did before; the
//! win is that the order is now a documented contract rather than an
//! accident of the call site.

/// Sequential left-to-right f32 sum (bit-identical to `iter().sum()`).
pub fn sum_f32<I: IntoIterator<Item = f32>>(xs: I) -> f32 {
    let mut acc = 0.0f32;
    for v in xs {
        acc += v;
    }
    acc
}

/// Maximum over an f32 stream, `-inf` for an empty one. NaNs are skipped
/// (`f32::max` semantics), so the result is order-independent *and*
/// deterministic.
pub fn max_f32<I: IntoIterator<Item = f32>>(xs: I) -> f32 {
    let mut m = f32::NEG_INFINITY;
    for v in xs {
        m = m.max(v);
    }
    m
}

/// Maximum absolute value over an f32 stream, `0.0` for an empty one.
pub fn max_abs_f32<I: IntoIterator<Item = f32>>(xs: I) -> f32 {
    let mut m = 0.0f32;
    for v in xs {
        m = m.max(v.abs());
    }
    m
}

/// Sequential mean, `0.0` for an empty stream. Sums first (same order as
/// [`sum_f32`]) and divides once, matching the `sum::<f32>() / n as f32`
/// pattern it replaces.
pub fn mean_f32<I: IntoIterator<Item = f32>>(xs: I) -> f32 {
    let mut acc = 0.0f32;
    let mut n = 0usize;
    for v in xs {
        acc += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_iterator_sum_bitwise() {
        let xs: Vec<f32> = (0..1000).map(|i| ((i * 37) % 101) as f32 * 0.3 - 7.0).collect();
        let theirs: f32 = xs.iter().copied().sum();
        assert_eq!(sum_f32(xs.iter().copied()).to_bits(), theirs.to_bits());
    }

    #[test]
    fn max_handles_empty_and_nan() {
        assert_eq!(max_f32(std::iter::empty()), f32::NEG_INFINITY);
        assert_eq!(max_f32([f32::NAN, 2.0, 1.0]), 2.0);
        assert_eq!(max_abs_f32([-3.0, 2.0]), 3.0);
        assert_eq!(max_abs_f32(std::iter::empty()), 0.0);
    }

    #[test]
    fn mean_matches_sum_then_divide() {
        let xs = [1.5f32, 2.5, 3.25];
        let manual = xs.iter().copied().sum::<f32>() / 3.0;
        assert_eq!(mean_f32(xs).to_bits(), manual.to_bits());
        assert_eq!(mean_f32(std::iter::empty()), 0.0);
    }
}

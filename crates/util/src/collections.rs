//! Deterministic hash collections.
//!
//! `std`'s `HashMap`/`HashSet` default to `RandomState`, which seeds the
//! hasher per process — iteration order changes run to run, and anything
//! result-affecting that iterates (BPE pair counting, vocab construction,
//! n-gram tallies) silently loses reproducibility. [`DetMap`]/[`DetSet`]
//! are the same containers with a **fixed-key** SipHash-1-3 build
//! (`DefaultHasher::new()`, which the standard library documents as
//! identical for every instance): same insertions → same iteration
//! order, every run on a given toolchain.
//!
//! `xlint`'s `forbidden-nondeterminism` rule bans the std aliases in
//! result-affecting crates and points here. DoS-resistance is what the
//! random seed buys and what we give up — fine for trusted, in-repo
//! corpora; the `serving` crate is allowlisted and keeps `RandomState`
//! for anything fed by network input.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::BuildHasher;

/// A `BuildHasher` producing fixed-key hashers: every instance, every
/// process, the same hash function.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetState;

impl BuildHasher for DetState {
    type Hasher = DefaultHasher;

    fn build_hasher(&self) -> DefaultHasher {
        // `DefaultHasher::new()` is specified to create identical
        // instances, unlike `RandomState`'s per-process keys.
        DefaultHasher::new()
    }
}

/// `HashMap` with deterministic iteration order for a given insertion
/// sequence. Construct with `DetMap::default()` or [`det_map`].
pub type DetMap<K, V> = HashMap<K, V, DetState>;

/// `HashSet` with deterministic iteration order for a given insertion
/// sequence. Construct with `DetSet::default()` or [`det_set`].
pub type DetSet<T> = HashSet<T, DetState>;

/// An empty [`DetMap`] (the `HashMap::new()` replacement).
pub fn det_map<K, V>() -> DetMap<K, V> {
    HashMap::with_hasher(DetState)
}

/// An empty [`DetSet`] (the `HashSet::new()` replacement).
pub fn det_set<T>() -> DetSet<T> {
    HashSet::with_hasher(DetState)
}

/// A [`DetMap`] with pre-allocated capacity.
pub fn det_map_with_capacity<K, V>(cap: usize) -> DetMap<K, V> {
    HashMap::with_capacity_and_hasher(cap, DetState)
}

/// A [`DetSet`] with pre-allocated capacity.
pub fn det_set_with_capacity<T>(cap: usize) -> DetSet<T> {
    HashSet::with_capacity_and_hasher(cap, DetState)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_order_is_a_pure_function_of_insertions() {
        let build = || {
            let mut m = det_map();
            for i in 0..256u32 {
                m.insert(i.wrapping_mul(2654435761), i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());

        let sets = || {
            let mut s = det_set();
            for w in ["flour", "water", "salt", "yeast", "olive oil"] {
                s.insert(w);
            }
            s.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(sets(), sets());
    }

    #[test]
    fn behaves_like_a_map() {
        let mut m: DetMap<&str, usize> = det_map_with_capacity(4);
        *m.entry("a").or_insert(0) += 1;
        *m.entry("a").or_insert(0) += 1;
        assert_eq!(m.get("a"), Some(&2));
        let mut s: DetSet<u8> = det_set_with_capacity(2);
        assert!(s.insert(1));
        assert!(!s.insert(1));
    }
}

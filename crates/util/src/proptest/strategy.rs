//! Composable value generators with shrinking.
//!
//! A [`Strategy`] produces random values of one type and, for the types
//! where it is meaningful (integers, floats, vectors, strings), a list
//! of *simpler* candidate values used to shrink a failing input. Mapped
//! and flat-mapped strategies generate but do not shrink — the function
//! cannot be inverted — which matches how the workspace uses them
//! (composite fixtures whose components are already small).

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::rng::{RngExt, StdRng};

/// A generator of test values, with optional shrinking.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Generate one value from the given deterministic generator.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. An empty
    /// vector means the strategy cannot shrink this value further.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values with `f` (no shrinking through `f`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, O>
    where
        O: Clone + Debug,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Build a second strategy from each generated value and draw from
    /// it (no shrinking through `f`).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, S2>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        FlatMap {
            inner: self,
            f: Rc::new(f),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S: Strategy, O> {
    inner: S,
    f: Rc<dyn Fn(S::Value) -> O>,
}

impl<S: Strategy, O> Clone for Map<S, O> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S: Strategy, O: Clone + Debug> Strategy for Map<S, O> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S: Strategy, S2> {
    inner: S,
    f: Rc<dyn Fn(S::Value) -> S2>,
}

impl<S: Strategy, S2> Clone for FlatMap<S, S2> {
    fn clone(&self) -> Self {
        FlatMap {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S: Strategy, S2: Strategy> Strategy for FlatMap<S, S2> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        let source = self.inner.generate(rng);
        (self.f)(source).generate(rng)
    }
}

/// A strategy that always yields the same value.
#[derive(Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let lo = self.start;
                let mut out = Vec::new();
                if v != lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    if v - 1 != lo && (out.is_empty() || *out.last().unwrap() != v - 1) {
                        out.push(v - 1);
                    }
                }
                out
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                (*self.start()..(*self.end()).saturating_add(1)).shrink(value)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                // shrink toward zero if in range, else toward the start
                let anchor: $t = if (self.start..self.end).contains(&0.0) {
                    0.0
                } else {
                    self.start
                };
                if v != anchor {
                    out.push(anchor);
                    let mid = anchor + (v - anchor) / 2.0;
                    if mid != anchor && mid != v {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// A size specification for collections: `n`, `a..b` or `a..=b`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// A vector of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// See [`collection::vec`].
#[derive(Clone)]
pub struct VecStrategy<S: Strategy> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        // 1. Structural shrinks: shorter vectors (never below the minimum).
        if len > self.size.min {
            let half = (len / 2).max(self.size.min);
            if half < len {
                out.push(value[..half].to_vec());
            }
            out.push(value[..len - 1].to_vec());
            if len >= 2 {
                // drop the first element instead of the last
                out.push(value[1..].to_vec());
            }
        }
        // 2. Elementwise shrinks: simplify one position at a time (a few
        //    candidates each, a bounded number of positions).
        for i in 0..len.min(8) {
            for simpler in self.elem.shrink(&value[i]).into_iter().take(3) {
                let mut v = value.clone();
                v[i] = simpler;
                out.push(v);
            }
        }
        out
    }
}

/// A strategy for any value of a supported primitive type, over the
/// type's full domain: `any::<u8>()`.
pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
#[derive(Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random()
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    let mid = v / 2;
                    if mid != 0 && mid != v {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.random()
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident/$idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx).into_iter().take(3) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    #[test]
    fn int_range_generates_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = 5usize..50;
        for _ in 0..500 {
            assert!((5..50).contains(&s.generate(&mut rng)));
        }
    }

    #[test]
    fn int_shrink_moves_toward_start() {
        let s = 5usize..50;
        let cands = s.shrink(&40);
        assert!(cands.contains(&5));
        assert!(cands.iter().all(|&c| (5..40).contains(&c)));
        assert!(s.shrink(&5).is_empty());
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let s = collection::vec(0u8..10, 2..6);
        let v = vec![3, 7, 9, 1, 4];
        for cand in s.shrink(&v) {
            assert!(cand.len() >= 2, "{cand:?}");
            assert!(cand.len() <= v.len());
        }
        // shrinks exist and include a shorter vector
        assert!(s.shrink(&v).iter().any(|c| c.len() < v.len()));
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let s = (0u8..10, 0u8..10);
        let cands = s.shrink(&(4, 7));
        assert!(cands.iter().any(|&(a, b)| a < 4 && b == 7));
        assert!(cands.iter().any(|&(a, b)| a == 4 && b < 7));
    }

    #[test]
    fn map_and_flat_map_generate() {
        let mut rng = StdRng::seed_from_u64(2);
        let doubled = (1u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let pair = (1usize..4).prop_flat_map(|n| collection::vec(0u8..5, n..=n));
        for _ in 0..100 {
            let v = pair.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn float_shrink_targets_zero() {
        let s = -10.0f32..10.0;
        assert_eq!(s.shrink(&4.0)[0], 0.0);
        assert!(s.shrink(&0.0).is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let s = collection::vec(0u32..1000, 0..20);
        let a = s.generate(&mut StdRng::seed_from_u64(9));
        let b = s.generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}

//! String strategies from a small regex-like pattern language.
//!
//! [`pattern`] supports exactly the shapes the workspace's property
//! tests use — sequences of literal characters and character classes,
//! each with an optional `{m,n}` repetition:
//!
//! ```text
//! [a-z0-9 ,./-]{0,120}      class with ranges and literals
//! /[a-z0-9/]{0,20}          literal prefix + class
//! [\x20-\x7e]{0,80}         hex escapes
//! \PC{0,200}                any non-control (printable) character
//! [\PC"\\]{0,20}            class mixing \PC with literals
//! ```
//!
//! Anything outside this subset panics with a clear message — patterns
//! are compile-time constants in tests, so failing fast is the right
//! behaviour.

use std::str::Chars;

use crate::rng::{RngExt, StdRng};

use super::strategy::Strategy;

/// Inclusive character ranges sampled uniformly when generating from
/// `\PC` (any non-control character). A curated set of assigned,
/// printable Unicode blocks: ASCII, Latin-1/Extended, Greek, Cyrillic,
/// CJK and emoji.
const NON_CONTROL_RANGES: &[(u32, u32)] = &[
    (0x0020, 0x007E),
    (0x00A1, 0x01FF),
    (0x0391, 0x03C9),
    (0x0410, 0x044F),
    (0x4E00, 0x4FFF),
    (0x1F600, 0x1F64F),
];

/// A set of characters: explicit ranges, optionally unioned with the
/// non-control universe.
#[derive(Clone, Debug, Default)]
struct CharSet {
    ranges: Vec<(char, char)>,
    non_control: bool,
}

impl CharSet {
    fn single(c: char) -> CharSet {
        CharSet {
            ranges: vec![(c, c)],
            non_control: false,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> char {
        let extra = usize::from(self.non_control) * NON_CONTROL_RANGES.len();
        let total = self.ranges.len() + extra;
        assert!(total > 0, "empty character class");
        let pick = rng.below(total);
        let (lo, hi) = if pick < self.ranges.len() {
            let (a, b) = self.ranges[pick];
            (a as u32, b as u32)
        } else {
            NON_CONTROL_RANGES[pick - self.ranges.len()]
        };
        char::from_u32(rng.random_range(lo..=hi)).expect("valid scalar range")
    }

    /// The canonical "simplest" member, used when shrinking.
    fn simplest(&self) -> char {
        self.ranges
            .first()
            .map(|&(lo, _)| lo)
            .unwrap_or(if self.non_control { 'a' } else { '?' })
    }
}

#[derive(Clone, Debug)]
struct Atom {
    class: CharSet,
    min: usize,
    max: usize,
}

/// A strategy generating strings matching a [`pattern`].
#[derive(Clone)]
pub struct StringStrategy {
    atoms: Vec<Atom>,
    source: String,
}

impl std::fmt::Debug for StringStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pattern({:?})", self.source)
    }
}

/// Build a [`StringStrategy`] from a pattern. Panics on syntax outside
/// the supported subset.
pub fn pattern(pat: &str) -> StringStrategy {
    let mut atoms = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let class = match c {
            '[' => parse_class(&mut chars, pat),
            '\\' => parse_escape(&mut chars, pat),
            '{' | '}' | ']' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported pattern syntax `{c}` in {pat:?}")
            }
            lit => CharSet::single(lit),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            parse_quantifier(&mut chars, pat)
        } else {
            (1, 1)
        };
        atoms.push(Atom { class, min, max });
    }
    StringStrategy {
        atoms,
        source: pat.to_string(),
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<Chars>, pat: &str) -> (usize, usize) {
    let mut body = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (min, max) = match body.split_once(',') {
                Some((a, b)) => (
                    a.parse().unwrap_or_else(|_| bad_quant(pat)),
                    b.parse().unwrap_or_else(|_| bad_quant(pat)),
                ),
                None => {
                    let n = body.parse().unwrap_or_else(|_| bad_quant(pat));
                    (n, n)
                }
            };
            assert!(min <= max, "quantifier min > max in {pat:?}");
            return (min, max);
        }
        body.push(c);
    }
    bad_quant(pat)
}

fn bad_quant(pat: &str) -> ! {
    panic!("malformed {{m,n}} quantifier in {pat:?}")
}

/// Parse one escape outside or inside a class: `\PC`, `\xHH` or a
/// literal escaped character.
fn parse_escape(chars: &mut std::iter::Peekable<Chars>, pat: &str) -> CharSet {
    match chars.next() {
        Some('P') => match chars.next() {
            Some('C') => CharSet {
                ranges: Vec::new(),
                non_control: true,
            },
            other => panic!("unsupported \\P{other:?} in {pat:?} (only \\PC)"),
        },
        Some('x') => CharSet::single(parse_hex(chars, pat)),
        Some(c @ ('\\' | '"' | '\'' | '.' | '-' | '/' | '[' | ']' | '{' | '}')) => {
            CharSet::single(c)
        }
        Some('n') => CharSet::single('\n'),
        Some('t') => CharSet::single('\t'),
        other => panic!("unsupported escape \\{other:?} in {pat:?}"),
    }
}

fn parse_hex(chars: &mut std::iter::Peekable<Chars>, pat: &str) -> char {
    let hi = chars.next().unwrap_or_else(|| bad_hex(pat));
    let lo = chars.next().unwrap_or_else(|| bad_hex(pat));
    let v = u32::from_str_radix(&format!("{hi}{lo}"), 16).unwrap_or_else(|_| bad_hex(pat));
    char::from_u32(v).unwrap_or_else(|| bad_hex(pat))
}

fn bad_hex(pat: &str) -> ! {
    panic!("malformed \\xHH escape in {pat:?}")
}

fn parse_class(chars: &mut std::iter::Peekable<Chars>, pat: &str) -> CharSet {
    let mut set = CharSet::default();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in {pat:?}"));
        match c {
            ']' => {
                if let Some(p) = pending {
                    set.ranges.push((p, p));
                }
                assert!(
                    !set.ranges.is_empty() || set.non_control,
                    "empty character class in {pat:?}"
                );
                return set;
            }
            '\\' => {
                if let Some(p) = pending.take() {
                    set.ranges.push((p, p));
                }
                let esc = parse_escape(chars, pat);
                if esc.non_control {
                    set.non_control = true;
                } else if esc.ranges.len() == 1 && esc.ranges[0].0 == esc.ranges[0].1 {
                    // a single escaped char may open a range (\x20-\x7e)
                    pending = Some(esc.ranges[0].0);
                } else {
                    set.ranges.extend(esc.ranges);
                }
            }
            '-' => match pending.take() {
                // `a-z`: complete a range with the next element
                Some(lo) => {
                    let next = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling `-` in class in {pat:?}"));
                    let hi = match next {
                        '\\' => {
                            let esc = parse_escape(chars, pat);
                            assert!(
                                esc.ranges.len() == 1 && !esc.non_control,
                                "bad range end in {pat:?}"
                            );
                            esc.ranges[0].0
                        }
                        ']' => {
                            // trailing `-` is a literal
                            set.ranges.push((lo, lo));
                            set.ranges.push(('-', '-'));
                            return set;
                        }
                        other => other,
                    };
                    assert!(lo <= hi, "inverted range {lo:?}-{hi:?} in {pat:?}");
                    set.ranges.push((lo, hi));
                }
                // leading `-` is a literal
                None => pending = Some('-'),
            },
            other => {
                if let Some(p) = pending.take() {
                    set.ranges.push((p, p));
                }
                pending = Some(other);
            }
        }
    }
}

impl StringStrategy {
    fn min_len(&self) -> usize {
        self.atoms.iter().map(|a| a.min).sum()
    }

    /// Shrinking is only sound when at most one atom has a variable
    /// repetition count (true for every pattern in the workspace).
    fn variable_atoms(&self) -> usize {
        self.atoms.iter().filter(|a| a.min != a.max).count()
    }
}

impl Strategy for StringStrategy {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = rng.random_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.class.sample(rng));
            }
        }
        out
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        if self.variable_atoms() > 1 {
            return Vec::new();
        }
        let min = self.min_len();
        let len = value.chars().count();
        let mut out = Vec::new();
        if len > min {
            // shortest allowed, halfway, and one-shorter
            let take = |n: usize| -> String { value.chars().take(n).collect() };
            out.push(take(min));
            let half = (len / 2).max(min);
            if half > min && half < len {
                out.push(take(half));
            }
            if len - 1 > min {
                out.push(take(len - 1));
            }
        }
        // simplify the last character toward the simplest class member
        if let Some(last_atom) = self.atoms.iter().rev().find(|a| a.max > 0) {
            let simplest = last_atom.class.simplest();
            if value.chars().last().is_some_and(|c| c != simplest) {
                let mut chars: Vec<char> = value.chars().collect();
                *chars.last_mut().unwrap() = simplest;
                out.push(chars.into_iter().collect());
            }
        }
        out
    }
}

/// String literals are strategies, interpreted as [`pattern`]s —
/// mirrors `proptest`, where `"[a-z]{1,8}"` is itself a strategy.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        pattern(self).generate(rng)
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        pattern(self).shrink(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    fn all_match(pat: &str, check: impl Fn(&str) -> bool) {
        let s = pattern(pat);
        let mut rng = StdRng::seed_from_u64(1234);
        for i in 0..300 {
            let v = s.generate(&mut rng);
            assert!(check(&v), "pattern {pat:?} produced {v:?} (case {i})");
        }
    }

    #[test]
    fn simple_class_with_quantifier() {
        all_match("[a-z]{1,8}", |v| {
            (1..=8).contains(&v.len()) && v.chars().all(|c| c.is_ascii_lowercase())
        });
    }

    #[test]
    fn class_with_literals_and_trailing_dash() {
        all_match("[a-z0-9 ,./-]{0,120}", |v| {
            v.len() <= 120
                && v.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || " ,./-".contains(c))
        });
    }

    #[test]
    fn literal_prefix() {
        all_match("/[a-z0-9/]{0,20}", |v| {
            v.starts_with('/')
                && v.chars().count() <= 21
                && v[1..]
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '/')
        });
    }

    #[test]
    fn hex_escape_range() {
        all_match("[\\x20-\\x7e]{0,80}", |v| {
            v.chars().all(|c| (' '..='~').contains(&c))
        });
    }

    #[test]
    fn non_control_class() {
        all_match("\\PC{0,60}", |v| {
            v.chars().count() <= 60 && v.chars().all(|c| !c.is_control())
        });
    }

    #[test]
    fn mixed_pc_class() {
        // the class from tests/proptests.rs: \PC plus quote and backslash
        all_match("[\\PC\"\\\\]{0,20}", |v| {
            v.chars().count() <= 20 && v.chars().all(|c| !c.is_control())
        });
    }

    #[test]
    fn exact_quantifier_and_default() {
        all_match("[ab]{3}", |v| v.len() == 3);
        all_match("xy", |v| v == "xy");
    }

    #[test]
    fn shrink_respects_min_and_pattern() {
        let s = pattern("[a-z]{2,10}");
        let cands = s.shrink(&"zxcvbn".to_string());
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.len() >= 2, "{c:?}");
            assert!(c.chars().all(|ch| ch.is_ascii_lowercase()), "{c:?}");
        }
        assert!(cands.iter().any(|c| c.len() == 2));
    }

    #[test]
    fn shrink_simplifies_last_char() {
        let s = pattern("[a-z]{1,4}");
        let cands = s.shrink(&"zz".to_string());
        assert!(cands.contains(&"za".to_string()));
    }

    #[test]
    fn generation_is_deterministic() {
        let s = pattern("[a-f ]{0,40}");
        assert_eq!(
            s.generate(&mut StdRng::seed_from_u64(5)),
            s.generate(&mut StdRng::seed_from_u64(5))
        );
    }

    #[test]
    #[should_panic(expected = "unsupported pattern syntax")]
    fn unsupported_syntax_panics() {
        pattern("(a|b)+");
    }
}

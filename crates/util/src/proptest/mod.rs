//! A minimal property-testing harness (std only).
//!
//! The shape mirrors the `proptest` crate closely enough that porting a
//! suite is mechanical:
//!
//! ```
//! use ratatouille_util::proptest::prelude::*;
//!
//! proptest! {
//!     cases = 64;
//!
//!     #[test]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! ## Determinism and replay
//!
//! Every case seed is derived from `(base seed, property name, case
//! index)`, so runs are exactly reproducible. On failure the harness
//! shrinks the input (integers toward the range start, vectors and
//! strings toward shorter/simpler) and prints a report containing
//! `RAT_PROPTEST_REPLAY=<seed>`; exporting that variable re-runs the
//! failing case (and only it) under `cargo test <property_name>`.
//!
//! * `RAT_PROPTEST_CASES` — override the per-property case count.
//! * `RAT_PROPTEST_SEED`  — change the base seed (explore new cases).
//! * `RAT_PROPTEST_REPLAY` — run a single reported case seed.

mod strategy;
mod string;

pub use strategy::{any, collection, AnyStrategy, Just, SizeRange, Strategy, VecStrategy};
pub use string::{pattern, StringStrategy};

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::rng::{SeedableRng, StdRng};

/// Everything a property-test file needs.
pub mod prelude {
    pub use super::{
        any, collection, pattern, Config, Just, SizeRange, Strategy,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Default number of cases per property when neither the suite nor the
/// environment overrides it.
pub const DEFAULT_CASES: u32 = 64;

/// Fixed base seed: `cargo test` is reproducible out of the box.
const BASE_SEED: u64 = 0x5EED_CA5E_0001;

/// Harness configuration, resolved from the suite header and the
/// environment.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Upper bound on shrink attempts after a failure.
    pub max_shrink_iters: u32,
    /// Base seed mixed into every case seed.
    pub seed: u64,
}

impl Config {
    /// Resolve a config. `suite_cases == 0` means "no suite override".
    pub fn from_env(suite_cases: u32) -> Config {
        let cases = env_u64("RAT_PROPTEST_CASES")
            .map(|v| v as u32)
            .unwrap_or(if suite_cases > 0 { suite_cases } else { DEFAULT_CASES })
            .max(1);
        let seed = env_u64("RAT_PROPTEST_SEED").unwrap_or(BASE_SEED);
        Config {
            cases,
            max_shrink_iters: 512,
            seed,
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// A minimized property failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The property (test function) name.
    pub property: String,
    /// Seed that regenerates the failing case.
    pub case_seed: u64,
    /// Index of the case within the run (`u32::MAX` for replays).
    pub case_index: u32,
    /// Failure message from the minimal input.
    pub message: String,
    /// `Debug` rendering of the originally generated input.
    pub original: String,
    /// `Debug` rendering of the minimal failing input.
    pub minimal: String,
    /// Number of successful shrink steps applied.
    pub shrink_steps: u32,
}

impl Failure {
    /// The human-facing report, including the replay instruction.
    pub fn render(&self) -> String {
        format!(
            "property `{}` failed (case {}, after {} shrink step(s))\n\
             minimal input: {}\n\
             original input: {}\n\
             error: {}\n\
             replay with: RAT_PROPTEST_REPLAY={} cargo test {}",
            self.property,
            self.case_index,
            self.shrink_steps,
            self.minimal,
            self.original,
            self.message,
            self.case_seed,
            self.property,
        )
    }
}

/// FNV-1a, used to mix the property name into case seeds.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn case_seed(base: u64, name: &str, index: u32) -> u64 {
    let mut sm = base ^ fnv1a(name.as_bytes()) ^ ((index as u64) << 32 | index as u64);
    crate::rng::splitmix64(&mut sm)
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that suppresses the
/// default backtrace spew for panics the harness is catching — a
/// shrink run provokes dozens of expected panics.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Run one case: catch both `Err` returns (from `prop_assert!`) and
/// panics (from plain `assert!`/`unwrap` inside the body).
fn run_case<V: Clone>(f: &dyn Fn(V) -> Result<(), String>, value: V) -> Result<(), String> {
    install_quiet_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(value)));
    QUIET_PANICS.with(|q| q.set(false));
    match outcome {
        Ok(r) => r,
        Err(payload) => Err(panic_message(&*payload)),
    }
}

fn shrink_failure<S: Strategy>(
    strat: &S,
    f: &dyn Fn(S::Value) -> Result<(), String>,
    mut current: S::Value,
    mut message: String,
    budget: u32,
) -> (S::Value, String, u32) {
    let mut steps = 0u32;
    let mut attempts = 0u32;
    'outer: loop {
        for candidate in strat.shrink(&current) {
            attempts += 1;
            if attempts > budget {
                break 'outer;
            }
            if let Err(msg) = run_case(f, candidate.clone()) {
                current = candidate;
                message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, message, steps)
}

/// Check a property, returning the minimized [`Failure`] instead of
/// panicking — the testable core of the harness.
pub fn check_property<S: Strategy>(
    name: &str,
    cfg: &Config,
    strat: &S,
    f: &dyn Fn(S::Value) -> Result<(), String>,
) -> Result<u32, Failure> {
    let fail_at = |seed: u64, index: u32, value: S::Value, msg: String| -> Failure {
        let original = format!("{:?}", value);
        let (minimal, message, shrink_steps) =
            shrink_failure(strat, f, value, msg, cfg.max_shrink_iters);
        Failure {
            property: name.to_string(),
            case_seed: seed,
            case_index: index,
            message,
            original,
            minimal: format!("{:?}", minimal),
            shrink_steps,
        }
    };

    if let Some(replay) = env_u64("RAT_PROPTEST_REPLAY") {
        let mut rng = StdRng::seed_from_u64(replay);
        let value = strat.generate(&mut rng);
        return match run_case(f, value.clone()) {
            Ok(()) => Ok(1),
            Err(msg) => Err(fail_at(replay, u32::MAX, value, msg)),
        };
    }

    for index in 0..cfg.cases {
        let seed = case_seed(cfg.seed, name, index);
        let mut rng = StdRng::seed_from_u64(seed);
        let value = strat.generate(&mut rng);
        if let Err(msg) = run_case(f, value.clone()) {
            return Err(fail_at(seed, index, value, msg));
        }
    }
    Ok(cfg.cases)
}

/// Check a property and panic with a replayable report on failure.
/// This is what the [`proptest!`] macro expands to.
pub fn run_property<S: Strategy, F>(name: &str, cfg: &Config, strat: S, f: F)
where
    F: Fn(S::Value) -> Result<(), String>,
{
    if let Err(failure) = check_property(name, cfg, &strat, &f) {
        panic!("{}", failure.render());
    }
}

/// Define property tests. See the [module docs](self) for an example.
/// An optional `cases = N;` header sets the per-property case count.
#[macro_export]
macro_rules! proptest {
    (cases = $cases:expr; $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cases) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (0u32) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cases:expr)
      $( $(#[$attr:meta])*
         fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $crate::proptest::Config::from_env($cases);
                let strategy = ($($strat,)+);
                $crate::proptest::run_property(
                    stringify!($name),
                    &config,
                    strategy,
                    |($($arg,)+)| {
                        $body
                        // a property body ending in `panic!`/`assert!`
                        // makes this Ok(()) unreachable by design
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body; failures report the
/// shrunk input instead of aborting the whole test binary.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), format_args!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {} ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {} ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format_args!($($fmt)+), l, r
            ));
        }
    }};
}

/// Inequality assertion for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {} ({}:{})\n  both: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config() -> Config {
        Config {
            cases: 64,
            max_shrink_iters: 512,
            seed: BASE_SEED,
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = quiet_config();
        let ran = check_property(
            "always_true",
            &cfg,
            &(0u32..100),
            &|_v| Ok(()),
        )
        .expect("property should pass");
        assert_eq!(ran, 64);
    }

    #[test]
    fn failing_property_reports_and_shrinks() {
        // Deliberately broken property: fails for any v >= 10. The
        // minimal counterexample is exactly 10.
        let cfg = quiet_config();
        let failure = check_property(
            "deliberately_broken",
            &cfg,
            &(0u64..1000),
            &|v| {
                if v >= 10 {
                    Err(format!("{v} is too big"))
                } else {
                    Ok(())
                }
            },
        )
        .expect_err("property must fail");
        assert_eq!(failure.minimal, "10", "shrinking should reach the boundary");
        assert!(failure.message.contains("too big"));
        assert!(failure.render().contains("RAT_PROPTEST_REPLAY="));
        assert!(failure.render().contains("deliberately_broken"));
    }

    #[test]
    fn failure_seed_replays_to_same_failure() {
        // The seed a failure reports must regenerate the identical
        // original input — the replay contract.
        let cfg = quiet_config();
        let test = |v: u64| {
            if v % 7 == 3 {
                Err("hit".to_string())
            } else {
                Ok(())
            }
        };
        let failure = check_property("replayable", &cfg, &(0u64..100_000), &test)
            .expect_err("must fail eventually");
        // regenerate from the reported seed exactly as the harness does
        let mut rng = StdRng::seed_from_u64(failure.case_seed);
        let regenerated = (0u64..100_000).generate(&mut rng);
        assert_eq!(format!("{:?}", regenerated), failure.original);
        assert!(test(regenerated).is_err(), "replayed case must still fail");
    }

    #[test]
    fn shrinking_vec_reaches_small_witness() {
        // Property: no vector contains a value >= 50. Minimal failing
        // input should shrink to a single-element vector.
        let cfg = quiet_config();
        let strat = collection::vec(0u32..100, 0..20);
        let failure = check_property(
            "vec_shrink",
            &cfg,
            &strat,
            &|v| {
                if v.iter().any(|&x| x >= 50) {
                    Err("contains big".into())
                } else {
                    Ok(())
                }
            },
        )
        .expect_err("must fail");
        let minimal: Vec<u32> = failure
            .minimal
            .trim_matches(&['[', ']'][..])
            .split(", ")
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(minimal.len(), 1, "minimal witness {:?}", failure.minimal);
        assert_eq!(minimal[0], 50, "boundary value, got {:?}", failure.minimal);
    }

    #[test]
    fn panics_in_body_are_failures_not_aborts() {
        let cfg = quiet_config();
        let failure = check_property(
            "panicking_property",
            &cfg,
            &(0u32..10),
            &|v| {
                if v > 3 {
                    panic!("boom at {v}");
                }
                Ok(())
            },
        )
        .expect_err("must fail");
        assert!(failure.message.contains("boom"));
        assert_eq!(failure.minimal, "4");
    }

    #[test]
    fn case_seeds_differ_across_names_and_indices() {
        let a = case_seed(BASE_SEED, "prop_a", 0);
        let b = case_seed(BASE_SEED, "prop_b", 0);
        let c = case_seed(BASE_SEED, "prop_a", 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, case_seed(BASE_SEED, "prop_a", 0));
    }

    // The macro surface itself, exercised end-to-end.
    proptest! {
        cases = 32;

        #[test]
        fn macro_addition_commutes(a in 0u32..10_000, b in 0u32..10_000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn macro_patterns_and_vecs(
            s in pattern("[a-z]{0,12}"),
            v in collection::vec(0u8..=255, 0..16),
        ) {
            prop_assert!(s.len() <= 12);
            prop_assert!(v.len() < 16);
        }
    }

    #[test]
    fn macro_tests_run() {
        macro_addition_commutes();
        macro_patterns_and_vecs();
    }
}

//! # ratatouille-util
//!
//! The workspace's zero-dependency determinism layer. The offline build
//! environment has no crate registry, so everything the repo previously
//! pulled from crates.io for randomness, property testing and
//! benchmarking lives here instead, implemented on `std` alone:
//!
//! * [`rng`] — a seedable SplitMix64-seeded xoshiro256** PRNG with the
//!   `StdRng` / [`rng::SeedableRng`] / [`rng::Rng`] / [`rng::RngExt`]
//!   surface the workspace uses. Integer-only state transitions make
//!   every stream bit-reproducible across platforms and Rust versions.
//! * [`proptest`] — a minimal property-testing harness: composable
//!   strategies (ranges, collections, pattern strings, tuples, map /
//!   flat-map), shrinking for integers, vectors and strings, a
//!   [`proptest!`]-style macro, and failure-seed replay via
//!   `RAT_PROPTEST_REPLAY`.
//! * [`bench`] — a tiny criterion replacement: warmup, N timed samples,
//!   mean/p50/p99, human-readable table on stdout and JSON written to
//!   `BENCH_<harness>.json` for machine consumption.
//! * [`accum`] — the blessed sequential f32 reduction helpers every
//!   result-affecting crate must use outside the tensor kernels
//!   (enforced by `xlint`'s `float-reduction-order` rule).
//! * [`collections`] — [`collections::DetMap`] / [`collections::DetSet`],
//!   fixed-hasher `HashMap`/`HashSet` aliases with run-to-run stable
//!   iteration order (enforced by `xlint`'s `forbidden-nondeterminism`
//!   rule).
//!
//! ## Seed policy
//!
//! Everything is deterministic by default. Property tests derive each
//! case seed from a fixed base seed, the property name and the case
//! index, so a bare `cargo test` is exactly reproducible; set
//! `RAT_PROPTEST_SEED` to explore a different universe of cases and
//! `RAT_PROPTEST_REPLAY=<seed>` to re-run a single reported failure.
#![warn(missing_docs)]

pub mod accum;
pub mod bench;
pub mod collections;
pub mod proptest;
pub mod rng;

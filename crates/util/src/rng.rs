//! Seedable, bit-reproducible pseudo-random number generation.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna, 2018) seeded
//! through SplitMix64, the combination recommended by the xoshiro
//! authors. All state transitions are integer-only, so a given seed
//! yields the identical stream on every platform, endianness and Rust
//! version — the property the workspace's golden determinism tests
//! (`tests/determinism.rs`) pin down.
//!
//! The API mirrors the subset of the `rand` crate the workspace uses:
//! [`StdRng`], [`SeedableRng::seed_from_u64`], [`Rng`] for raw bits and
//! [`RngExt`] for typed draws (`random::<f32>()`, `random_range(0..n)`,
//! Gaussian via Box–Muller, `choose`, `shuffle`).

/// One step of SplitMix64: used to expand a `u64` seed into generator
/// state. Public so tests and seed-derivation call sites can reuse it.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build from 32 bytes of seed material.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Build from a `u64`, expanded via SplitMix64. This is the seeding
    /// path the whole workspace uses.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        Self::from_seed(bytes)
    }
}

/// A source of uniformly distributed random bits.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (the high half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// The workspace's standard generator: xoshiro256\*\*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl SeedableRng for StdRng {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro's state must not be all zero.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 0, 0, 0];
        }
        StdRng { s }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from a [`Rng`].
pub trait Random {
    /// Draw one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Unbiased draw in `[0, n)` by rejection sampling the top of the range.
#[inline]
fn below_u64<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Largest v such that v % n cycles evenly; reject above it.
    let zone = u64::MAX - (u64::MAX % n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Ranges a typed uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // The full u64 (or i64) domain: every draw is in range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u: $t = Random::random(rng);
                let v = self.start + u * (self.end - self.start);
                // guard against rounding up to the excluded endpoint
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let u: $t = Random::random(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Typed draws on top of any [`Rng`]. Blanket-implemented, so importing
/// this trait is all a call site needs.
pub trait RngExt: Rng {
    /// A uniform value: `f32`/`f64` in `[0, 1)`, integers over their
    /// whole domain, `bool` as a fair coin.
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value from a range, e.g. `rng.random_range(0..n)` or
    /// `rng.random_range(1..=6)`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A uniform index in `[0, n)`. Panics if `n == 0`.
    #[inline]
    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        below_u64(self, n as u64) as usize
    }

    /// A standard-normal (`N(0,1)`) sample via the Box–Muller transform.
    #[inline]
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.random::<f64>().max(1e-300);
        let u2: f64 = self.random();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    #[inline]
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len())])
        }
    }

    /// In-place Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_first_output() {
        // With raw state [1, 2, 3, 4] the first xoshiro256** output is
        // rotl(2*5, 7)*9 = 1280*9 = 11520 — derivable by hand from the
        // algorithm definition.
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = StdRng::from_seed(seed);
        assert_eq!(rng.next_u64(), 11520);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn golden_stream_is_frozen() {
        // Bit-reproducibility contract: these values must never change.
        // If they do, every fixed-seed corpus, checkpoint and test in the
        // workspace silently changes meaning.
        let mut rng = StdRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532,
            ]
        );
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&v| v != 0));
    }

    #[test]
    fn all_zero_raw_seed_fixed_up() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64() | rng.next_u64() | rng.next_u64(), 0);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f32 = rng.random();
            assert!((0.0..1.0).contains(&f), "f32 {f}");
            let d: f64 = rng.random();
            assert!((0.0..1.0).contains(&d), "f64 {d}");
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5_000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_draws_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn uniformity_chi_square_coarse() {
        // 16 buckets × 16k draws: every bucket within 20% of expectation.
        let mut rng = StdRng::seed_from_u64(17);
        let mut buckets = [0u32; 16];
        let n = 16_384;
        for _ in 0..n {
            buckets[rng.below(16)] += 1;
        }
        let expect = n as f64 / 16.0;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (b as f64 - expect).abs() < expect * 0.2,
                "bucket {i}: {b} vs {expect}"
            );
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation_and_seeded() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b = a.clone();
        StdRng::seed_from_u64(5).shuffle(&mut a);
        StdRng::seed_from_u64(5).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(a, (0..20).collect::<Vec<_>>(), "identity shuffle is wildly unlikely");
    }

    #[test]
    fn choose_behaviour() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        StdRng::seed_from_u64(77).fill_bytes(&mut a);
        StdRng::seed_from_u64(77).fill_bytes(&mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }
}

//! A tiny criterion replacement (std only).
//!
//! Each benchmark runs a warmup phase to estimate per-iteration cost,
//! picks a batch size so every timed sample spans a useful wall-clock
//! window, collects N samples and reports mean / p50 / p99 per
//! iteration. Results print as a table on stderr and are written as
//! JSON to `BENCH_<harness>.json` so perf PRs can diff runs.
//!
//! ```ignore
//! use ratatouille_util::bench::{Bench, BenchmarkId, Throughput};
//! use ratatouille_util::{bench_group, bench_main};
//!
//! fn my_bench(c: &mut Bench) {
//!     let mut group = c.benchmark_group("sums");
//!     group.throughput(Throughput::Elements(1000));
//!     group.bench_function(BenchmarkId::new("naive", 1000), |b| {
//!         b.iter(|| (0..1000u64).sum::<u64>())
//!     });
//!     group.finish();
//! }
//!
//! bench_group!(benches, my_bench);
//! bench_main!(benches);
//! ```
//!
//! Environment:
//! * `RAT_BENCH_FAST=1` (or `--fast` on the command line) — smoke mode:
//!   minimal warmup and sample counts, for CI gating.
//! * `RAT_BENCH_DIR` — directory for the JSON output (default: cwd).

use std::fmt::Display;
use std::hint::black_box as bb;
use std::time::{Duration, Instant};

/// Work-per-iteration metadata, echoed into the JSON output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` inputs are sized. The harness times routines
/// individually regardless, so the variants behave identically; the
/// enum exists for criterion signature compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A `function/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Label a benchmark `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchId {
    /// The rendered `function/parameter` (or bare) label.
    fn into_label(self) -> String;
}

impl IntoBenchId for BenchmarkId {
    fn into_label(self) -> String {
        self.render()
    }
}

impl IntoBenchId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing knobs, resolved from the environment.
#[derive(Clone, Copy, Debug)]
struct Knobs {
    warmup: Duration,
    target_sample: Duration,
    samples: usize,
}

impl Knobs {
    fn standard() -> Knobs {
        Knobs {
            warmup: Duration::from_millis(300),
            target_sample: Duration::from_millis(30),
            samples: 50,
        }
    }

    fn fast() -> Knobs {
        Knobs {
            warmup: Duration::from_millis(5),
            target_sample: Duration::from_millis(2),
            samples: 5,
        }
    }
}

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Group name ("" for ungrouped benchmarks).
    pub group: String,
    /// Benchmark label within the group.
    pub name: String,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Mean time per iteration (ns).
    pub mean_ns: f64,
    /// Median time per iteration (ns).
    pub p50_ns: f64,
    /// 99th-percentile time per iteration (ns).
    pub p99_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
}

impl Measurement {
    fn qualified(&self) -> String {
        if self.group.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.group, self.name)
        }
    }

    fn json(&self) -> String {
        let tput = match self.throughput {
            Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
            Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
            None => String::new(),
        };
        format!(
            "{{\"group\":{},\"name\":{},\"samples\":{},\"iters_per_sample\":{},\
             \"mean_ns\":{:.1},\"p50_ns\":{:.1},\"p99_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1}{}}}",
            json_string(&self.group),
            json_string(&self.name),
            self.samples,
            self.iters_per_sample,
            self.mean_ns,
            self.p50_ns,
            self.p99_ns,
            self.min_ns,
            self.max_ns,
            tput,
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The per-benchmark measurement driver handed to closures as `b`.
pub struct Timer {
    knobs: Knobs,
    /// ns-per-iteration samples collected by `iter`/`iter_batched`.
    sample_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Timer {
    fn new(knobs: Knobs) -> Timer {
        Timer {
            knobs,
            sample_ns: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Warmup: run `routine` until the warmup window elapses, returning
    /// the estimated cost of one iteration.
    fn warmup<R>(&self, routine: &mut impl FnMut() -> R) -> Duration {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            bb(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.knobs.warmup {
                return elapsed / iters.max(1) as u32;
            }
        }
    }

    /// Time `routine`, the whole closure body per iteration.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let est = self.warmup(&mut routine).max(Duration::from_nanos(1));
        let ipers = (self.knobs.target_sample.as_nanos() / est.as_nanos()).clamp(1, 1 << 24) as u64;
        self.iters_per_sample = ipers;
        self.sample_ns = (0..self.knobs.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..ipers {
                    bb(routine());
                }
                t0.elapsed().as_nanos() as f64 / ipers as f64
            })
            .collect();
    }

    /// Record a self-measured duration: `routine(iters)` runs the
    /// workload `iters` times and returns the *measured* nanoseconds to
    /// attribute to them — which need not be the closure's wall time.
    /// This is how phase-isolating benches work: e.g. the paged-attention
    /// harness runs whole decode steps but returns only the `attend_ns`
    /// histogram delta, so the JSON compares attention-phase time with
    /// the surrounding GEMMs excluded. Iterations per sample are scaled
    /// from the closure's *wall* cost (not the reported ns) so a phase
    /// that is a small slice of a big step cannot blow the time budget.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> u64) {
        let start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            bb(routine(1));
            warm_iters += 1;
            if start.elapsed() >= self.knobs.warmup {
                break;
            }
        }
        let est_wall = (start.elapsed() / warm_iters.max(1) as u32).max(Duration::from_nanos(1));
        let ipers = (self.knobs.target_sample.as_nanos() / est_wall.as_nanos()).clamp(1, 1 << 24) as u64;
        self.iters_per_sample = ipers;
        self.sample_ns = (0..self.knobs.samples)
            .map(|_| routine(ipers) as f64 / ipers as f64)
            .collect();
    }

    /// Time `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // warmup one full cycle to fault in caches/allocations
        let warm_deadline = Instant::now() + self.knobs.warmup;
        while Instant::now() < warm_deadline {
            bb(routine(setup()));
        }
        self.iters_per_sample = 1;
        self.sample_ns = (0..self.knobs.samples)
            .map(|_| {
                let input = setup();
                let t0 = Instant::now();
                bb(routine(input));
                t0.elapsed().as_nanos() as f64
            })
            .collect();
    }

    fn measurement(mut self, group: &str, name: String, throughput: Option<Throughput>) -> Measurement {
        assert!(
            !self.sample_ns.is_empty(),
            "benchmark `{name}` never called b.iter()/b.iter_batched()"
        );
        self.sample_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = self.sample_ns.len();
        let pick = |q: f64| self.sample_ns[((n as f64 - 1.0) * q).round() as usize];
        Measurement {
            group: group.to_string(),
            name,
            throughput,
            samples: n,
            iters_per_sample: self.iters_per_sample,
            mean_ns: self.sample_ns.iter().sum::<f64>() / n as f64,
            p50_ns: pick(0.5),
            p99_ns: pick(0.99),
            min_ns: self.sample_ns[0],
            max_ns: self.sample_ns[n - 1],
        }
    }
}

/// The harness root: collects measurements across groups.
pub struct Bench {
    knobs: Knobs,
    results: Vec<Measurement>,
}

impl Default for Bench {
    fn default() -> Self {
        Bench::from_env()
    }
}

impl Bench {
    /// Build from the environment (`RAT_BENCH_FAST`, `--fast`).
    pub fn from_env() -> Bench {
        let fast = std::env::var("RAT_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
            || std::env::args().any(|a| a == "--fast" || a == "--test");
        Bench {
            knobs: if fast { Knobs::fast() } else { Knobs::standard() },
            results: Vec::new(),
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchId, f: impl FnMut(&mut Timer)) {
        self.run("", id.into_label(), None, f);
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            bench: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    fn run(
        &mut self,
        group: &str,
        name: String,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Timer),
    ) {
        let mut timer = Timer::new(self.knobs);
        f(&mut timer);
        let m = timer.measurement(group, name, throughput);
        eprintln!(
            "{:<44} mean {:>12}  p50 {:>12}  p99 {:>12}",
            m.qualified(),
            fmt_ns(m.mean_ns),
            fmt_ns(m.p50_ns),
            fmt_ns(m.p99_ns),
        );
        self.results.push(m);
    }

    /// All measurements so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Render the JSON document for this harness.
    pub fn to_json(&self, harness: &str) -> String {
        let body: Vec<String> = self.results.iter().map(Measurement::json).collect();
        format!(
            "{{\"harness\":{},\"results\":[{}]}}\n",
            json_string(harness),
            body.join(",")
        )
    }

    /// Write `BENCH_<harness>.json` (into `RAT_BENCH_DIR` or cwd) and
    /// print a closing summary. Called by [`bench_main!`](crate::bench_main).
    pub fn finalize(&mut self, harness: &str) {
        let dir = std::env::var("RAT_BENCH_DIR").unwrap_or_else(|_| ".".into());
        std::fs::create_dir_all(&dir).ok();
        let path = std::path::Path::new(&dir).join(format!("BENCH_{harness}.json"));
        match std::fs::write(&path, self.to_json(harness)) {
            Ok(()) => eprintln!(
                "\n{} benchmark(s) measured; results written to {}",
                self.results.len(),
                path.display()
            ),
            Err(e) => eprintln!("\nWARNING: could not write {}: {e}", path.display()),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl Group<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declare work-per-iteration for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, id: impl IntoBenchId, f: impl FnMut(&mut Timer)) {
        let saved = self.bench.knobs;
        let mut knobs = saved;
        if let Some(n) = self.sample_size {
            knobs.samples = knobs.samples.min(n);
        }
        self.bench.knobs = knobs;
        let name = self.name.clone();
        let throughput = self.throughput;
        self.bench.run(&name, id.into_label(), throughput, f);
        self.bench.knobs = saved;
    }

    /// Close the group (drop would do; mirrors the criterion API).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! bench_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name(c: &mut $crate::bench::Bench) {
            $( $f(c); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut bench = $crate::bench::Bench::from_env();
            $( $group(&mut bench); )+
            bench.finalize(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_bench() -> Bench {
        Bench {
            knobs: Knobs::fast(),
            results: Vec::new(),
        }
    }

    #[test]
    fn measures_a_trivial_routine() {
        let mut b = fast_bench();
        b.bench_function("noop_sum", |t| t.iter(|| (0..100u64).sum::<u64>()));
        let m = &b.results()[0];
        assert_eq!(m.name, "noop_sum");
        assert_eq!(m.samples, 5);
        assert!(m.mean_ns > 0.0);
        assert!(m.min_ns <= m.p50_ns && m.p50_ns <= m.max_ns);
        assert!(m.p99_ns <= m.max_ns + 1e-9);
    }

    #[test]
    fn groups_and_ids_compose_labels() {
        let mut b = fast_bench();
        let mut g = b.benchmark_group("grp");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        g.bench_function(BenchmarkId::new("f", 64), |t| t.iter(|| bb(1 + 1)));
        g.finish();
        let m = &b.results()[0];
        assert_eq!(m.group, "grp");
        assert_eq!(m.name, "f/64");
        assert_eq!(m.samples, 3);
        assert!(matches!(m.throughput, Some(Throughput::Elements(64))));
    }

    #[test]
    fn iter_custom_reports_the_closure_measurement() {
        // The routine claims exactly 10ns per iteration regardless of
        // its real wall cost; the measurement must reflect the claim.
        let mut b = fast_bench();
        b.bench_function("custom", |t| {
            t.iter_custom(|iters| {
                bb((0..iters * 50).sum::<u64>());
                iters * 10
            })
        });
        let m = &b.results()[0];
        assert_eq!(m.name, "custom");
        assert!((m.mean_ns - 10.0).abs() < 1e-9, "mean {}", m.mean_ns);
        assert_eq!(m.min_ns, 10.0);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = fast_bench();
        b.bench_function("batched", |t| {
            t.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(b.results()[0].iters_per_sample, 1);
    }

    #[test]
    fn json_is_wellformed_and_complete() {
        let mut b = fast_bench();
        b.bench_function("alpha", |t| t.iter(|| bb(0)));
        let mut g = b.benchmark_group("g\"quoted");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(128));
        g.bench_function("beta", |t| t.iter(|| bb(0)));
        g.finish();
        let json = b.to_json("unit_test");
        assert!(json.starts_with("{\"harness\":\"unit_test\""));
        assert!(json.contains("\"name\":\"alpha\""));
        assert!(json.contains("\"group\":\"g\\\"quoted\""));
        assert!(json.contains("\"bytes\":128"));
        assert!(json.contains("\"mean_ns\":"));
        // braces balance
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
    }

    #[test]
    fn finalize_writes_json_file() {
        let dir = std::env::temp_dir().join(format!("rt-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("RAT_BENCH_DIR", &dir);
        let mut b = fast_bench();
        b.bench_function("written", |t| t.iter(|| bb(7)));
        b.finalize("file_test");
        std::env::remove_var("RAT_BENCH_DIR");
        let path = dir.join("BENCH_file_test.json");
        let content = std::fs::read_to_string(&path).expect("JSON written");
        assert!(content.contains("\"written\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! **Batched-decode smoke check** — the continuous-batching acceptance
//! gate, run by `scripts/ci.sh`:
//!
//! 1. a sequence's token stream is byte-identical solo and in a batch
//!    of 4 (the batch-determinism contract);
//! 2. shared-prefix decoding registers real KV-cache hits
//!    (`decode_kv_hits_total` > 0); and
//! 3. a warm shared-prefix batch of 8 delivers ≥ 2× the aggregate
//!    tokens/sec of solo full-prefill decode — the throughput claim of
//!    the batching tentpole (solo pays the whole pantry prompt per
//!    request; the batch admits against cached prefix blocks and only
//!    prefills the tail); and
//! 4. the parallel paged-attention sweep holds the determinism contract
//!    in the attention-bound regime: a long-context batch of 8 produces
//!    byte-identical streams at 1 and 2 worker threads, both matching
//!    the serial row-at-a-time reference loop.
//!
//! Also useful standalone:
//!
//! ```text
//! cargo run --release -p ratatouille-bench --bin batched_smoke
//! ```

use std::time::Instant;

use ratatouille::models::batch::{
    BatchEngineConfig, BatchGenerator, BatchRequest, BatchStepModel,
};
use ratatouille::models::gpt2::{Gpt2Config, Gpt2Lm};
use ratatouille::models::sample::SamplerConfig;
use ratatouille::models::transformer::{set_attention_mode, AttentionMode};
use ratatouille::models::InferenceModel;
use ratatouille::tensor::par;

const VOCAB: usize = 384;
/// Generated tokens per sequence.
const TOKENS: usize = 24;
/// Pantry-prompt length (11 full 4-token blocks of shareable prefix).
const PROMPT: usize = 48;

fn engine_cfg(prefix_cap: usize) -> BatchEngineConfig {
    BatchEngineConfig {
        block_tokens: 4,
        num_blocks: 256,
        max_batch: 8,
        prefix_cap,
    }
}

fn sampler() -> SamplerConfig {
    SamplerConfig {
        max_tokens: TOKENS,
        greedy: true,
        stop_token: None,
        ..SamplerConfig::default()
    }
}

fn req(prompt: &[u32], seed: u64) -> BatchRequest {
    BatchRequest {
        prompt: prompt.to_vec(),
        sampler: sampler(),
        seed,
    }
}

/// Admit `reqs` together and decode all of them to completion.
fn decode_together(bm: &dyn BatchStepModel, prefix_cap: usize, reqs: &[BatchRequest]) -> Vec<Vec<u32>> {
    let mut engine = BatchGenerator::new(bm, engine_cfg(prefix_cap));
    let ids: Vec<u64> = reqs
        .iter()
        .map(|r| engine.admit(r.clone()).expect("pool sized for the batch"))
        .collect();
    let mut out = vec![Vec::new(); ids.len()];
    let mut done = 0;
    while done < ids.len() {
        for f in engine.step(bm).expect("reserved at admission").finished {
            let slot = ids.iter().position(|&id| id == f.id).expect("known id");
            out[slot] = f.tokens;
            done += 1;
        }
    }
    out
}

fn main() {
    let model = Gpt2Lm::new(Gpt2Config::distil(VOCAB));
    let bm = model.batch_model().expect("distil tier is batch-ready");
    eprintln!("[batched_smoke] model: {}", InferenceModel::name(&model));

    let prompts: Vec<Vec<u32>> = (0..8u32)
        .map(|i| {
            (0..PROMPT as u32)
                .map(|t| (2 + i * 17 + t) % VOCAB as u32)
                .collect()
        })
        .collect();

    // 1. Batch-determinism: solo == batch-of-4, byte for byte.
    let solos: Vec<Vec<u32>> = prompts[..4]
        .iter()
        .enumerate()
        .map(|(i, p)| decode_together(bm, 0, &[req(p, i as u64)]).remove(0))
        .collect();
    let reqs4: Vec<BatchRequest> = prompts[..4]
        .iter()
        .enumerate()
        .map(|(i, p)| req(p, i as u64))
        .collect();
    let batched = decode_together(bm, 0, &reqs4);
    for (i, (solo, b)) in solos.iter().zip(&batched).enumerate() {
        assert_eq!(solo.len(), TOKENS, "sequence {i} stopped early");
        assert_eq!(solo, b, "sequence {i} diverged between solo and batch-of-4");
    }
    eprintln!("[batched_smoke] solo == batch-of-4 for 4 sequences ({TOKENS} tokens each)");

    // 2. Shared prefixes produce real KV-cache hits: same prompt twice
    //    through one engine — the second admission adopts cached blocks.
    let hits_before = obs::static_counter!("decode_kv_hits_total").get();
    let shared = {
        let mut engine = BatchGenerator::new(bm, engine_cfg(8));
        let a = engine.admit(req(&prompts[0], 0)).expect("admit");
        let first = engine.run_to_completion(bm, a).expect("decode");
        let b = engine.admit(req(&prompts[0], 0)).expect("admit");
        let second = engine.run_to_completion(bm, b).expect("decode");
        assert_eq!(first, second, "shared-prefix decode changed the stream");
        assert_eq!(first, solos[0], "prefix sharing changed the stream");
        first
    };
    let hits = obs::static_counter!("decode_kv_hits_total").get() - hits_before;
    assert!(hits > 0, "no shared-prefix KV hits recorded");
    assert_eq!(shared.len(), TOKENS);
    eprintln!("[batched_smoke] decode_kv_hits_total += {hits} from one shared prompt");

    // 3. Throughput: a warm shared-prefix batch of 8 vs solo decode
    //    paying its full prefill per request (per-request serving
    //    today). All 8 requests share one pantry prompt — the steady
    //    state the prefix cache exists for. Best-of-three timings so CI
    //    noise cannot flake the gate.
    let time_best_of = |f: &mut dyn FnMut() -> usize| -> (usize, f64) {
        let mut best = f64::MAX;
        let mut tokens = 0;
        for _ in 0..3 {
            let t0 = Instant::now();
            tokens = f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (tokens, best)
    };
    let shared8: Vec<BatchRequest> = (0..8).map(|i| req(&prompts[0], i as u64)).collect();
    let mut warm = BatchGenerator::new(bm, engine_cfg(8));
    let run_shared = |engine: &mut BatchGenerator| -> usize {
        let ids: Vec<u64> = shared8
            .iter()
            .map(|r| engine.admit(r.clone()).expect("pool sized for the batch"))
            .collect();
        let mut tokens = 0;
        let mut done = 0;
        while done < ids.len() {
            for f in engine.step(bm).expect("reserved at admission").finished {
                tokens += f.tokens.len();
                done += 1;
            }
        }
        tokens
    };
    run_shared(&mut warm); // register the prefix; later runs adopt it
    let (batch_tokens, batch_secs) = time_best_of(&mut || run_shared(&mut warm));
    let (solo_tokens, solo_secs) = time_best_of(&mut || {
        decode_together(bm, 0, &shared8[..1]).iter().map(Vec::len).sum()
    });
    let batch_tps = batch_tokens as f64 / batch_secs;
    let solo_tps = solo_tokens as f64 / solo_secs;
    eprintln!(
        "[batched_smoke] aggregate throughput: shared batch-8 {batch_tps:.0} tok/s vs solo {solo_tps:.0} tok/s ({:.2}x)",
        batch_tps / solo_tps
    );
    assert!(
        batch_tps >= 2.0 * solo_tps,
        "shared-prefix batch-of-8 must deliver >= 2x solo aggregate tokens/sec \
         (got {batch_tps:.0} vs {solo_tps:.0})"
    );

    // 4. Long-context attention-bound determinism: batch of 8 on a
    //    160-token prompt (attention dominates each decode step), the
    //    pool-parallel sweep at 2 threads vs 1 thread vs the serial
    //    reference — all three must agree byte for byte.
    const LONG_PROMPT: usize = 160;
    let long_reqs: Vec<BatchRequest> = (0..8u32)
        .map(|i| {
            let prompt: Vec<u32> = (0..LONG_PROMPT as u32)
                .map(|t| (3 + i * 13 + t) % VOCAB as u32)
                .collect();
            req(&prompt, i as u64)
        })
        .collect();
    let run_long = |mode: AttentionMode, threads: usize| -> Vec<Vec<u32>> {
        set_attention_mode(mode);
        par::set_num_threads(threads);
        // Bigger blocks than the short-prompt cases: 8 sequences of
        // 160 + 24 tokens need ~96 sixteen-token blocks.
        let mut engine = BatchGenerator::new(
            bm,
            BatchEngineConfig {
                block_tokens: 16,
                num_blocks: 128,
                max_batch: 8,
                prefix_cap: 0,
            },
        );
        let ids: Vec<u64> = long_reqs
            .iter()
            .map(|r| engine.admit(r.clone()).expect("pool sized for the batch"))
            .collect();
        let mut out = vec![Vec::new(); ids.len()];
        let mut done = 0;
        while done < ids.len() {
            for f in engine.step(bm).expect("reserved at admission").finished {
                let slot = ids.iter().position(|&id| id == f.id).expect("known id");
                out[slot] = f.tokens;
                done += 1;
            }
        }
        par::set_num_threads(0);
        set_attention_mode(AttentionMode::Sweep);
        out
    };
    let serial_ref = run_long(AttentionMode::Serial, 1);
    let sweep1 = run_long(AttentionMode::Sweep, 1);
    let sweep2 = run_long(AttentionMode::Sweep, 2);
    assert_eq!(
        sweep1, serial_ref,
        "1-thread sweep diverged from the serial reference at long context"
    );
    assert_eq!(
        sweep2, serial_ref,
        "2-thread sweep diverged from the single-thread stream at long context"
    );
    let attend_total = obs::static_histogram!("attend_ns").sum();
    assert!(attend_total > 0, "attend_ns histogram never populated");
    eprintln!(
        "[batched_smoke] long-context batch-8 streams identical across serial/sweep x threads 1,2 \
         (attend_ns total {attend_total})"
    );

    println!("batched_smoke: all checks passed");
}

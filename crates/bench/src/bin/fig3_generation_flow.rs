//! **Fig. 3 reproduction** — "Flow diagram of recipe generation".
//!
//! Traces one request end-to-end, printing every stage of the paper's
//! flow: ingredient list → prompt construction → tokenization →
//! autoregressive decoding → tag-structured parse → structured recipe.
//!
//! ```text
//! RATATOUILLE_SCALE=quick cargo run --release -p ratatouille-bench --bin fig3_generation_flow
//! ```

use ratatouille::models::registry::ModelKind;
use ratatouille::pipeline::prompt_for;
use ratatouille::{Pipeline, TrainedModel};
use ratatouille_bench::{pipeline_config, scaled_train_config, Scale};
use ratatouille_eval::structure::validate_tagged_recipe;

fn train(scale: Scale) -> (Pipeline, TrainedModel) {
    let pipeline = Pipeline::prepare(pipeline_config(scale));
    let kind = ModelKind::Gpt2Medium;
    let defaults = ratatouille::models::registry::ModelSpec::build(kind, &pipeline.train_texts)
        .default_train_config();
    let trained = pipeline.train(kind, Some(scaled_train_config(defaults, scale)));
    (pipeline, trained)
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig3] training GPT-2 medium at {scale:?} scale…");
    let (_pipeline, trained) = train(scale);

    println!("FIG. 3 — FLOW DIAGRAM OF RECIPE GENERATION (traced)\n");

    let ingredients = vec!["chicken".to_string(), "garlic".to_string(), "ginger".to_string()];
    println!("stage 1 — user ingredient list:");
    println!("  {ingredients:?}\n");

    let prompt = prompt_for(&ingredients);
    println!("stage 2 — prompt construction (tagged input section):");
    println!("  {prompt}\n");

    let ids = trained.spec.tokenizer.encode(&prompt);
    println!(
        "stage 3 — tokenization ({} tokenizer, vocab {}):",
        trained.spec.tokenizer.name(),
        trained.spec.tokenizer.vocab_size()
    );
    println!("  {} prompt tokens: {:?}…\n", ids.len(), &ids[..ids.len().min(16)]);

    println!("stage 4 — autoregressive decoding (top-k/top-p, KV cache):");
    let started = std::time::Instant::now();
    let tagged = trained.generate_tagged(&ingredients, 7);
    let elapsed = started.elapsed();
    let new_tokens = trained.spec.tokenizer.encode(&tagged).len() - ids.len();
    println!(
        "  generated ~{} tokens in {:.0} ms ({:.1} tok/s)\n",
        new_tokens,
        elapsed.as_secs_f64() * 1000.0,
        new_tokens as f64 / elapsed.as_secs_f64()
    );

    println!("stage 5 — raw tagged output:");
    println!("  {tagged}\n");

    println!("stage 6 — structural parse:");
    let report = validate_tagged_recipe(&tagged);
    println!("  well-formed: {}", report.valid);
    if !report.errors.is_empty() {
        println!("  issues: {:?}", &report.errors[..report.errors.len().min(3)]);
    }
    println!("  title: {}", report.title.as_deref().unwrap_or("<none>"));
    println!("  ingredients ({}):", report.ingredients.len());
    for i in &report.ingredients {
        println!("    - {i}");
    }
    println!("  instructions ({}):", report.instructions.len());
    for (n, s) in report.instructions.iter().enumerate() {
        println!("    {}. {s}", n + 1);
    }
    println!(
        "\n  quantity coverage: {:.0}%",
        report.quantity_coverage() * 100.0
    );
}

//! **§VII future work, implemented** — "For future work, we intend to use
//! GPT-Neo which is built on similar architecture of GPT-3."
//!
//! Trains GPT-Neo (alternating global/local attention) head-to-head with
//! GPT-2 medium at identical width/depth/budget and compares Table-I
//! metrics — the experiment the paper proposed but did not run.
//!
//! ```text
//! RATATOUILLE_SCALE=quick cargo run --release -p ratatouille-bench --bin future_work_gptneo
//! ```

use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::SeedableRng;
use ratatouille::eval::bleu::corpus_bleu;
use ratatouille::models::data::Dataset;
use ratatouille::models::gptneo::{GptNeoConfig, GptNeoLm};
use ratatouille::models::registry::{ModelKind, ModelSpec};
use ratatouille::models::sample::{generate, SamplerConfig};
use ratatouille::models::train::Trainer;
use ratatouille::models::{InferenceModel, LanguageModel};
use ratatouille::pipeline::{prompt_for, spaced_tags};
use ratatouille::tokenizers::{special, Tokenizer};
use ratatouille::Pipeline;
use ratatouille_bench::{pipeline_config, scaled_train_config, Scale};

fn eval_bleu(
    model: &dyn LanguageModel,
    tokenizer: &dyn Tokenizer,
    pipeline: &Pipeline,
    n: usize,
) -> f64 {
    let mut pairs_owned: Vec<(String, String)> = Vec::new();
    for (i, recipe) in pipeline.test_recipes.iter().take(n).enumerate() {
        let ingredients: Vec<String> = recipe.ingredients.iter().map(|l| l.name.clone()).collect();
        let prompt_text = prompt_for(&ingredients);
        let prompt = tokenizer.encode(&prompt_text);
        let mut rng = StdRng::seed_from_u64(42 ^ i as u64);
        let cfg = SamplerConfig {
            stop_token: Some(tokenizer.eos_id()),
            max_tokens: 180,
            temperature: 0.7,
            top_p: 0.9,
            ..SamplerConfig::default()
        };
        let out = generate(model, &prompt, &cfg, &mut rng);
        let candidate = tokenizer.decode(&out);
        let reference = recipe
            .to_tagged_string()
            .split_once(special::TITLE_START)
            .map(|(_, rest)| rest.to_string())
            .unwrap_or_default();
        pairs_owned.push((spaced_tags(&candidate), spaced_tags(&reference)));
    }
    let pairs: Vec<(&str, Vec<&str>)> = pairs_owned
        .iter()
        .map(|(c, r)| (c.as_str(), vec![r.as_str()]))
        .collect();
    corpus_bleu(&pairs)
}

fn main() {
    let scale = Scale::from_env();
    let pipeline = Pipeline::prepare(pipeline_config(scale));
    println!("FUTURE WORK — GPT-NEO vs GPT-2 MEDIUM (equal width/depth/budget)\n");

    // GPT-2 medium baseline via the registry.
    let spec = ModelSpec::build(ModelKind::Gpt2Medium, &pipeline.train_texts);
    let cfg = scaled_train_config(spec.default_train_config(), scale);
    let ds = Dataset::from_texts(&pipeline.train_texts, spec.tokenizer.as_ref(), spec.block_size);
    eprintln!("[gptneo-bench] training GPT-2 medium ({} steps)…", cfg.steps);
    let gpt2_stats = Trainer::new(spec.model.as_ref(), &ds, cfg.clone()).train();

    // GPT-Neo at the same shape, same tokenizer, same budget.
    let neo = GptNeoLm::new(GptNeoConfig::small(spec.tokenizer.vocab_size()));
    eprintln!("[gptneo-bench] training GPT-Neo ({} steps)…", cfg.steps);
    let neo_stats = Trainer::new(&neo, &ds, cfg).train();

    let n = scale.eval_recipes();
    let gpt2_bleu = eval_bleu(spec.model.as_ref(), spec.tokenizer.as_ref(), &pipeline, n);
    let neo_bleu = eval_bleu(&neo, spec.tokenizer.as_ref(), &pipeline, n);

    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>10}",
        "model", "params", "final loss", "train (s)", "BLEU"
    );
    println!("{}", "-".repeat(74));
    println!(
        "{:<24} {:>10} {:>12.3} {:>12.1} {:>10.3}",
        spec.model.name(),
        spec.model.num_params(),
        gpt2_stats.final_loss(10),
        gpt2_stats.wall_secs,
        gpt2_bleu
    );
    println!(
        "{:<24} {:>10} {:>12.3} {:>12.1} {:>10.3}",
        neo.name(),
        neo.num_params(),
        neo_stats.final_loss(10),
        neo_stats.wall_secs,
        neo_bleu
    );
    println!(
        "\nlocal-attention layers see a {}-token window; at recipe lengths (≤192 tokens)\n\
         GPT-Neo should be roughly at parity — the paper's hoped-for gain comes from\n\
         pre-training scale, which no offline reproduction can supply.",
        GptNeoConfig::small(10).window
    );
}

//! **§V hardware claim reproduction** — "On CPU, it's taking 2-3 days to
//! train our whole model but on GPU it took around 16 hours".
//!
//! We have no A100; the substituted axis is CPU thread parallelism over
//! the identical training workload (the same data-parallel batched
//! matmuls a GPU accelerates). The reproduced *shape* is the claim that
//! parallel hardware cuts training wall-clock by a large factor.
//!
//! ```text
//! cargo run --release -p ratatouille-bench --bin training_speedup
//! ```

use ratatouille::models::data::Dataset;
use ratatouille::models::registry::{ModelKind, ModelSpec};
use ratatouille::models::train::{TrainConfig, Trainer};
use ratatouille::tensor::par::set_num_threads;
use ratatouille::Pipeline;
use ratatouille_bench::{pipeline_config, Scale};

fn main() {
    let scale = Scale::from_env();
    let pipeline = Pipeline::prepare(pipeline_config(Scale::Quick));
    let steps = match scale {
        Scale::Quick => 10,
        Scale::Standard => 25,
        Scale::Full => 60,
    };

    println!("TRAINING-TIME SPEEDUP — CPU threads as the parallel-hardware axis\n");
    println!("workload: GPT-2 medium, {steps} steps, batch 8, block 160\n");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "threads", "wall (s)", "tok/s", "speedup"
    );
    println!("{}", "-".repeat(48));

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    println!("(machine reports {max_threads} hardware thread(s))");
    if max_threads == 1 {
        println!("NOTE: single-core machine — thread scaling cannot manifest here; the");
        println!("sweep below measures threading overhead instead. Run on a multi-core");
        println!("box to see the paper-shaped speedup.\n");
    }
    let mut baseline = None;
    let mut prev_speedup = 0.0;
    for threads in [1usize, 2, 4, 8, 16] {
        if threads > max_threads * 2 {
            break;
        }
        set_num_threads(threads);
        // fresh model each time: identical workload, identical init
        let spec = ModelSpec::build(ModelKind::Gpt2Medium, &pipeline.train_texts);
        let ds = Dataset::from_texts(&pipeline.train_texts, spec.tokenizer.as_ref(), spec.block_size);
        let cfg = TrainConfig {
            steps,
            batch_size: 8,
            ..Default::default()
        };
        let stats = Trainer::new(spec.model.as_ref(), &ds, cfg).train();
        let base = *baseline.get_or_insert(stats.wall_secs);
        let speedup = base / stats.wall_secs;
        println!(
            "{:<10} {:>12.2} {:>12.0} {:>9.2}x",
            threads, stats.wall_secs, stats.tokens_per_sec, speedup
        );
        prev_speedup = speedup;
    }
    set_num_threads(0);

    println!(
        "\npaper's ratio: 2–3 days (CPU serial) vs ~16 h (A100) ≈ 3–4.5×; ours: {prev_speedup:.1}× at max threads"
    );
    if max_threads > 1 {
        println!("(the claim reproduced: parallel hardware gives a multiplicative cut in training wall-clock)");
    } else {
        println!("(shape not measurable on 1 hardware thread — see tensor::par tests and the");
        println!(" matmul_threads criterion bench, which verify the parallel kernels are correct;");
        println!(" the speedup itself needs real cores)");
    }
}

//! **Fig. 5 reproduction** — "Recipe Generated using GPT2 model".
//!
//! Trains the best Table-I model (GPT-2 medium), samples a recipe with
//! nucleus sampling, and pretty-prints it the way the web UI renders it:
//! title, quantified ingredient lines, numbered instructions.
//!
//! ```text
//! RATATOUILLE_SCALE=quick cargo run --release -p ratatouille-bench --bin fig5_sample_recipe
//! ```

use ratatouille::models::registry::ModelKind;
use ratatouille::Pipeline;
use ratatouille_bench::{pipeline_config, scaled_train_config, Scale};
use ratatouille_eval::novelty::{is_verbatim_copy, novel_ngram_fraction};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig5] training GPT-2 medium ({scale:?} scale)…");
    let pipeline = Pipeline::prepare(pipeline_config(scale));
    let kind = ModelKind::Gpt2Medium;
    let defaults = ratatouille::models::registry::ModelSpec::build(kind, &pipeline.train_texts)
        .default_train_config();
    let trained = pipeline.train(kind, Some(scaled_train_config(defaults, scale)));

    println!("FIG. 5 — RECIPE GENERATED USING THE GPT-2 MODEL\n");
    let ingredient_sets: &[&[&str]] = &[
        &["chicken", "garlic", "ginger", "soy sauce"],
        &["flour", "butter", "sugar", "egg"],
        &["lentils", "onion", "cumin", "turmeric"],
    ];
    for (i, set) in ingredient_sets.iter().enumerate() {
        let ingredients: Vec<String> = set.iter().map(|s| s.to_string()).collect();
        let recipe = trained.generate_recipe(&ingredients, 100 + i as u64);
        println!("═══ input ingredients: {} ═══", set.join(", "));
        println!("  {}", recipe.title.to_uppercase());
        println!("  Ingredients:");
        for line in &recipe.ingredients {
            println!("    • {line}");
        }
        println!("  Instructions:");
        for (n, s) in recipe.instructions.iter().enumerate() {
            println!("    {}. {s}", n + 1);
        }
        println!(
            "  well-formed: {}",
            if recipe.well_formed { "yes" } else { "no" }
        );

        // The paper's claim is *novel* recipe generation — check.
        let tagged = trained.generate_tagged(&ingredients, 100 + i as u64);
        let copy = is_verbatim_copy(&tagged, &trained.train_texts);
        let novelty = novel_ngram_fraction(&tagged, &trained.train_texts, 4);
        println!(
            "  novelty: verbatim copy of training data: {} · novel 4-grams: {:.0}%\n",
            if copy { "YES (!)" } else { "no" },
            novelty * 100.0
        );
    }
}

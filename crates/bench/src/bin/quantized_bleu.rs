//! **Quantized-vs-f32 BLEU delta** — does int8 weight quantization
//! preserve the Table-I quality ordering?
//!
//! Trains the two quantizable Table-I transformers (DistilGPT2 and GPT-2
//! medium), then scores the *same* test prompts with the f32 decode path
//! and the int8 decode path under identical seeds and sampler settings,
//! so any BLEU difference isolates the quantization effect.
//!
//! ```text
//! RATATOUILLE_SCALE=quick cargo run --release -p ratatouille-bench --bin quantized_bleu
//! ```

use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::SeedableRng;
use ratatouille::eval::bleu::corpus_bleu;
use ratatouille::models::data::Dataset;
use ratatouille::models::registry::{ModelKind, ModelSpec};
use ratatouille::models::sample::{generate, SamplerConfig};
use ratatouille::models::train::Trainer;
use ratatouille::models::InferenceModel;
use ratatouille::pipeline::{prompt_for, spaced_tags};
use ratatouille::tokenizers::{special, Tokenizer};
use ratatouille::Pipeline;
use ratatouille_bench::{pipeline_config, scaled_train_config, Scale};

fn eval_bleu(
    model: &dyn InferenceModel,
    tokenizer: &dyn Tokenizer,
    pipeline: &Pipeline,
    n: usize,
) -> f64 {
    let mut pairs_owned: Vec<(String, String)> = Vec::new();
    for (i, recipe) in pipeline.test_recipes.iter().take(n).enumerate() {
        let ingredients: Vec<String> = recipe.ingredients.iter().map(|l| l.name.clone()).collect();
        let prompt = tokenizer.encode(&prompt_for(&ingredients));
        let mut rng = StdRng::seed_from_u64(42 ^ i as u64);
        let cfg = SamplerConfig {
            stop_token: Some(tokenizer.eos_id()),
            max_tokens: 180,
            temperature: 0.7,
            top_p: 0.9,
            ..SamplerConfig::default()
        };
        let out = generate(model, &prompt, &cfg, &mut rng);
        let candidate = tokenizer.decode(&out);
        let reference = recipe
            .to_tagged_string()
            .split_once(special::TITLE_START)
            .map(|(_, rest)| rest.to_string())
            .unwrap_or_default();
        pairs_owned.push((spaced_tags(&candidate), spaced_tags(&reference)));
    }
    let pairs: Vec<(&str, Vec<&str>)> = pairs_owned
        .iter()
        .map(|(c, r)| (c.as_str(), vec![r.as_str()]))
        .collect();
    corpus_bleu(&pairs)
}

fn main() {
    let scale = Scale::from_env();
    let pipeline = Pipeline::prepare(pipeline_config(scale));
    let n = scale.eval_recipes();
    println!("QUANTIZED vs F32 DECODE — BLEU on {n} held-out recipes\n");
    println!(
        "{:<24} {:>12} {:>12} {:>10}",
        "model", "BLEU (f32)", "BLEU (int8)", "delta"
    );
    println!("{}", "-".repeat(62));

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for kind in [ModelKind::DistilGpt2, ModelKind::Gpt2Medium] {
        let spec = ModelSpec::build(kind, &pipeline.train_texts);
        let cfg = scaled_train_config(spec.default_train_config(), scale);
        let ds =
            Dataset::from_texts(&pipeline.train_texts, spec.tokenizer.as_ref(), spec.block_size);
        eprintln!(
            "[quantized_bleu] training {} ({} steps)…",
            spec.model.name(),
            cfg.steps
        );
        Trainer::new(spec.model.as_ref(), &ds, cfg).train();
        let quant = spec.model.quantized().expect("transformers quantize");

        let f32_bleu = eval_bleu(spec.model.as_ref(), spec.tokenizer.as_ref(), &pipeline, n);
        let int8_bleu = eval_bleu(quant.as_ref(), spec.tokenizer.as_ref(), &pipeline, n);
        println!(
            "{:<24} {:>12.3} {:>12.3} {:>+10.3}",
            spec.model.name(),
            f32_bleu,
            int8_bleu,
            int8_bleu - f32_bleu
        );
        rows.push((spec.model.name().to_string(), f32_bleu, int8_bleu));
    }

    // Table-I ordering check: the f32 ranking must survive quantization.
    let f32_order: Vec<&str> = {
        let mut v: Vec<_> = rows.iter().map(|(n, b, _)| (n.as_str(), *b)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.into_iter().map(|(n, _)| n).collect()
    };
    let int8_order: Vec<&str> = {
        let mut v: Vec<_> = rows.iter().map(|(n, _, b)| (n.as_str(), *b)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.into_iter().map(|(n, _)| n).collect()
    };
    println!(
        "\nranking f32:  {}\nranking int8: {}\nordering preserved: {}",
        f32_order.join(" > "),
        int8_order.join(" > "),
        f32_order == int8_order
    );
}

//! **Table I reproduction** — "Performance statistics of models".
//!
//! Trains all four rows (Char-LSTM, Word-LSTM, DistilGPT2, GPT-2 medium)
//! on the synthetic RecipeDB corpus and reports corpus BLEU against
//! held-out references, next to the paper's numbers.
//!
//! ```text
//! RATATOUILLE_SCALE=quick|standard|full cargo run --release -p ratatouille-bench --bin table1_bleu
//! ```
//!
//! Expected shape (the reproduction claim): BLEU increases down the
//! table with GPT-2 medium clearly on top — absolute values differ from
//! the paper because the substrate differs (see EXPERIMENTS.md).

use ratatouille_bench::{render_table1, run_table1, table1_shape_holds, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[table1] scale: {scale:?}");
    let started = std::time::Instant::now();
    let rows = run_table1(scale);
    println!("\nTABLE I — PERFORMANCE STATISTICS OF MODELS (reproduced)\n");
    println!("{}", render_table1(&rows));
    println!(
        "shape check (GPT-2 medium best, transformers beat char-LSTM): {}",
        if table1_shape_holds(&rows) { "HOLDS" } else { "VIOLATED" }
    );
    println!("total wall-clock: {:.1}s", started.elapsed().as_secs_f64());
}

//! **Fig. 2 reproduction** — "Dataset after preprocessing".
//!
//! Runs the full §III pipeline on the raw corpus, prints per-stage
//! accounting (the numbers behind "removing incomplete and redundant
//! recipes, fixing the length … to 2000 characters, 2σ, merging"), and a
//! sample record in the tagged training format.
//!
//! ```text
//! cargo run -p ratatouille-bench --bin fig2_preprocessed
//! ```

use ratatouille::recipedb::corpus::{Corpus, CorpusConfig};
use ratatouille::recipedb::preprocess::{PreprocessConfig, Preprocessor};
use ratatouille::recipedb::stats::length_stats;

fn main() {
    let corpus = Corpus::generate(CorpusConfig {
        num_recipes: 1000,
        ..CorpusConfig::default()
    });
    let (texts, report) = Preprocessor::new(PreprocessConfig::default()).run(&corpus.raw_records);

    println!("FIG. 2 — DATASET AFTER PREPROCESSING\n");
    println!("--- pipeline accounting --------------------------------------");
    println!("raw records in:          {}", report.input_records);
    println!("noise-stripped:          {}", report.noise_stripped);
    println!("duplicates removed:      {}", report.duplicates_removed);
    println!("parse failures removed:  {}", report.parse_failures);
    println!("invalid removed:         {}", report.invalid_removed);
    println!("length-capped (2000ch):  {}", report.capped);
    println!("short records merged:    {}", report.merged);
    println!("2σ-filtered:             {}", report.sigma_filtered);
    println!("training texts out:      {}", report.output_texts);
    println!(
        "tagged length: mean={:.0} std={:.0}\n",
        report.mean_len, report.std_len
    );

    println!("--- sample tagged training record ----------------------------");
    let sample = texts.iter().min_by_key(|t| t.len()).expect("non-empty output");
    println!("{sample}\n");

    let stats = length_stats(&texts);
    println!("--- post-preprocessing size distribution ---------------------");
    println!(
        "n={} mean={:.0} std={:.0} min={} max={} within2σ={:.1}%",
        stats.n,
        stats.mean,
        stats.std,
        stats.min,
        stats.max,
        stats.within_2_sigma * 100.0
    );
    assert!(
        texts.iter().all(|t| t.len() <= 2000),
        "length cap violated"
    );
    println!("\nall texts ≤ 2000 chars: OK");
}

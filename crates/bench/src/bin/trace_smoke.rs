//! **Request-tracing smoke check** — two gates in one binary:
//!
//! 1. **Overhead**: decoding with per-step trace recording enabled must
//!    stay within 2% of the untraced baseline (best-of-5 each, same
//!    engine config, same seeds). The trace path is two atomic stores
//!    per phase record; anything slower is a regression.
//! 2. **End-to-end**: boots the batched server over a tiny untrained
//!    GPT-2, posts a generation, and asserts the full lifecycle is
//!    reconstructable over HTTP: `X-Trace-Id` on the response,
//!    `/debug/requests` listing the id, `/debug/requests/<id>` carrying
//!    accept → enqueue → admit → prefill → decode → retire → respond,
//!    and `/debug/trace?fmt=chrome` emitting loadable trace-event JSON.
//!
//! Run by `scripts/ci.sh`; also useful standalone:
//!
//! ```text
//! cargo run --release -p ratatouille-bench --bin trace_smoke
//! ```

use std::sync::Arc;

use obs::reqtrace::TraceMeta;
use ratatouille_models::batch::{BatchEngineConfig, BatchGenerator, BatchRequest};
use ratatouille_models::gpt2::{Gpt2Config, Gpt2Lm};
use ratatouille_models::sample::SamplerConfig;
use ratatouille_models::InferenceModel;
use ratatouille_serving::api::{ApiServer, GeneratedRecipe};
use ratatouille_serving::batch::{
    AdmitOutcome, BatchServerConfig, StepBackend, StepBackendFactory,
};
use ratatouille_serving::client::HttpClient;
use ratatouille_serving::json::Json;

const VOCAB: usize = 64;
const DECODE_TOKENS: usize = 8;

fn engine_cfg(max_batch: usize) -> BatchEngineConfig {
    BatchEngineConfig {
        block_tokens: 4,
        num_blocks: 128,
        max_batch,
        prefix_cap: 0,
    }
}

fn sampler(max_tokens: usize) -> SamplerConfig {
    SamplerConfig {
        max_tokens,
        greedy: false,
        stop_token: None,
        ..SamplerConfig::default()
    }
}

/// One full decode of 4 requests (8-token prompts, 64 generated tokens
/// each); returns wall nanoseconds for the step loop. When `traced`,
/// every request records every prefill chunk and decode step.
fn decode_run(model: &Gpt2Lm, traced: bool) -> u64 {
    let bm = model.batch_model().expect("distil tier is batch-ready");
    let mut engine = BatchGenerator::new(bm, engine_cfg(4));
    for seed in 0..4u64 {
        let prompt: Vec<u32> = (0..8u32).map(|t| (2 + seed as u32 + t) % VOCAB as u32).collect();
        let meta = if traced {
            TraceMeta {
                enqueued_ns: 0,
                trace: Some(obs::reqtrace::begin()),
            }
        } else {
            TraceMeta::default()
        };
        engine
            .admit_traced(
                BatchRequest {
                    prompt,
                    sampler: sampler(64),
                    seed,
                },
                meta,
            )
            .expect("admit");
    }
    let start = obs::Clock::now();
    while engine.active() > 0 {
        engine.step(bm).expect("admission reserved the worst case");
    }
    start.elapsed_ns()
}

fn overhead_gate(model: &Gpt2Lm) {
    // Warm both paths once (allocator, code paths), then best-of-5
    // interleaved so slow-machine drift hits both arms equally.
    decode_run(model, false);
    decode_run(model, true);
    let mut untraced = u64::MAX;
    let mut traced = u64::MAX;
    for _ in 0..5 {
        untraced = untraced.min(decode_run(model, false));
        traced = traced.min(decode_run(model, true));
    }
    let ratio = traced as f64 / untraced as f64;
    eprintln!(
        "[trace_smoke] decode overhead: untraced {untraced}ns, traced {traced}ns \
         (ratio {ratio:.4})"
    );
    if ratio > 1.02 {
        eprintln!("[trace_smoke] FAIL — tracing-enabled decode more than 2% over baseline");
        std::process::exit(1);
    }
}

/// Bin-local batched backend over an *untrained* tiny GPT-2: recipe
/// quality is irrelevant here — the gate is about the trace plumbing,
/// so prompts are just ingredient bytes folded into the vocab.
struct SmokeBackend {
    model: Gpt2Lm,
    engine: BatchGenerator,
}

impl SmokeBackend {
    fn new() -> SmokeBackend {
        let model = Gpt2Lm::new(Gpt2Config::distil(VOCAB));
        let engine = {
            let bm = model.batch_model().expect("distil tier is batch-ready");
            BatchGenerator::new(bm, engine_cfg(4))
        };
        SmokeBackend { model, engine }
    }
}

impl StepBackend for SmokeBackend {
    fn model_name(&self) -> String {
        "trace-smoke-gpt2".into()
    }

    fn admit(&mut self, ingredients: &[String], seed: Option<u64>) -> AdmitOutcome {
        self.admit_traced(ingredients, seed, TraceMeta::default())
    }

    fn admit_traced(
        &mut self,
        ingredients: &[String],
        seed: Option<u64>,
        meta: TraceMeta,
    ) -> AdmitOutcome {
        let mut prompt: Vec<u32> = ingredients
            .iter()
            .flat_map(|s| s.bytes())
            .take(12)
            .map(|b| b as u32 % VOCAB as u32)
            .collect();
        if prompt.is_empty() {
            prompt = vec![2, 3];
        }
        match self.engine.admit_traced(
            BatchRequest {
                prompt,
                sampler: sampler(DECODE_TOKENS),
                seed: seed.unwrap_or(7),
            },
            meta,
        ) {
            Ok(id) => AdmitOutcome::Admitted(id),
            Err(ratatouille_models::batch::AdmitError::BatchFull) => AdmitOutcome::BatchFull,
            Err(ratatouille_models::batch::AdmitError::PoolExhausted) => {
                AdmitOutcome::PoolExhausted
            }
        }
    }

    fn step(&mut self) -> Vec<(u64, GeneratedRecipe)> {
        let Some(bm) = self.model.batch_model() else {
            return Vec::new();
        };
        let outcome = match self.engine.step(bm) {
            Ok(o) => o,
            Err(_) => return Vec::new(),
        };
        outcome
            .finished
            .into_iter()
            .map(|f| {
                (
                    f.id,
                    GeneratedRecipe {
                        title: format!("trace smoke {}", f.id),
                        ingredients: Vec::new(),
                        instructions: vec![format!("{} tokens decoded", f.tokens.len())],
                        well_formed: true,
                    },
                )
            })
            .collect()
    }

    fn active(&self) -> usize {
        self.engine.active()
    }

    fn free_slots(&self) -> usize {
        self.engine.max_batch().saturating_sub(self.engine.active())
    }
}

fn phase_names(timeline: &[Json]) -> Vec<String> {
    timeline
        .iter()
        .filter_map(|e| e.get("phase").and_then(Json::as_str).map(str::to_string))
        .collect()
}

fn http_gate() {
    let factory: StepBackendFactory =
        Arc::new(|| Box::new(SmokeBackend::new()) as Box<dyn StepBackend>);
    let server = ApiServer::start_batched("127.0.0.1:0", BatchServerConfig::default(), factory)
        .expect("server boot");
    let client = HttpClient::new(server.addr());

    // 1. Every response carries its trace id.
    let (status, headers, body) = client
        .post_json_with_headers(
            "/api/generate",
            r#"{"ingredients":["flour","water"],"seed":11}"#,
        )
        .expect("generate");
    assert_eq!(status, 200, "generate: {body}");
    let trace_id: u64 = headers
        .iter()
        .find(|(k, _)| k == "x-trace-id")
        .map(|(_, v)| v.parse().expect("numeric trace id"))
        .expect("response must carry X-Trace-Id");

    // 2. The completed-trace ring lists it.
    let (status, body) = client.get("/debug/requests").expect("debug requests");
    assert_eq!(status, 200, "/debug/requests: {body}");
    let listed = Json::parse(&body).expect("valid JSON");
    let ids: Vec<u64> = listed
        .get("requests")
        .and_then(Json::as_array)
        .expect("requests array")
        .iter()
        .filter_map(|r| r.get("id").and_then(Json::as_f64))
        .map(|id| id as u64)
        .collect();
    assert!(
        ids.contains(&trace_id),
        "trace {trace_id} missing from /debug/requests: {ids:?}"
    );

    // 3. The detail view reconstructs the full batched lifecycle.
    let (status, body) = client
        .get(&format!("/debug/requests/{trace_id}"))
        .expect("debug request detail");
    assert_eq!(status, 200, "/debug/requests/{trace_id}: {body}");
    let detail = Json::parse(&body).expect("valid JSON");
    let timeline = detail
        .get("timeline")
        .and_then(Json::as_array)
        .expect("timeline array");
    let names = phase_names(timeline);
    assert_eq!(names.first().map(String::as_str), Some("accept"), "{names:?}");
    assert_eq!(names.last().map(String::as_str), Some("respond"), "{names:?}");
    for required in ["enqueue", "admit", "prefill_chunk", "retire"] {
        assert!(
            names.iter().any(|n| n == required),
            "timeline missing `{required}`: {names:?}"
        );
    }
    let decode_steps = names.iter().filter(|n| n.as_str() == "decode_step").count();
    assert_eq!(
        decode_steps, DECODE_TOKENS,
        "one decode_step per generated token: {names:?}"
    );

    // 4. Unknown ids and malformed ids answer, not 500.
    let (status, _) = client.get("/debug/requests/999999999").expect("unknown id");
    assert_eq!(status, 404, "unknown trace id must 404");
    let (status, _) = client.get("/debug/requests/nope").expect("bad id");
    assert_eq!(status, 400, "non-numeric trace id must 400");

    // 5. The Chrome export is loadable trace-event JSON.
    let (status, body) = client.get("/debug/trace?fmt=chrome").expect("chrome trace");
    assert_eq!(status, 200, "/debug/trace: {body}");
    assert!(body.contains("\"ph\":\"X\""), "complete events expected: {body}");
    match Json::parse(&body) {
        Ok(Json::Array(events)) => assert!(!events.is_empty(), "no trace events"),
        other => panic!("chrome export must be a JSON array, got {other:?}"),
    }
    let (status, _) = client.get("/debug/trace?fmt=svg").expect("bad fmt");
    assert_eq!(status, 400, "unknown trace format must 400");

    println!(
        "[trace_smoke] OK — X-Trace-Id {trace_id}, {} phases on the timeline, \
         chrome export loadable",
        names.len()
    );
    server.stop();
}

fn main() {
    let model = Gpt2Lm::new(Gpt2Config::distil(VOCAB));
    overhead_gate(&model);
    http_gate();
}

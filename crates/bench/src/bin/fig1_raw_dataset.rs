//! **Fig. 1 reproduction** — "Dataset before preprocessing".
//!
//! Prints raw "as scraped" records, including the defect classes the
//! preprocessing pipeline must handle (duplicates, truncations, missing
//! sections, scraping noise), plus the recipe-size distribution the
//! paper's 2000-character / 2σ decisions are based on.
//!
//! ```text
//! cargo run -p ratatouille-bench --bin fig1_raw_dataset
//! ```

use ratatouille::recipedb::corpus::{Corpus, CorpusConfig, Defect};
use ratatouille::recipedb::stats::{length_stats, Histogram};

fn main() {
    let corpus = Corpus::generate(CorpusConfig {
        num_recipes: 1000,
        ..CorpusConfig::default()
    });

    println!("FIG. 1 — DATASET BEFORE PREPROCESSING (synthetic RecipeDB)\n");
    println!(
        "{} raw records generated from {} recipes\n",
        corpus.raw_records.len(),
        corpus.recipes.len()
    );

    // A clean record, as the paper's Fig. 1 shows.
    let clean = corpus
        .raw_records
        .iter()
        .find(|r| r.defect.is_none())
        .expect("corpus has clean records");
    println!("--- sample clean record -------------------------------------");
    println!("{}", clean.text);

    // One example of each defect class.
    for defect in [
        Defect::Duplicate,
        Defect::Truncated,
        Defect::MissingInstructions,
        Defect::MissingTitle,
        Defect::NoiseArtifacts,
    ] {
        if let Some(rec) = corpus.raw_records.iter().find(|r| r.defect == Some(defect)) {
            println!("--- sample defect: {defect:?} ---------------------------");
            let preview: String = rec.text.chars().take(300).collect();
            println!("{preview}");
            if rec.text.len() > 300 {
                println!("… [{} chars total]", rec.text.len());
            }
            println!();
        }
    }

    // Defect census.
    println!("--- defect census -------------------------------------------");
    for defect in [
        Defect::Duplicate,
        Defect::Truncated,
        Defect::MissingInstructions,
        Defect::MissingTitle,
        Defect::NoiseArtifacts,
    ] {
        let n = corpus
            .raw_records
            .iter()
            .filter(|r| r.defect == Some(defect))
            .count();
        println!("{defect:?}: {n}");
    }
    let clean_n = corpus.raw_records.iter().filter(|r| r.defect.is_none()).count();
    println!("Clean: {clean_n}\n");

    // Recipe-size distribution (the basis for the 2000-char cap and 2σ).
    let lens: Vec<usize> = corpus.raw_records.iter().map(|r| r.text.len()).collect();
    let texts: Vec<&str> = corpus.raw_records.iter().map(|r| r.text.as_str()).collect();
    let stats = length_stats(&texts);
    println!("--- raw recipe size distribution ----------------------------");
    println!(
        "n={} mean={:.0} std={:.0} min={} max={} within2σ={:.1}%",
        stats.n,
        stats.mean,
        stats.std,
        stats.min,
        stats.max,
        stats.within_2_sigma * 100.0
    );
    println!("{}", Histogram::build(&lens, 12).render(40));
}

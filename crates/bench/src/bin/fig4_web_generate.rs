//! **Fig. 4 reproduction** — "Website interface to choose ingredients and
//! generate recipe".
//!
//! Boots the full serving stack (worker pool of model replicas + HTTP
//! server + embedded frontend), then exercises it the way the browser
//! would: health check, model card, and a generate request, printing the
//! JSON round trip.
//!
//! ```text
//! RATATOUILLE_SCALE=quick cargo run --release -p ratatouille-bench --bin fig4_web_generate
//! ```

use ratatouille::models::registry::ModelKind;
use ratatouille::serving::api::ApiServer;
use ratatouille::serving::client::HttpClient;
use ratatouille::Pipeline;
use ratatouille_bench::{pipeline_config, scaled_train_config, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig4] training a serving model ({scale:?} scale)…");
    let pipeline = Pipeline::prepare(pipeline_config(scale));
    let kind = ModelKind::DistilGpt2; // the latency-friendly tier serves the demo
    let defaults = ratatouille::models::registry::ModelSpec::build(kind, &pipeline.train_texts)
        .default_train_config();
    let trained = pipeline.train(kind, Some(scaled_train_config(defaults, scale)));

    println!("FIG. 4 — WEB APPLICATION ROUND TRIP\n");
    let server = ApiServer::start("127.0.0.1:0", 2, 16, trained.backend_factory())
        .expect("server boot");
    println!("server listening on http://{}", server.addr());
    println!("worker replicas: 2 (the paper's \"replicate the docker\" axis)\n");

    let client = HttpClient::new(server.addr());

    let (status, body) = client.get("/api/health").expect("health");
    println!("GET /api/health        → {status}\n  {body}\n");

    let (status, body) = client.get("/api/models").expect("models");
    println!("GET /api/models        → {status}\n  {body}\n");

    let (status, body) = client.get("/").expect("frontend");
    println!(
        "GET /                  → {status} ({} bytes of embedded SPA)\n",
        body.len()
    );

    let req = r#"{"ingredients":["chicken","rice","soy sauce","ginger"]}"#;
    println!("POST /api/generate\n  ← {req}");
    let (status, body) = client.post_json("/api/generate", req).expect("generate");
    println!("  → {status}\n  {body}\n");

    // and an invalid request, to show the API's error contract
    let (status, body) = client.post_json("/api/generate", "{}").expect("bad req");
    println!("POST /api/generate (missing ingredients) → {status}\n  {body}");

    server.stop();
}

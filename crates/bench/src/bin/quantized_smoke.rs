//! **Quantized-generation smoke check** — builds a GPT-2 tier, quantizes
//! it to int8, and verifies the contract the dtype-generic tensor core
//! promises: finite logits, run-to-run determinism, bit-identical decode
//! across thread counts, and per-model/per-dtype labeled decode metrics
//! in the Prometheus exposition.
//!
//! Run by `scripts/ci.sh`; also useful standalone:
//!
//! ```text
//! cargo run --release -p ratatouille-bench --bin quantized_smoke
//! ```

use ratatouille_util::rng::{SeedableRng, StdRng};
use ratatouille::models::gpt2::{Gpt2Config, Gpt2Lm};
use ratatouille::models::sample::{generate, SamplerConfig};
use ratatouille::models::InferenceModel;
use ratatouille_tensor::par;

const VOCAB: usize = 384;

fn decode(model: &dyn InferenceModel, seed: u64) -> Vec<u32> {
    let cfg = SamplerConfig {
        max_tokens: 40,
        stop_token: None,
        ..SamplerConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    generate(model, &[2, 3, 4], &cfg, &mut rng)
}

fn main() {
    let model = Gpt2Lm::new(Gpt2Config::distil(VOCAB));
    let quant = model.quantize();
    eprintln!(
        "[quantized_smoke] {} -> {} ({})",
        model.name(),
        quant.name(),
        quant.dtype()
    );

    // 1. Both dtypes decode a full budget of in-vocab, finite tokens.
    let f32_tokens = decode(&model, 7);
    let int8_tokens = decode(&quant, 7);
    assert_eq!(f32_tokens.len(), 40, "f32 decode stopped early");
    assert_eq!(int8_tokens.len(), 40, "int8 decode stopped early");
    for &t in f32_tokens.iter().chain(&int8_tokens) {
        assert!((t as usize) < VOCAB, "token {t} outside vocab");
    }

    // 2. Same seed, same tokens — quantized decode is deterministic.
    assert_eq!(int8_tokens, decode(&quant, 7), "int8 decode not reproducible");

    // 3. Thread-count invariance: int8 accumulates in integers, so the
    //    token stream must be bit-identical at any pool width.
    for threads in [1usize, 4, 7] {
        par::set_num_threads(threads);
        let got = decode(&quant, 7);
        assert_eq!(
            got, int8_tokens,
            "int8 decode diverged at {threads} threads"
        );
    }
    par::set_num_threads(0);

    // 4. Labeled decode metrics: one exposition carries both dtypes of
    //    the same model family, with bounded label values.
    let exposition = obs::metrics::render_prometheus();
    for probe in [
        "decode_token_ns_sum{model=\"distilgpt2\",dtype=\"f32\"}",
        "decode_token_ns_sum{model=\"distilgpt2-int8\",dtype=\"int8\"}",
        "decode_token_ns_bucket{model=\"distilgpt2-int8\",dtype=\"int8\",le=",
        "decode_tokens_total{model=\"distilgpt2\",dtype=\"f32\"}",
        "decode_tokens_total{model=\"distilgpt2-int8\",dtype=\"int8\"}",
    ] {
        assert!(
            exposition.contains(probe),
            "exposition missing `{probe}`\n---- /metrics ----\n{exposition}"
        );
    }

    println!(
        "[quantized_smoke] OK — int8 decode finite, deterministic, thread-invariant; labeled metrics present"
    );
}

//! **Ablation: decoding strategy** — greedy vs temperature vs top-k vs
//! top-p, trading BLEU against diversity/novelty.
//!
//! Not a paper table, but the design choice behind the web app's decoder
//! (DESIGN.md calls it out): the paper's goal is *novel* recipes, and
//! greedy decoding maximizes BLEU while collapsing diversity.
//!
//! ```text
//! RATATOUILLE_SCALE=quick cargo run --release -p ratatouille-bench --bin ablation_sampling
//! ```

use ratatouille::models::registry::ModelKind;
use ratatouille::models::sample::SamplerConfig;
use ratatouille::Pipeline;
use ratatouille_bench::{pipeline_config, scaled_train_config, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ablation_sampling] training GPT-2 medium ({scale:?})…");
    let pipeline = Pipeline::prepare(pipeline_config(scale));
    let kind = ModelKind::Gpt2Medium;
    let defaults = ratatouille::models::registry::ModelSpec::build(kind, &pipeline.train_texts)
        .default_train_config();
    let mut trained = pipeline.train(kind, Some(scaled_train_config(defaults, scale)));

    let strategies: Vec<(&str, SamplerConfig)> = vec![
        (
            "greedy",
            SamplerConfig {
                greedy: true,
                ..SamplerConfig::default()
            },
        ),
        (
            "temp=0.7",
            SamplerConfig {
                greedy: false,
                temperature: 0.7,
                top_k: 0,
                top_p: 1.0,
                ..SamplerConfig::default()
            },
        ),
        (
            "top-k=40",
            SamplerConfig {
                greedy: false,
                temperature: 1.0,
                top_k: 40,
                top_p: 1.0,
                ..SamplerConfig::default()
            },
        ),
        (
            "top-p=0.95",
            SamplerConfig {
                greedy: false,
                temperature: 0.9,
                top_k: 0,
                top_p: 0.95,
                ..SamplerConfig::default()
            },
        ),
    ];

    println!("ABLATION — DECODING STRATEGY (GPT-2 medium)\n");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "strategy", "BLEU", "distinct2", "selfBLEU", "valid%", "copy%"
    );
    println!("{}", "-".repeat(62));
    let n_eval = scale.eval_recipes();
    for (name, sampler) in strategies {
        trained.sampler = sampler;
        let report = trained.evaluate(&pipeline.test_recipes, n_eval, 11);
        println!(
            "{:<12} {:>8.3} {:>10.3} {:>10.3} {:>8.1} {:>8.1}",
            name,
            report.bleu,
            report.distinct_2,
            report.self_bleu,
            report.structure_valid_rate * 100.0,
            report.copy_rate * 100.0
        );
    }
    println!("\nexpected shape: greedy highest BLEU & self-BLEU (least diverse); top-p best balance");
}

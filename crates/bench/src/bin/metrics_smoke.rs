//! **Observability smoke check** — boots the full serving stack, drives
//! every instrumented layer (pooled tensor kernels, training, decode,
//! HTTP), scrapes `GET /metrics`, and fails loudly if any required metric
//! family is missing from the Prometheus exposition.
//!
//! Run by `scripts/ci.sh`; also useful standalone:
//!
//! ```text
//! cargo run --release -p ratatouille-bench --bin metrics_smoke
//! ```

use ratatouille::models::batch::{BatchEngineConfig, BatchGenerator, BatchRequest};
use ratatouille::models::gpt2::{Gpt2Config, Gpt2Lm};
use ratatouille::models::registry::ModelKind;
use ratatouille::models::sample::SamplerConfig;
use ratatouille::models::train::TrainConfig;
use ratatouille::models::InferenceModel;
use ratatouille::serving::api::ApiServer;
use ratatouille::serving::client::HttpClient;
use ratatouille::{Pipeline, PipelineConfig};
use ratatouille_tensor::{ops, par, Tensor};

/// Metric families the ISSUE acceptance criteria require on `/metrics`.
const REQUIRED: &[&str] = &[
    "http_requests_total",
    "http_request_ns",
    "decode_token_ns",
    "serving_queue_wait_ns",
    "tensor_pool_queue_wait_ns",
    "tensor_matmul_gflops",
    "train_tokens_per_sec",
    "generate_latency_ns",
    "attend_ns",
    "decode_batch_size",
    "decode_kv_hits_total",
];

/// Labeled series the per-model batch metrics must expose (inline-label
/// twins of the aggregates; the model name comes from the closed
/// registry, so cardinality stays bounded). Histograms render their
/// label set on the `_count`/`_sum`/`_bucket` lines, so probe `_count`.
const REQUIRED_LABELED: &[&str] = &[
    "decode_batch_size_count{model=\"distilgpt2\"}",
    "decode_kv_hits_total{model=\"distilgpt2\"}",
    "decode_kv_misses_total{model=\"distilgpt2\"}",
    "train_tokens_per_sec{model=\"word-level-lstm\"}",
    "generate_latency_ns_count{model=\"word-level-lstm\"}",
];

fn main() {
    // 1. Force a pooled matmul so the tensor worker-pool histograms have
    //    samples even on small serving models (which decode inline).
    par::set_num_threads(2);
    let n = 128;
    let a = Tensor::from_vec(vec![0.5f32; n * n], &[n, n]).expect("square tensor");
    let c = ops::matmul(&a, &a);
    assert_eq!(c.dims(), &[n, n]);
    par::set_num_threads(0);

    // 1b. One tiny batched decode so the paged-attention histogram and
    //     the per-model labeled batch metrics have samples.
    eprintln!("[metrics_smoke] batched decode for attend_ns + labeled batch metrics…");
    let gpt2 = Gpt2Lm::new(Gpt2Config::distil(64));
    let bm = gpt2.batch_model().expect("distil tier is batch-ready");
    let mut engine = BatchGenerator::new(
        bm,
        BatchEngineConfig {
            block_tokens: 4,
            num_blocks: 64,
            max_batch: 2,
            prefix_cap: 2,
        },
    );
    for seed in 0..2u64 {
        let id = engine
            .admit(BatchRequest {
                prompt: vec![2, 3, 4, 5, 6],
                sampler: SamplerConfig {
                    max_tokens: 4,
                    greedy: true,
                    stop_token: None,
                    ..SamplerConfig::default()
                },
                seed,
            })
            .expect("admit");
        engine.run_to_completion(bm, id).expect("decode");
    }
    assert!(
        obs::static_histogram!("attend_ns").count() > 0,
        "batched decode did not populate attend_ns"
    );

    // 2. Train a tiny model (populates train_* metrics) and serve it.
    eprintln!("[metrics_smoke] training a tiny serving model…");
    let mut cfg = PipelineConfig::small();
    cfg.corpus.num_recipes = 80;
    let pipeline = Pipeline::prepare(cfg);
    let trained = pipeline.train(
        ModelKind::WordLstm,
        Some(TrainConfig {
            steps: 3,
            batch_size: 2,
            ..Default::default()
        }),
    );

    let server =
        ApiServer::start("127.0.0.1:0", 2, 8, trained.backend_factory()).expect("server boot");
    let client = HttpClient::new(server.addr());

    // 3. Drive the request path: liveness, one generation (populates the
    //    decode + serving-queue histograms), then scrape.
    let (status, body) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200, "healthz: {body}");
    assert_eq!(body, "ok", "healthz body");

    let (status, body) = client
        .post_json("/api/generate", r#"{"ingredients":["flour","water"]}"#)
        .expect("generate");
    assert_eq!(status, 200, "generate: {body}");

    let (status, metrics) = client.get("/metrics").expect("metrics scrape");
    assert_eq!(status, 200, "metrics status");

    let missing: Vec<&str> = REQUIRED
        .iter()
        .copied()
        .filter(|name| !metrics.contains(name))
        .collect();
    if !missing.is_empty() {
        eprintln!("---- /metrics exposition ----\n{metrics}\n----");
        eprintln!("[metrics_smoke] FAIL — missing metric families: {missing:?}");
        std::process::exit(1);
    }

    let missing_labeled: Vec<&str> = REQUIRED_LABELED
        .iter()
        .copied()
        .filter(|series| !metrics.contains(series))
        .collect();
    if !missing_labeled.is_empty() {
        eprintln!("---- /metrics exposition ----\n{metrics}\n----");
        eprintln!("[metrics_smoke] FAIL — missing labeled series: {missing_labeled:?}");
        std::process::exit(1);
    }

    // Histogram exposition shape: cumulative buckets + sum + count.
    for probe in ["http_request_ns_bucket{le=", "http_request_ns_sum", "http_request_ns_count"] {
        assert!(metrics.contains(probe), "exposition missing `{probe}`");
    }

    let families = metrics.matches("# TYPE ").count();
    println!("[metrics_smoke] OK — {families} metric families exposed, all required present");
    server.stop();
}

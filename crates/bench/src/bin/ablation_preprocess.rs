//! **Ablation: preprocessing stages** — what each §III stage contributes.
//!
//! Runs the pipeline with stages disabled one at a time and reports the
//! effect on the training stream (count, length stats, duplicate and
//! defect leakage) — the justification for the paper's "removing
//! incomplete and redundant recipes, fixing the length … 2σ" recipe.
//!
//! ```text
//! cargo run --release -p ratatouille-bench --bin ablation_preprocess
//! ```

use ratatouille::recipedb::corpus::{Corpus, CorpusConfig};
use ratatouille::recipedb::preprocess::{PreprocessConfig, Preprocessor};
use ratatouille::recipedb::stats::length_stats;
use std::collections::HashSet;

fn main() {
    // A deliberately dirty corpus, so each stage has visible work to do.
    let corpus = Corpus::generate(CorpusConfig {
        num_recipes: 800,
        duplicate_rate: 0.15,
        truncated_rate: 0.08,
        incomplete_rate: 0.10,
        noise_rate: 0.12,
        ..CorpusConfig::default()
    });

    let variants: Vec<(&str, PreprocessConfig)> = vec![
        ("full pipeline", PreprocessConfig::default()),
        (
            "no dedup",
            PreprocessConfig {
                dedup: false,
                ..PreprocessConfig::default()
            },
        ),
        (
            "no 2σ filter",
            PreprocessConfig {
                sigma_band: f32::INFINITY,
                ..PreprocessConfig::default()
            },
        ),
        (
            "no merge",
            PreprocessConfig {
                merge_short: false,
                ..PreprocessConfig::default()
            },
        ),
        (
            "no length cap",
            PreprocessConfig {
                max_chars: usize::MAX,
                ..PreprocessConfig::default()
            },
        ),
        (
            "lenient validation",
            PreprocessConfig {
                min_ingredients: 0,
                min_instructions: 0,
                ..PreprocessConfig::default()
            },
        ),
    ];

    println!("ABLATION — PREPROCESSING STAGES (§III)\n");
    println!(
        "{:<20} {:>8} {:>10} {:>10} {:>8} {:>10}",
        "variant", "texts", "mean len", "max len", "dups", "2σ-kept%"
    );
    println!("{}", "-".repeat(72));
    for (name, cfg) in variants {
        let (texts, report) = Preprocessor::new(cfg).run(&corpus.raw_records);
        let stats = length_stats(&texts);
        // residual duplicates in the output stream
        let mut seen = HashSet::new();
        let dups = texts.iter().filter(|t| !seen.insert(t.as_str())).count();
        println!(
            "{:<20} {:>8} {:>10.0} {:>10} {:>8} {:>9.1}%",
            name,
            report.output_texts,
            stats.mean,
            stats.max,
            dups,
            stats.within_2_sigma * 100.0
        );
    }
    println!("\nexpected shape: disabling dedup leaks duplicate training records (memorization");
    println!("fuel); disabling the 2σ filter admits the long tail; the cap and merge stages are");
    println!("insurance for corpora longer/shorter than this synthetic one (the paper's real");
    println!("RecipeDB recipes reach 2000+ characters, where the cap bites).");
}

//! **Ablation: fraction/number special tokens** — the paper's stated
//! differentiator over RecipeGPT/RecipeNLG is "special tokens to account
//! the fractions and numbers". This ablation measures what they buy:
//! tokenization efficiency over quantities and exact fraction fidelity
//! through an encode→decode round trip.
//!
//! ```text
//! cargo run --release -p ratatouille-bench --bin ablation_tokens
//! ```

use ratatouille::recipedb::corpus::{Corpus, CorpusConfig};
use ratatouille::tokenizers::{special, BpeTokenizer, Tokenizer};

fn main() {
    let corpus = Corpus::generate(CorpusConfig {
        num_recipes: 400,
        ..CorpusConfig::default()
    });
    let with_tokens: Vec<String> = corpus
        .recipes
        .iter()
        .map(|r| r.to_tagged_string()) // fractions → atomic tokens
        .collect();
    let without_tokens: Vec<String> = with_tokens
        .iter()
        .map(|t| special::decode_fractions(t)) // back to "1/2" surface text
        .collect();

    let tok_with = BpeTokenizer::train(&with_tokens, 384);
    let tok_without = BpeTokenizer::train(&without_tokens, 384);

    println!("ABLATION — FRACTION/NUMBER SPECIAL TOKENS\n");

    // 1. tokens spent per recipe
    let avg = |tok: &BpeTokenizer, texts: &[String]| -> f64 {
        texts.iter().take(100).map(|t| tok.encode(t).len() as f64).sum::<f64>() / 100.0
    };
    let with_len = avg(&tok_with, &with_tokens);
    let without_len = avg(&tok_without, &without_tokens);
    println!("avg tokens per recipe  with fraction tokens: {with_len:.1}");
    println!("avg tokens per recipe  without:              {without_len:.1}");
    println!(
        "savings: {:.1}%\n",
        (1.0 - with_len / without_len) * 100.0
    );

    // 2. fraction fidelity: does "1/2" survive encode→decode atomically?
    let probe = "<INGR_START> 1/2 cup butter <NEXT_INGR> 1/16 teaspoon saffron <INGR_END>";
    let tagged_probe = special::encode_fractions(probe);
    let roundtrip_with = tok_with.decode(&tok_with.encode(&tagged_probe));
    let ok_with = roundtrip_with.contains("<FRAC_1_2>") && roundtrip_with.contains("<FRAC_1_16>");
    println!("fraction atomicity with special tokens:  {}", if ok_with { "preserved (single id per fraction)" } else { "broken" });

    let ids_without = tok_without.encode("1/2");
    println!(
        "without special tokens, \"1/2\" costs {} BPE tokens (can split mid-fraction under sampling)",
        ids_without.len()
    );

    // 3. quantity-bearing vocabulary pressure
    let frac_ids: Vec<_> = special::fraction_tokens()
        .iter()
        .filter_map(|t| tok_with.special_id(t))
        .collect();
    println!(
        "\nreserved fraction ids: {} (always atomic, never split by BPE merges)",
        frac_ids.len()
    );
    println!("\nexpected shape: the win is ATOMICITY, not compression — a well-trained BPE");
    println!("learns multi-byte chunks for frequent fractions anyway (so tokens/recipe is a");
    println!("wash), but only reserved ids guarantee a sampled quantity can never be cut");
    println!("mid-fraction — the property the paper credits for generating correct");
    println!("quantities and units.");
}

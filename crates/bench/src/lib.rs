//! The reproduction harness: shared machinery for the per-table /
//! per-figure binaries in `src/bin/` and the Criterion microbenchmarks in
//! `benches/`.
//!
//! Every experiment is scale-switchable so the full table regenerates on
//! a laptop: `RATATOUILLE_SCALE=quick` (CI-sized), `standard` (default)
//! or `full` (the EXPERIMENTS.md numbers).

use ratatouille::models::registry::{ModelKind, TABLE1_MODELS};
use ratatouille::models::train::TrainConfig;
use ratatouille::{Pipeline, PipelineConfig, TrainedModel};
use ratatouille_eval::report::EvalReport;

/// Experiment scale, from the `RATATOUILLE_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test sized: minutes of CPU total.
    Quick,
    /// Default: tens of minutes of CPU total.
    Standard,
    /// The EXPERIMENTS.md configuration.
    Full,
}

impl Scale {
    /// Read `RATATOUILLE_SCALE` (`quick` / `standard` / `full`; default
    /// `standard`).
    pub fn from_env() -> Scale {
        match std::env::var("RATATOUILLE_SCALE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "quick" => Scale::Quick,
            "full" => Scale::Full,
            _ => Scale::Standard,
        }
    }

    /// Corpus size at this scale.
    pub fn num_recipes(&self) -> usize {
        match self {
            Scale::Quick => 200,
            Scale::Standard => 600,
            Scale::Full => 1500,
        }
    }

    /// Training-step multiplier at this scale.
    pub fn step_factor(&self) -> f64 {
        match self {
            Scale::Quick => 0.15,
            Scale::Standard => 0.5,
            Scale::Full => 1.0,
        }
    }

    /// Held-out recipes evaluated per model.
    pub fn eval_recipes(&self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Standard => 20,
            Scale::Full => 40,
        }
    }
}

/// The pipeline configuration for a scale.
pub fn pipeline_config(scale: Scale) -> PipelineConfig {
    let mut cfg = PipelineConfig::reproduction();
    cfg.corpus.num_recipes = scale.num_recipes();
    cfg
}

/// Scale a row's default training budget.
pub fn scaled_train_config(trained_default: TrainConfig, scale: Scale) -> TrainConfig {
    TrainConfig {
        steps: ((trained_default.steps as f64 * scale.step_factor()) as usize).max(20),
        warmup: ((trained_default.warmup as f64 * scale.step_factor()) as usize).max(5),
        ..trained_default
    }
}

/// One reproduced row of Table I.
pub struct Table1Row {
    /// Which model.
    pub kind: ModelKind,
    /// Our measured metrics.
    pub report: EvalReport,
    /// The BLEU the paper reports.
    pub paper_bleu: f64,
    /// Training wall-clock (seconds).
    pub train_secs: f64,
}

/// Train and evaluate one Table-I row on a prepared pipeline.
pub fn run_row(pipeline: &Pipeline, kind: ModelKind, scale: Scale) -> (Table1Row, TrainedModel) {
    let spec_defaults =
        ratatouille::models::registry::ModelSpec::build(kind, &pipeline.train_texts)
            .default_train_config();
    let cfg = scaled_train_config(spec_defaults, scale);
    eprintln!(
        "[table1] training {} ({} steps, batch {})…",
        kind.display_name(),
        cfg.steps,
        cfg.batch_size
    );
    let trained = pipeline.train(kind, Some(cfg));
    let train_secs = trained.stats.wall_secs;
    eprintln!(
        "[table1] {} trained in {:.1}s (final loss {:.3}); evaluating…",
        kind.display_name(),
        train_secs,
        trained.stats.final_loss(10)
    );
    let report = trained.evaluate(&pipeline.test_recipes, scale.eval_recipes(), 42);
    (
        Table1Row {
            kind,
            report,
            paper_bleu: kind.paper_bleu(),
            train_secs,
        },
        trained,
    )
}

/// Reproduce the whole of Table I.
pub fn run_table1(scale: Scale) -> Vec<Table1Row> {
    let pipeline = Pipeline::prepare(pipeline_config(scale));
    eprintln!(
        "[table1] corpus: {} training texts, {} test recipes",
        pipeline.train_texts.len(),
        pipeline.test_recipes.len()
    );
    TABLE1_MODELS
        .iter()
        .map(|&kind| run_row(&pipeline, kind, scale).0)
        .collect()
}

/// Render the reproduced table next to the paper's numbers.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>11} {:>10} {:>8} {:>8} {:>8} {:>7} {:>7} {:>9}\n",
        "Model", "paper BLEU", "ours BLEU", "ROUGE-L", "PPL", "cover%", "valid%", "copy%", "lat(ms)"
    ));
    out.push_str(&"-".repeat(94));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>11.3} {:>10.3} {:>8.3} {:>8.1} {:>8.1} {:>7.1} {:>7.1} {:>9.1}\n",
            r.kind.display_name(),
            r.paper_bleu,
            r.report.bleu,
            r.report.rouge_l,
            r.report.perplexity,
            r.report.ingredient_coverage * 100.0,
            r.report.structure_valid_rate * 100.0,
            r.report.copy_rate * 100.0,
            r.report.gen_latency_ms,
        ));
    }
    out
}

/// Does the reproduced table preserve the paper's shape?
/// (monotone increase, transformer tier on top)
pub fn table1_shape_holds(rows: &[Table1Row]) -> bool {
    if rows.len() != 4 {
        return false;
    }
    let b: Vec<f64> = rows.iter().map(|r| r.report.bleu).collect();
    // the headline claims: GPT-2 medium best, LSTM baselines worst tier
    let medium_best = b[3] >= b[0] && b[3] >= b[1] && b[3] >= b[2];
    let transformer_beats_char = b[2] > b[0];
    medium_best && transformer_beats_char
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_standard() {
        // NB: tests run in parallel; avoid mutating the env here.
        assert_eq!(Scale::Quick.num_recipes() < Scale::Full.num_recipes(), true);
    }

    #[test]
    fn scaled_config_respects_floor() {
        let base = TrainConfig {
            steps: 10,
            warmup: 2,
            ..Default::default()
        };
        let scaled = scaled_train_config(base, Scale::Quick);
        assert!(scaled.steps >= 20);
        assert!(scaled.warmup >= 5);
    }

    #[test]
    fn render_has_four_rows_header_and_divider() {
        let rows: Vec<Table1Row> = TABLE1_MODELS
            .iter()
            .map(|&kind| Table1Row {
                kind,
                report: EvalReport::new(kind.display_name()),
                paper_bleu: kind.paper_bleu(),
                train_secs: 0.0,
            })
            .collect();
        let s = render_table1(&rows);
        assert_eq!(s.lines().count(), 6);
        assert!(s.contains("GPT-2 medium"));
        assert!(s.contains("0.806"));
    }

    #[test]
    fn shape_check_logic() {
        let mk = |bleus: [f64; 4]| -> Vec<Table1Row> {
            TABLE1_MODELS
                .iter()
                .zip(bleus)
                .map(|(&kind, b)| {
                    let mut report = EvalReport::new("x");
                    report.bleu = b;
                    Table1Row {
                        kind,
                        report,
                        paper_bleu: kind.paper_bleu(),
                        train_secs: 0.0,
                    }
                })
                .collect()
        };
        assert!(table1_shape_holds(&mk([0.3, 0.4, 0.45, 0.8])));
        assert!(!table1_shape_holds(&mk([0.8, 0.4, 0.45, 0.3])));
        assert!(!table1_shape_holds(&mk([0.5, 0.4, 0.3, 0.45])));
    }
}

//! Throughput of the §III preprocessing pipeline (Fig. 1 → Fig. 2):
//! corpus generation, the full cleaning pass, and the raw-record parser.

use ratatouille_util::bench::{Bench, BenchmarkId, Throughput};
use ratatouille_util::{bench_group, bench_main};
use ratatouille::recipedb::corpus::{Corpus, CorpusConfig};
use ratatouille::recipedb::grammar::RecipeGenerator;
use ratatouille::recipedb::preprocess::{parse_raw, PreprocessConfig, Preprocessor};

fn bench_generation(c: &mut Bench) {
    let mut group = c.benchmark_group("corpus_generation");
    group.sample_size(10);
    for &n in &[100usize, 500] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("recipes", n), |b| {
            b.iter(|| {
                let mut g = RecipeGenerator::new(1);
                (0..n).map(|_| g.generate()).count()
            })
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Bench) {
    let corpus = Corpus::generate(CorpusConfig {
        num_recipes: 500,
        ..CorpusConfig::default()
    });
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);
    group.throughput(Throughput::Elements(corpus.raw_records.len() as u64));
    group.bench_function("full_pipeline_500", |b| {
        b.iter(|| Preprocessor::new(PreprocessConfig::default()).run(&corpus.raw_records))
    });
    let raw = corpus.raw_records[0].text.clone();
    group.throughput(Throughput::Bytes(raw.len() as u64));
    group.bench_function("parse_one_record", |b| {
        b.iter(|| parse_raw(std::hint::black_box(&raw)))
    });
    group.finish();
}

bench_group!(
    benches, bench_generation, bench_pipeline);
bench_main!(benches);

//! **Serving throughput vs replica count** — the paper's scaling story
//! ("if load increase then developer only need to replicate the docker"),
//! measured on the real worker-pool + HTTP path with a small LSTM replica
//! per worker.

use std::sync::Arc;

use ratatouille_util::bench::{Bench, BenchmarkId, Throughput};
use ratatouille_util::{bench_group, bench_main};
use ratatouille::backend::ModelBackend;
use ratatouille::models::registry::ModelKind;
use ratatouille::models::sample::SamplerConfig;
use ratatouille::recipedb::corpus::{Corpus, CorpusConfig};
use ratatouille::serving::api::{ApiServer, RecipeBackend, RecipeBackendFactory};
use ratatouille::serving::client::HttpClient;
use ratatouille::tokenizers::Tokenizer;
use ratatouille_tensor::serialize::TensorMap;

/// A factory of small, fast LSTM replicas (12-token budget keeps each
/// request ~1 ms so the pool/HTTP overhead is what's measured).
fn fast_factory() -> RecipeBackendFactory {
    let corpus = Corpus::generate(CorpusConfig {
        num_recipes: 60,
        ..CorpusConfig::default()
    });
    let texts: Vec<String> = corpus.recipes.iter().map(|r| r.to_tagged_string()).collect();
    let spec = ratatouille::models::registry::ModelSpec::build(ModelKind::WordLstm, &texts);
    let weights = ratatouille::backend::weights_map(spec.model.as_ref());
    let tokenizer: Arc<dyn Tokenizer> = Arc::from(spec.tokenizer.clone_box());
    let weights: Arc<TensorMap> = Arc::new(weights);
    Arc::new(move |wi| {
        let mut backend = ModelBackend::from_weights(
            ModelKind::WordLstm,
            tokenizer.as_ref(),
            &weights,
            SamplerConfig {
                max_tokens: 12,
                ..SamplerConfig::default()
            },
            wi as u64,
        );
        backend.set_max_tokens(12); // ~1 ms/request: measure pool+HTTP overhead
        Box::new(backend) as Box<dyn RecipeBackend>
    })
}

fn bench_workers(c: &mut Bench) {
    let factory = fast_factory();
    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10);
    const BATCH: usize = 16;
    group.throughput(Throughput::Elements(BATCH as u64));
    for workers in [1usize, 2, 4] {
        let server = ApiServer::start("127.0.0.1:0", workers, 64, Arc::clone(&factory))
            .expect("server boot");
        let addr = server.addr();
        group.bench_function(BenchmarkId::new("workers", workers), |b| {
            b.iter(|| {
                // BATCH concurrent requests, measuring completion of all
                let handles: Vec<_> = (0..BATCH)
                    .map(|_| {
                        std::thread::spawn(move || {
                            let client = HttpClient::new(addr);
                            let (status, _body) = client
                                .post_json(
                                    "/api/generate",
                                    r#"{"ingredients":["flour","water"]}"#,
                                )
                                .expect("request");
                            assert_eq!(status, 200);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            })
        });
        server.stop();
    }
    group.finish();
}

bench_group!(
    benches, bench_workers);
bench_main!(benches);

//! **T-latency** — per-recipe generation latency across the four models.
//!
//! Reproduces the paper's §II claim that its pipeline "generate[s] a new
//! recipe within lesser time" than RecipeGPT/RecipeNLG: the measured
//! quantities are per-token decode cost (KV-cached transformer vs
//! recurrent LSTM) and tokens-per-recipe (char-level needs ~5× more
//! decode steps than BPE for the same recipe).
//!
//! Latency is weight-independent, so models are benchmarked at init
//! (training does not change op counts).

use ratatouille_util::bench::{Bench, BenchmarkId};
use ratatouille_util::{bench_group, bench_main};
use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::SeedableRng;
use ratatouille::models::registry::{ModelSpec, TABLE1_MODELS};
use ratatouille::models::sample::{generate, SamplerConfig};
use ratatouille::pipeline::prompt_for;
use ratatouille::recipedb::corpus::{Corpus, CorpusConfig};

fn bench_generation(c: &mut Bench) {
    let corpus = Corpus::generate(CorpusConfig {
        num_recipes: 120,
        ..CorpusConfig::default()
    });
    let texts: Vec<String> = corpus.recipes.iter().map(|r| r.to_tagged_string()).collect();
    let ingredients: Vec<String> = vec!["chicken".into(), "garlic".into(), "rice".into()];

    let mut group = c.benchmark_group("generation_latency");
    group.sample_size(10);
    for &kind in TABLE1_MODELS {
        let spec = ModelSpec::build(kind, &texts);
        let prompt = spec.tokenizer.encode(&prompt_for(&ingredients));
        // fixed decode budgets mirror realistic recipe lengths per
        // tokenization (char needs many more steps)
        let budget = match kind {
            ratatouille::models::registry::ModelKind::CharLstm => 400,
            _ => 120,
        };
        let cfg = SamplerConfig {
            max_tokens: budget,
            stop_token: None, // force the full budget: worst-case latency
            ..SamplerConfig::default()
        };
        group.bench_function(BenchmarkId::new("per_recipe", kind.display_name()), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                generate(spec.model.as_ref(), &prompt, &cfg, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_per_token(c: &mut Bench) {
    let corpus = Corpus::generate(CorpusConfig {
        num_recipes: 120,
        ..CorpusConfig::default()
    });
    let texts: Vec<String> = corpus.recipes.iter().map(|r| r.to_tagged_string()).collect();

    let mut group = c.benchmark_group("per_token_decode");
    group.sample_size(20);
    for &kind in TABLE1_MODELS {
        let spec = ModelSpec::build(kind, &texts);
        group.bench_function(BenchmarkId::new("token", kind.display_name()), |b| {
            b.iter_batched(
                || spec.model.start_stream(),
                |mut stream| {
                    for t in 0..32u32 {
                        std::hint::black_box(stream.push(2 + (t % 4)));
                    }
                },
                ratatouille_util::bench::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

bench_group!(
    benches, bench_generation, bench_per_token);
bench_main!(benches);

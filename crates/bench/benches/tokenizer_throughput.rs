//! Tokenizer encode/decode throughput across the three tokenizations —
//! part of the preprocessing-cost story ("taking more processing time in
//! generating a recipe" is the paper's critique of prior pipelines).

use ratatouille_util::bench::{Bench, BenchmarkId, Throughput};
use ratatouille_util::{bench_group, bench_main};
use ratatouille::recipedb::corpus::{Corpus, CorpusConfig};
use ratatouille::tokenizers::{BpeTokenizer, CharTokenizer, Tokenizer, WordTokenizer};

fn bench_tokenizers(c: &mut Bench) {
    let corpus = Corpus::generate(CorpusConfig {
        num_recipes: 200,
        ..CorpusConfig::default()
    });
    let texts: Vec<String> = corpus.recipes.iter().map(|r| r.to_tagged_string()).collect();
    let sample = texts[0].clone();

    let toks: Vec<(&str, Box<dyn Tokenizer>)> = vec![
        ("char", Box::new(CharTokenizer::train(&texts))),
        ("word", Box::new(WordTokenizer::train(&texts, 2))),
        ("bpe", Box::new(BpeTokenizer::train(&texts, 384))),
    ];

    let mut group = c.benchmark_group("tokenize");
    group.throughput(Throughput::Bytes(sample.len() as u64));
    for (name, tok) in &toks {
        group.bench_function(BenchmarkId::new("encode", name), |b| {
            b.iter(|| tok.encode(std::hint::black_box(&sample)))
        });
        let ids = tok.encode(&sample);
        group.bench_function(BenchmarkId::new("decode", name), |b| {
            b.iter(|| tok.decode(std::hint::black_box(&ids)))
        });
    }
    group.finish();

    // training cost (the one-time corpus pass)
    let mut group = c.benchmark_group("tokenizer_train");
    group.sample_size(10);
    group.bench_function("bpe_384_merges", |b| {
        b.iter(|| BpeTokenizer::train(std::hint::black_box(&texts), 384))
    });
    group.bench_function("word_vocab", |b| {
        b.iter(|| WordTokenizer::train(std::hint::black_box(&texts), 2))
    });
    group.finish();
}

bench_group!(
    benches, bench_tokenizers);
bench_main!(benches);

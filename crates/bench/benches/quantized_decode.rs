//! **T-quant** — f32 vs int8 weight-quantized decode throughput.
//!
//! Measures the tentpole of the dtype-generic tensor core: greedy decode
//! with the f32 `Gpt2Lm` stream (f32 KV-cache, `matmul_transb`) against
//! the int8 `QuantGpt2Lm` stream (f16 KV-cache, `qmatmul_transb` with the
//! AVX2 maddubs kernel), at both Table-I transformer tiers. Decode cost
//! is weight-independent, so models are benchmarked at init.
//!
//! The raw int8-vs-f32 GEMM gap is isolated in a separate group over the
//! medium tier's hottest shape (the `[4D, D]` fused QKV projection).

use ratatouille_util::bench::{Bench, BenchmarkId, Throughput};
use ratatouille_util::{bench_group, bench_main};
use ratatouille::models::gpt2::{Gpt2Config, Gpt2Lm};
use ratatouille::models::InferenceModel;
use ratatouille_tensor::{ops, Tensor};

const VOCAB: usize = 384;
const TOKENS: u64 = 48;

fn decode_tokens(model: &dyn InferenceModel, n: u64) -> u32 {
    let mut stream = model.start_stream();
    let mut tok = 2u32;
    for _ in 0..n {
        let logits = stream.push(tok);
        let data = logits.data();
        let mut best = 0usize;
        for (i, &v) in data.iter().enumerate() {
            if v > data[best] {
                best = i;
            }
        }
        tok = (best % VOCAB) as u32;
    }
    tok
}

fn bench_decode(c: &mut Bench) {
    let tiers: [(&str, Gpt2Config); 2] = [
        ("distil", Gpt2Config::distil(VOCAB)),
        ("medium", Gpt2Config::medium(VOCAB)),
    ];
    let mut group = c.benchmark_group("quantized_decode");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TOKENS));
    for (tier, cfg) in tiers {
        let model = Gpt2Lm::new(cfg);
        let quant = model.quantize();
        group.bench_function(BenchmarkId::new("f32", tier), |b| {
            b.iter(|| decode_tokens(&model, TOKENS))
        });
        group.bench_function(BenchmarkId::new("int8", tier), |b| {
            b.iter(|| decode_tokens(&quant, TOKENS))
        });
    }
    group.finish();
}

fn bench_gemm(c: &mut Bench) {
    // medium tier's fused QKV shape: x [1, 128] @ W_qkv [384, 128]ᵀ
    let (d, n) = (128usize, 3 * 128usize);
    let w = Tensor::from_vec(
        (0..n * d).map(|i| ((i * 31 % 255) as f32 - 127.0) * 0.01).collect(),
        &[n, d],
    )
    .unwrap();
    let x = Tensor::from_vec((0..d).map(|i| (i as f32 * 0.07).sin()).collect(), &[1, d]).unwrap();
    let q = ops::quantize_per_row(&w);

    let mut group = c.benchmark_group("quantized_gemm_qkv");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("f32_matmul_transb", |b| {
        b.iter(|| ops::matmul_transb(&x, &w))
    });
    group.bench_function("int8_qmatmul_transb", |b| {
        b.iter(|| ops::qmatmul_transb(&x, &q))
    });
    group.finish();
}

bench_group!(benches, bench_decode, bench_gemm);
bench_main!(benches);

//! **T-paged** — the parallel paged-attention sweep vs the PR 7 serial
//! per-sequence loop, at the long contexts where attention dominates.
//!
//! Two views per model shape (distil `d=64/h=2` and medium `d=128/h=4`):
//!
//! * `attend_phase`: attention-phase time per decode step, isolated via
//!   the `attend_ns` histogram delta (`Timer::iter_custom`), so the
//!   serial/sweep comparison excludes the GEMMs around it. `serial` is
//!   the row-at-a-time baseline; `sweepN` is the pool sweep at N worker
//!   threads — `sweep1` shows the block-contiguous-run win alone, and
//!   higher counts add cross-sequence parallelism on multi-core hosts.
//! * `long_context`: wall time for the same full decode (prefill via the
//!   shared-prefix cache, untimed), the end-to-end view.
//!
//! Streams are asserted byte-identical between the serial reference and
//! every sweep configuration before anything is timed — a bench run that
//! broke determinism must fail loudly, not publish numbers.

use ratatouille_util::bench::{Bench, BenchmarkId, Throughput};
use ratatouille_util::{bench_group, bench_main};
use ratatouille::models::batch::{
    BatchEngineConfig, BatchGenerator, BatchRequest, BatchStepModel,
};
use ratatouille::models::gpt2::{Gpt2Config, Gpt2Lm};
use ratatouille::models::sample::SamplerConfig;
use ratatouille::models::transformer::{set_attention_mode, AttentionMode};
use ratatouille::models::InferenceModel;
use ratatouille::tensor::par;

const VOCAB: usize = 384;
/// Prompt length: 12 full 16-token KV blocks — long enough that the
/// attention phase, not prefill GEMMs, dominates each decode step.
const PROMPT: usize = 192;
/// Generated tokens per sequence per iteration.
const TOKENS: usize = 24;
const BATCH: usize = 8;

fn engine_cfg() -> BatchEngineConfig {
    BatchEngineConfig {
        block_tokens: 16,
        num_blocks: 512,
        max_batch: BATCH,
        prefix_cap: 8,
    }
}

fn request(seed: u64) -> BatchRequest {
    BatchRequest {
        // One shared pantry prompt: admissions after the first adopt the
        // cached prefix blocks, so the untimed prefill stays short.
        prompt: (0..PROMPT as u32).map(|t| (2 + t) % VOCAB as u32).collect(),
        sampler: SamplerConfig {
            max_tokens: TOKENS,
            greedy: true,
            stop_token: None,
            ..SamplerConfig::default()
        },
        seed,
    }
}

/// Admit a full batch, decode it to completion, and return the
/// concatenated streams plus the `attend_ns` spent in the decode phase
/// (the final `TOKENS` steps — every sequence shares one prompt and one
/// admission step, so the batch prefills in lockstep and those steps all
/// run attention at full context `T >= PROMPT`).
fn run_round(bm: &dyn BatchStepModel, engine: &mut BatchGenerator) -> (Vec<u32>, u64) {
    let attend_ns = obs::metrics::histogram("attend_ns");
    let ids: Vec<u64> = (0..BATCH)
        .map(|i| {
            engine
                .admit(request(i as u64))
                .expect("pool sized for the batch")
        })
        .collect();
    let mut streams: Vec<Option<Vec<u32>>> = vec![None; ids.len()];
    let mut marks = vec![attend_ns.sum()];
    while streams.iter().any(Option::is_none) {
        let out = engine.step(bm).expect("reserved at admission");
        marks.push(attend_ns.sum());
        for f in out.finished {
            let slot = ids.iter().position(|&id| id == f.id).expect("known id");
            streams[slot] = Some(f.tokens);
        }
    }
    let decode_ns = marks[marks.len() - 1] - marks[marks.len().saturating_sub(TOKENS + 1)];
    let flat = streams.into_iter().flat_map(Option::unwrap).collect();
    (flat, decode_ns)
}

struct Shape {
    label: &'static str,
    config: Gpt2Config,
}

fn shapes() -> Vec<Shape> {
    vec![
        Shape {
            label: "distil",
            config: Gpt2Config::distil(VOCAB),
        },
        Shape {
            label: "medium",
            config: Gpt2Config::medium(VOCAB),
        },
    ]
}

/// (mode label, attention mode, worker threads)
const MODES: &[(&str, AttentionMode, usize)] = &[
    ("serial", AttentionMode::Serial, 1),
    ("sweep1", AttentionMode::Sweep, 1),
    ("sweep2", AttentionMode::Sweep, 2),
    ("sweep4", AttentionMode::Sweep, 4),
];

fn bench_paged(c: &mut Bench) {
    for shape in shapes() {
        let model = Gpt2Lm::new(shape.config);
        let bm = model.batch_model().expect("gpt2 tiers are batch-ready");

        // Determinism gate first: every mode reproduces the serial
        // reference streams byte for byte.
        set_attention_mode(AttentionMode::Serial);
        par::set_num_threads(1);
        let mut engine = BatchGenerator::new(bm, engine_cfg());
        let (reference, _) = run_round(bm, &mut engine);
        assert_eq!(reference.len(), BATCH * TOKENS, "a sequence stopped early");
        for &(label, mode, threads) in MODES {
            set_attention_mode(mode);
            par::set_num_threads(threads);
            let (streams, _) = run_round(bm, &mut engine);
            assert_eq!(
                streams, reference,
                "{label} diverged from the serial reference ({})",
                shape.label
            );
        }

        let mut group = c.benchmark_group(format!("attend_phase_{}", shape.label));
        group.sample_size(10);
        for &(label, mode, threads) in MODES {
            set_attention_mode(mode);
            par::set_num_threads(threads);
            let mut engine = BatchGenerator::new(bm, engine_cfg());
            run_round(bm, &mut engine); // warm the prefix cache, untimed
            group.throughput(Throughput::Elements((BATCH * TOKENS) as u64));
            group.bench_function(BenchmarkId::new(label, BATCH), |b| {
                b.iter_custom(|iters| {
                    (0..iters).map(|_| run_round(bm, &mut engine).1).sum()
                })
            });
        }
        group.finish();

        let mut group = c.benchmark_group(format!("long_context_{}", shape.label));
        group.sample_size(10);
        for &(label, mode, threads) in MODES {
            set_attention_mode(mode);
            par::set_num_threads(threads);
            let mut engine = BatchGenerator::new(bm, engine_cfg());
            run_round(bm, &mut engine); // warm, untimed
            group.throughput(Throughput::Elements((BATCH * TOKENS) as u64));
            group.bench_function(BenchmarkId::new(label, BATCH), |b| {
                b.iter(|| run_round(bm, &mut engine).0.len())
            });
        }
        group.finish();
    }

    // Restore process defaults for anything running after this harness.
    set_attention_mode(AttentionMode::Sweep);
    par::set_num_threads(0);
}

bench_group!(benches, bench_paged);
bench_main!(benches);

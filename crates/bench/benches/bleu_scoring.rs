//! Cost of the evaluation metrics themselves (BLEU dominates the Table-I
//! harness's post-training time).

use ratatouille_util::bench::{Bench, Throughput};
use ratatouille_util::{bench_group, bench_main};
use ratatouille::recipedb::corpus::{Corpus, CorpusConfig};
use ratatouille_eval::bleu::{corpus_bleu, sentence_bleu};
use ratatouille_eval::diversity::{distinct_n, self_bleu};

fn bench_bleu(c: &mut Bench) {
    let corpus = Corpus::generate(CorpusConfig {
        num_recipes: 80,
        ..CorpusConfig::default()
    });
    let texts: Vec<String> = corpus.recipes.iter().map(|r| r.to_tagged_string()).collect();

    c.bench_function("sentence_bleu_recipe_pair", |b| {
        b.iter(|| sentence_bleu(std::hint::black_box(&texts[0]), &[texts[1].as_str()]))
    });

    let pairs: Vec<(&str, Vec<&str>)> = texts
        .windows(2)
        .map(|w| (w[0].as_str(), vec![w[1].as_str()]))
        .collect();
    let mut group = c.benchmark_group("corpus_metrics");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.bench_function("corpus_bleu_79_pairs", |b| {
        b.iter(|| corpus_bleu(std::hint::black_box(&pairs)))
    });
    let subset: Vec<&String> = texts.iter().take(20).collect();
    group.bench_function("self_bleu_20", |b| {
        b.iter(|| self_bleu(std::hint::black_box(&subset)))
    });
    group.bench_function("distinct2_80", |b| {
        b.iter(|| distinct_n(std::hint::black_box(&texts), 2))
    });
    group.finish();
}

bench_group!(
    benches, bench_bleu);
bench_main!(benches);

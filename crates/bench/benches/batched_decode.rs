//! **T-batch** — continuous-batching decode throughput.
//!
//! Measures the tentpole of the batching PR: aggregate decode throughput
//! through [`BatchGenerator`] at batch sizes 1 / 4 / 8, with all
//! sequences sharing one pantry prompt ("shared": the prefix cache
//! serves the prompt blocks, so a request prefills only its tail) versus
//! every sequence prefilling its own prompt ("disjoint": prefix sharing
//! disabled — what per-request serving does today). Throughput counts
//! generated tokens, so per-token p99 falls out of the JSON directly.
//!
//! The prompt:decode shape (48:24) mirrors real pantry requests — the
//! prompt lists the ingredients, the decode writes the recipe body — and
//! that ratio is exactly why shared-prefix batching pays: the disjoint
//! solo baseline spends 2/3 of its steps re-prefilling the prompt.
//!
//! Decode cost is weight-independent — models are benchmarked at init,
//! greedy, with a fixed token budget per sequence.

use ratatouille_util::bench::{Bench, BenchmarkId, Throughput};
use ratatouille_util::{bench_group, bench_main};
use ratatouille::models::batch::{
    BatchEngineConfig, BatchGenerator, BatchRequest, BatchStepModel,
};
use ratatouille::models::gpt2::{Gpt2Config, Gpt2Lm};
use ratatouille::models::sample::SamplerConfig;
use ratatouille::models::InferenceModel;

const VOCAB: usize = 384;
/// Generated tokens per sequence per iteration.
const TOKENS: usize = 24;
/// Prompt length — a realistic tokenized pantry (11 full 4-token KV
/// blocks of shareable prefix).
const PROMPT: usize = 48;

fn engine_cfg(shared: bool) -> BatchEngineConfig {
    BatchEngineConfig {
        block_tokens: 4,
        num_blocks: 256,
        max_batch: 8,
        prefix_cap: if shared { 8 } else { 0 },
    }
}

fn sampler() -> SamplerConfig {
    SamplerConfig {
        max_tokens: TOKENS,
        greedy: true,
        stop_token: None,
        ..SamplerConfig::default()
    }
}

fn prompt_for(slot: usize, shared: bool) -> Vec<u32> {
    // Shared mode: one prompt for the whole batch. Disjoint: each slot
    // gets its own, so every sequence pays its full prefill.
    let base = if shared { 0 } else { slot as u32 * 31 };
    (0..PROMPT).map(|t| (2 + base + t as u32) % VOCAB as u32).collect()
}

/// Decode `batch` sequences to completion; returns a token checksum so
/// the work cannot be optimized away.
fn run_batch(
    bm: &dyn BatchStepModel,
    engine: &mut BatchGenerator,
    batch: usize,
    shared: bool,
) -> u64 {
    let mut ids = Vec::with_capacity(batch);
    for slot in 0..batch {
        let id = engine
            .admit(BatchRequest {
                prompt: prompt_for(slot, shared),
                sampler: sampler(),
                seed: slot as u64,
            })
            .expect("pool sized for the batch");
        ids.push(id);
    }
    let mut sum = 0u64;
    let mut done = 0;
    while done < ids.len() {
        let out = engine.step(bm).expect("blocks reserved at admission");
        for f in out.finished {
            done += 1;
            sum += f.tokens.iter().map(|&t| t as u64).sum::<u64>();
        }
    }
    sum
}

fn bench_batched(c: &mut Bench) {
    let model = Gpt2Lm::new(Gpt2Config::distil(VOCAB));
    let bm = model.batch_model().expect("distil tier is batch-ready");
    let mut group = c.benchmark_group("batched_decode");
    group.sample_size(10);
    for shared in [true, false] {
        let mode = if shared { "shared" } else { "disjoint" };
        for batch in [1usize, 4, 8] {
            // One engine per configuration: the prefix cache warms on the
            // first iteration and serves hits thereafter (the steady
            // state a server sees).
            let mut engine = BatchGenerator::new(bm, engine_cfg(shared));
            group.throughput(Throughput::Elements((batch * TOKENS) as u64));
            group.bench_function(BenchmarkId::new(mode, batch), |b| {
                b.iter(|| run_batch(bm, &mut engine, batch, shared))
            });
        }
    }
    group.finish();
}

bench_group!(benches, bench_batched);
bench_main!(benches);

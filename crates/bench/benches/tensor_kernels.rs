//! Microbenchmarks of the tensor substrate's hot kernels — the operations
//! that dominate training wall-clock (and therefore the CPU-vs-parallel
//! experiment): matmul, softmax, layer norm, and a full autograd step.

use ratatouille_util::bench::{Bench, BenchmarkId, Throughput};
use ratatouille_util::{bench_group, bench_main};
use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::SeedableRng;
use ratatouille_tensor::{init, ops, par, Var};

fn bench_matmul(c: &mut Bench) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let a = init::randn(&mut rng, &[n, n], 1.0);
        let b = init::randn(&mut rng, &[n, n], 1.0);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_function(BenchmarkId::new("square", n), |bch| {
            bch.iter(|| ops::matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    group.finish();
}

fn bench_matmul_threads(c: &mut Bench) {
    let mut rng = StdRng::seed_from_u64(0);
    let n = 256;
    let a = init::randn(&mut rng, &[n, n], 1.0);
    let b = init::randn(&mut rng, &[n, n], 1.0);
    let mut group = c.benchmark_group("matmul_threads");
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("256x256", threads), |bch| {
            par::set_num_threads(threads);
            bch.iter(|| ops::matmul(std::hint::black_box(&a), std::hint::black_box(&b)));
            par::set_num_threads(0);
        });
    }
    group.finish();
}

fn bench_softmax_layernorm(c: &mut Bench) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = init::randn(&mut rng, &[64, 512], 1.0);
    let g = init::randn(&mut rng, &[512], 0.1);
    let beta = init::randn(&mut rng, &[512], 0.1);
    let scores = init::randn(&mut rng, &[8, 64, 64], 1.0);
    c.bench_function("softmax_last_64x512", |b| {
        b.iter(|| ops::softmax_last(std::hint::black_box(&x)))
    });
    c.bench_function("causal_masked_softmax_8x64x64", |b| {
        b.iter(|| ops::causal_masked_softmax(std::hint::black_box(&scores)))
    });
    c.bench_function("layer_norm_64x512", |b| {
        b.iter(|| ops::layer_norm(std::hint::black_box(&x), &g, &beta, 1e-5))
    });
}

fn bench_decode_gemv(c: &mut Bench) {
    // The per-token unembedding: [1, D] @ [V, D]^T — the single largest
    // matmul in the incremental decode path.
    let mut rng = StdRng::seed_from_u64(3);
    let x = init::randn(&mut rng, &[1, 128], 1.0);
    let w = init::randn(&mut rng, &[4096, 128], 0.02);
    c.bench_function("matmul_transb_decode_1x128x4096", |b| {
        b.iter(|| ops::matmul_transb(std::hint::black_box(&x), std::hint::black_box(&w)))
    });
}

fn bench_pool_launch(c: &mut Bench) {
    // Fixed cost of one parallel region on the persistent pool: dominates
    // small kernels, so it bounds how fine-grained parallelism can get.
    let mut group = c.benchmark_group("pool_launch");
    for &threads in &[2usize, 4] {
        group.bench_function(BenchmarkId::new("noop", threads), |bch| {
            par::set_num_threads(threads);
            bch.iter(|| {
                par::parallel_chunks(threads, 1, |s, e, _| {
                    std::hint::black_box(e - s);
                })
            });
            par::set_num_threads(0);
        });
    }
    group.finish();
}

fn bench_autograd_step(c: &mut Bench) {
    // forward+backward through a 2-layer MLP: the autograd tape overhead
    let mut rng = StdRng::seed_from_u64(2);
    let w1 = Var::leaf(init::xavier_uniform(&mut rng, 128, 256));
    let w2 = Var::leaf(init::xavier_uniform(&mut rng, 256, 128));
    let x = Var::constant(init::randn(&mut rng, &[32, 128], 1.0));
    c.bench_function("mlp_forward_backward_32x128", |b| {
        b.iter(|| {
            w1.zero_grad();
            w2.zero_grad();
            let loss = x.matmul(&w1).gelu().matmul(&w2).mean();
            loss.backward();
            std::hint::black_box(w1.grad());
        })
    });
}

bench_group!(
    benches,
    bench_matmul,
    bench_matmul_threads,
    bench_softmax_layernorm,
    bench_decode_gemv,
    bench_pool_launch,
    bench_autograd_step
);
bench_main!(benches);

//! `xlint` — the in-repo workspace linter.
//!
//! Enforces the unsafe-soundness and determinism contract from DESIGN.md
//! (§4b, §7) with zero external dependencies: a small Rust lexer
//! ([`lexer`]), a recursive-descent item/event parser ([`parser`]), a
//! workspace module resolver and cross-crate call graph ([`callgraph`]),
//! a data-driven rule catalogue ([`rules`]), and an engine (this module)
//! that walks every `.rs` source in the workspace and produces
//! `file:line: [rule-id] message` diagnostics.
//!
//! Three entry points:
//! * [`run_workspace`] — lint the real tree (the `xlint` binary and the
//!   `tests/xlint_gate.rs` workspace test);
//! * [`lint_sources`] — lint a set of in-memory files under virtual
//!   paths, with the full cross-file analysis (call-graph fixture tests);
//! * [`lint_source`] — one-file convenience wrapper (the per-file
//!   fixture tests; the path decides which crate-scoped rules apply).
//!
//! ## Suppressions
//!
//! A diagnostic on line `L` is suppressed by a comment on line `L` or
//! `L-1` of the form:
//!
//! ```text
//! // xlint: allow(rule-id): why this is sound/deterministic here
//! ```
//!
//! The interprocedural panic analysis adds a second, *edge-scoped* form:
//!
//! ```text
//! // xlint: infallible(callee): why this call cannot panic
//! callee(args);
//! ```
//!
//! which removes the `caller → callee` edge from the reachability
//! traversal — suppressing the whole subtree behind a call that is
//! proven infallible, instead of annotating every sink below it.
//!
//! Suppressions are themselves linted (rule `allow-needs-justification`):
//! the rule id must exist, the reason must be non-empty, and the
//! suppression must actually match a diagnostic (or cut a traversed
//! edge) — stale ones fail the build.

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;

use lexer::TokKind;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id from the catalogue.
    pub rule: &'static str,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

impl Diagnostic {
    /// Escape a string for a JSON output field.
    fn json_escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Render as a JSON object (for `--emit=json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"msg\":\"{}\"}}",
            Self::json_escape(&self.path),
            self.line,
            Self::json_escape(self.rule),
            Self::json_escape(&self.msg)
        )
    }
}

/// Render a diagnostic list as a JSON array (stable field order, one
/// object per line — CI annotators consume this).
pub fn to_json_report(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&d.to_json());
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// What an `// xlint: …` comment suppresses.
#[derive(Debug, PartialEq)]
enum SuppKind {
    /// `allow(rule-id): reason` — silences a diagnostic on this/next line.
    Allow,
    /// `infallible(callee): reason` — cuts a call-graph edge on this/next
    /// line from the panic-reachability traversal.
    Infallible,
}

/// An inline `// xlint: …` suppression.
#[derive(Debug)]
struct Suppression {
    line: u32,
    kind: SuppKind,
    /// Rule id (`Allow`) or callee name (`Infallible`).
    target: String,
    reason: String,
    used: std::cell::Cell<bool>,
}

/// Everything a rule needs to know about one source file.
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The `crates/<name>` the file belongs to, if any.
    pub crate_name: Option<String>,
    /// Lexed token stream (comments included).
    pub toks: Vec<lexer::Tok>,
    /// Parsed item tree and per-fn events.
    pub ast: parser::FileAst,
    /// `test_lines[l]` (1-based) — line is inside `#[cfg(test)]` /
    /// `#[test]` item bodies, or the whole file is test/bench/example code.
    test_lines: Vec<bool>,
    /// Last non-comment punctuation on each 1-based line, if the line's
    /// final code token is punctuation (used for statement boundaries).
    last_code_punct: Vec<Option<char>>,
    /// `has_code[l]` — line has at least one non-comment token.
    has_code: Vec<bool>,
    suppressions: Vec<Suppression>,
}

impl FileCtx {
    /// Build the per-file context for `src` under the (virtual) `path`.
    pub fn new(path: &str, src: &str) -> FileCtx {
        let toks = lexer::lex(src);
        let ast = parser::parse(&toks);
        let nlines = src.lines().count() + 2;
        let mut has_code = vec![false; nlines + 1];
        let mut last_code_punct: Vec<Option<char>> = vec![None; nlines + 1];
        for t in &toks {
            if t.is_comment() {
                continue;
            }
            let l = t.line as usize;
            if l < has_code.len() {
                has_code[l] = true;
                last_code_punct[l] = match t.kind {
                    TokKind::Punct(c) => Some(c),
                    _ => None,
                };
            }
        }
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .map(|s| s.to_string());
        let mut ctx = FileCtx {
            path: path.to_string(),
            crate_name,
            toks,
            ast,
            test_lines: vec![false; nlines + 1],
            last_code_punct,
            has_code,
            suppressions: Vec::new(),
        };
        ctx.mark_test_regions(path);
        ctx.collect_suppressions();
        ctx
    }

    /// True when `line` is test-only code (exempt from rules that only
    /// guard production behaviour).
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get(line as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Comment texts that start on or span `line`.
    pub fn comments_on(&self, line: u32) -> impl Iterator<Item = &str> {
        self.toks.iter().filter_map(move |t| match &t.kind {
            TokKind::Comment { text, .. } if t.line <= line && t.end_line >= line => {
                Some(text.as_str())
            }
            _ => None,
        })
    }

    /// Last non-comment punctuation ending `line`, if any (statement
    /// boundary detection for comment-scan windows).
    pub fn line_end_punct(&self, line: u32) -> Option<char> {
        self.last_code_punct.get(line as usize).copied().flatten()
    }

    /// Whether `line` holds any non-comment token.
    pub fn line_has_code(&self, line: u32) -> bool {
        self.has_code.get(line as usize).copied().unwrap_or(false)
    }

    /// Whether `line` holds only comments/whitespace.
    fn is_comment_only_line(&self, line: u32) -> bool {
        let l = line as usize;
        l < self.has_code.len() && !self.has_code[l] && self.comments_on(line).next().is_some()
    }

    /// Is the call to `callee` on `line` covered by an
    /// `// xlint: infallible(callee): reason` on the same or previous
    /// line? Marks the suppression used (the traversal consults this
    /// exactly when it would otherwise walk the edge).
    pub(crate) fn edge_suppressed(&self, line: u32, callee: &str) -> bool {
        for s in &self.suppressions {
            if s.kind == SuppKind::Infallible
                && s.target == callee
                && !s.reason.is_empty()
                && (s.line == line || s.line + 1 == line)
            {
                s.used.set(true);
                return true;
            }
        }
        false
    }

    /// Mark lines inside `#[cfg(test)]` / `#[test]` item bodies, plus
    /// whole files living under `tests/`, `benches/` or `examples/`.
    fn mark_test_regions(&mut self, path: &str) {
        let is_test_path = path
            .split('/')
            .any(|seg| matches!(seg, "tests" | "benches" | "examples"));
        if is_test_path {
            for v in self.test_lines.iter_mut() {
                *v = true;
            }
            return;
        }
        // Find `#[cfg(test)]` or `#[test]` attributes; mark the brace span
        // of the item that follows.
        let toks = &self.toks;
        let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        let mut marks: Vec<(u32, u32)> = Vec::new();
        let mut ci = 0usize;
        while ci + 1 < code.len() {
            let i = code[ci];
            if !(toks[i].is_punct('#') && toks[code[ci + 1]].is_punct('[')) {
                ci += 1;
                continue;
            }
            // scan the attribute body to its closing `]`
            let mut depth = 0usize;
            let mut cj = ci + 1;
            let mut attr_idents: Vec<&str> = Vec::new();
            while cj < code.len() {
                let t = &toks[code[cj]];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if let Some(id) = t.ident() {
                    attr_idents.push(id);
                }
                cj += 1;
            }
            let is_test_attr = attr_idents.first() == Some(&"test")
                || (attr_idents.first() == Some(&"cfg") && attr_idents.contains(&"test"));
            if !is_test_attr {
                ci = cj + 1;
                continue;
            }
            // find the item's opening brace (stop at `;` — e.g.
            // `#[cfg(test)] mod tests;` has no body here)
            let mut ck = cj + 1;
            let mut open = None;
            while ck < code.len() {
                let t = &toks[code[ck]];
                if t.is_punct('{') {
                    open = Some(ck);
                    break;
                }
                if t.is_punct(';') {
                    break;
                }
                ck += 1;
            }
            let Some(open) = open else {
                ci = cj + 1;
                continue;
            };
            // match braces to the item's closing brace
            let mut bdepth = 0usize;
            let mut cl = open;
            while cl < code.len() {
                let t = &toks[code[cl]];
                if t.is_punct('{') {
                    bdepth += 1;
                } else if t.is_punct('}') {
                    bdepth -= 1;
                    if bdepth == 0 {
                        break;
                    }
                }
                cl += 1;
            }
            let start_line = toks[i].line;
            let end_line = toks[code[cl.min(code.len() - 1)]].end_line;
            marks.push((start_line, end_line));
            ci = cj + 1;
        }
        for (s, e) in marks {
            for l in s..=e {
                if (l as usize) < self.test_lines.len() {
                    self.test_lines[l as usize] = true;
                }
            }
        }
    }

    /// Parse `// xlint: allow(rule): reason` and
    /// `// xlint: infallible(callee): reason` comments.
    fn collect_suppressions(&mut self) {
        let mut found = Vec::new();
        for t in &self.toks {
            let TokKind::Comment { text, .. } = &t.kind else {
                continue;
            };
            let Some(rest) = text.strip_prefix("xlint:") else {
                continue;
            };
            let rest = rest.trim();
            let (kind, body) = if let Some(r) = rest.strip_prefix("allow(") {
                (SuppKind::Allow, Some(r))
            } else if let Some(r) = rest.strip_prefix("infallible(") {
                (SuppKind::Infallible, Some(r))
            } else {
                // `xlint:` comment that isn't a known form — treat as a
                // malformed suppression so it gets reported
                (SuppKind::Allow, None)
            };
            let (target, reason) = match body.and_then(|r| r.split_once(')')) {
                Some((id, tail)) => {
                    let reason = tail.trim().strip_prefix(':').unwrap_or("").trim();
                    (id.trim().to_string(), reason.to_string())
                }
                None => (String::new(), String::new()),
            };
            found.push(Suppression {
                line: t.line,
                kind,
                target,
                reason,
                used: std::cell::Cell::new(false),
            });
        }
        self.suppressions = found;
    }
}

/// Lint a single source file under a virtual workspace-relative path.
/// The path determines crate-scoped rule applicability exactly as it
/// would on disk. Cross-file rules see a one-file workspace.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    lint_sources(&[(path.to_string(), src.to_string())])
}

/// Lint a set of sources as one workspace: per-file rules, then the
/// call-graph analysis across all of them, then suppression accounting.
pub fn lint_sources(files: &[(String, String)]) -> Vec<Diagnostic> {
    let ctxs: Vec<FileCtx> = files.iter().map(|(p, s)| FileCtx::new(p, s)).collect();
    let mut diags: Vec<Diagnostic> = Vec::new();

    // Per-file rules.
    for ctx in &ctxs {
        for rule in rules::catalogue() {
            if !(rule.applies)(ctx) {
                continue;
            }
            let mut found = Vec::new();
            (rule.check)(ctx, &mut found);
            for d in found {
                if rule.skip_tests && ctx.is_test_line(d.line) {
                    continue;
                }
                diags.push(d);
            }
        }
    }

    // Workspace rules over the cross-crate call graph. This is also
    // where `infallible()` suppressions get their used-marks.
    let graph = callgraph::build(&ctxs);
    callgraph::check_transitive_panics(&graph, &mut diags);

    // A serving-crate sink is reported by both the token rule and the
    // reachability rule; keep the local rule's diagnostic (it names the
    // concrete fix) and drop the transitive duplicate at the same site.
    let local_panics: std::collections::BTreeSet<(String, u32)> = diags
        .iter()
        .filter(|d| d.rule == "no-panic-in-request-path")
        .map(|d| (d.path.clone(), d.line))
        .collect();
    diags.retain(|d| {
        d.rule != callgraph::TRANSITIVE_PANIC
            || !local_panics.contains(&(d.path.clone(), d.line))
    });

    // Apply allow() suppressions: a matching comment on the same or the
    // previous line silences the diagnostic and marks itself used.
    let ctx_of = |path: &str| ctxs.iter().find(|c| c.path == path);
    diags.retain(|d| {
        let Some(ctx) = ctx_of(&d.path) else {
            return true;
        };
        for s in &ctx.suppressions {
            if s.kind == SuppKind::Allow
                && s.target == d.rule
                && !s.reason.is_empty()
                && (s.line == d.line || s.line + 1 == d.line)
            {
                s.used.set(true);
                return false;
            }
        }
        true
    });

    // Lint the suppressions themselves.
    let known: Vec<&str> = rules::all_rule_ids();
    for ctx in &ctxs {
        let path = &ctx.path;
        for s in &ctx.suppressions {
            let push = |diags: &mut Vec<Diagnostic>, msg: String| {
                diags.push(Diagnostic {
                    path: path.clone(),
                    line: s.line,
                    rule: rules::ALLOW_NEEDS_JUSTIFICATION,
                    msg,
                });
            };
            if s.target.is_empty() {
                push(
                    &mut diags,
                    "malformed xlint comment; expected `xlint: allow(rule-id): reason` or \
                     `xlint: infallible(callee): reason`"
                        .to_string(),
                );
                continue;
            }
            match s.kind {
                SuppKind::Allow => {
                    if !known.contains(&s.target.as_str()) {
                        push(&mut diags, format!("suppression names unknown rule `{}`", s.target));
                    } else if s.reason.is_empty() {
                        push(
                            &mut diags,
                            format!(
                                "suppression of `{}` needs a justification: `xlint: allow({}): reason`",
                                s.target, s.target
                            ),
                        );
                    } else if !s.used.get() {
                        push(
                            &mut diags,
                            format!(
                                "stale suppression: no `{}` diagnostic on this or the next line",
                                s.target
                            ),
                        );
                    }
                }
                SuppKind::Infallible => {
                    if s.reason.is_empty() {
                        push(
                            &mut diags,
                            format!(
                                "infallibility claim for `{}` needs a justification: \
                                 `xlint: infallible({}): reason`",
                                s.target, s.target
                            ),
                        );
                    } else if !s.used.get() {
                        push(
                            &mut diags,
                            format!(
                                "stale infallible() suppression: the panic-path traversal never \
                                 walked a `{}` call edge from this or the next line",
                                s.target
                            ),
                        );
                    }
                }
            }
        }
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.rule, &a.msg).cmp(&(&b.path, b.line, b.rule, &b.msg)));
    diags
}

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Paths (workspace-relative prefixes) excluded from linting: the fixture
/// corpus exists to *contain* violations.
const SKIP_PREFIXES: &[&str] = &["crates/xlint/tests/fixtures"];

/// Find the workspace root by walking up from `start` until a directory
/// containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(|p| p.to_path_buf());
    }
    None
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    children.sort();
    for p in children {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            let rel = rel_path(&p, root);
            if SKIP_PREFIXES.iter().any(|s| rel.starts_with(s)) {
                continue;
            }
            walk(&p, root, out);
        } else if name.ends_with(".rs") {
            let rel = rel_path(&p, root);
            if SKIP_PREFIXES.iter().any(|s| rel.starts_with(s)) {
                continue;
            }
            out.push(p);
        }
    }
}

fn rel_path(p: &Path, root: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint every `.rs` file in the workspace rooted at `root`. Diagnostics
/// come back sorted by (path, line).
pub fn run_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut files = Vec::new();
    walk(root, root, &mut files);
    let mut sources: Vec<(String, String)> = Vec::new();
    for f in files {
        let Ok(src) = std::fs::read_to_string(&f) else {
            continue;
        };
        sources.push((rel_path(&f, root), src));
    }
    lint_sources(&sources)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_detection() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let ctx = FileCtx::new("crates/tensor/src/x.rs", src);
        assert!(!ctx.is_test_line(1));
        assert!(ctx.is_test_line(2));
        assert!(ctx.is_test_line(4));
        assert!(ctx.is_test_line(5));
    }

    #[test]
    fn test_paths_fully_exempt() {
        let ctx = FileCtx::new("crates/tensor/tests/proptests.rs", "fn x() {}\n");
        assert!(ctx.is_test_line(1));
    }

    #[test]
    fn suppression_silences_and_is_marked_used() {
        let src = "// xlint: allow(obs-only-timing): bootstrap shim predating the obs clock\n\
                   fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let diags = lint_source("crates/models/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn suppression_without_reason_is_reported() {
        let src = "// xlint: allow(obs-only-timing)\n\
                   fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let diags = lint_source("crates/models/src/x.rs", src);
        // the original diagnostic survives AND the suppression is flagged
        assert!(diags.iter().any(|d| d.rule == "obs-only-timing"));
        assert!(diags.iter().any(|d| d.rule == "allow-needs-justification"));
    }

    #[test]
    fn stale_suppression_is_reported() {
        let src = "// xlint: allow(forbidden-nondeterminism): no longer needed here\n\
                   fn f() {}\n";
        let diags = lint_source("crates/models/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "allow-needs-justification");
        assert!(diags[0].msg.contains("stale"));
    }

    #[test]
    fn unknown_rule_suppression_is_reported() {
        let src = "// xlint: allow(no-such-rule): whatever\nfn f() {}\n";
        let diags = lint_source("crates/models/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].msg.contains("unknown rule"));
    }

    #[test]
    fn transitive_rule_is_a_known_suppression_target() {
        // an allow() naming the workspace rule must not be "unknown"
        let src = "fn handle_x(v: &[u8]) -> u8 {\n    // xlint: allow(transitive-panic-in-request-path): v is length-checked by the router\n    v[0]\n}\n";
        let diags = lint_source("crates/serving/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn stale_infallible_is_reported() {
        let src = "// xlint: infallible(nothing_here): never traversed\nfn f() {}\n";
        let diags = lint_source("crates/models/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].msg.contains("stale infallible"), "{diags:?}");
    }

    #[test]
    fn infallible_without_reason_is_reported() {
        let files = vec![
            (
                "crates/serving/src/x.rs".to_string(),
                "use ratatouille_models::sample::go;\nfn handle_x() {\n    // xlint: infallible(go)\n    go();\n}\n"
                    .to_string(),
            ),
            (
                "crates/models/src/sample.rs".to_string(),
                "pub fn go() { panic!(\"x\"); }\n".to_string(),
            ),
        ];
        let diags = lint_sources(&files);
        // the claim is unjustified: edge not cut, sink reported, claim flagged
        assert!(diags.iter().any(|d| d.rule == "allow-needs-justification"
            && d.msg.contains("infallibility claim")));
        assert!(diags.iter().any(|d| d.rule == callgraph::TRANSITIVE_PANIC));
    }

    #[test]
    fn json_report_shape() {
        let d = Diagnostic {
            path: "crates/x/src/a.rs".into(),
            line: 3,
            rule: "obs-only-timing",
            msg: "say \"why\"".into(),
        };
        assert_eq!(
            d.to_json(),
            "{\"path\":\"crates/x/src/a.rs\",\"line\":3,\"rule\":\"obs-only-timing\",\"msg\":\"say \\\"why\\\"\"}"
        );
        let report = to_json_report(&[d]);
        assert!(report.starts_with("[\n") && report.ends_with(']'));
    }
}

//! A zero-dependency recursive-descent parser over the [`crate::lexer`]
//! token stream.
//!
//! This is *not* a Rust grammar — it is the minimum item/expression
//! structure the interprocedural rules need, extracted resiliently from
//! real code: the item tree (fns, impls, traits, mods), and per-function
//! event lists (calls, method calls, macro invocations, index
//! expressions, `unsafe` blocks, compound `+=` adds, bindings in scope).
//! Everything line-addressed, nothing type-checked. On token sequences
//! it does not understand the parser skips forward rather than failing,
//! so half-written or exotic code degrades to fewer events, never to a
//! crash — the same graceful-degradation contract as the lexer.

use crate::lexer::{Tok, TokKind};

/// The parsed shape of one source file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// Every function in the file (free fns, inherent/trait methods,
    /// default trait bodies, nested fns), in source order.
    pub fns: Vec<FnDef>,
    /// `use` declarations, each as its full segment path. Brace groups
    /// are expanded: `use a::{b, c::d};` yields `[a, b]` and `[a, c, d]`.
    pub uses: Vec<Vec<String>>,
}

/// One function definition and the events inside its body.
#[derive(Debug, Default)]
pub struct FnDef {
    /// Function name (`step`, `handle_generate`, …).
    pub name: String,
    /// In-file module path (`["ops", "simd"]` for `mod ops { mod simd {`).
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` type name, if this is a method
    /// (`BatchGenerator` for `impl BatchGenerator { fn step … }`; the
    /// *self* type for trait impls: `impl KvRows for KvCache` → `KvCache`).
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Last line of the body (or the signature, for bodyless decls).
    pub end_line: u32,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Parameters, `let` bindings, `for`-loop variables and closure
    /// parameters — the names "in scope" for the disjointness contract.
    pub bindings: Vec<Binding>,
    /// Call expressions (`foo(…)`, `a::b::foo(…)`, `.foo(…)`).
    pub calls: Vec<CallEvent>,
    /// Macro invocations (`panic!`, `obs::static_histogram!`, …).
    pub macros: Vec<MacroEvent>,
    /// Lines with an index/slice expression (`x[i]`, `buf[a..b]`).
    pub index_lines: Vec<u32>,
    /// Lines opening an `unsafe { … }` block inside the body.
    pub unsafe_lines: Vec<u32>,
    /// Compound `+=` assignments inside loop bodies.
    pub adds: Vec<AddEvent>,
}

impl FnDef {
    /// Whether `name` is bound in this function's scope (param, `let`,
    /// loop variable or closure parameter).
    pub fn binds(&self, name: &str) -> bool {
        name == "self" || self.bindings.iter().any(|b| b.name == name)
    }

    /// Display path for diagnostics: `Type::name` or `name`.
    pub fn display(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A name bound in a function body.
#[derive(Debug)]
pub struct Binding {
    pub name: String,
    pub line: u32,
    /// The declaring statement mentions `f32`/`F16` or a float literal —
    /// evidence the binding holds floating-point state.
    pub float_hint: bool,
}

/// One call expression.
#[derive(Debug)]
pub struct CallEvent {
    pub line: u32,
    /// Path segments; a bare `foo(…)` is `["foo"]`, `a::b::foo(…)` is
    /// `["a","b","foo"]`. Method calls carry the single method name.
    pub path: Vec<String>,
    /// True for `.name(…)` receiver calls.
    pub method: bool,
}

impl CallEvent {
    /// The called name (last path segment).
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }
}

/// One macro invocation (`name!` with optional module path).
#[derive(Debug)]
pub struct MacroEvent {
    pub line: u32,
    pub path: Vec<String>,
}

impl MacroEvent {
    /// The macro name (last path segment).
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }
}

/// One `lhs += rhs` inside a loop body.
#[derive(Debug)]
pub struct AddEvent {
    pub line: u32,
    /// Root identifier of the left-hand side (`acc` for `acc[i] += x`).
    pub lhs: Option<String>,
    /// The surrounding statement mentions `f32`/`F16` or a float literal.
    pub float_stmt: bool,
}

/// Keywords that can directly precede `(` / `[` without forming a call
/// or index expression.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "in", "let", "fn", "impl", "trait",
    "where", "unsafe", "as", "move", "ref", "mut", "pub", "use", "mod", "struct", "enum", "union",
    "type", "const", "static", "break", "continue", "dyn", "box", "await", "async", "yield",
    "extern", "crate", "super", "self", "Self", "true", "false",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parse a token stream (comments are ignored) into a [`FileAst`].
pub fn parse(toks: &[Tok]) -> FileAst {
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    let mut p = Parser {
        t: code,
        i: 0,
        out: FileAst::default(),
    };
    let mut module = Vec::new();
    p.items(&mut module, None);
    p.out
}

struct Parser<'a> {
    t: Vec<&'a Tok>,
    i: usize,
    out: FileAst,
}

impl<'a> Parser<'a> {
    fn peek(&self, k: usize) -> Option<&'a Tok> {
        self.t.get(self.i + k).copied()
    }

    fn ident_at(&self, k: usize) -> Option<&'a str> {
        self.peek(k).and_then(|t| t.ident())
    }

    fn punct_at(&self, k: usize, c: char) -> bool {
        self.peek(k).map_or(false, |t| t.is_punct(c))
    }

    fn line(&self) -> u32 {
        self.peek(0).map_or(0, |t| t.line)
    }

    /// Skip a balanced `open … close` group starting at the current
    /// token (which must be `open`); no-op otherwise.
    fn skip_balanced(&mut self, open: char, close: char) {
        if !self.punct_at(0, open) {
            return;
        }
        let mut depth = 0usize;
        while self.i < self.t.len() {
            if self.punct_at(0, open) {
                depth += 1;
            } else if self.punct_at(0, close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skip to just past the next `;` at brace depth 0 (items like
    /// `use …;`, `const X: T = expr;`, `struct T(…);`).
    fn skip_to_semi(&mut self) {
        let mut brace = 0usize;
        while self.i < self.t.len() {
            if self.punct_at(0, '{') {
                brace += 1;
            } else if self.punct_at(0, '}') {
                if brace == 0 {
                    return; // unbalanced: let the caller see the `}`
                }
                brace -= 1;
            } else if self.punct_at(0, ';') && brace == 0 {
                self.i += 1;
                return;
            }
            self.i += 1;
        }
    }

    /// Item loop for one `{ … }` scope (file top level, `mod`, `impl`,
    /// `trait` bodies). Stops at the closing `}` (not consumed) or EOF.
    fn items(&mut self, module: &mut Vec<String>, self_type: Option<&str>) {
        let mut is_unsafe = false;
        while self.i < self.t.len() {
            if self.punct_at(0, '}') {
                return;
            }
            if self.punct_at(0, '#') {
                // attribute: `#[…]` / `#![…]`
                self.i += 1;
                if self.punct_at(0, '!') {
                    self.i += 1;
                }
                self.skip_balanced('[', ']');
                continue;
            }
            let Some(word) = self.ident_at(0) else {
                self.i += 1;
                continue;
            };
            match word {
                "pub" => {
                    self.i += 1;
                    self.skip_balanced('(', ')'); // pub(crate) etc.
                }
                "const" if self.ident_at(1) == Some("fn") => self.i += 1,
                "async" | "default" => self.i += 1,
                "extern" => {
                    // `extern "C" fn` modifier or `extern crate x;`
                    self.i += 1;
                    if self.peek(0).map_or(false, |t| t.kind == TokKind::Str) {
                        self.i += 1;
                    }
                    if self.ident_at(0) == Some("crate") {
                        self.skip_to_semi();
                    }
                }
                "unsafe" if self.ident_at(1) == Some("fn") || self.ident_at(1) == Some("impl") => {
                    is_unsafe = true;
                    self.i += 1;
                }
                "mod" => {
                    self.i += 1;
                    let name = self.ident_at(0).unwrap_or("").to_string();
                    self.i += 1;
                    if self.punct_at(0, '{') {
                        self.i += 1;
                        module.push(name);
                        self.items(module, self_type);
                        module.pop();
                        if self.punct_at(0, '}') {
                            self.i += 1;
                        }
                    } else {
                        self.skip_to_semi();
                    }
                }
                "impl" => {
                    self.i += 1;
                    let ty = self.impl_header();
                    if self.punct_at(0, '{') {
                        self.i += 1;
                        self.items(module, ty.as_deref());
                        if self.punct_at(0, '}') {
                            self.i += 1;
                        }
                    }
                    is_unsafe = false;
                }
                "trait" => {
                    self.i += 1;
                    let name = self.ident_at(0).map(str::to_string);
                    // skip to the body brace (supertraits, generics, where)
                    while self.i < self.t.len()
                        && !self.punct_at(0, '{')
                        && !self.punct_at(0, ';')
                    {
                        self.i += 1;
                    }
                    if self.punct_at(0, '{') {
                        self.i += 1;
                        self.items(module, name.as_deref());
                        if self.punct_at(0, '}') {
                            self.i += 1;
                        }
                    }
                }
                "fn" => {
                    self.function(module, self_type, is_unsafe);
                    is_unsafe = false;
                }
                "use" => {
                    let start = self.i + 1;
                    self.skip_to_semi();
                    let end = self.i.saturating_sub(1).min(self.t.len());
                    self.record_use(start, end);
                }
                "struct" | "enum" | "union" => {
                    self.i += 1;
                    // name, generics, then either `{…}`, `(…);` or `;`
                    while self.i < self.t.len() {
                        if self.punct_at(0, '{') {
                            self.skip_balanced('{', '}');
                            break;
                        }
                        if self.punct_at(0, ';') {
                            self.i += 1;
                            break;
                        }
                        if self.punct_at(0, '(') {
                            self.skip_balanced('(', ')');
                            continue;
                        }
                        self.i += 1;
                    }
                }
                "static" | "type" | "const" => self.skip_to_semi(),
                "macro_rules" => {
                    self.i += 1; // macro_rules
                    if self.punct_at(0, '!') {
                        self.i += 1;
                    }
                    self.i += 1; // name
                    if self.punct_at(0, '{') {
                        self.skip_balanced('{', '}');
                    }
                }
                _ => {
                    // Item-level macro invocation (`thread_local! { … }`,
                    // `static_assertions!(…);`): skip the delimited body so
                    // its closing brace is not mistaken for the end of this
                    // scope. Anything else advances one token (resilience).
                    self.i += 1;
                    while self.punct_at(0, ':') && self.punct_at(1, ':') {
                        self.i += 2;
                        if self.ident_at(0).is_some() {
                            self.i += 1;
                        }
                    }
                    if self.punct_at(0, '!') {
                        self.i += 1;
                        if self.punct_at(0, '{') {
                            self.skip_balanced('{', '}');
                        } else if self.punct_at(0, '(') {
                            self.skip_balanced('(', ')');
                        } else if self.punct_at(0, '[') {
                            self.skip_balanced('[', ']');
                        }
                    }
                }
            }
        }
    }

    /// After the `impl` keyword: skip generics, read the (self) type
    /// name. For `impl Trait for Type`, the self type wins.
    fn impl_header(&mut self) -> Option<String> {
        if self.punct_at(0, '<') {
            self.skip_angle();
        }
        let first = self.type_path();
        if self.ident_at(0) == Some("for") {
            self.i += 1;
            let second = self.type_path();
            self.skip_to_body_brace();
            return second.or(first);
        }
        self.skip_to_body_brace();
        first
    }

    /// Read a type path (`a::b::Type<…>`), returning the base type name
    /// (last path segment before any generics).
    fn type_path(&mut self) -> Option<String> {
        let mut last = None;
        while self.i < self.t.len() {
            if let Some(id) = self.ident_at(0) {
                if id == "for" || is_keyword(id) && id != "Self" {
                    break;
                }
                last = Some(id.to_string());
                self.i += 1;
                if self.punct_at(0, ':') && self.punct_at(1, ':') {
                    self.i += 2;
                    continue;
                }
                if self.punct_at(0, '<') {
                    self.skip_angle();
                }
                break;
            } else if self.punct_at(0, '&') || self.punct_at(0, '*') {
                self.i += 1; // reference/pointer sigils before the type
            } else if self.peek(0).map_or(false, |t| matches!(t.kind, TokKind::Lifetime(_))) {
                self.i += 1;
            } else {
                break;
            }
        }
        last
    }

    /// Skip a balanced `< … >` generic group (`>>` arrives as two `>`).
    fn skip_angle(&mut self) {
        let mut depth = 0usize;
        while self.i < self.t.len() {
            if self.punct_at(0, '<') {
                depth += 1;
            } else if self.punct_at(0, '>') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            } else if self.punct_at(0, '(') {
                self.skip_balanced('(', ')');
                continue;
            } else if self.punct_at(0, '{') || self.punct_at(0, ';') {
                return; // malformed; bail before eating a body
            }
            self.i += 1;
        }
    }

    /// Skip the rest of an impl/trait header (where clauses) up to the
    /// body `{` (not consumed).
    fn skip_to_body_brace(&mut self) {
        while self.i < self.t.len() && !self.punct_at(0, '{') && !self.punct_at(0, ';') {
            if self.punct_at(0, '<') {
                self.skip_angle();
                continue;
            }
            self.i += 1;
        }
    }

    /// Expand one `use` declaration (tokens `[start, end)`) into full
    /// paths, handling one level of `{a, b::c}` groups.
    fn record_use(&mut self, start: usize, end: usize) {
        let mut prefix: Vec<String> = Vec::new();
        let mut k = start;
        let mut group_base: Option<Vec<String>> = None;
        let mut alias_next = false;
        while k < end {
            let t = self.t[k];
            if let Some(id) = t.ident() {
                if id == "as" {
                    alias_next = true; // `use x as y` — keep the target path
                } else if !alias_next && id != "crate" && id != "self" && id != "super" {
                    prefix.push(id.to_string());
                }
            } else if t.is_punct('{') {
                group_base = Some(prefix.clone());
            } else if t.is_punct(',') || t.is_punct('}') {
                if !prefix.is_empty() {
                    self.out.uses.push(prefix.clone());
                }
                prefix = group_base.clone().unwrap_or_default();
                alias_next = false;
            } else if t.is_punct('*') {
                prefix.clear(); // glob: nothing nameable
            }
            k += 1;
        }
        if !prefix.is_empty() {
            self.out.uses.push(prefix);
        }
    }

    /// Parse `fn name …` starting at the `fn` keyword.
    fn function(&mut self, module: &[String], self_type: Option<&str>, is_unsafe: bool) {
        let fn_line = self.line();
        self.i += 1; // `fn`
        let name = self.ident_at(0).unwrap_or("").to_string();
        self.i += 1;
        let mut f = FnDef {
            name,
            module: module.to_vec(),
            self_type: self_type.map(str::to_string),
            line: fn_line,
            end_line: fn_line,
            is_unsafe,
            ..FnDef::default()
        };
        if self.punct_at(0, '<') {
            self.skip_angle();
        }
        if self.punct_at(0, '(') {
            self.params(&mut f);
        }
        // return type / where clause, up to the body `{` or a `;`
        while self.i < self.t.len() && !self.punct_at(0, '{') && !self.punct_at(0, ';') {
            if self.punct_at(0, '<') {
                self.skip_angle();
                continue;
            }
            if self.punct_at(0, '(') {
                self.skip_balanced('(', ')');
                continue;
            }
            self.i += 1;
        }
        if self.punct_at(0, ';') {
            self.i += 1; // bodyless trait decl
            f.end_line = self.t.get(self.i.saturating_sub(1)).map_or(fn_line, |t| t.line);
            self.out.fns.push(f);
            return;
        }
        if self.punct_at(0, '{') {
            self.i += 1;
            self.body(&mut f);
        }
        self.out.fns.push(f);
    }

    /// Parameter list: record binding names and float hints.
    fn params(&mut self, f: &mut FnDef) {
        self.i += 1; // `(`
        let mut depth = 1usize;
        let mut seen_colon = false;
        let mut names: Vec<(String, u32)> = Vec::new();
        let mut float = false;
        while self.i < self.t.len() && depth > 0 {
            let t = self.t[self.i];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('<') && depth == 1 {
                self.skip_angle();
                continue;
            } else if depth == 1 && t.is_punct(',') {
                for (n, l) in names.drain(..) {
                    f.bindings.push(Binding { name: n, line: l, float_hint: float });
                }
                seen_colon = false;
                float = false;
            } else if depth == 1 && t.is_punct(':') {
                seen_colon = true;
            } else if let Some(id) = t.ident() {
                if seen_colon {
                    if id == "f32" || id == "f64" || id == "F16" {
                        float = true;
                    }
                } else if id == "self" {
                    names.push(("self".to_string(), t.line));
                } else if !is_keyword(id) {
                    names.push((id.to_string(), t.line));
                }
            }
            self.i += 1;
        }
        for (n, l) in names {
            f.bindings.push(Binding { name: n, line: l, float_hint: float });
        }
    }

    /// Walk a function body collecting events. Starts just past the
    /// opening `{` (depth 1); consumes through the matching `}`.
    fn body(&mut self, f: &mut FnDef) {
        let mut depth = 1usize;
        // Brace depths at which loop bodies opened.
        let mut loops: Vec<usize> = Vec::new();
        let mut pending_loop = false;
        while self.i < self.t.len() && depth > 0 {
            let t = self.t[self.i];
            match &t.kind {
                TokKind::Punct('{') => {
                    depth += 1;
                    if pending_loop {
                        loops.push(depth);
                        pending_loop = false;
                    }
                    self.i += 1;
                }
                TokKind::Punct('}') => {
                    if loops.last() == Some(&depth) {
                        loops.pop();
                    }
                    depth -= 1;
                    f.end_line = t.line;
                    self.i += 1;
                }
                TokKind::Punct('#') => {
                    self.i += 1;
                    if self.punct_at(0, '!') {
                        self.i += 1;
                    }
                    self.skip_balanced('[', ']');
                }
                TokKind::Punct('(') => {
                    self.call_at_paren(f);
                    self.i += 1;
                }
                TokKind::Punct('[') => {
                    self.index_at_bracket(f);
                    self.i += 1;
                }
                TokKind::Punct('+') if self.punct_at(1, '=') => {
                    self.compound_add(f, &loops);
                    self.i += 2;
                }
                TokKind::Punct('|') => {
                    self.maybe_closure_params(f);
                }
                TokKind::Ident(id) => {
                    match id.as_str() {
                        "fn" => {
                            // nested fn: its own def, events attach to it
                            self.function(&f.module.clone(), f.self_type.as_deref(), false);
                        }
                        "for" | "while" | "loop" => {
                            pending_loop = true;
                            if id == "for" {
                                // loop variable(s): idents up to `in`
                                let mut k = 1;
                                while let Some(w) = self.ident_at(k) {
                                    if w == "in" {
                                        break;
                                    }
                                    if !is_keyword(w) {
                                        f.bindings.push(Binding {
                                            name: w.to_string(),
                                            line: t.line,
                                            float_hint: false,
                                        });
                                    }
                                    k += 1;
                                    while self.punct_at(k, ',')
                                        || self.punct_at(k, '(')
                                        || self.punct_at(k, ')')
                                        || self.punct_at(k, '&')
                                    {
                                        k += 1;
                                    }
                                }
                            }
                            self.i += 1;
                        }
                        "let" => {
                            self.let_binding(f);
                        }
                        "unsafe" => {
                            if self.punct_at(1, '{') {
                                f.unsafe_lines.push(t.line);
                            }
                            self.i += 1;
                        }
                        _ => {
                            // macro invocation `path!`?
                            if self.punct_at(1, '!') && !self.punct_at(2, '=') {
                                let path = self.path_ending_at(self.i);
                                f.macros.push(MacroEvent { line: t.line, path });
                                self.i += 2; // ident + `!`; args scan on
                            } else {
                                self.i += 1;
                            }
                        }
                    }
                }
                _ => self.i += 1,
            }
        }
    }

    /// At a `(`: record a call event if the preceding tokens form a
    /// callee path or a `.method` receiver call.
    fn call_at_paren(&mut self, f: &mut FnDef) {
        let line = self.line();
        let Some(prev) = (self.i >= 1).then(|| self.t[self.i - 1]) else {
            return;
        };
        let Some(id) = prev.ident() else {
            return;
        };
        if is_keyword(id) && id != "Self" && id != "self" {
            return;
        }
        let path = self.path_ending_at(self.i - 1);
        if path.is_empty() {
            return;
        }
        // `.name(` → method call (path reduced to the method name)
        let before = self.i - 1 - (path.len() * 2 - 1).min(self.i - 1);
        let method = self.i >= 2 && self.t[self.i - 2].is_punct('.');
        if method {
            f.calls.push(CallEvent { line, path: vec![id.to_string()], method: true });
        } else {
            let _ = before;
            f.calls.push(CallEvent { line, path, method: false });
        }
    }

    /// Collect the `a :: b :: name` path whose last segment is the ident
    /// at token index `end` (inclusive), walking backwards.
    fn path_ending_at(&self, end: usize) -> Vec<String> {
        let mut segs: Vec<String> = Vec::new();
        let mut k = end;
        loop {
            let Some(id) = self.t.get(k).and_then(|t| t.ident()) else {
                break;
            };
            segs.push(id.to_string());
            if k >= 2 && self.t[k - 1].is_punct(':') && self.t[k - 2].is_punct(':') {
                if k >= 3 {
                    k -= 3;
                    // generic turbofish `Foo::<T>::bar` — give up cleanly
                    if self.t[k].ident().is_none() {
                        break;
                    }
                    continue;
                }
            }
            break;
        }
        segs.reverse();
        segs
    }

    /// At a `[`: record an index expression when the bracket is in
    /// postfix position (previous token ends an expression).
    fn index_at_bracket(&mut self, f: &mut FnDef) {
        let line = self.line();
        let Some(prev) = (self.i >= 1).then(|| self.t[self.i - 1]) else {
            return;
        };
        let postfix = match &prev.kind {
            TokKind::Ident(id) => !is_keyword(id) || id == "self",
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('?') => true,
            _ => false,
        };
        if !postfix {
            return;
        }
        // `x[..]` is the full-range slice — it cannot panic; skip it.
        if self.punct_at(1, '.') && self.punct_at(2, '.') && self.punct_at(3, ']') {
            return;
        }
        f.index_lines.push(line);
    }

    /// At `+ =`: record a compound add if inside a loop body.
    fn compound_add(&mut self, f: &mut FnDef, loops: &[usize]) {
        if loops.is_empty() {
            return;
        }
        let line = self.line();
        // Walk back over the lvalue (`a.b[i]`, `chunk[i * w + c]`) to its
        // root identifier.
        let mut k = self.i;
        let mut bracket = 0usize;
        let mut lhs = None;
        while k > 0 {
            k -= 1;
            let t = self.t[k];
            match &t.kind {
                TokKind::Punct(']') => bracket += 1,
                TokKind::Punct('[') => {
                    if bracket == 0 {
                        break;
                    }
                    bracket -= 1;
                }
                TokKind::Ident(id) if bracket == 0 => {
                    if is_keyword(id) && id != "self" {
                        break;
                    }
                    lhs = Some(id.to_string());
                    if !(k >= 1 && (self.t[k - 1].is_punct('.') || self.t[k - 1].is_punct(':'))) {
                        break;
                    }
                    k -= 1; // continue past `.` / `::`
                }
                TokKind::Punct('.') | TokKind::Punct(':') if bracket == 0 => {}
                _ if bracket > 0 => {}
                _ => break,
            }
        }
        let float_stmt = self.stmt_mentions_float(self.i);
        f.adds.push(AddEvent { line, lhs, float_stmt });
    }

    /// Does the statement around token `i` mention `f32`/`F16` or a
    /// float literal? Bounded by `;`/`{`/`}` on both sides.
    fn stmt_mentions_float(&self, i: usize) -> bool {
        let boundary =
            |t: &Tok| t.is_punct(';') || t.is_punct('{') || t.is_punct('}');
        let start = (0..i).rev().find(|&k| boundary(self.t[k])).map_or(0, |k| k + 1);
        let end = (i..self.t.len())
            .find(|&k| boundary(self.t[k]))
            .unwrap_or(self.t.len());
        self.t[start..end].iter().any(|t| match &t.kind {
            TokKind::Ident(id) => id == "f32" || id == "f64" || id == "F16",
            TokKind::Num { float } => *float,
            _ => false,
        })
    }

    /// `let` statement: record pattern bindings with a float hint from
    /// the rest of the statement.
    fn let_binding(&mut self, f: &mut FnDef) {
        let line = self.line();
        self.i += 1; // `let`
        let mut names: Vec<String> = Vec::new();
        // pattern: idents until `=`, `;` or `:` type annotation
        let mut depth = 0usize;
        while self.i < self.t.len() {
            let t = self.t[self.i];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && (t.is_punct('=') || t.is_punct(';') || t.is_punct(':')) {
                break;
            } else if let Some(id) = t.ident() {
                // `let Some(x)` / `let Ok(v)`: constructor names start
                // uppercase and are not bindings; `mut`/`ref` skipped.
                if !is_keyword(id) && !id.chars().next().map_or(false, |c| c.is_uppercase()) {
                    names.push(id.to_string());
                }
            } else if t.is_punct('{') {
                break; // struct pattern: too clever; bail
            }
            self.i += 1;
        }
        let float = self.stmt_mentions_float(self.i);
        for n in names {
            f.bindings.push(Binding { name: n, line, float_hint: float });
        }
    }

    /// At a `|`: if it opens a closure parameter list (`|a, b: T|`),
    /// record the parameters as bindings. Conservative: bails on
    /// anything that does not look like a simple parameter list.
    fn maybe_closure_params(&mut self, f: &mut FnDef) {
        // `||` — empty closure params
        if self.punct_at(1, '|') {
            self.i += 2;
            return;
        }
        let start_ok = self.i == 0
            || matches!(
                &self.t[self.i - 1].kind,
                TokKind::Punct('(') | TokKind::Punct(',') | TokKind::Punct('=') | TokKind::Punct('{')
            )
            || self.t[self.i - 1].ident() == Some("move");
        if !start_ok {
            self.i += 1;
            return;
        }
        let mut k = self.i + 1;
        let mut names: Vec<(String, u32)> = Vec::new();
        let mut in_type = false;
        while k < self.t.len() && k < self.i + 24 {
            let t = self.t[k];
            if t.is_punct('|') {
                for (n, l) in names {
                    f.bindings.push(Binding { name: n, line: l, float_hint: false });
                }
                self.i = k + 1;
                return;
            }
            match &t.kind {
                TokKind::Ident(id) => {
                    if !in_type && !is_keyword(id) {
                        names.push((id.to_string(), t.line));
                    }
                }
                TokKind::Punct(':') => in_type = true,
                TokKind::Punct(',') => in_type = false,
                TokKind::Punct('&') | TokKind::Punct('(') | TokKind::Punct(')')
                | TokKind::Punct('_') => {}
                TokKind::Lifetime(_) => {}
                _ => {
                    self.i += 1;
                    return; // not a closure param list
                }
            }
            k += 1;
        }
        self.i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ast(src: &str) -> FileAst {
        parse(&lex(src))
    }

    #[test]
    fn item_level_macro_body_does_not_end_the_scope() {
        let a = ast(
            "thread_local! {\n    static W: Cell<bool> = const { Cell::new(false) };\n}\n\
             fn after() { g(); }\n\
             mod inner {\n    obs::declare_metrics!(a, b);\n    fn nested() {}\n}\n",
        );
        let names: Vec<&str> = a.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["after", "nested"],
            "a `thread_local!`-style brace body must not swallow the rest of the file"
        );
        assert_eq!(a.fns[1].module, vec!["inner".to_string()]);
    }

    #[test]
    fn free_fn_and_method() {
        let a = ast("fn f() { g(); }\nimpl Foo { fn m(&self) { self.h(); } }\n");
        assert_eq!(a.fns.len(), 2);
        assert_eq!(a.fns[0].name, "f");
        assert_eq!(a.fns[0].calls.len(), 1);
        assert_eq!(a.fns[0].calls[0].path, vec!["g"]);
        assert_eq!(a.fns[1].self_type.as_deref(), Some("Foo"));
        assert!(a.fns[1].calls[0].method);
        assert_eq!(a.fns[1].calls[0].name(), "h");
    }

    #[test]
    fn trait_impl_self_type_is_the_type() {
        let a = ast("impl KvRows for KvCache<E> { fn len(&self) -> usize { 0 } }\n");
        assert_eq!(a.fns[0].self_type.as_deref(), Some("KvCache"));
    }

    #[test]
    fn path_calls_and_macros() {
        let a = ast("fn f() { a::b::g(1); obs::static_histogram!(\"x\").observe(1); panic!(\"no\"); }\n");
        let f = &a.fns[0];
        assert!(f.calls.iter().any(|c| c.path == vec!["a", "b", "g"]));
        assert!(f.macros.iter().any(|m| m.path == vec!["obs", "static_histogram"]));
        assert!(f.macros.iter().any(|m| m.name() == "panic"));
    }

    #[test]
    fn index_detection() {
        let a = ast(
            "fn f(v: &[u32], i: usize) -> u32 {\n    let a = [1, 2];\n    let _ = &v[..];\n    v[i] + a[0]\n}\n",
        );
        // `[1, 2]` literal and `[..]` full-range excluded; v[i] and a[0] hit
        assert_eq!(a.fns[0].index_lines, vec![4, 4]);
    }

    #[test]
    fn loops_and_compound_adds() {
        let a = ast(
            "fn f(xs: &[f32]) -> f32 {\n    let mut acc = 0.0f32;\n    for x in xs {\n        acc += *x;\n    }\n    acc\n}\nfn g() -> usize { let mut n = 0; n += 1; n }\n",
        );
        let f = &a.fns[0];
        assert_eq!(f.adds.len(), 1, "{:?}", f.adds);
        assert_eq!(f.adds[0].lhs.as_deref(), Some("acc"));
        assert!(f.binds("acc") && f.binds("x") && f.binds("xs"));
        let acc = f.bindings.iter().find(|b| b.name == "acc").unwrap();
        assert!(acc.float_hint, "0.0f32 initializer should set the hint");
        // g's += is outside any loop
        assert!(a.fns[1].adds.is_empty());
    }

    #[test]
    fn closure_params_bound() {
        let a = ast("fn f(s: &mut [u8]) { run(|i, part| { part[i] = 0; }); }\n");
        assert!(a.fns[0].binds("part") && a.fns[0].binds("i"));
    }

    #[test]
    fn unsafe_blocks_and_fns() {
        let a = ast("unsafe fn k() {}\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n");
        assert!(a.fns[0].is_unsafe);
        assert_eq!(a.fns[1].unsafe_lines, vec![2]);
    }

    #[test]
    fn nested_modules_and_uses() {
        let a = ast(
            "use ratatouille_tensor::par::{scatter_mut, run_tasks};\nuse crate::kv_block::SeqKv;\nmod inner { pub fn deep() {} }\n",
        );
        assert!(a.uses.contains(&vec![
            "ratatouille_tensor".to_string(),
            "par".to_string(),
            "scatter_mut".to_string()
        ]));
        assert!(a.uses.contains(&vec![
            "ratatouille_tensor".to_string(),
            "par".to_string(),
            "run_tasks".to_string()
        ]));
        assert!(a.uses.contains(&vec!["kv_block".to_string(), "SeqKv".to_string()]));
        assert_eq!(a.fns[0].module, vec!["inner"]);
    }

    #[test]
    fn generics_and_where_clauses_survive() {
        let a = ast(
            "pub fn scatter<T, F>(slots: &mut [T], f: F)\nwhere\n    T: Send,\n    F: Fn(usize, &mut T) + Sync,\n{\n    f(0, &mut slots[0]);\n}\n",
        );
        assert_eq!(a.fns[0].name, "scatter");
        assert!(a.fns[0].binds("slots") && a.fns[0].binds("f"));
        assert_eq!(a.fns[0].index_lines, vec![6]);
    }

    #[test]
    fn bodyless_trait_methods() {
        let a = ast("trait T { fn a(&self); fn b(&self) { self.a(); } }\n");
        assert_eq!(a.fns.len(), 2);
        assert_eq!(a.fns[0].name, "a");
        assert!(a.fns[1].calls.iter().any(|c| c.name() == "a"));
    }
}

//! `cargo run -p xlint` — lint the workspace, print diagnostics, exit
//! non-zero on any finding. `scripts/ci.sh` runs this before the build so
//! contract violations fail fast; `tests/xlint_gate.rs` enforces the same
//! thing under plain `cargo test`.
//!
//! `--emit=json` prints the diagnostics as a JSON array (one object per
//! finding: `path`, `line`, `rule`, `msg`) for CI annotation; the exit
//! code is unchanged.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--rules") {
        for r in xlint::rules::catalogue() {
            println!("{:<32} {}", r.id, r.summary);
        }
        for r in xlint::rules::workspace_rules() {
            println!("{:<32} [workspace] {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    let json = args.iter().any(|a| a == "--emit=json");
    // Optional explicit root; otherwise walk up from the current directory
    // (cargo runs binaries from the workspace root).
    let start = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = xlint::find_workspace_root(&start) else {
        eprintln!("xlint: no workspace Cargo.toml found above {}", start.display());
        return ExitCode::FAILURE;
    };
    let diags = xlint::run_workspace(&root);
    if json {
        println!("{}", xlint::to_json_report(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        if !json {
            let n = xlint::rules::catalogue().len() + xlint::rules::workspace_rules().len();
            println!("xlint: workspace clean ({n} rules)");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("xlint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

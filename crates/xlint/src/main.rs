//! `cargo run -p xlint` — lint the workspace, print diagnostics, exit
//! non-zero on any finding. `scripts/ci.sh` runs this before the build so
//! contract violations fail fast; `tests/xlint_gate.rs` enforces the same
//! thing under plain `cargo test`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--rules") {
        for r in xlint::rules::catalogue() {
            println!("{:<28} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    // Optional explicit root; otherwise walk up from the current directory
    // (cargo runs binaries from the workspace root).
    let start = args
        .first()
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = xlint::find_workspace_root(&start) else {
        eprintln!("xlint: no workspace Cargo.toml found above {}", start.display());
        return ExitCode::FAILURE;
    };
    let diags = xlint::run_workspace(&root);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("xlint: workspace clean ({} rules)", xlint::rules::catalogue().len());
        ExitCode::SUCCESS
    } else {
        eprintln!("xlint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

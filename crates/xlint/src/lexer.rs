//! A small Rust lexer — just enough structure for line-accurate lint rules.
//!
//! Produces a flat token stream with start/end line numbers. The goal is
//! never full parsing: rules match short token sequences (`Instant :: now`,
//! `. unwrap (`) and reason about per-line layout (comments vs. code), so
//! the lexer's one hard job is classifying text correctly: line and nested
//! block comments, string / raw-string / byte-string / char literals, and
//! the `'a'` char vs `'a` lifetime ambiguity. Anything inside a literal or
//! comment must never look like code to a rule.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based line the token ends on (multi-line strings/comments).
    pub end_line: u32,
    pub kind: TokKind,
}

/// Token classification.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (includes raw identifiers, prefix stripped).
    Ident(String),
    /// A lifetime such as `'a` or `'static` (name without the quote).
    Lifetime(String),
    /// Numeric literal; `float` is true for obvious f32/f64 literals.
    Num { float: bool },
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Comment. `line` is true for `//…`, false for `/*…*/`; `doc` marks
    /// `///`, `//!`, `/**`, `/*!`. `text` is the trimmed comment body.
    Comment { line: bool, doc: bool, text: String },
    /// Any other single punctuation character.
    Punct(char),
}

impl Tok {
    /// True for a comment token.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::Comment { .. })
    }

    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lex `src` into tokens. Never fails: unterminated literals are closed at
/// end of input (the linter must degrade gracefully on half-written code).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        b: src.as_bytes(),
        src,
        i: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                c if c.is_ascii_digit() => self.number(),
                c => {
                    self.push1(TokKind::Punct(c as char));
                    self.i += 1;
                }
            }
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push1(&mut self, kind: TokKind) {
        self.toks.push(Tok {
            line: self.line,
            end_line: self.line,
            kind,
        });
    }

    fn push_span(&mut self, start_line: u32, kind: TokKind) {
        self.toks.push(Tok {
            line: start_line,
            end_line: self.line,
            kind,
        });
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        let raw = &self.src[start..self.i];
        let (doc, body) = if let Some(r) = raw.strip_prefix("///") {
            // `////…` dividers are plain comments, not docs
            (!r.starts_with('/'), r)
        } else if let Some(r) = raw.strip_prefix("//!") {
            (true, r)
        } else {
            (false, &raw[2..])
        };
        self.push1(TokKind::Comment {
            line: true,
            doc,
            text: body.trim().to_string(),
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let start = self.i;
        self.i += 2; // consume `/*`
        let doc = matches!(self.peek(0), Some(b'*') | Some(b'!'))
            // `/**/` and `/***/`-style dividers are not doc comments
            && self.peek(1) != Some(b'/');
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            match (self.b[self.i], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        let raw = &self.src[start..self.i];
        let body = raw
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start_matches('!')
            .trim_end_matches('/')
            .trim_end_matches('*');
        self.push_span(
            start_line,
            TokKind::Comment {
                line: false,
                doc,
                text: body.trim().to_string(),
            },
        );
    }

    /// A `"…"` string starting at `self.i`. Handles `\` escapes and
    /// embedded newlines.
    fn string(&mut self) {
        let start_line = self.line;
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.push_span(start_line, TokKind::Str);
    }

    /// A raw string starting at the `#`s or `"` (prefix `r`/`br` already
    /// consumed). `hashes` is the number of `#`s before the opening quote.
    fn raw_string(&mut self, hashes: usize) {
        let start_line = self.line;
        self.i += hashes + 1; // `#…#` then `"`
        'scan: while self.i < self.b.len() {
            match self.b[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    // closing quote must be followed by `hashes` #s
                    if (1..=hashes).all(|k| self.peek(k) == Some(b'#')) {
                        self.i += 1 + hashes;
                        break 'scan;
                    }
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.push_span(start_line, TokKind::Str);
    }

    /// `'` — either a char literal (`'x'`, `'\n'`) or a lifetime (`'a`).
    fn char_or_lifetime(&mut self) {
        match self.peek(1) {
            Some(b'\\') => {
                // escaped char literal: scan to the closing quote
                self.i += 2;
                while self.i < self.b.len() && self.b[self.i] != b'\'' {
                    self.i += if self.b[self.i] == b'\\' { 2 } else { 1 };
                }
                self.i += 1;
                self.push1(TokKind::Char);
            }
            Some(c) if is_ident_cont(c) => {
                // `'a'` is a char; `'a` / `'static` is a lifetime. Scan the
                // identifier run and look for a closing quote.
                let mut k = self.i + 1;
                while k < self.b.len() && is_ident_cont(self.b[k]) {
                    k += 1;
                }
                if self.b.get(k) == Some(&b'\'') {
                    self.i = k + 1;
                    self.push1(TokKind::Char);
                } else {
                    let name = self.src[self.i + 1..k].to_string();
                    self.i = k;
                    self.push1(TokKind::Lifetime(name));
                }
            }
            Some(_) => {
                // punctuation char literal like `'('`
                let mut k = self.i + 1;
                while k < self.b.len() && self.b[k] != b'\'' && self.b[k] != b'\n' {
                    k += 1;
                }
                self.i = (k + 1).min(self.b.len());
                self.push1(TokKind::Char);
            }
            None => {
                self.i += 1;
                self.push1(TokKind::Punct('\''));
            }
        }
    }

    /// Identifier, or one of the literal prefixes `r"` `r#"` `b"` `br"`
    /// `b'` — plus raw identifiers `r#name`.
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.i;
        let mut k = self.i;
        while k < self.b.len() && is_ident_cont(self.b[k]) {
            k += 1;
        }
        let word = &self.src[start..k];
        let next = self.b.get(k).copied();
        match (word, next) {
            ("r" | "b" | "br" | "rb", Some(b'"')) => {
                self.i = k;
                if word.contains('r') {
                    self.raw_string(0);
                } else {
                    self.string();
                }
            }
            ("r" | "br", Some(b'#')) => {
                // count hashes; a `"` after them means raw string, anything
                // else means raw identifier (`r#fn`)
                let mut h = 0usize;
                while self.b.get(k + h) == Some(&b'#') {
                    h += 1;
                }
                if self.b.get(k + h) == Some(&b'"') {
                    self.i = k;
                    self.raw_string(h);
                } else {
                    // raw identifier: token is the name without `r#`
                    let mut j = k + 1;
                    while j < self.b.len() && is_ident_cont(self.b[j]) {
                        j += 1;
                    }
                    let name = self.src[k + 1..j].to_string();
                    self.i = j;
                    self.push1(TokKind::Ident(name));
                }
            }
            ("b", Some(b'\'')) => {
                self.i = k;
                self.char_or_lifetime();
            }
            _ => {
                self.i = k;
                self.push1(TokKind::Ident(word.to_string()));
            }
        }
    }

    fn number(&mut self) {
        let start = self.i;
        let mut float = false;
        while self.i < self.b.len() {
            let c = self.b[self.i];
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.i += 1;
            } else if c == b'.' {
                // `1..n` range or `1.max(2)` method call — the dot belongs
                // to the range/call, not the number
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        float = true;
                        self.i += 1;
                    }
                    Some(d) if is_ident_start(d) || d == b'.' => break,
                    _ => {
                        // trailing-dot float like `1.`
                        float = true;
                        self.i += 1;
                    }
                }
            } else if (c == b'+' || c == b'-')
                && matches!(self.b.get(self.i - 1), Some(b'e') | Some(b'E'))
                && self.src[start..self.i].chars().next().map_or(false, |f| f.is_ascii_digit())
                && (float || self.src[start..self.i].contains(['e', 'E']))
            {
                // exponent sign inside `1e-3`
                self.i += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.i];
        if text.ends_with("f32") || text.ends_with("f64") {
            float = true;
        } else if !float {
            // Scientific notation: a digit, then `e`/`E`, optional sign,
            // digits to the end. (A plain `contains('e')` would tag every
            // `0usize`/`3else` — "usize" has an `e` in it.)
            let b = text.as_bytes();
            if let Some(k) = b.iter().position(|&c| c == b'e' || c == b'E') {
                let mantissa_ok = k > 0 && b[k - 1].is_ascii_digit();
                let exp = match b.get(k + 1) {
                    Some(b'+') | Some(b'-') => &b[k + 2..],
                    _ => &b[k + 1..],
                };
                if mantissa_ok && !exp.is_empty() && exp.iter().all(|c| c.is_ascii_digit()) {
                    float = true;
                }
            }
        }
        // hex/binary/octal literals can contain `e` — never floats
        if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
            float = false;
        }
        self.push1(TokKind::Num { float });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("let x = y;"),
            vec![
                TokKind::Ident("let".into()),
                TokKind::Ident("x".into()),
                TokKind::Punct('='),
                TokKind::Ident("y".into()),
                TokKind::Punct(';'),
            ]
        );
    }

    #[test]
    fn nested_block_comment() {
        let toks = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert!(toks[0].is_comment());
        assert_eq!(toks[1].ident(), Some("code"));
    }

    #[test]
    fn raw_string_with_fake_unsafe() {
        let toks = lex(r####"let s = r#"unsafe { /* not code " */ }"#; next"####);
        let idents: Vec<_> = toks.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, vec!["let", "s", "next"]);
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Lifetime(_)))
            .count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn byte_and_raw_literals() {
        let toks = lex(r#"let a = b"bytes"; let c = b'x'; let r = br"raw";"#);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn raw_identifier() {
        let toks = lex("let r#fn = 1;");
        assert!(toks.iter().any(|t| t.ident() == Some("fn")));
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let toks = lex("let s = \"line1\nline2\";\nlet t = 1;");
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!((s.line, s.end_line), (1, 2));
        let t = toks.iter().find(|t| t.ident() == Some("t")).unwrap();
        assert_eq!(t.line, 3);
    }

    #[test]
    fn float_detection() {
        let toks = lex("let a = 1.5; let b = 2; let c = 3.0f32; let d = 1e-3; let r = 0..10;\nlet n = 0usize; let m = 4e2; let h = 0xDEAD;");
        let floats: Vec<bool> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Num { float } => Some(float),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec![true, false, true, true, false, false, false, true, false]);
    }

    #[test]
    fn doc_comments_flagged() {
        let toks = lex("/// doc\n//! inner\n// plain\nx");
        let docs: Vec<bool> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Comment { doc, .. } => Some(*doc),
                _ => None,
            })
            .collect();
        assert_eq!(docs, vec![true, true, false]);
    }

    #[test]
    fn unsafe_in_string_is_not_code() {
        let toks = lex(r#"let msg = "unsafe { code }";"#);
        assert!(!toks.iter().any(|t| t.ident() == Some("unsafe")));
    }
}

//! Workspace module resolver and cross-crate call graph.
//!
//! Nodes are every function the [`crate::parser`] found in every file;
//! edges come from call events resolved against a workspace-wide symbol
//! index. Resolution is deliberately an *over*-approximation (a method
//! call links to every workspace method of that name, modulo a
//! std-collision blocklist): for a panic-reachability analysis, a false
//! edge costs a justified suppression, while a missed edge silently
//! hides a real crash path. The blocklists below are the tuning knob
//! and are documented in DESIGN.md §7.

use crate::parser::CallEvent;
use crate::{Diagnostic, FileCtx};
use std::collections::{BTreeMap, BTreeSet};

/// Workspace rule id: panic sink reachable from a request-path root.
pub const TRANSITIVE_PANIC: &str = "transitive-panic-in-request-path";

/// One function in the workspace graph.
pub struct Node {
    /// Index into the `FileCtx` slice the graph was built from.
    pub file: usize,
    /// Index into that file's `ast.fns`.
    pub fnx: usize,
    /// Crate directory name (`tensor`, `serving`, …), if under `crates/`.
    crate_dir: Option<String>,
    /// Module path within the crate: file modules + in-file `mod`s.
    modules: Vec<String>,
}

/// A resolved call edge.
pub struct Edge {
    pub to: usize,
    /// Call-site line in the caller's file.
    pub line: u32,
    /// The callee name as written (used to match `infallible(…)`
    /// suppressions on the call line).
    pub callee: String,
}

pub struct CallGraph<'w> {
    pub ctxs: &'w [FileCtx],
    pub nodes: Vec<Node>,
    pub edges: Vec<Vec<Edge>>,
}

/// Method names that collide with std/core inherent methods: a `.len()`
/// receiver is overwhelmingly a slice/Vec/str, not a workspace type, and
/// linking it to every workspace `len` would drown the analysis in false
/// reachability. Cost of the blocklist: a *workspace* method with one of
/// these names is invisible to the traversal — keep panicky code out of
/// methods named like std.
const METHOD_BLOCKLIST: &[&str] = &[
    "len", "is_empty", "push", "pop", "get", "get_mut", "insert", "remove", "clear", "clone",
    "iter", "iter_mut", "next", "peek", "to_string", "to_vec", "to_owned", "into_iter", "as_str",
    "as_slice", "as_ref", "as_mut", "as_bytes", "contains", "contains_key", "starts_with",
    "ends_with", "split", "split_at", "split_at_mut", "splitn", "trim", "parse", "extend",
    "drain", "retain", "sort", "sort_by", "sort_by_key", "binary_search", "take", "replace",
    "swap", "min", "max", "abs", "sqrt", "exp", "ln", "powi", "powf", "floor", "ceil", "round",
    "join", "send", "recv", "lock", "read", "write", "flush", "fill", "copy_from_slice",
    "clone_from_slice", "chunks", "chunks_exact", "chunks_mut", "windows", "rev", "zip", "map",
    "filter", "filter_map", "flat_map", "fold", "sum", "product", "count", "last", "first",
    "enumerate", "skip", "step_by", "collect", "unwrap_or", "unwrap_or_else",
    "unwrap_or_default", "map_err", "map_or", "and_then", "or_else", "ok", "err", "ok_or",
    "ok_or_else", "is_some", "is_none", "is_ok", "is_err", "eq", "ne", "cmp", "partial_cmp",
    "hash", "fmt", "finish", "position", "find", "any", "all", "chars", "bytes", "lines",
    "push_str", "resize", "reserve", "truncate", "saturating_sub", "saturating_add",
    "checked_sub", "checked_add", "checked_mul", "wrapping_add", "wrapping_mul", "min_by",
    "max_by", "rem_euclid", "trailing_zeros", "leading_zeros", "to_le_bytes", "to_be_bytes",
    "clamp", "signum", "recip", "mul_add", "copysign", "is_finite", "is_nan", "elapsed",
    "as_nanos", "as_micros", "as_millis", "as_secs_f64", "then", "then_some", "cloned",
    "copied", "unzip", "partition", "entry", "or_insert", "or_insert_with", "or_default",
    "keys", "values", "values_mut", "front", "back", "push_back", "push_front", "pop_front",
    // Atomic / arithmetic method names: `Counter::add`, `Gauge::add` and
    // friends collide with every other `add`/`load`/`store` in the
    // workspace and manufacture absurd edges (a metrics bump "calling"
    // `TensorMap::load`).
    "add", "sub", "load", "store", "fetch_add", "fetch_sub", "swap_bytes",
];

/// `obs` observation macros expand to a registry-constructor call; bridge
/// them so registration panics in `obs::metrics` stay visible.
const MACRO_FN_BRIDGE: &[(&str, &str)] = &[
    ("static_histogram", "histogram"),
    ("static_counter", "counter"),
    ("static_gauge", "gauge"),
];

/// Panic-sink macros. `assert!`-family is deliberately excluded: asserts
/// in deep kernels state invariants the test suite drives; the request
/// path's own asserts are caught as `panic!` once they matter (and the
/// serving token rule still sees serving-crate asserts' unwraps).
const SINK_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Derive (crate dir, module path) from a workspace-relative file path.
/// `crates/tensor/src/ops/simd.rs` → (`tensor`, `["ops","simd"]`).
fn file_modules(path: &str) -> (Option<String>, Vec<String>) {
    let segs: Vec<&str> = path.split('/').collect();
    let crate_dir = (segs.len() > 2 && segs[0] == "crates").then(|| segs[1].to_string());
    let mut mods = Vec::new();
    if let Some(srcpos) = segs.iter().position(|&s| s == "src") {
        for (k, s) in segs[srcpos + 1..].iter().enumerate() {
            let is_last = srcpos + 1 + k == segs.len() - 1;
            if is_last {
                let stem = s.strip_suffix(".rs").unwrap_or(s);
                if stem != "lib" && stem != "main" && stem != "mod" {
                    mods.push(stem.to_string());
                }
            } else if *s != "bin" {
                mods.push(s.to_string());
            }
        }
    }
    (crate_dir, mods)
}

/// Crate idents a `crates/<dir>` crate may be referred to by in code:
/// the dir itself and the `ratatouille_<dir>` package prefix.
fn crate_aliases(dir: &str) -> Vec<String> {
    if dir.starts_with("ratatouille") {
        vec![dir.to_string()]
    } else {
        vec![dir.to_string(), format!("ratatouille_{dir}")]
    }
}

/// Build the cross-crate call graph over already-lexed/parsed files.
pub fn build(ctxs: &[FileCtx]) -> CallGraph<'_> {
    let mut nodes = Vec::new();
    for (fi, ctx) in ctxs.iter().enumerate() {
        let (crate_dir, fmods) = file_modules(&ctx.path);
        for (fx, f) in ctx.ast.fns.iter().enumerate() {
            let mut modules = fmods.clone();
            modules.extend(f.module.iter().cloned());
            nodes.push(Node { file: fi, fnx: fx, crate_dir: crate_dir.clone(), modules });
        }
    }

    // name → node indices (all fns, methods and free alike).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (ni, n) in nodes.iter().enumerate() {
        let f = &ctxs[n.file].ast.fns[n.fnx];
        by_name.entry(f.name.as_str()).or_default().push(ni);
    }

    // Per-file import map: last path segment → full `use` path.
    let use_maps: Vec<BTreeMap<&str, &Vec<String>>> = ctxs
        .iter()
        .map(|ctx| {
            let mut m = BTreeMap::new();
            for u in &ctx.ast.uses {
                if let Some(last) = u.last() {
                    m.insert(last.as_str(), u);
                }
            }
            m
        })
        .collect();

    let g = Resolver { ctxs, nodes: &nodes, by_name, use_maps };
    let mut edges: Vec<Vec<Edge>> = Vec::with_capacity(nodes.len());
    for (ni, n) in nodes.iter().enumerate() {
        let f = &ctxs[n.file].ast.fns[n.fnx];
        let mut out: Vec<Edge> = Vec::new();
        for c in &f.calls {
            for t in g.resolve(c, ni) {
                if t != ni {
                    out.push(Edge { to: t, line: c.line, callee: c.name().to_string() });
                }
            }
        }
        for m in &f.macros {
            if let Some((_, target)) =
                MACRO_FN_BRIDGE.iter().find(|(mac, _)| *mac == m.name())
            {
                for &t in g.by_name.get(target).into_iter().flatten() {
                    if g.nodes[t].crate_dir.as_deref() == Some("obs") {
                        out.push(Edge { to: t, line: m.line, callee: m.name().to_string() });
                    }
                }
            }
        }
        out.sort_by(|a, b| (a.to, a.line).cmp(&(b.to, b.line)));
        out.dedup_by(|a, b| a.to == b.to && a.line == b.line);
        edges.push(out);
    }
    CallGraph { ctxs, nodes, edges }
}

struct Resolver<'w> {
    ctxs: &'w [FileCtx],
    nodes: &'w [Node],
    by_name: BTreeMap<&'w str, Vec<usize>>,
    use_maps: Vec<BTreeMap<&'w str, &'w Vec<String>>>,
}

impl<'w> Resolver<'w> {
    /// All nodes a call event may land on.
    fn resolve(&self, c: &CallEvent, caller: usize) -> Vec<usize> {
        let n = &self.nodes[caller];
        let caller_fn = &self.ctxs[n.file].ast.fns[n.fnx];
        if c.method {
            let name = c.name();
            if METHOD_BLOCKLIST.contains(&name) {
                return Vec::new();
            }
            return self.methods_named(name);
        }
        let mut segs: Vec<String> = c.path.clone();
        while segs.len() > 1
            && matches!(segs[0].as_str(), "crate" | "super" | "self" | "std" | "core" | "alloc")
        {
            // `std::…` paths can never be workspace fns; `crate::`/`self::`
            // prefixes are location noise the suffix match doesn't need.
            if matches!(segs[0].as_str(), "std" | "core" | "alloc") {
                return Vec::new();
            }
            segs.remove(0);
        }
        if segs[0] == "Self" {
            let name = segs.last().cloned().unwrap_or_default();
            if let Some(st) = caller_fn.self_type.as_deref() {
                return self.methods_of(st, &name);
            }
            return Vec::new();
        }
        // Expand the head segment through this file's imports:
        // `par::scatter_mut` + `use ratatouille_tensor::par;` → full path.
        if let Some(full) = self.use_maps[n.file].get(segs[0].as_str()) {
            let mut expanded: Vec<String> = (*full).clone();
            expanded.extend(segs.drain(1..));
            segs = expanded;
        }
        let name = segs.last().cloned().unwrap_or_default();
        if segs.len() == 1 {
            // Bare call. Uppercase names are tuple-struct/variant
            // constructors (`Some`, `Ok`, workspace newtypes) — not fns
            // we can panic inside.
            if name.chars().next().map_or(true, |ch| ch.is_uppercase()) || name == "drop" {
                return Vec::new();
            }
            // Same-file first, then same-crate; never cross-crate for an
            // unqualified name (it would have needed a `use` we'd have
            // seen, or a path).
            let cands = self.by_name.get(name.as_str()).cloned().unwrap_or_default();
            let free: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&t| self.fn_of(t).self_type.is_none())
                .collect();
            let same_file: Vec<usize> =
                free.iter().copied().filter(|&t| self.nodes[t].file == n.file).collect();
            if !same_file.is_empty() {
                return same_file;
            }
            return free
                .into_iter()
                .filter(|&t| {
                    self.nodes[t].crate_dir.is_some()
                        && self.nodes[t].crate_dir == n.crate_dir
                })
                .collect();
        }
        // Qualified path: match candidates whose logical path ends with
        // the written segments (crate idents normalised via aliases).
        let cands = self.by_name.get(name.as_str()).cloned().unwrap_or_default();
        cands
            .into_iter()
            .filter(|&t| self.suffix_matches(t, &segs))
            .collect()
    }

    fn fn_of(&self, ni: usize) -> &'w crate::parser::FnDef {
        let n = &self.nodes[ni];
        &self.ctxs[n.file].ast.fns[n.fnx]
    }

    fn methods_named(&self, name: &str) -> Vec<usize> {
        self.by_name
            .get(name)
            .into_iter()
            .flatten()
            .copied()
            .filter(|&t| self.fn_of(t).self_type.is_some())
            .collect()
    }

    fn methods_of(&self, self_type: &str, name: &str) -> Vec<usize> {
        self.by_name
            .get(name)
            .into_iter()
            .flatten()
            .copied()
            .filter(|&t| self.fn_of(t).self_type.as_deref() == Some(self_type))
            .collect()
    }

    /// Does candidate `t`'s logical path (`[crate] modules [SelfType] name`)
    /// end with the written path `segs`?
    fn suffix_matches(&self, t: usize, segs: &[String]) -> bool {
        let n = &self.nodes[t];
        let f = self.fn_of(t);
        let mut tail: Vec<String> = n.modules.clone();
        if let Some(st) = &f.self_type {
            tail.push(st.clone());
        }
        tail.push(f.name.clone());
        let aliases: Vec<String> = match &n.crate_dir {
            Some(d) => crate_aliases(d),
            None => Vec::new(),
        };
        // Without the crate ident…
        if ends_with(&tail, segs) {
            return true;
        }
        // …and with each alias prepended.
        for a in aliases {
            let mut full = Vec::with_capacity(tail.len() + 1);
            full.push(a);
            full.extend(tail.iter().cloned());
            if ends_with(&full, segs) {
                return true;
            }
        }
        false
    }
}

fn ends_with(hay: &[String], needle: &[String]) -> bool {
    needle.len() <= hay.len() && hay[hay.len() - needle.len()..] == *needle
}

/// Request-path roots: the serving HTTP handlers and the continuous
/// batching step the runner drives per token.
fn is_root(ctx: &FileCtx, f: &crate::parser::FnDef) -> bool {
    if ctx.is_test_line(f.line) {
        return false;
    }
    (ctx.crate_name.as_deref() == Some("serving") && f.name.starts_with("handle"))
        || (f.self_type.as_deref() == Some("BatchGenerator") && f.name == "step")
}

/// `transitive-panic-in-request-path`: BFS from the request-path roots;
/// every `panic!`-family macro, `.unwrap()`/`.expect()` (everywhere) and
/// `[]`-index (serving crate) in a reachable fn is a sink. Edges carrying
/// an `// xlint: infallible(callee): reason` comment on the call line
/// (or the line above) are cut; the suppression is marked used so stale
/// ones fail the build.
pub fn check_transitive_panics(g: &CallGraph<'_>, out: &mut Vec<Diagnostic>) {
    let mut parent: Vec<Option<usize>> = vec![None; g.nodes.len()];
    let mut visited: Vec<bool> = vec![false; g.nodes.len()];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for (ni, n) in g.nodes.iter().enumerate() {
        let ctx = &g.ctxs[n.file];
        if is_root(ctx, &ctx.ast.fns[n.fnx]) {
            visited[ni] = true;
            queue.push_back(ni);
        }
    }
    let mut order: Vec<usize> = Vec::new();
    while let Some(ni) = queue.pop_front() {
        order.push(ni);
        let caller_ctx = &g.ctxs[g.nodes[ni].file];
        for e in &g.edges[ni] {
            // An infallible() suppression on the call line cuts the edge
            // (and is marked used even if the target is reachable some
            // other way — the *edge* is what the comment vouches for).
            if caller_ctx.edge_suppressed(e.line, &e.callee) {
                continue;
            }
            let tn = &g.nodes[e.to];
            let tf = &g.ctxs[tn.file].ast.fns[tn.fnx];
            if g.ctxs[tn.file].is_test_line(tf.line) {
                continue;
            }
            if !visited[e.to] {
                visited[e.to] = true;
                parent[e.to] = Some(ni);
                queue.push_back(e.to);
            }
        }
    }

    let path_to = |ni: usize| -> String {
        let mut names: Vec<String> = Vec::new();
        let mut cur = Some(ni);
        while let Some(k) = cur {
            let n = &g.nodes[k];
            names.push(g.ctxs[n.file].ast.fns[n.fnx].display());
            cur = parent[k];
        }
        names.reverse();
        names.join(" -> ")
    };

    let mut seen: BTreeSet<(usize, u32)> = BTreeSet::new();
    for &ni in &order {
        let n = &g.nodes[ni];
        let ctx = &g.ctxs[n.file];
        let f = &ctx.ast.fns[n.fnx];
        let mut sink = |line: u32, what: String, out: &mut Vec<Diagnostic>| {
            if ctx.is_test_line(line) || !seen.insert((n.file, line)) {
                return;
            }
            out.push(Diagnostic {
                path: ctx.path.clone(),
                line,
                rule: TRANSITIVE_PANIC,
                msg: format!(
                    "{what} is reachable from the request path ({}); return a `Result`, prove \
                     the call infallible with `// xlint: infallible(callee): reason` at the \
                     call site, or justify with `// xlint: allow({TRANSITIVE_PANIC}): reason`",
                    path_to(ni)
                ),
            });
        };
        for c in &f.calls {
            if c.method && matches!(c.name(), "unwrap" | "expect") {
                sink(c.line, format!("`.{}()` in `{}`", c.name(), f.display()), out);
            }
        }
        for m in &f.macros {
            if SINK_MACROS.contains(&m.name()) {
                sink(m.line, format!("`{}!` in `{}`", m.name(), f.display()), out);
            }
        }
        // Indexing is a sink only in the serving crate: a kernel's hot
        // loops index by construction and are covered by the bounds
        // proofs in their own tests; a handler indexing request data is
        // a remote crash.
        if ctx.crate_name.as_deref() == Some("serving") {
            for &l in &f.index_lines {
                sink(l, format!("`[]`-indexing in `{}`", f.display()), out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctxs(files: &[(&str, &str)]) -> Vec<FileCtx> {
        files.iter().map(|(p, s)| FileCtx::new(p, s)).collect()
    }

    fn diag_lines(cs: &[FileCtx]) -> Vec<(String, u32)> {
        let g = build(cs);
        let mut out = Vec::new();
        check_transitive_panics(&g, &mut out);
        out.into_iter().map(|d| (d.path, d.line)).collect()
    }

    #[test]
    fn cross_crate_unwrap_reached_from_handler() {
        let cs = ctxs(&[
            (
                "crates/serving/src/api.rs",
                "use ratatouille_models::sample::decode_one;\n\
                 fn handle_generate() { decode_one(3); }\n",
            ),
            (
                "crates/models/src/sample.rs",
                "pub fn decode_one(x: u32) -> u32 { helper(x) }\n\
                 fn helper(x: u32) -> u32 { Some(x).unwrap() }\n",
            ),
        ]);
        assert_eq!(diag_lines(&cs), vec![("crates/models/src/sample.rs".to_string(), 2)]);
    }

    #[test]
    fn infallible_edge_suppression_cuts_the_path() {
        let cs = ctxs(&[
            (
                "crates/serving/src/api.rs",
                "use ratatouille_models::sample::decode_one;\n\
                 fn handle_generate() {\n\
                     // xlint: infallible(decode_one): input validated above\n\
                     decode_one(3);\n\
                 }\n",
            ),
            (
                "crates/models/src/sample.rs",
                "pub fn decode_one(x: u32) -> u32 { Some(x).unwrap() }\n",
            ),
        ]);
        assert!(diag_lines(&cs).is_empty());
    }

    #[test]
    fn method_call_reaches_impl_across_crates() {
        let cs = ctxs(&[
            (
                "crates/models/src/batch.rs",
                "impl BatchGenerator { fn step(&mut self, m: &M) { m.batch_step(); } }\n",
            ),
            (
                "crates/models/src/gpt2.rs",
                "impl Gpt2Lm {\n    fn batch_step(&self) { panic!(\"kv exhausted\"); }\n}\n",
            ),
        ]);
        assert_eq!(diag_lines(&cs), vec![("crates/models/src/gpt2.rs".to_string(), 2)]);
    }

    #[test]
    fn unreachable_panic_not_flagged_and_tests_exempt() {
        let cs = ctxs(&[
            ("crates/models/src/a.rs", "fn orphan() { panic!(\"never served\"); }\n"),
            (
                "crates/serving/src/api.rs",
                "fn handle_x() { ok(); }\nfn ok() {}\n\
                 #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::handle_x(); panic!(\"x\"); }\n}\n",
            ),
        ]);
        assert!(diag_lines(&cs).is_empty());
    }

    #[test]
    fn indexing_is_a_sink_in_serving_only() {
        let cs = ctxs(&[
            (
                "crates/serving/src/api.rs",
                "fn handle_x(v: &[u8]) -> u8 { kernel(v); v[0] }\n",
            ),
            ("crates/serving/src/util.rs", "pub fn kernel(v: &[u8]) -> u8 { v[1] }\n"),
        ]);
        let lines = diag_lines(&cs);
        assert!(lines.contains(&("crates/serving/src/api.rs".to_string(), 1)));
        assert!(lines.contains(&("crates/serving/src/util.rs".to_string(), 1)));
        let cs2 = ctxs(&[
            ("crates/serving/src/api.rs", "fn handle_x() { ratatouille_models::sample::pick(); }\n"),
            ("crates/models/src/sample.rs", "pub fn pick(v: &[u8]) -> u8 { v[1] }\n"),
        ]);
        assert!(diag_lines(&cs2).is_empty(), "models indexing is not a sink");
    }

    #[test]
    fn obs_macro_bridge_reaches_registry_constructor() {
        let cs = ctxs(&[
            (
                "crates/serving/src/api.rs",
                "fn handle_x() { let h = obs::static_histogram!(\"generate_latency_ns\"); h.observe(1); }\n",
            ),
            (
                "crates/obs/src/metrics.rs",
                "pub fn histogram(name: &str) -> u32 {\n    panic!(\"metric already registered\");\n}\n",
            ),
        ]);
        assert_eq!(diag_lines(&cs), vec![("crates/obs/src/metrics.rs".to_string(), 2)]);
    }

    #[test]
    fn batch_generator_step_is_a_root() {
        let cs = ctxs(&[(
            "crates/models/src/batch.rs",
            "impl BatchGenerator {\n    fn step(&mut self) { self.grow(); }\n    fn grow(&mut self) { self.cap.expect(\"cap set\"); }\n}\n",
        )]);
        assert_eq!(diag_lines(&cs), vec![("crates/models/src/batch.rs".to_string(), 3)]);
    }

    #[test]
    fn file_modules_mapping() {
        assert_eq!(
            file_modules("crates/tensor/src/ops/simd.rs"),
            (Some("tensor".to_string()), vec!["ops".to_string(), "simd".to_string()])
        );
        assert_eq!(file_modules("crates/obs/src/lib.rs"), (Some("obs".to_string()), vec![]));
        assert_eq!(
            file_modules("crates/bench/src/bin/metrics_smoke.rs"),
            (Some("bench".to_string()), vec!["metrics_smoke".to_string()])
        );
        assert_eq!(file_modules("tests/xlint_gate.rs"), (None, vec![]));
    }
}

//! The rule catalogue.
//!
//! Each per-file rule is a [`Rule`] value in [`catalogue`]: an id, a
//! scope predicate, a check against the file's tokens/AST, and whether
//! test code is exempt. Adding a rule is ~20 lines: write a `check_*`
//! function against [`FileCtx`], pick a scope helper, and append an
//! entry to `CATALOGUE` (DESIGN.md §7 walks through an example).
//! The interprocedural rule lives in [`crate::callgraph`] — it needs the
//! whole workspace, not one file — but is listed in
//! [`workspace_rules`] so `--rules` and the suppression checker see it.

use crate::lexer::{Tok, TokKind};
use crate::{callgraph, Diagnostic, FileCtx};

/// Rule id shared with the engine, which lints suppression comments.
pub const ALLOW_NEEDS_JUSTIFICATION: &str = "allow-needs-justification";

/// One lint rule.
pub struct Rule {
    /// Stable id used in diagnostics and `xlint: allow(...)` comments.
    pub id: &'static str,
    /// One-line description (shown by `xlint --rules`).
    pub summary: &'static str,
    /// Skip findings on test-only lines (`#[cfg(test)]`, `tests/`, …).
    pub skip_tests: bool,
    /// Does this rule run on this file at all?
    pub applies: fn(&FileCtx) -> bool,
    /// Emit diagnostics for this file.
    pub check: fn(&FileCtx, &mut Vec<Diagnostic>),
}

/// A workspace-scoped rule (documented here, executed by the engine over
/// the call graph).
pub struct WorkspaceRule {
    pub id: &'static str,
    pub summary: &'static str,
}

/// Crates whose outputs feed generations or metrics: nondeterminism and
/// ad-hoc float reductions here silently break the §4b contract.
/// `bench` and `serving` are deliberately absent (timing is their job).
const RESULT_AFFECTING: &[&str] = &["tensor", "models", "tokenizers", "eval", "recipedb"];

/// Crates where every timing read must go through `obs::Clock`: the
/// result-affecting set plus the instrumented serving/pipeline layers.
/// `obs` (the clock authority), `util` and `bench` are the wall-clock
/// allowlist and stay off this list.
const OBS_TIMED: &[&str] = &[
    "tensor",
    "models",
    "tokenizers",
    "eval",
    "recipedb",
    "serving",
    "ratatouille",
];

/// The blessed kernel directory: float reductions are *defined* here.
const BLESSED_KERNELS: &str = "crates/tensor/src/ops/";

/// Raw-pointer scatter entry points: calling any of these splits one
/// allocation into concurrently-written parts, so the call site must
/// state the non-aliasing argument in a machine-checkable header.
const SCATTER_FNS: &[&str] = &["scatter_mut", "parallel_rows_mut", "from_raw_parts_mut"];

/// Backend hand-off methods: a serving handler calling one of these
/// gives the request away (worker pool or batch runner), so the request
/// span must already be open.
const BACKEND_ENTRY: &[&str] = &["execute", "submit", "submit_traced"];

fn everywhere(_ctx: &FileCtx) -> bool {
    true
}

fn result_affecting(ctx: &FileCtx) -> bool {
    ctx.crate_name
        .as_deref()
        .map(|c| RESULT_AFFECTING.contains(&c))
        .unwrap_or(false)
}

fn result_affecting_outside_kernels(ctx: &FileCtx) -> bool {
    result_affecting(ctx) && !ctx.path.starts_with(BLESSED_KERNELS)
}

fn serving_crate(ctx: &FileCtx) -> bool {
    ctx.crate_name.as_deref() == Some("serving")
}

fn obs_timed(ctx: &FileCtx) -> bool {
    ctx.crate_name
        .as_deref()
        .map(|c| OBS_TIMED.contains(&c))
        .unwrap_or(false)
}

/// The per-file catalogue, in diagnostic-id order.
pub fn catalogue() -> &'static [Rule] {
    &CATALOGUE
}

/// Workspace-scoped rules run by the engine over the call graph.
pub fn workspace_rules() -> &'static [WorkspaceRule] {
    &[WorkspaceRule {
        id: callgraph::TRANSITIVE_PANIC,
        summary: "panic!/unwrap()/expect() (all crates) and []-indexing (serving) reachable \
                  from the serving handlers or BatchGenerator::step on the cross-crate call \
                  graph — cut proven-infallible edges with `xlint: infallible(callee): reason`",
    }]
}

/// Every rule id a suppression comment may legally name.
pub fn all_rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = catalogue().iter().map(|r| r.id).collect();
    ids.extend(workspace_rules().iter().map(|r| r.id));
    ids
}

static CATALOGUE: [Rule; 9] = [
    Rule {
        id: "unsafe-needs-safety-comment",
        summary: "every `unsafe` block/fn/impl must be immediately preceded by a structured \
                  `// SAFETY(disjoint: …)` or `// SAFETY(invariant: …)` header stating the \
                  invariant",
        skip_tests: false,
        applies: everywhere,
        check: check_unsafe_safety_comment,
    },
    Rule {
        id: "unsafe-disjointness-contract",
        summary: "raw-pointer scatter sites (scatter_mut / parallel_rows_mut / \
                  from_raw_parts_mut callers) must carry `// SAFETY(disjoint: <ranges>)` whose \
                  named bindings exist in scope",
        skip_tests: true,
        applies: everywhere,
        check: check_unsafe_disjointness,
    },
    Rule {
        id: "forbidden-nondeterminism",
        summary: "default-hasher maps and env-dependent branching are banned in \
                  result-affecting crates (tensor, models, tokenizers, eval, recipedb)",
        skip_tests: true,
        applies: result_affecting,
        check: check_forbidden_nondeterminism,
    },
    Rule {
        id: "obs-only-timing",
        summary: "raw wall clocks (`Instant::now`, `SystemTime`) are banned in instrumented \
                  crates — take stamps via `obs::Clock` so telemetry stays write-only",
        skip_tests: true,
        applies: obs_timed,
        check: check_obs_only_timing,
    },
    Rule {
        id: "no-panic-in-request-path",
        summary: "unwrap()/expect()/panic! are banned in `crates/serving` — map failures to \
                  4xx/5xx responses",
        skip_tests: true,
        applies: serving_crate,
        check: check_no_panic,
    },
    Rule {
        id: "trace-before-backend",
        summary: "serving `handle*` roots must record a request-trace phase \
                  (`record_phase`) before handing the request to a backend \
                  (`.execute()` / `.submit()` / `.submit_traced()`) so queue wait is \
                  attributable per request",
        skip_tests: true,
        applies: serving_crate,
        check: check_trace_before_backend,
    },
    Rule {
        id: "float-reduction-order",
        summary: "ad-hoc f32 sum()/fold() outside tensor/src/ops — use the deterministic \
                  accumulation helpers so reduction order stays pinned",
        skip_tests: true,
        applies: result_affecting_outside_kernels,
        check: check_float_reduction,
    },
    Rule {
        id: "accum-discipline",
        summary: "f32/F16 `+=` loops outside util::accum and the blessed kernels drift with \
                  iteration order — route the reduction through the order-pinned helpers",
        skip_tests: true,
        applies: result_affecting_outside_kernels,
        check: check_accum_discipline,
    },
    Rule {
        id: ALLOW_NEEDS_JUSTIFICATION,
        summary: "#[allow(...)] attributes and `xlint: allow(...)` suppressions must carry a \
                  justification",
        skip_tests: false,
        applies: everywhere,
        check: check_allow_justified,
    },
];

/// Non-comment tokens, in order.
fn code<'c>(ctx: &'c FileCtx) -> Vec<&'c Tok> {
    ctx.toks.iter().filter(|t| !t.is_comment()).collect()
}

fn diag(ctx: &FileCtx, line: u32, rule: &'static str, msg: String) -> Diagnostic {
    Diagnostic {
        path: ctx.path.clone(),
        line,
        rule,
        msg,
    }
}

// ---------------------------------------------------------------------------
// SAFETY headers (shared by unsafe-needs-safety-comment and
// unsafe-disjointness-contract)
// ---------------------------------------------------------------------------

/// How far above an `unsafe` token / scatter call the SAFETY header may
/// sit (attributes, visibility and multi-line comment bodies intervene).
const SAFETY_SCAN_LINES: u32 = 8;

/// A SAFETY comment found near a site.
enum Safety {
    /// Old prose form: `// SAFETY: …` — predates the structured headers.
    Legacy,
    /// `// SAFETY(kind: args)`; `closed` is false when the `)` is missing
    /// from the header line.
    Structured { kind: String, args: String, closed: bool },
}

fn parse_safety(text: &str) -> Option<Safety> {
    let t = text.trim_start();
    let rest = t.strip_prefix("SAFETY")?;
    if rest.starts_with(':') {
        return Some(Safety::Legacy);
    }
    let body = rest.strip_prefix('(')?;
    let (body, closed) = match body.rfind(')') {
        Some(p) => (&body[..p], true),
        None => (body, false),
    };
    let (kind, args) = match body.split_once(':') {
        Some((k, a)) => (k.trim().to_string(), a.trim().to_string()),
        None => (body.trim().to_string(), String::new()),
    };
    Some(Safety::Structured { kind, args, closed })
}

/// Find the SAFETY header nearest above `line` (or on it), within the
/// scan window, stopping at completed statements.
fn safety_near(ctx: &FileCtx, line: u32) -> Option<Safety> {
    if let Some(s) = ctx.comments_on(line).find_map(parse_safety) {
        return Some(s);
    }
    let mut l = line.saturating_sub(1);
    for _ in 0..SAFETY_SCAN_LINES {
        if l == 0 {
            break;
        }
        if let Some(s) = ctx.comments_on(l).find_map(parse_safety) {
            return Some(s);
        }
        if ctx.line_has_code(l) {
            // A completed statement/item above ends the search; a
            // continuation head (e.g. `let x =`) lets it keep climbing.
            if matches!(ctx.line_end_punct(l), Some(';') | Some('{') | Some('}')) {
                break;
            }
        }
        l -= 1;
    }
    None
}

// ---------------------------------------------------------------------------
// unsafe-needs-safety-comment
// ---------------------------------------------------------------------------

fn check_unsafe_safety_comment(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for t in code(ctx) {
        if t.ident() != Some("unsafe") {
            continue;
        }
        let msg = match safety_near(ctx, t.line) {
            None => {
                "`unsafe` without an immediately preceding `// SAFETY(…)` header stating the \
                 invariant: `SAFETY(disjoint: <ranges>)` for non-aliasing writes, \
                 `SAFETY(invariant: …)` for everything else (pointer validity/lifetime, cpuid \
                 gate, latch ordering, …)"
            }
            Some(Safety::Legacy) => {
                "legacy prose `// SAFETY:` comment; restate it as a structured \
                 `SAFETY(disjoint: <ranges>)` or `SAFETY(invariant: …)` header so the contract \
                 is machine-checkable"
            }
            Some(Safety::Structured { kind, args, closed }) => {
                if !closed || args.is_empty() || !matches!(kind.as_str(), "disjoint" | "invariant")
                {
                    "malformed SAFETY header; expected `SAFETY(disjoint: <ranges>)` or \
                     `SAFETY(invariant: <argument>)` with the `)` on the same comment line"
                } else {
                    continue;
                }
            }
        };
        out.push(diag(ctx, t.line, "unsafe-needs-safety-comment", msg.to_string()));
    }
}

// ---------------------------------------------------------------------------
// unsafe-disjointness-contract
// ---------------------------------------------------------------------------

/// Split `args` on top-level commas (brackets/parens nest).
fn split_ranges(args: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, c) in args.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(args[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(args[start..].trim());
    parts
}

/// Leading identifier of a range expression (`parts[task]` → `parts`,
/// `&mut out[a..b]` → `out`).
fn leading_ident(range: &str) -> Option<&str> {
    let rest = range
        .trim_start_matches(|c: char| c == '&' || c == '*' || c == '(' || c.is_whitespace());
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    (end > 0 && !rest.as_bytes()[0].is_ascii_digit()).then(|| &rest[..end])
}

fn check_unsafe_disjointness(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "unsafe-disjointness-contract";
    for f in &ctx.ast.fns {
        for c in &f.calls {
            if !SCATTER_FNS.contains(&c.name()) {
                continue;
            }
            match safety_near(ctx, c.line) {
                None => out.push(diag(
                    ctx,
                    c.line,
                    RULE,
                    format!(
                        "`{}` scatter site without a `// SAFETY(disjoint: <ranges>)` header \
                         naming the non-overlapping writes",
                        c.name()
                    ),
                )),
                Some(Safety::Legacy) => out.push(diag(
                    ctx,
                    c.line,
                    RULE,
                    format!(
                        "`{}` scatter site has a prose `SAFETY:` comment; restate the \
                         non-aliasing argument as `SAFETY(disjoint: <ranges>)` so the named \
                         bindings are checked against scope",
                        c.name()
                    ),
                )),
                Some(Safety::Structured { kind, args, closed }) => {
                    if kind != "disjoint" {
                        out.push(diag(
                            ctx,
                            c.line,
                            RULE,
                            format!(
                                "`{}` scatter site needs a `SAFETY(disjoint: …)` header, not \
                                 `SAFETY({kind}: …)` — name the ranges that never overlap",
                                c.name()
                            ),
                        ));
                        continue;
                    }
                    if !closed || args.is_empty() {
                        out.push(diag(
                            ctx,
                            c.line,
                            RULE,
                            "malformed `SAFETY(disjoint: …)` header; expected a comma-separated \
                             range list with the `)` on the same comment line"
                                .to_string(),
                        ));
                        continue;
                    }
                    for range in split_ranges(&args) {
                        match leading_ident(range) {
                            None => out.push(diag(
                                ctx,
                                c.line,
                                RULE,
                                format!(
                                    "disjointness range `{range}` does not start with a \
                                     binding name; write `<binding>[<range>]` per written part"
                                ),
                            )),
                            Some(id) => {
                                if !f.binds(id) {
                                    out.push(diag(
                                        ctx,
                                        c.line,
                                        RULE,
                                        format!(
                                            "disjointness range `{range}` names `{id}`, which \
                                             is not bound in `{}` — the header must reference \
                                             live bindings so it rots loudly",
                                            f.display()
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// forbidden-nondeterminism
// ---------------------------------------------------------------------------

/// `toks[i..]` matches the identifier/punct sequence `pat`, where idents
/// are matched by name and `":"`-style entries by punctuation.
fn seq_matches(toks: &[&Tok], i: usize, pat: &[&str]) -> bool {
    if i + pat.len() > toks.len() {
        return false;
    }
    pat.iter().enumerate().all(|(k, p)| {
        let t = toks[i + k];
        if p.len() == 1 && !p.chars().next().unwrap().is_ascii_alphanumeric() {
            t.is_punct(p.chars().next().unwrap())
        } else {
            t.ident() == Some(*p)
        }
    })
}

fn check_forbidden_nondeterminism(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = code(ctx);
    let push = |out: &mut Vec<Diagnostic>, line: u32, what: &str, fix: &str| {
        out.push(diag(
            ctx,
            line,
            "forbidden-nondeterminism",
            format!("{what} is banned in result-affecting crates; {fix}"),
        ));
    };
    for i in 0..toks.len() {
        let line = toks[i].line;
        if seq_matches(&toks, i, &["env", ":", ":", "var"])
            || seq_matches(&toks, i, &["env", ":", ":", "vars"])
            || seq_matches(&toks, i, &["env", ":", ":", "var_os"])
            || seq_matches(&toks, i, &["env", "!"])
            || seq_matches(&toks, i, &["option_env", "!"])
        {
            push(out, line, "environment-dependent branching", "plumb configuration through typed options instead");
        } else if matches!(toks[i].ident(), Some("HashMap") | Some("HashSet")) {
            push(out, line, "`HashMap`/`HashSet` with the default (randomly seeded) hasher", "use `ratatouille_util::collections::{DetMap, DetSet}` for deterministic iteration order");
        }
    }
}

// ---------------------------------------------------------------------------
// obs-only-timing
// ---------------------------------------------------------------------------

fn check_obs_only_timing(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = code(ctx);
    for i in 0..toks.len() {
        let line = toks[i].line;
        if toks[i].ident() == Some("SystemTime") {
            out.push(diag(
                ctx,
                line,
                "obs-only-timing",
                "`SystemTime` in an instrumented crate; take stamps via `obs::Clock::now()` \
                 so all timing flows through the write-only telemetry layer"
                    .to_string(),
            ));
        } else if seq_matches(&toks, i, &["Instant", ":", ":", "now"]) {
            out.push(diag(
                ctx,
                line,
                "obs-only-timing",
                "raw `Instant::now` in an instrumented crate; use `obs::Clock::now()` (and an \
                 obs histogram/span) so there is one timing idiom repo-wide"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// no-panic-in-request-path (AST-mounted: only real call/macro events
// fire, so idents inside strings/macros-by-name no longer false-positive)
// ---------------------------------------------------------------------------

fn check_no_panic(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for f in &ctx.ast.fns {
        for c in &f.calls {
            if c.method && matches!(c.name(), "unwrap" | "expect") {
                out.push(diag(
                    ctx,
                    c.line,
                    "no-panic-in-request-path",
                    format!(
                        "`.{}()` can take down a serving worker; map the failure to an error \
                         response (4xx/5xx) or propagate a `Result`",
                        c.name()
                    ),
                ));
            }
        }
        for m in &f.macros {
            if matches!(m.name(), "panic" | "unreachable" | "todo" | "unimplemented") {
                out.push(diag(
                    ctx,
                    m.line,
                    "no-panic-in-request-path",
                    format!("`{}!` in the serving path; return an error response instead", m.name()),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// trace-before-backend
// ---------------------------------------------------------------------------

fn check_trace_before_backend(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for f in &ctx.ast.fns {
        if !f.name.starts_with("handle") {
            continue;
        }
        // Calls are in source order: a `record_phase` seen before the
        // first backend hand-off means the span is open in time.
        let mut span_open = false;
        for c in &f.calls {
            if c.name() == "record_phase" {
                span_open = true;
            } else if c.method && BACKEND_ENTRY.contains(&c.name()) {
                if !span_open {
                    out.push(diag(
                        ctx,
                        c.line,
                        "trace-before-backend",
                        format!(
                            "`{}` hands the request to a backend via `.{}()` without first \
                             recording a request-trace phase; record `Phase::Enqueue` on the \
                             request's trace (`obs::reqtrace::TraceSink::record_phase`) before \
                             the hand-off so queue wait shows up in `/debug/requests/<id>`",
                            f.display(),
                            c.name()
                        ),
                    ));
                }
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// float-reduction-order
// ---------------------------------------------------------------------------

fn check_float_reduction(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = code(ctx);
    for i in 0..toks.len() {
        if !toks[i].is_punct('.')
            || !matches!(
                toks.get(i + 1).and_then(|t| t.ident()),
                Some("sum") | Some("fold")
            )
        {
            continue;
        }
        let name = toks[i + 1].ident().unwrap_or("");
        let line = toks[i + 1].line;
        // `.sum::<T>()` — the turbofish names the accumulator type.
        let mut j = i + 2;
        let mut turbofish_f32 = None;
        if seq_matches(&toks, j, &[":", ":", "<"]) {
            j += 3;
            let mut depth = 1usize;
            let mut saw_f32 = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('<') {
                    depth += 1;
                } else if toks[j].is_punct('>') {
                    depth -= 1;
                } else if toks[j].ident() == Some("f32") {
                    saw_f32 = true;
                }
                j += 1;
            }
            turbofish_f32 = Some(saw_f32);
        }
        let is_f32 = match turbofish_f32 {
            Some(explicit) => explicit,
            None => statement_mentions_f32(&toks, i),
        };
        if is_f32 {
            out.push(diag(
                ctx,
                line,
                "float-reduction-order",
                format!(
                    "ad-hoc f32 `{name}` reduction outside the blessed kernels; use \
                     `ratatouille_util::accum::{{sum_f32, max_f32, max_abs_f32}}` \
                     (re-exported at `ratatouille_tensor::ops::reduce`) so the \
                     accumulation order stays pinned"
                ),
            ));
        }
    }
}

/// Does the statement around token `i` mention `f32` or a float literal?
/// The statement span is bounded by `;`/`{`/`}` on both sides — close
/// enough for a lexical rule, and wrong only inside nested closures.
fn statement_mentions_f32(toks: &[&Tok], i: usize) -> bool {
    let boundary = |t: &Tok| t.is_punct(';') || t.is_punct('{') || t.is_punct('}');
    let start = (0..i).rev().find(|&k| boundary(toks[k])).map_or(0, |k| k + 1);
    let end = (i..toks.len())
        .find(|&k| boundary(toks[k]))
        .unwrap_or(toks.len());
    toks[start..end].iter().any(|t| {
        t.ident() == Some("f32") || matches!(t.kind, TokKind::Num { float: true })
    })
}

// ---------------------------------------------------------------------------
// accum-discipline
// ---------------------------------------------------------------------------

fn check_accum_discipline(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for f in &ctx.ast.fns {
        for a in &f.adds {
            // Float evidence: the statement itself mentions f32/F16 or a
            // float literal, or the accumulator binding was declared with
            // one — that is how reductions hide behind helper fns (the
            // `+=` line looks typeless but the `let` above does not).
            let lhs_float = a
                .lhs
                .as_deref()
                .map(|n| f.bindings.iter().any(|b| b.name == n && b.float_hint))
                .unwrap_or(false);
            if !(a.float_stmt || lhs_float) {
                continue;
            }
            out.push(diag(
                ctx,
                a.line,
                "accum-discipline",
                format!(
                    "f32/F16 `+=` accumulation in a loop in `{}`; reduction order drifts with \
                     iteration strategy — use `ratatouille_util::accum` (order-pinned) or move \
                     the loop into the blessed kernels (`crates/tensor/src/ops/`)",
                    f.display()
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// allow-needs-justification (attribute half; suppression comments are
// linted by the engine, which owns the used/unused bookkeeping)
// ---------------------------------------------------------------------------

fn check_allow_justified(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = code(ctx);
    for i in 0..toks.len() {
        let hit = seq_matches(&toks, i, &["#", "[", "allow"])
            || seq_matches(&toks, i, &["#", "!", "[", "allow"]);
        if !hit {
            continue;
        }
        let line = toks[i].line;
        let justified = ctx.comments_on(line).any(|c| !c.is_empty())
            || (line > 1 && ctx.is_comment_only_line(line - 1));
        if !justified {
            out.push(diag(
                ctx,
                line,
                ALLOW_NEEDS_JUSTIFICATION,
                "`#[allow(...)]` without a justification; add a comment on the same or the \
                 previous line saying why the lint is wrong here"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint_source;

    fn rules_hit(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        lint_source(path, src)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn unsafe_without_safety_flagged() {
        let hits = rules_hit(
            "crates/tensor/src/x.rs",
            "fn f() {\n    let p = 0 as *const f32;\n    let _ = unsafe { *p };\n}\n",
        );
        assert_eq!(hits, vec![("unsafe-needs-safety-comment", 3)]);
    }

    #[test]
    fn unsafe_with_structured_safety_clean() {
        let src = "fn f(p: *const f32) -> f32 {\n    // SAFETY(invariant: caller guarantees p is valid)\n    unsafe { *p }\n}\n";
        assert!(rules_hit("crates/tensor/src/x.rs", src).is_empty());
    }

    #[test]
    fn legacy_prose_safety_flagged_as_unstructured() {
        let src = "fn f(p: *const f32) -> f32 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        let hits = rules_hit("crates/tensor/src/x.rs", src);
        assert_eq!(hits, vec![("unsafe-needs-safety-comment", 3)]);
    }

    #[test]
    fn malformed_safety_header_flagged() {
        let src = "fn f(p: *const f32) -> f32 {\n    // SAFETY(disjoint: )\n    unsafe { *p }\n}\n";
        let hits = rules_hit("crates/tensor/src/x.rs", src);
        assert_eq!(hits, vec![("unsafe-needs-safety-comment", 3)]);
        let bad_kind = "fn f(p: *const f32) -> f32 {\n    // SAFETY(trust-me: it works)\n    unsafe { *p }\n}\n";
        assert_eq!(
            rules_hit("crates/tensor/src/x.rs", bad_kind),
            vec![("unsafe-needs-safety-comment", 3)]
        );
    }

    #[test]
    fn safety_climbs_past_attributes_and_continuations() {
        let src = "// SAFETY(invariant: feature gate checked by caller)\n#[target_feature(enable = \"avx2\")]\nunsafe fn g() {}\n\nfn h() {\n    // SAFETY(invariant: latch outlives the borrow)\n    let x: usize =\n        unsafe { core::mem::transmute(1usize) };\n    let _ = x;\n}\n";
        assert!(rules_hit("crates/tensor/src/x.rs", src).is_empty(), "{:?}", rules_hit("crates/tensor/src/x.rs", src));
    }

    #[test]
    fn consecutive_unsafe_impls_need_their_own_comments() {
        let src = "struct P;\n// SAFETY(invariant: single owner)\nunsafe impl Send for P {}\nunsafe impl Sync for P {}\n";
        assert_eq!(
            rules_hit("crates/tensor/src/x.rs", src),
            vec![("unsafe-needs-safety-comment", 4)]
        );
    }

    #[test]
    fn scatter_site_without_disjoint_header_flagged() {
        let src = "fn f(parts: &mut [u8]) {\n    scatter_mut(parts, |i, p| { let _ = (i, p); });\n}\n";
        let hits = rules_hit("crates/models/src/x.rs", src);
        assert_eq!(hits, vec![("unsafe-disjointness-contract", 2)]);
    }

    #[test]
    fn scatter_site_with_disjoint_header_clean() {
        let src = "fn f(parts: &mut [u8]) {\n    // SAFETY(disjoint: parts[i] — one element per task index)\n    scatter_mut(parts, |i, p| { let _ = (i, p); });\n}\n";
        assert!(rules_hit("crates/models/src/x.rs", src).is_empty());
    }

    #[test]
    fn disjoint_header_with_unknown_binding_flagged() {
        let src = "fn f(parts: &mut [u8]) {\n    // SAFETY(disjoint: rows[0..4])\n    scatter_mut(parts, |i, p| { let _ = (i, p); });\n}\n";
        let hits = rules_hit("crates/models/src/x.rs", src);
        assert_eq!(hits, vec![("unsafe-disjointness-contract", 3)]);
    }

    #[test]
    fn disjoint_header_wrong_kind_flagged() {
        let src = "fn f(parts: &mut [u8]) {\n    // SAFETY(invariant: pool outlives tasks)\n    scatter_mut(parts, |i, p| { let _ = (i, p); });\n}\n";
        let hits = rules_hit("crates/models/src/x.rs", src);
        assert_eq!(hits, vec![("unsafe-disjointness-contract", 3)]);
    }

    #[test]
    fn disjoint_header_checks_closure_and_let_bindings() {
        let src = "fn f(buf: &mut [u8], n: usize) {\n    let (lo, hi) = buf.split_at_mut(n);\n    // SAFETY(disjoint: lo[..n], hi[n..])\n    parallel_rows_mut(lo, hi);\n}\n";
        assert!(rules_hit("crates/tensor/src/x.rs", src).is_empty());
    }

    #[test]
    fn nondeterminism_scoped_to_result_affecting_crates() {
        let src = "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }\n";
        assert_eq!(rules_hit("crates/eval/src/x.rs", src).len(), 3);
        assert!(rules_hit("crates/serving/src/x.rs", src).is_empty());
        assert!(rules_hit("crates/bench/src/x.rs", src).is_empty());
        assert!(rules_hit("src/lib.rs", src).is_empty());
    }

    #[test]
    fn instant_now_flagged_but_import_alone_is_not() {
        assert!(rules_hit("crates/models/src/x.rs", "use std::time::Instant;\n").is_empty());
        let hits = rules_hit(
            "crates/models/src/x.rs",
            "fn f() -> std::time::Instant { std::time::Instant::now() }\n",
        );
        assert_eq!(hits, vec![("obs-only-timing", 1)]);
    }

    #[test]
    fn obs_only_timing_scoped_to_instrumented_crates() {
        let src = "fn f() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }\n";
        assert_eq!(
            rules_hit("crates/serving/src/x.rs", src),
            vec![("obs-only-timing", 1)]
        );
        assert_eq!(
            rules_hit("crates/ratatouille/src/x.rs", src),
            vec![("obs-only-timing", 1)]
        );
        // the wall-clock allowlist: obs (the clock authority), util, bench
        assert!(rules_hit("crates/obs/src/clock.rs", src).is_empty());
        assert!(rules_hit("crates/util/src/x.rs", src).is_empty());
        assert!(rules_hit("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn system_time_flagged_as_obs_only_timing() {
        let hits = rules_hit(
            "crates/eval/src/x.rs",
            "fn f() { let _ = std::time::SystemTime::now(); }\n",
        );
        assert_eq!(hits, vec![("obs-only-timing", 1)]);
    }

    #[test]
    fn env_branching_flagged() {
        let hits = rules_hit(
            "crates/tokenizers/src/x.rs",
            "fn f() -> bool { std::env::var(\"X\").is_ok() }\n",
        );
        assert_eq!(hits, vec![("forbidden-nondeterminism", 1)]);
    }

    #[test]
    fn test_code_exempt_from_nondeterminism() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = std::env::var(\"TMPDIR\");\n    }\n}\n";
        assert!(rules_hit("crates/recipedb/src/x.rs", src).is_empty());
    }

    #[test]
    fn serving_panics_flagged() {
        let src = "fn handle() {\n    let v: Option<u32> = None;\n    let _ = v.unwrap();\n    let _ = v.expect(\"x\");\n    panic!(\"boom\");\n}\n";
        let hits = rules_hit("crates/serving/src/x.rs", src);
        assert_eq!(
            hits,
            vec![
                ("no-panic-in-request-path", 3),
                ("no-panic-in-request-path", 4),
                ("no-panic-in-request-path", 5),
            ]
        );
    }

    #[test]
    fn unwrap_or_default_not_flagged() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or_default() }\n";
        assert!(rules_hit("crates/serving/src/x.rs", src).is_empty());
    }

    #[test]
    fn untraced_backend_handoff_flagged() {
        let src = "fn handle_generate(pool: &Pool, job: Job) {\n    pool.execute(job);\n}\n";
        assert_eq!(
            rules_hit("crates/serving/src/x.rs", src),
            vec![("trace-before-backend", 2)]
        );
    }

    #[test]
    fn traced_backend_handoff_clean() {
        let src = "fn handle_generate(t: &Trace, pool: &Pool, job: Job) {\n    t.record_phase(Phase::Enqueue, 0, 0);\n    pool.execute(job);\n}\n";
        assert!(rules_hit("crates/serving/src/x.rs", src).is_empty());
    }

    #[test]
    fn trace_rule_only_covers_serving_handlers() {
        // Not a `handle*` root: the worker owns an already-open span.
        let worker = "fn run_worker(pool: &Pool, job: Job) {\n    pool.execute(job);\n}\n";
        assert!(rules_hit("crates/serving/src/x.rs", worker).is_empty());
        // Same source outside the serving crate: out of scope.
        let src = "fn handle_generate(pool: &Pool, job: Job) {\n    pool.execute(job);\n}\n";
        assert!(rules_hit("crates/models/src/x.rs", src).is_empty());
        // A handler with no backend hand-off has nothing to gate.
        let pure = "fn handle_health() -> Response {\n    render()\n}\n";
        assert!(rules_hit("crates/serving/src/x.rs", pure).is_empty());
    }

    #[test]
    fn float_sum_flagged_outside_kernels_only() {
        let src = "fn f(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }\n";
        assert_eq!(
            rules_hit("crates/models/src/x.rs", src),
            vec![("float-reduction-order", 1)]
        );
        assert!(rules_hit("crates/tensor/src/ops/reduce.rs", src).is_empty());
    }

    #[test]
    fn usize_sum_not_flagged() {
        let src = "fn f(xs: &[usize]) -> f32 { xs.iter().sum::<usize>() as f32 }\n";
        assert!(rules_hit("crates/recipedb/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_fold_flagged_via_literal() {
        let src = "fn f(xs: &[f32]) -> f32 { xs.iter().fold(0.0f32, |m, &v| m.max(v)) }\n";
        assert_eq!(
            rules_hit("crates/tensor/src/x.rs", src),
            vec![("float-reduction-order", 1)]
        );
    }

    #[test]
    fn integer_sum_without_float_context_clean() {
        let src = "fn f(xs: &[usize]) -> usize { xs.iter().sum() }\n";
        assert!(rules_hit("crates/models/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_accum_loop_flagged() {
        let src = "fn dot(a: &[f32], b: &[f32]) -> f32 {\n    let mut acc = 0.0f32;\n    for i in 0..a.len() {\n        acc += a[i] * b[i];\n    }\n    acc\n}\n";
        assert_eq!(
            rules_hit("crates/models/src/x.rs", src),
            vec![("accum-discipline", 4)]
        );
    }

    #[test]
    fn float_accum_hidden_behind_binding_flagged() {
        // the `+=` line itself is typeless; the hint rides on the binding
        let src = "fn total(rows: &[Vec<f32>]) -> f32 {\n    let mut t: f32 = Default::default();\n    for r in rows {\n        t += head(r);\n    }\n    t\n}\nfn head(r: &[f32]) -> f32 { r[0] }\n";
        assert_eq!(
            rules_hit("crates/models/src/x.rs", src),
            vec![("accum-discipline", 4)]
        );
    }

    #[test]
    fn integer_accum_loop_clean() {
        let src = "fn count(xs: &[usize]) -> usize {\n    let mut n = 0usize;\n    for x in xs {\n        n += *x;\n    }\n    n\n}\n";
        assert!(rules_hit("crates/models/src/x.rs", src).is_empty());
    }

    #[test]
    fn accum_in_blessed_kernels_clean() {
        let src = "pub fn sum(xs: &[f32]) -> f32 {\n    let mut acc = 0.0f32;\n    for x in xs {\n        acc += *x;\n    }\n    acc\n}\n";
        assert!(rules_hit("crates/tensor/src/ops/reduce.rs", src).is_empty());
    }

    #[test]
    fn allow_attr_needs_comment() {
        let src = "#[allow(dead_code)]\nfn f() {}\n";
        assert_eq!(
            rules_hit("src/lib.rs", src),
            vec![("allow-needs-justification", 1)]
        );
        let ok = "// the harness keeps this symbol for downstream tests\n#[allow(dead_code)]\nfn f() {}\n";
        assert!(rules_hit("src/lib.rs", ok).is_empty());
        let trailing = "#[allow(dead_code)] // kept for the ffi surface\nfn f() {}\n";
        assert!(rules_hit("src/lib.rs", trailing).is_empty());
    }
}

//! The rule catalogue.
//!
//! Each rule is a [`Rule`] value in [`catalogue`]: an id, a scope
//! predicate, a token-level check, and whether test code is exempt.
//! Adding a rule is ~20 lines: write a `check_*` function against
//! [`FileCtx`], pick a scope helper, and append an entry to `CATALOGUE`
//! (DESIGN.md §7 walks through an example).

use crate::lexer::{Tok, TokKind};
use crate::{Diagnostic, FileCtx};

/// Rule id shared with the engine, which lints suppression comments.
pub const ALLOW_NEEDS_JUSTIFICATION: &str = "allow-needs-justification";

/// One lint rule.
pub struct Rule {
    /// Stable id used in diagnostics and `xlint: allow(...)` comments.
    pub id: &'static str,
    /// One-line description (shown by `xlint --rules`).
    pub summary: &'static str,
    /// Skip findings on test-only lines (`#[cfg(test)]`, `tests/`, …).
    pub skip_tests: bool,
    /// Does this rule run on this file at all?
    pub applies: fn(&FileCtx) -> bool,
    /// Emit diagnostics for this file.
    pub check: fn(&FileCtx, &mut Vec<Diagnostic>),
}

/// Crates whose outputs feed generations or metrics: nondeterminism and
/// ad-hoc float reductions here silently break the §4b contract.
/// `bench` and `serving` are deliberately absent (timing is their job).
const RESULT_AFFECTING: &[&str] = &["tensor", "models", "tokenizers", "eval", "recipedb"];

/// Crates where every timing read must go through `obs::Clock`: the
/// result-affecting set plus the instrumented serving/pipeline layers.
/// `obs` (the clock authority), `util` and `bench` are the wall-clock
/// allowlist and stay off this list.
const OBS_TIMED: &[&str] = &[
    "tensor",
    "models",
    "tokenizers",
    "eval",
    "recipedb",
    "serving",
    "ratatouille",
];

/// The blessed kernel directory: float reductions are *defined* here.
const BLESSED_KERNELS: &str = "crates/tensor/src/ops/";

fn everywhere(_ctx: &FileCtx) -> bool {
    true
}

fn result_affecting(ctx: &FileCtx) -> bool {
    ctx.crate_name
        .as_deref()
        .map(|c| RESULT_AFFECTING.contains(&c))
        .unwrap_or(false)
}

fn result_affecting_outside_kernels(ctx: &FileCtx) -> bool {
    result_affecting(ctx) && !ctx.path.starts_with(BLESSED_KERNELS)
}

fn serving_crate(ctx: &FileCtx) -> bool {
    ctx.crate_name.as_deref() == Some("serving")
}

fn obs_timed(ctx: &FileCtx) -> bool {
    ctx.crate_name
        .as_deref()
        .map(|c| OBS_TIMED.contains(&c))
        .unwrap_or(false)
}

/// The full catalogue, in diagnostic-id order.
pub fn catalogue() -> &'static [Rule] {
    &CATALOGUE
}

static CATALOGUE: [Rule; 6] = [
    Rule {
        id: "unsafe-needs-safety-comment",
        summary: "every `unsafe` block/fn/impl must be immediately preceded by a `// SAFETY:` \
                  comment stating the invariant",
        skip_tests: false,
        applies: everywhere,
        check: check_unsafe_safety_comment,
    },
    Rule {
        id: "forbidden-nondeterminism",
        summary: "default-hasher maps and env-dependent branching are banned in \
                  result-affecting crates (tensor, models, tokenizers, eval, recipedb)",
        skip_tests: true,
        applies: result_affecting,
        check: check_forbidden_nondeterminism,
    },
    Rule {
        id: "obs-only-timing",
        summary: "raw wall clocks (`Instant::now`, `SystemTime`) are banned in instrumented \
                  crates — take stamps via `obs::Clock` so telemetry stays write-only",
        skip_tests: true,
        applies: obs_timed,
        check: check_obs_only_timing,
    },
    Rule {
        id: "no-panic-in-request-path",
        summary: "unwrap()/expect()/panic! are banned in `crates/serving` — map failures to \
                  4xx/5xx responses",
        skip_tests: true,
        applies: serving_crate,
        check: check_no_panic,
    },
    Rule {
        id: "float-reduction-order",
        summary: "ad-hoc f32 sum()/fold() outside tensor/src/ops — use the deterministic \
                  accumulation helpers so reduction order stays pinned",
        skip_tests: true,
        applies: result_affecting_outside_kernels,
        check: check_float_reduction,
    },
    Rule {
        id: ALLOW_NEEDS_JUSTIFICATION,
        summary: "#[allow(...)] attributes and `xlint: allow(...)` suppressions must carry a \
                  justification",
        skip_tests: false,
        applies: everywhere,
        check: check_allow_justified,
    },
];

/// Non-comment tokens, in order.
fn code<'c>(ctx: &'c FileCtx) -> Vec<&'c Tok> {
    ctx.toks.iter().filter(|t| !t.is_comment()).collect()
}

fn diag(ctx: &FileCtx, line: u32, rule: &'static str, msg: String) -> Diagnostic {
    Diagnostic {
        path: ctx.path.clone(),
        line,
        rule,
        msg,
    }
}

// ---------------------------------------------------------------------------
// unsafe-needs-safety-comment
// ---------------------------------------------------------------------------

/// How far above an `unsafe` token the `// SAFETY:` comment may sit
/// (attributes, visibility and multi-line comment bodies intervene).
const SAFETY_SCAN_LINES: u32 = 8;

fn has_safety_comment(ctx: &FileCtx, line: u32) -> bool {
    let is_safety = |c: &str| c.trim_start().starts_with("SAFETY:");
    if ctx.comments_on(line).any(|c| is_safety(c)) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    for _ in 0..SAFETY_SCAN_LINES {
        if l == 0 {
            break;
        }
        if ctx.comments_on(l).any(|c| is_safety(c)) {
            return true;
        }
        let li = l as usize;
        if li < ctx.has_code.len() && ctx.has_code[li] {
            // A completed statement/item above ends the search; a
            // continuation head (e.g. `let x =`) lets it keep climbing.
            if matches!(ctx.last_code_punct[li], Some(';') | Some('{') | Some('}')) {
                break;
            }
        }
        l -= 1;
    }
    false
}

fn check_unsafe_safety_comment(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for t in code(ctx) {
        if t.ident() == Some("unsafe") && !has_safety_comment(ctx, t.line) {
            out.push(diag(
                ctx,
                t.line,
                "unsafe-needs-safety-comment",
                "`unsafe` without an immediately preceding `// SAFETY:` comment stating the \
                 invariant (pointer validity/lifetime, cpuid gate, latch ordering, …)"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// forbidden-nondeterminism
// ---------------------------------------------------------------------------

/// `toks[i..]` matches the identifier/punct sequence `pat`, where idents
/// are matched by name and `":"`-style entries by punctuation.
fn seq_matches(toks: &[&Tok], i: usize, pat: &[&str]) -> bool {
    if i + pat.len() > toks.len() {
        return false;
    }
    pat.iter().enumerate().all(|(k, p)| {
        let t = toks[i + k];
        if p.len() == 1 && !p.chars().next().unwrap().is_ascii_alphanumeric() {
            t.is_punct(p.chars().next().unwrap())
        } else {
            t.ident() == Some(*p)
        }
    })
}

fn check_forbidden_nondeterminism(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = code(ctx);
    let push = |out: &mut Vec<Diagnostic>, line: u32, what: &str, fix: &str| {
        out.push(diag(
            ctx,
            line,
            "forbidden-nondeterminism",
            format!("{what} is banned in result-affecting crates; {fix}"),
        ));
    };
    for i in 0..toks.len() {
        let line = toks[i].line;
        if seq_matches(&toks, i, &["env", ":", ":", "var"])
            || seq_matches(&toks, i, &["env", ":", ":", "vars"])
            || seq_matches(&toks, i, &["env", ":", ":", "var_os"])
            || seq_matches(&toks, i, &["env", "!"])
            || seq_matches(&toks, i, &["option_env", "!"])
        {
            push(out, line, "environment-dependent branching", "plumb configuration through typed options instead");
        } else if matches!(toks[i].ident(), Some("HashMap") | Some("HashSet")) {
            push(out, line, "`HashMap`/`HashSet` with the default (randomly seeded) hasher", "use `ratatouille_util::collections::{DetMap, DetSet}` for deterministic iteration order");
        }
    }
}

// ---------------------------------------------------------------------------
// obs-only-timing
// ---------------------------------------------------------------------------

fn check_obs_only_timing(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = code(ctx);
    for i in 0..toks.len() {
        let line = toks[i].line;
        if toks[i].ident() == Some("SystemTime") {
            out.push(diag(
                ctx,
                line,
                "obs-only-timing",
                "`SystemTime` in an instrumented crate; take stamps via `obs::Clock::now()` \
                 so all timing flows through the write-only telemetry layer"
                    .to_string(),
            ));
        } else if seq_matches(&toks, i, &["Instant", ":", ":", "now"]) {
            out.push(diag(
                ctx,
                line,
                "obs-only-timing",
                "raw `Instant::now` in an instrumented crate; use `obs::Clock::now()` (and an \
                 obs histogram/span) so there is one timing idiom repo-wide"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// no-panic-in-request-path
// ---------------------------------------------------------------------------

fn check_no_panic(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = code(ctx);
    for i in 0..toks.len() {
        let line = toks[i].line;
        if toks[i].is_punct('.')
            && matches!(
                toks.get(i + 1).and_then(|t| t.ident()),
                Some("unwrap") | Some("expect")
            )
            && toks.get(i + 2).map_or(false, |t| t.is_punct('('))
        {
            let m = toks[i + 1].ident().unwrap_or("");
            out.push(diag(
                ctx,
                line,
                "no-panic-in-request-path",
                format!("`.{m}()` can take down a serving worker; map the failure to an error response (4xx/5xx) or propagate a `Result`"),
            ));
        } else if matches!(
            toks[i].ident(),
            Some("panic") | Some("unreachable") | Some("todo") | Some("unimplemented")
        ) && toks.get(i + 1).map_or(false, |t| t.is_punct('!'))
        {
            let m = toks[i].ident().unwrap_or("");
            out.push(diag(
                ctx,
                line,
                "no-panic-in-request-path",
                format!("`{m}!` in the serving path; return an error response instead"),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// float-reduction-order
// ---------------------------------------------------------------------------

fn check_float_reduction(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = code(ctx);
    for i in 0..toks.len() {
        if !toks[i].is_punct('.')
            || !matches!(
                toks.get(i + 1).and_then(|t| t.ident()),
                Some("sum") | Some("fold")
            )
        {
            continue;
        }
        let name = toks[i + 1].ident().unwrap_or("");
        let line = toks[i + 1].line;
        // `.sum::<T>()` — the turbofish names the accumulator type.
        let mut j = i + 2;
        let mut turbofish_f32 = None;
        if seq_matches(&toks, j, &[":", ":", "<"]) {
            j += 3;
            let mut depth = 1usize;
            let mut saw_f32 = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('<') {
                    depth += 1;
                } else if toks[j].is_punct('>') {
                    depth -= 1;
                } else if toks[j].ident() == Some("f32") {
                    saw_f32 = true;
                }
                j += 1;
            }
            turbofish_f32 = Some(saw_f32);
        }
        let is_f32 = match turbofish_f32 {
            Some(explicit) => explicit,
            None => statement_mentions_f32(&toks, i),
        };
        if is_f32 {
            out.push(diag(
                ctx,
                line,
                "float-reduction-order",
                format!(
                    "ad-hoc f32 `{name}` reduction outside the blessed kernels; use \
                     `ratatouille_util::accum::{{sum_f32, max_f32, max_abs_f32}}` \
                     (re-exported at `ratatouille_tensor::ops::reduce`) so the \
                     accumulation order stays pinned"
                ),
            ));
        }
    }
}

/// Does the statement around token `i` mention `f32` or a float literal?
/// The statement span is bounded by `;`/`{`/`}` on both sides — close
/// enough for a lexical rule, and wrong only inside nested closures.
fn statement_mentions_f32(toks: &[&Tok], i: usize) -> bool {
    let boundary = |t: &Tok| t.is_punct(';') || t.is_punct('{') || t.is_punct('}');
    let start = (0..i).rev().find(|&k| boundary(toks[k])).map_or(0, |k| k + 1);
    let end = (i..toks.len())
        .find(|&k| boundary(toks[k]))
        .unwrap_or(toks.len());
    toks[start..end].iter().any(|t| {
        t.ident() == Some("f32") || matches!(t.kind, TokKind::Num { float: true })
    })
}

// ---------------------------------------------------------------------------
// allow-needs-justification (attribute half; suppression comments are
// linted by the engine, which owns the used/unused bookkeeping)
// ---------------------------------------------------------------------------

fn check_allow_justified(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = code(ctx);
    for i in 0..toks.len() {
        let hit = seq_matches(&toks, i, &["#", "[", "allow"])
            || seq_matches(&toks, i, &["#", "!", "[", "allow"]);
        if !hit {
            continue;
        }
        let line = toks[i].line;
        let justified = ctx.comments_on(line).any(|c| !c.is_empty())
            || (line > 1 && ctx.is_comment_only_line(line - 1));
        if !justified {
            out.push(diag(
                ctx,
                line,
                ALLOW_NEEDS_JUSTIFICATION,
                "`#[allow(...)]` without a justification; add a comment on the same or the \
                 previous line saying why the lint is wrong here"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint_source;

    fn rules_hit(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        lint_source(path, src)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn unsafe_without_safety_flagged() {
        let hits = rules_hit(
            "crates/tensor/src/x.rs",
            "fn f() {\n    let p = 0 as *const f32;\n    let _ = unsafe { *p };\n}\n",
        );
        assert_eq!(hits, vec![("unsafe-needs-safety-comment", 3)]);
    }

    #[test]
    fn unsafe_with_safety_clean() {
        let src = "fn f(p: *const f32) -> f32 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        assert!(rules_hit("crates/tensor/src/x.rs", src).is_empty());
    }

    #[test]
    fn safety_climbs_past_attributes_and_continuations() {
        let src = "// SAFETY: feature gate checked by caller\n#[target_feature(enable = \"avx2\")]\nunsafe fn g() {}\n\nfn h() {\n    // SAFETY: latch outlives the borrow\n    let x: usize =\n        unsafe { core::mem::transmute(1usize) };\n    let _ = x;\n}\n";
        assert!(rules_hit("crates/tensor/src/x.rs", src).is_empty(), "{:?}", rules_hit("crates/tensor/src/x.rs", src));
    }

    #[test]
    fn consecutive_unsafe_impls_need_their_own_comments() {
        let src = "struct P;\n// SAFETY: single owner\nunsafe impl Send for P {}\nunsafe impl Sync for P {}\n";
        assert_eq!(
            rules_hit("crates/tensor/src/x.rs", src),
            vec![("unsafe-needs-safety-comment", 4)]
        );
    }

    #[test]
    fn nondeterminism_scoped_to_result_affecting_crates() {
        let src = "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }\n";
        assert_eq!(rules_hit("crates/eval/src/x.rs", src).len(), 3);
        assert!(rules_hit("crates/serving/src/x.rs", src).is_empty());
        assert!(rules_hit("crates/bench/src/x.rs", src).is_empty());
        assert!(rules_hit("src/lib.rs", src).is_empty());
    }

    #[test]
    fn instant_now_flagged_but_import_alone_is_not() {
        assert!(rules_hit("crates/models/src/x.rs", "use std::time::Instant;\n").is_empty());
        let hits = rules_hit(
            "crates/models/src/x.rs",
            "fn f() -> std::time::Instant { std::time::Instant::now() }\n",
        );
        assert_eq!(hits, vec![("obs-only-timing", 1)]);
    }

    #[test]
    fn obs_only_timing_scoped_to_instrumented_crates() {
        let src = "fn f() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }\n";
        assert_eq!(
            rules_hit("crates/serving/src/x.rs", src),
            vec![("obs-only-timing", 1)]
        );
        assert_eq!(
            rules_hit("crates/ratatouille/src/x.rs", src),
            vec![("obs-only-timing", 1)]
        );
        // the wall-clock allowlist: obs (the clock authority), util, bench
        assert!(rules_hit("crates/obs/src/clock.rs", src).is_empty());
        assert!(rules_hit("crates/util/src/x.rs", src).is_empty());
        assert!(rules_hit("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn system_time_flagged_as_obs_only_timing() {
        let hits = rules_hit(
            "crates/eval/src/x.rs",
            "fn f() { let _ = std::time::SystemTime::now(); }\n",
        );
        assert_eq!(hits, vec![("obs-only-timing", 1)]);
    }

    #[test]
    fn env_branching_flagged() {
        let hits = rules_hit(
            "crates/tokenizers/src/x.rs",
            "fn f() -> bool { std::env::var(\"X\").is_ok() }\n",
        );
        assert_eq!(hits, vec![("forbidden-nondeterminism", 1)]);
    }

    #[test]
    fn test_code_exempt_from_nondeterminism() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = std::env::var(\"TMPDIR\");\n    }\n}\n";
        assert!(rules_hit("crates/recipedb/src/x.rs", src).is_empty());
    }

    #[test]
    fn serving_panics_flagged() {
        let src = "fn handle() {\n    let v: Option<u32> = None;\n    let _ = v.unwrap();\n    let _ = v.expect(\"x\");\n    panic!(\"boom\");\n}\n";
        let hits = rules_hit("crates/serving/src/x.rs", src);
        assert_eq!(
            hits,
            vec![
                ("no-panic-in-request-path", 3),
                ("no-panic-in-request-path", 4),
                ("no-panic-in-request-path", 5),
            ]
        );
    }

    #[test]
    fn unwrap_or_default_not_flagged() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or_default() }\n";
        assert!(rules_hit("crates/serving/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_sum_flagged_outside_kernels_only() {
        let src = "fn f(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }\n";
        assert_eq!(
            rules_hit("crates/models/src/x.rs", src),
            vec![("float-reduction-order", 1)]
        );
        assert!(rules_hit("crates/tensor/src/ops/reduce.rs", src).is_empty());
    }

    #[test]
    fn usize_sum_not_flagged() {
        let src = "fn f(xs: &[usize]) -> f32 { xs.iter().sum::<usize>() as f32 }\n";
        assert!(rules_hit("crates/recipedb/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_fold_flagged_via_literal() {
        let src = "fn f(xs: &[f32]) -> f32 { xs.iter().fold(0.0f32, |m, &v| m.max(v)) }\n";
        assert_eq!(
            rules_hit("crates/tensor/src/x.rs", src),
            vec![("float-reduction-order", 1)]
        );
    }

    #[test]
    fn integer_sum_without_float_context_clean() {
        let src = "fn f(xs: &[usize]) -> usize { xs.iter().sum() }\n";
        assert!(rules_hit("crates/models/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_attr_needs_comment() {
        let src = "#[allow(dead_code)]\nfn f() {}\n";
        assert_eq!(
            rules_hit("src/lib.rs", src),
            vec![("allow-needs-justification", 1)]
        );
        let ok = "// the harness keeps this symbol for downstream tests\n#[allow(dead_code)]\nfn f() {}\n";
        assert!(rules_hit("src/lib.rs", ok).is_empty());
        let trailing = "#[allow(dead_code)] // kept for the ffi surface\nfn f() {}\n";
        assert!(rules_hit("src/lib.rs", trailing).is_empty());
    }
}

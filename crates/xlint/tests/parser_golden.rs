//! Parser golden test over a representative real workspace file.
//!
//! `crates/models/src/sample.rs` exercises most of the surface the
//! recursive-descent parser has to survive: doc comments, derive
//! attributes, a struct, an inherent impl, a trait impl (`Default for
//! SamplerConfig` — the *self* type must win), a generic fn with a
//! `?Sized` bound, closures, for loops, compound float accumulation,
//! method chains, macro calls with paths, and a `#[cfg(test)]` module.
//!
//! Line anchors are derived from source markers (not hardcoded) so the
//! golden survives unrelated edits to the file; the item tree itself is
//! pinned exactly.

use xlint::parser::{self, FileAst};

fn golden() -> (&'static str, FileAst) {
    let src = include_str!("../../models/src/sample.rs");
    (src, parser::parse(&xlint::lexer::lex(src)))
}

/// 1-based line of the first source line containing `needle`.
fn line_of(src: &str, needle: &str) -> u32 {
    src.lines()
        .position(|l| l.contains(needle))
        .map(|i| i as u32 + 1)
        .unwrap_or_else(|| panic!("marker {needle:?} not found in sample.rs"))
}

#[test]
fn item_tree_matches_the_real_file() {
    let (_, ast) = golden();
    let displays: Vec<String> = ast.fns.iter().map(|f| f.display()).collect();
    assert_eq!(
        displays,
        vec![
            "SamplerConfig::default",
            "SamplerConfig::greedy_until",
            "generate",
            "generate_traced",
            "metric_label",
            "select_token",
            "logits",
            "greedy_picks_argmax",
            "top_k_restricts_support",
            "top_p_restricts_support",
            "low_temperature_approaches_greedy",
            "high_temperature_spreads_mass",
            "deterministic_given_seed",
            "metric_label_sanitizes",
            "generate_works_on_quantized_models",
            "generate_respects_stop_and_budget",
        ],
        "item tree drifted from crates/models/src/sample.rs"
    );
    for f in &ast.fns {
        assert!(f.end_line >= f.line, "inverted span on {}", f.display());
        assert!(!f.is_unsafe, "sample.rs has no unsafe fns");
        assert!(f.unsafe_lines.is_empty(), "sample.rs has no unsafe blocks");
    }
    // Everything from `logits` on lives inside the #[cfg(test)] module.
    for f in &ast.fns[6..] {
        assert_eq!(f.module, vec!["tests".to_string()], "{}", f.display());
    }
    // `impl Default for SamplerConfig` resolves to the *self* type.
    assert_eq!(ast.fns[0].self_type.as_deref(), Some("SamplerConfig"));
    assert_eq!(ast.fns[2].self_type, None, "generate is a free fn");
}

#[test]
fn use_map_covers_plain_and_braced_imports() {
    let (_, ast) = golden();
    let has = |path: &[&str]| {
        ast.uses
            .iter()
            .any(|u| u.iter().map(String::as_str).eq(path.iter().copied()))
    };
    assert!(has(&["ratatouille_util", "rng", "StdRng"]));
    assert!(
        has(&["ratatouille_tensor", "ops"]) && has(&["ratatouille_tensor", "Tensor"]),
        "brace group `ratatouille_tensor::{{ops, Tensor}}` must expand"
    );
    // `crate::`/`self::`/`super::` heads are stripped so the use map keys
    // on resolvable module paths.
    assert!(has(&["lm", "InferenceModel"]));
}

#[test]
fn generate_events_land_on_their_source_lines() {
    let (src, ast) = golden();
    let delegator = ast.fns.iter().find(|f| f.name == "generate").unwrap();
    assert_eq!(delegator.line, line_of(src, "pub fn generate<M: InferenceModel"));

    // The decode body (and so all the interesting events) lives in the
    // traced variant; `generate` is a thin untraced delegator.
    let generate = ast
        .fns
        .iter()
        .find(|f| f.name == "generate_traced")
        .unwrap();
    assert_eq!(
        generate.line,
        line_of(src, "pub fn generate_traced<M: InferenceModel")
    );

    let expect_line = line_of(src, "expect(\"logits available after prompt\")");
    assert!(
        generate
            .calls
            .iter()
            .any(|c| c.method && c.name() == "expect" && c.line == expect_line),
        "the `.expect()` sink must be visible as a method-call event"
    );

    let prefill_line = line_of(src, "\"decode_prefill_ns\"");
    assert!(
        generate
            .macros
            .iter()
            .any(|m| m.path.last().map(String::as_str) == Some("static_histogram")
                && m.line == prefill_line),
        "macro events must carry their `obs::` path and line"
    );

    for name in ["labels", "stream", "logits", "out"] {
        assert!(generate.binds(name), "generate must bind `{name}`");
    }
}

#[test]
fn float_accumulation_is_visible_with_its_binding_hint() {
    let (src, ast) = golden();
    let select = ast.fns.iter().find(|f| f.name == "select_token").unwrap();
    let cum_line = line_of(src, "cum += p");
    let add = select
        .adds
        .iter()
        .find(|a| a.line == cum_line)
        .expect("`cum += p` must be recorded as a compound-add event");
    assert_eq!(add.lhs.as_deref(), Some("cum"));
    let cum = select
        .bindings
        .iter()
        .find(|b| b.name == "cum")
        .expect("`let mut cum = 0.0f32` must be recorded as a binding");
    assert!(
        cum.float_hint,
        "the 0.0f32 initializer must leave a float hint on the binding"
    );
}

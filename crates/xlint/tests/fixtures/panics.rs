//! Seeded `no-panic-in-request-path` violations: lines 3, 4, 6.
fn handle(body: Option<&str>) -> usize {
    let v = body.unwrap();
    let n = v.parse::<usize>().expect("bad request");
    if n == 0 {
        panic!("zero");
    }
    n
}

fn graceful(v: Option<u32>) -> u32 {
    v.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() { assert_eq!(super::graceful(None), 0); }
}

//! Seeded `float-reduction-order` violations (lines 4, 8) and lookalikes
//! that must stay clean (usize/f64 turbofish, integer ranges).
fn bad_sum(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>()
}

fn bad_fold(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &v| m.max(v))
}

fn fine_usize(xs: &[usize]) -> f32 {
    xs.iter().sum::<usize>() as f32
}

fn fine_f64(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

fn range_not_float() -> usize {
    (0..10).sum::<usize>()
}

//! Cross-crate panic-path fixture, serving half: a request handler that
//! calls into the models helper (fixtures/xcrate_models.rs). The unwrap
//! lives two hops away in the other crate — only the call-graph rule can
//! see it from here. Linted together via `lint_sources` under virtual
//! paths `crates/serving/src/fixture.rs` + `crates/models/src/fixture.rs`.

use ratatouille_models::fixture::decode_greedy;

pub fn handle_generate(prompt: &[u32]) -> Vec<u32> {
    decode_greedy(prompt, 16)
}

pub fn handle_healthz() -> &'static str {
    "ok"
}

//! Seeded trace-before-backend violations: the hand-offs on lines 6 and
//! 17 give the request to a backend before recording any trace phase.
//! The traced handler, the worker helper and the span-free handler are clean.

fn handle_generate(pool: &Pool, job: Job) -> Response {
    pool.execute(job)
}

fn handle_generate_traced(req: &Request, pool: &Pool, job: Job) -> Response {
    if let Some(t) = &req.trace {
        t.record_phase(Phase::Enqueue, 0, 0);
    }
    pool.execute(job)
}

fn handle_generate_batched(runner: &Runner, pantry: Vec<String>) -> Response {
    runner.submit_traced(pantry, None, None)
}

fn requeue_worker(runner: &Runner, pantry: Vec<String>) -> Response {
    runner.submit(pantry, None)
}

fn handle_healthz() -> Response {
    render_ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn handle_exempt() {
        pool().execute(job());
    }
}

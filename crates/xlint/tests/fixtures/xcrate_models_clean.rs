//! Clean twin of xcrate_models.rs: the decode path and its buried unwrap
//! are identical, but every request-path edge into this file is
//! suppressed on the serving side (xcrate_serving_clean.rs), so no
//! diagnostic may surface here.

pub fn decode_greedy(prompt: &[u32], steps: usize) -> Vec<u32> {
    let mut out = prompt.to_vec();
    for _ in 0..steps {
        out.push(argmax(&out));
    }
    out
}

fn argmax(xs: &[u32]) -> u32 {
    *xs.last().unwrap()
}

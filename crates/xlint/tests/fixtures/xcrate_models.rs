//! Cross-crate panic-path fixture, models half: `decode_greedy` looks
//! innocent, but its helper `argmax` unwraps — a panic two hops from the
//! serving handler in fixtures/xcrate_serving.rs. Seeded sinks: the
//! `.unwrap()` on line 16 and the `panic!` on line 21. `shaped` (line 26)
//! is never called from a handler and must stay unreported.

pub fn decode_greedy(prompt: &[u32], steps: usize) -> Vec<u32> {
    let mut out = prompt.to_vec();
    for _ in 0..steps {
        out.push(argmax(&out));
    }
    out
}

fn argmax(xs: &[u32]) -> u32 {
    *xs.last().unwrap()
}

fn grow(cap: usize) -> usize {
    if cap == 0 {
        panic!("zero capacity");
    }
    cap * 2
}

fn shaped(dims: &[usize]) -> usize {
    dims.iter().product::<usize>().checked_mul(4).unwrap()
}

impl BatchGenerator {
    pub fn step(&mut self) -> usize {
        grow(self.cap)
    }
}

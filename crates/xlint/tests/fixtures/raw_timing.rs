//! Seeded obs-only-timing violations: lines 4, 10; 7 is clean, 14 suppressed.

fn bad_instant() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}

fn good_stamp() -> u64 { obs::Clock::now().at_ns() }

fn bad_walltime() {
    let _ = std::time::SystemTime::now();
}

// xlint: allow(obs-only-timing): migration shim measured before obs existed
fn grandfathered() { let _ = std::time::Instant::now(); }

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() { let _ = std::time::Instant::now(); }
}

//! Clean twin of xcrate_serving.rs: the same cross-crate call into the
//! models helper, but the edge carries an `infallible()` justification on
//! the line above the call, so the panic-path traversal must cut the
//! subtree and report nothing.

use ratatouille_models::fixture::decode_greedy;

pub fn handle_generate(prompt: &[u32]) -> Vec<u32> {
    // xlint: infallible(decode_greedy): the fixture prompt is non-empty by construction, so `last()` always yields
    decode_greedy(prompt, 16)
}

//! Lexer torture with zero violations: everything suspicious here is
//! inside strings or comments, or is not what it looks like.

/* block /* nested /* deeply */ */ with `HashMap::new()` inside */
const A: &str = "std::env::var(\"HOME\") and .unwrap() in a string";
const B: &str = r##"raw string: SystemTime::now() and "#quotes"# too"##;
const C: char = 'a';
const BYTES: &[u8] = b"panic!(\"no\")";

struct Holder<'a> {
    slice: &'a [f32],
}

impl<'a> Holder<'a> {
    fn head(&self) -> f32 {
        let r#fn = self.slice.first().copied();
        r#fn.unwrap_or(0.0)
    }
}

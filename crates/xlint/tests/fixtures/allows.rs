//! Seeded `allow-needs-justification` violations: lines 3, 10, 13, 16, 19.

#[allow(dead_code)]
fn unjustified() {}

// kept for the public api surface
#[allow(dead_code)]
fn justified() {}

// xlint: allow(no-such-rule): bogus
fn unknown_rule() {}

// xlint: allow(float-reduction-order)
fn missing_reason() {}

// xlint: allow(float-reduction-order): nothing here actually sums floats
fn stale() {}

// xlint: not-an-allow
fn malformed() {}

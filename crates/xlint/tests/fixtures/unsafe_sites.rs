//! Seeded `unsafe-needs-safety-comment` violations plus lexer torture:
//! the only real `unsafe` tokens are on lines 11, 17 and 18.

/* outer /* nested `unsafe` comment */ still one comment */
const S: &str = "unsafe { not_code() }";
const R: &str = r#"raw "unsafe" string with a # inside"#;

fn deref(p: *const f32) -> f32 {
    let c: char = 'u';
    let _ = c;
    unsafe { *p }
}

struct Ptr<'a>(&'a f32);

// SAFETY(invariant: single exclusive owner of the region)
unsafe impl<'a> Send for Ptr<'a> {}
unsafe impl<'a> Sync for Ptr<'a> {}

//! Seeded `accum-discipline` violations: lines 8 (float literal in the
//! statement) and 16 (float evidence riding on the binding, the `+=` line
//! itself typeless). Integer loops and loop-free adds must stay clean.

fn bad_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

fn bad_hidden(rows: &[Vec<f32>]) -> f32 {
    let mut total: f32 = Default::default();
    for r in rows {
        total += first(r);
    }
    total
}

fn first(r: &[f32]) -> f32 {
    r[0]
}

fn fine_integer(xs: &[usize]) -> usize {
    let mut n = 0usize;
    for x in xs {
        n += *x;
    }
    n
}

fn fine_no_loop(a: f32, b: f32) -> f32 {
    let mut s = a;
    s += b;
    s
}

//! Seeded `unsafe-disjointness-contract` violations: lines 6 (no header),
//! 11 (prose header), 16 (wrong kind), 21 (unknown binding). The sites on
//! 26 and 34 carry valid headers and must stay clean.

fn bare_site(parts: &mut [u8]) {
    scatter_mut(parts, |i, p| drop((i, p)));
}

fn prose_site(parts: &mut [u8]) {
    // SAFETY: each task writes its own element
    scatter_mut(parts, |i, p| drop((i, p)));
}

fn wrong_kind(parts: &mut [u8]) {
    // SAFETY(invariant: the pool outlives every task)
    scatter_mut(parts, |i, p| drop((i, p)));
}

fn unknown_binding(parts: &mut [u8]) {
    // SAFETY(disjoint: rows[r0..r1])
    scatter_mut(parts, |i, p| drop((i, p)));
}

fn good_scatter(parts: &mut [u8]) {
    // SAFETY(disjoint: parts[i] — each task index owns one element)
    scatter_mut(parts, |i, p| drop((i, p)));
}

fn good_rows(out: &mut [f32], rows_per_task: usize) {
    let chunk = rows_per_task;
    // SAFETY(disjoint: out[rows * chunk ..], chunk)
    // Row ranges come from chunks_mut-style arithmetic; no two tasks
    // share a row.
    parallel_rows_mut(out, chunk, |rows, part| drop((rows, part)));
}

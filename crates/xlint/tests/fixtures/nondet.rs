//! Seeded violations: forbidden-nondeterminism on 2, 4, 5, 15; obs-only-timing on 9.
use std::collections::HashMap;

fn counts() -> HashMap<String, usize> {
    HashMap::new()
}

fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    let _ = t;
    0
}

fn tuned() -> bool {
    std::env::var("FAST_MATH").is_ok()
}

// xlint: allow(obs-only-timing): wall clock feeds a log line only
fn logged() { let _ = std::time::Instant::now(); }

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() { let _ = std::env::var("TMPDIR"); }
}

//! End-to-end fixture tests: each seeded fixture must produce exactly the
//! expected `(rule, line)` diagnostics, and the clean fixture none at all.
//!
//! Fixtures live under `tests/fixtures/` (excluded from `run_workspace`)
//! and are linted via `lint_source` under a virtual path chosen to put
//! them in the crate each rule targets.

fn diags(virtual_path: &str, src: &str) -> Vec<(&'static str, u32)> {
    xlint::lint_source(virtual_path, src)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

/// Lint several fixture files as one virtual workspace (exercises the
/// cross-crate call-graph rules, which `lint_source` runs on one file).
fn workspace_diags(files: &[(&str, &str)]) -> Vec<xlint::Diagnostic> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    xlint::lint_sources(&owned)
}

#[test]
fn unsafe_fixture_flags_uncommented_sites_only() {
    let src = include_str!("fixtures/unsafe_sites.rs");
    assert_eq!(
        diags("crates/tensor/src/fixture.rs", src),
        vec![
            ("unsafe-needs-safety-comment", 11),
            ("unsafe-needs-safety-comment", 18),
        ],
        "line 17 is covered by the SAFETY comment on 16; 11 and 18 are bare"
    );
}

#[test]
fn nondet_fixture_flags_clock_env_and_hashmap() {
    let src = include_str!("fixtures/nondet.rs");
    assert_eq!(
        diags("crates/recipedb/src/fixture.rs", src),
        vec![
            ("forbidden-nondeterminism", 2),
            ("forbidden-nondeterminism", 4),
            ("forbidden-nondeterminism", 5),
            ("obs-only-timing", 9),
            ("forbidden-nondeterminism", 15),
        ],
        "line 19 is suppressed with a reason; the cfg(test) mod is exempt"
    );
}

#[test]
fn nondet_fixture_is_clean_in_an_allowlisted_crate() {
    let src = include_str!("fixtures/nondet.rs");
    assert_eq!(
        diags("crates/bench/src/fixture.rs", src),
        vec![("allow-needs-justification", 18)],
        "bench is allowlisted for nondeterminism and raw timing, so both \
         rules stay quiet and the now-unused suppression is reported as stale"
    );
}

#[test]
fn timing_fixture_flags_raw_clocks_in_instrumented_crates_only() {
    let src = include_str!("fixtures/raw_timing.rs");
    assert_eq!(
        diags("crates/serving/src/fixture.rs", src),
        vec![("obs-only-timing", 4), ("obs-only-timing", 10)],
        "line 7 goes through obs::Clock and line 14 is suppressed; \
         the cfg(test) mod is exempt"
    );
    assert_eq!(
        diags("crates/obs/src/fixture.rs", src),
        vec![("allow-needs-justification", 13)],
        "obs is the clock authority: the rule stays quiet there and the \
         suppression goes stale"
    );
}

#[test]
fn panics_fixture_flags_unwrap_expect_and_panic() {
    let src = include_str!("fixtures/panics.rs");
    assert_eq!(
        diags("crates/serving/src/fixture.rs", src),
        vec![
            ("no-panic-in-request-path", 3),
            ("no-panic-in-request-path", 4),
            ("no-panic-in-request-path", 6),
        ],
        "unwrap_or_default and the cfg(test) mod must not be flagged"
    );
}

#[test]
fn panics_fixture_ignored_outside_serving() {
    let src = include_str!("fixtures/panics.rs");
    assert_eq!(
        diags("crates/tokenizers/src/fixture.rs", src),
        vec![],
        "no-panic-in-request-path only applies to crates/serving"
    );
}

#[test]
fn trace_gate_fixture_flags_untraced_handoffs_only() {
    let src = include_str!("fixtures/trace_gate.rs");
    assert_eq!(
        diags("crates/serving/src/fixture.rs", src),
        vec![
            ("trace-before-backend", 6),
            ("trace-before-backend", 17),
        ],
        "the traced handler, the non-handler worker, the span-free handler \
         and the cfg(test) mod must stay clean"
    );
    assert_eq!(
        diags("crates/models/src/fixture.rs", src),
        vec![],
        "trace-before-backend only applies to crates/serving"
    );
}

#[test]
fn float_fixture_flags_f32_reductions_only() {
    let src = include_str!("fixtures/float_sums.rs");
    assert_eq!(
        diags("crates/models/src/fixture.rs", src),
        vec![
            ("float-reduction-order", 4),
            ("float-reduction-order", 8),
        ],
        "usize/f64 turbofish sums and integer ranges must not be flagged"
    );
}

#[test]
fn allows_fixture_flags_every_bad_suppression() {
    let src = include_str!("fixtures/allows.rs");
    assert_eq!(
        diags("src/fixture.rs", src),
        vec![
            ("allow-needs-justification", 3),
            ("allow-needs-justification", 10),
            ("allow-needs-justification", 13),
            ("allow-needs-justification", 16),
            ("allow-needs-justification", 19),
        ],
        "the justified #[allow] on line 7 must pass"
    );
}

#[test]
fn disjoint_fixture_flags_every_bad_scatter_header() {
    let src = include_str!("fixtures/disjoint.rs");
    assert_eq!(
        diags("crates/tensor/src/fixture.rs", src),
        vec![
            ("unsafe-disjointness-contract", 6),
            ("unsafe-disjointness-contract", 11),
            ("unsafe-disjointness-contract", 16),
            ("unsafe-disjointness-contract", 21),
        ],
        "the structured headers on lines 25 and 31 must satisfy the contract"
    );
}

#[test]
fn accum_fixture_flags_float_loops_outside_blessed_kernels() {
    let src = include_str!("fixtures/accum.rs");
    assert_eq!(
        diags("crates/models/src/fixture.rs", src),
        vec![("accum-discipline", 8), ("accum-discipline", 16)],
        "integer loops and loop-free compound adds must stay clean"
    );
    assert_eq!(
        diags("crates/tensor/src/ops/fixture.rs", src),
        vec![],
        "tensor kernels are the blessed home for raw reduction loops"
    );
}

#[test]
fn cross_crate_unwrap_is_caught_from_the_request_handler() {
    let got = workspace_diags(&[
        (
            "crates/serving/src/fixture.rs",
            include_str!("fixtures/xcrate_serving.rs"),
        ),
        (
            "crates/models/src/fixture.rs",
            include_str!("fixtures/xcrate_models.rs"),
        ),
    ]);
    let shape: Vec<(&str, &str, u32)> = got
        .iter()
        .map(|d| (d.path.as_str(), d.rule, d.line))
        .collect();
    assert_eq!(
        shape,
        vec![
            ("crates/models/src/fixture.rs", "transitive-panic-in-request-path", 16),
            ("crates/models/src/fixture.rs", "transitive-panic-in-request-path", 21),
        ],
        "the unwrap two hops from handle_generate and the panic under \
         BatchGenerator::step must surface; `shaped`'s unwrap is unreachable"
    );
    assert!(
        got[0].msg.contains("handle_generate -> decode_greedy -> argmax"),
        "the diagnostic must name the shortest root path: {}",
        got[0].msg
    );
}

#[test]
fn infallible_edge_keeps_the_clean_twin_clean() {
    let got = workspace_diags(&[
        (
            "crates/serving/src/fixture.rs",
            include_str!("fixtures/xcrate_serving_clean.rs"),
        ),
        (
            "crates/models/src/fixture.rs",
            include_str!("fixtures/xcrate_models_clean.rs"),
        ),
    ]);
    assert!(
        got.is_empty(),
        "the justified infallible() edge must cut the only path to the \
         unwrap (and count as used, not stale), got:\n{}",
        got.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let src = include_str!("fixtures/clean.rs");
    let got = xlint::lint_source("crates/tokenizers/src/fixture.rs", src);
    assert!(
        got.is_empty(),
        "lexer-torture fixture must be clean, got:\n{}",
        got.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn diagnostic_display_is_path_line_rule_msg() {
    let src = include_str!("fixtures/panics.rs");
    let got = xlint::lint_source("crates/serving/src/fixture.rs", src);
    let first = got.first().expect("fixture has diagnostics").to_string();
    assert!(
        first.starts_with("crates/serving/src/fixture.rs:3: [no-panic-in-request-path] "),
        "diagnostic format changed: {first}"
    );
}

//! Property tests on the RecipeDB substrate: the grammar, preprocessing
//! and parsing must uphold their invariants for every seed, not just the
//! seeds unit tests happen to use.

use ratatouille_util::proptest::prelude::*;
use ratatouille_recipedb::corpus::{Corpus, CorpusConfig};
use ratatouille_recipedb::grammar::RecipeGenerator;
use ratatouille_recipedb::preprocess::{parse_ingredient_line, PreprocessConfig, Preprocessor};
use ratatouille_recipedb::recipe::Quantity;

proptest! {
    cases = 16;

    /// The generator is a pure function of its seed.
    #[test]
    fn generator_is_deterministic(seed in 0u64..100_000) {
        let a: Vec<_> = {
            let mut g = RecipeGenerator::new(seed);
            (0..3).map(|_| g.generate()).collect()
        };
        let b: Vec<_> = {
            let mut g = RecipeGenerator::new(seed);
            (0..3).map(|_| g.generate()).collect()
        };
        prop_assert_eq!(a, b);
    }

    /// Every ingredient line a recipe displays parses back to the same
    /// quantity and unit.
    #[test]
    fn ingredient_lines_roundtrip(seed in 0u64..100_000) {
        let mut g = RecipeGenerator::new(seed);
        let r = g.generate();
        for line in &r.ingredients {
            let shown = line.display();
            let parsed = parse_ingredient_line(&shown)
                .unwrap_or_else(|| panic!("unparseable line `{shown}`"));
            prop_assert_eq!(&parsed.unit, &line.unit, "line `{}`", shown);
            prop_assert!((parsed.qty.0 - line.qty.0).abs() < 0.02, "line `{}`", shown);
            prop_assert_eq!(&parsed.name, &line.name);
        }
    }

    /// Kitchen-quantity display never emits raw decimals.
    #[test]
    fn quantity_display_is_kitchen_friendly(q in 1u32..64) {
        let qty = Quantity(q as f32 * 0.25);
        let s = qty.display();
        prop_assert!(!s.contains('.'), "decimal leaked: {s}");
        prop_assert!(!s.is_empty());
    }

    /// The preprocessing pipeline's accounting always balances: outputs +
    /// removals ≤ inputs + merges bookkeeping never goes negative.
    #[test]
    fn preprocess_accounting_balances(seed in 0u64..1000) {
        let corpus = Corpus::generate(CorpusConfig {
            seed,
            num_recipes: 120,
            ..CorpusConfig::default()
        });
        let (texts, rep) = Preprocessor::new(PreprocessConfig::default()).run(&corpus.raw_records);
        prop_assert_eq!(texts.len(), rep.output_texts);
        let removed = rep.duplicates_removed + rep.parse_failures + rep.invalid_removed;
        prop_assert!(removed <= rep.input_records);
        // every output is within the configured cap
        prop_assert!(texts.iter().all(|t| t.len() <= 2000));
        // recipes in ≥ recipes out (merging only coalesces)
        let recipes_out: usize = texts.iter().map(|t| t.matches("<RECIPE_START>").count()).sum();
        prop_assert!(recipes_out <= rep.input_records);
    }

    /// Corpus splits partition the recipe set for any test fraction.
    #[test]
    fn split_partitions(frac in 0.05f64..0.5) {
        let corpus = Corpus::generate(CorpusConfig {
            num_recipes: 100,
            ..CorpusConfig::default()
        });
        let (train, test) = corpus.split(frac);
        prop_assert_eq!(train.len() + test.len(), corpus.recipes.len());
        let train_ids: std::collections::HashSet<u64> = train.iter().map(|r| r.id).collect();
        prop_assert!(test.iter().all(|r| !train_ids.contains(&r.id)));
    }
}

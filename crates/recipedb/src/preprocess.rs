//! The preprocessing pipeline: raw scraped records (Fig. 1) → clean
//! tagged training text (Fig. 2).
//!
//! Stages, in order, mirroring §III of the paper:
//!
//! 1. **noise stripping** — remove scraping artifacts;
//! 2. **parsing** — recover title / ingredient lines / instructions from
//!    the raw layout; unparseable (truncated, headerless) records are the
//!    paper's "incomplete recipes" and are dropped;
//! 3. **deduplication** — drop exact duplicates ("redundant recipes");
//! 4. **validation** — require a title, ≥2 ingredients, ≥2 steps;
//! 5. **tagged rendering** — the Fig. 2 format with section tags and
//!    atomic fraction tokens;
//! 6. **length capping** — "fixing the length of recipes to 2000
//!    characters", done structurally (dropping trailing instruction
//!    steps) so capped records remain well-formed;
//! 7. **short-recipe merging** — "few short length recipes (−3σ) were
//!    merged to make the length close to the mean";
//! 8. **2σ filtering** — "approximately 2σ (95.46 percent) in recipe size
//!    distribution".

use ratatouille_util::accum::sum_f32;
use ratatouille_util::collections::{det_set, DetSet};

use crate::corpus::RawRecord;
use crate::ontology;
use crate::recipe::{IngredientLine, Quantity, Recipe};

/// Scraping artifacts stripped by stage 1.
const NOISE_ARTIFACTS: &[&str] = &["!1", "&nbsp;", "\\u00bd", "<br/>"];

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PreprocessConfig {
    /// Maximum characters per tagged recipe (paper: 2000).
    pub max_chars: usize,
    /// Keep recipes within `sigma_band` standard deviations of the mean
    /// length (paper: 2.0 → 95.46%).
    pub sigma_band: f32,
    /// Merge consecutive short recipes into one training chunk.
    pub merge_short: bool,
    /// Remove exact duplicates (stage 3). Disable only for ablations.
    pub dedup: bool,
    /// Minimum ingredient lines for a valid recipe.
    pub min_ingredients: usize,
    /// Minimum instruction steps for a valid recipe.
    pub min_instructions: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            max_chars: 2000,
            sigma_band: 2.0,
            merge_short: true,
            dedup: true,
            min_ingredients: 2,
            min_instructions: 2,
        }
    }
}

/// Per-stage accounting — the numbers behind the Fig. 1 → Fig. 2
/// reproduction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PreprocessReport {
    /// Raw records in.
    pub input_records: usize,
    /// Records containing stripped noise artifacts.
    pub noise_stripped: usize,
    /// Records that failed to parse (truncated / headerless).
    pub parse_failures: usize,
    /// Exact duplicates removed.
    pub duplicates_removed: usize,
    /// Parsed records failing validation.
    pub invalid_removed: usize,
    /// Records whose tagged form was capped to `max_chars`.
    pub capped: usize,
    /// Short records merged into a neighbor chunk.
    pub merged: usize,
    /// Records outside the ±σ band.
    pub sigma_filtered: usize,
    /// Final training texts out.
    pub output_texts: usize,
    /// Mean tagged length before filtering.
    pub mean_len: f32,
    /// Std-dev of tagged length before filtering.
    pub std_len: f32,
}

/// A recipe as recovered from raw text (no region/nutrition metadata —
/// exactly what a scraper sees).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRecipe {
    /// Recovered title.
    pub title: String,
    /// Recovered ingredient lines.
    pub ingredients: Vec<IngredientLine>,
    /// Recovered instruction steps.
    pub instructions: Vec<String>,
}

impl ParsedRecipe {
    /// Render in the tagged training format by borrowing
    /// [`Recipe::to_tagged_string`] (region metadata is not part of the
    /// text format).
    pub fn to_tagged_string(&self) -> String {
        Recipe {
            id: 0,
            title: self.title.clone(),
            region: String::new(),
            country: String::new(),
            servings: 4,
            ingredients: self.ingredients.clone(),
            processes: Vec::new(),
            instructions: self.instructions.clone(),
        }
        .to_tagged_string()
    }
}

/// The preprocessing pipeline.
#[derive(Debug, Clone, Default)]
pub struct Preprocessor {
    config: PreprocessConfig,
}

impl Preprocessor {
    /// A pipeline with the given config.
    pub fn new(config: PreprocessConfig) -> Self {
        Preprocessor { config }
    }

    /// Run the full pipeline. Returns the training texts and the report.
    pub fn run(&self, records: &[RawRecord]) -> (Vec<String>, PreprocessReport) {
        let mut report = PreprocessReport {
            input_records: records.len(),
            ..Default::default()
        };

        // Stages 1–2: strip noise, parse.
        let mut parsed: Vec<ParsedRecipe> = Vec::with_capacity(records.len());
        let mut texts_seen: DetSet<String> = det_set();
        for rec in records {
            let mut text = rec.text.clone();
            let before = text.len();
            for art in NOISE_ARTIFACTS {
                text = text.replace(art, " ");
            }
            if text.len() != before {
                report.noise_stripped += 1;
            }
            // Stage 3: dedup on the cleaned text.
            let key: String = text.split_whitespace().collect::<Vec<_>>().join(" ");
            if !texts_seen.insert(key) && self.config.dedup {
                report.duplicates_removed += 1;
                continue;
            }
            match parse_raw(&text) {
                Some(p) => {
                    // Stage 4: validation.
                    if p.ingredients.len() < self.config.min_ingredients
                        || p.instructions.len() < self.config.min_instructions
                        || p.title.trim().is_empty()
                    {
                        report.invalid_removed += 1;
                    } else {
                        parsed.push(p);
                    }
                }
                None => report.parse_failures += 1,
            }
        }

        // Stage 5–6: tagged rendering with structural capping.
        let mut texts: Vec<String> = Vec::with_capacity(parsed.len());
        for mut p in parsed {
            let mut tagged = p.to_tagged_string();
            if tagged.len() > self.config.max_chars {
                report.capped += 1;
                while tagged.len() > self.config.max_chars && p.instructions.len() > 1 {
                    p.instructions.pop();
                    tagged = p.to_tagged_string();
                }
            }
            texts.push(tagged);
        }

        // Length distribution before filtering (reported for Fig. 2).
        let (mean, std) = mean_std(&texts);
        report.mean_len = mean;
        report.std_len = std;

        // Stage 7: merge short records into multi-recipe chunks whose
        // length lands near the mean (and never above the σ band's upper
        // edge, so merged chunks survive stage 8).
        if self.config.merge_short && std > 0.0 {
            let short_cut = mean - self.config.sigma_band * std;
            let hi = mean + self.config.sigma_band * std;
            let mut merged: Vec<String> = Vec::with_capacity(texts.len());
            let mut pending: Option<String> = None;
            for t in texts {
                if (t.len() as f32) < short_cut {
                    report.merged += 1;
                    // flush first if appending would overshoot the band
                    if let Some(prev) = pending.take() {
                        if (prev.len() + t.len()) as f32 > hi {
                            merged.push(prev);
                        } else {
                            pending = Some(prev);
                        }
                    }
                    pending = Some(match pending.take() {
                        Some(prev) => format!("{prev}{t}"),
                        None => t,
                    });
                    if pending.as_ref().unwrap().len() as f32 >= mean {
                        merged.push(pending.take().unwrap());
                    }
                } else {
                    merged.push(t);
                }
            }
            if let Some(p) = pending {
                merged.push(p);
            }
            texts = merged;
        }

        // Stage 8: ±σ band filter.
        if std > 0.0 {
            let lo = mean - self.config.sigma_band * std;
            let hi = mean + self.config.sigma_band * std;
            let before = texts.len();
            texts.retain(|t| {
                let l = t.len() as f32;
                l >= lo && l <= hi
            });
            report.sigma_filtered = before - texts.len();
        }

        report.output_texts = texts.len();
        (texts, report)
    }
}

/// Mean and standard deviation of text lengths.
fn mean_std(texts: &[String]) -> (f32, f32) {
    if texts.is_empty() {
        return (0.0, 0.0);
    }
    let n = texts.len() as f32;
    let mean = sum_f32(texts.iter().map(|t| t.len() as f32)) / n;
    let var = sum_f32(texts.iter().map(|t| {
        let d = t.len() as f32 - mean;
        d * d
    })) / n;
    (mean, var.sqrt())
}

/// Parse one raw record (the Fig. 1 layout): title line, an
/// `Ingredients: a ; b ; c` line, then an instruction paragraph with
/// `.`-separated steps. Returns `None` if the layout is unrecoverable.
pub fn parse_raw(text: &str) -> Option<ParsedRecipe> {
    // A complete raw record always ends its instruction paragraph with a
    // period; a record cut off mid-scrape almost never does. This is the
    // "incomplete recipe" detector.
    if !text.trim_end().ends_with('.') {
        return None;
    }
    let mut lines = text.lines();
    let title_line = lines.next()?.trim();
    let ingr_line = lines.next()?.trim();
    if !ingr_line.starts_with("Ingredients:") {
        // Missing title shifts the layout; unrecoverable for this scraper.
        return None;
    }
    let title = title_line.to_lowercase();
    let ingredients: Vec<IngredientLine> = ingr_line
        .trim_start_matches("Ingredients:")
        .split(';')
        .filter_map(|s| parse_ingredient_line(s.trim()))
        .collect();
    let instr_text: String = lines.collect::<Vec<_>>().join(" ");
    let instructions: Vec<String> = instr_text
        .split(" . ")
        .map(|s| s.trim().trim_end_matches(" .").trim_end_matches('.').trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    Some(ParsedRecipe {
        title,
        ingredients,
        instructions,
    })
}

/// Parse "1 1/2 cups flour" → quantity 1.5, unit "cup", name "flour".
pub fn parse_ingredient_line(s: &str) -> Option<IngredientLine> {
    let tokens: Vec<&str> = s.split_whitespace().collect();
    if tokens.is_empty() {
        return None;
    }
    let mut qty = 0.0f32;
    let mut idx = 0;
    let mut saw_number = false;
    while idx < tokens.len() {
        if let Some(v) = parse_number_or_fraction(tokens[idx]) {
            // xlint: allow(accum-discipline): mixed-number parsing ("1 1/2") adds at most two terms in input order
            qty += v;
            saw_number = true;
            idx += 1;
        } else {
            break;
        }
    }
    if !saw_number || idx >= tokens.len() {
        return None;
    }
    // unit: singular or plural match against the ontology
    let unit_tok = tokens[idx];
    let unit = ontology::UNITS
        .iter()
        .find(|u| u.name == unit_tok || u.plural == unit_tok)?;
    idx += 1;
    if idx >= tokens.len() {
        return None;
    }
    let name = tokens[idx..].join(" ");
    Some(IngredientLine {
        name,
        qty: Quantity(qty),
        unit: unit.name.to_string(),
    })
}

/// "2" → 2.0, "1/2" → 0.5; anything else → None.
fn parse_number_or_fraction(tok: &str) -> Option<f32> {
    if let Some((a, b)) = tok.split_once('/') {
        let num: f32 = a.parse().ok()?;
        let den: f32 = b.parse().ok()?;
        if den == 0.0 {
            return None;
        }
        return Some(num / den);
    }
    tok.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig, Defect};

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            num_recipes: 400,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn parse_ingredient_lines() {
        let l = parse_ingredient_line("1 1/2 cups flour").unwrap();
        assert_eq!(l.qty.0, 1.5);
        assert_eq!(l.unit, "cup");
        assert_eq!(l.name, "flour");

        let l = parse_ingredient_line("3 cloves garlic").unwrap();
        assert_eq!(l.qty.0, 3.0);
        assert_eq!(l.unit, "clove");

        let l = parse_ingredient_line("1/4 teaspoon black pepper").unwrap();
        assert_eq!(l.qty.0, 0.25);
        assert_eq!(l.name, "black pepper");

        assert!(parse_ingredient_line("").is_none());
        assert!(parse_ingredient_line("some flour").is_none());
        assert!(parse_ingredient_line("2 flibbertigibbets flour").is_none());
        assert!(parse_ingredient_line("2 cups").is_none());
        assert!(parse_ingredient_line("1/0 cups flour").is_none());
    }

    #[test]
    fn parse_roundtrips_generated_recipes() {
        let c = corpus();
        let mut ok = 0;
        for r in c.recipes.iter().take(100) {
            let p = parse_raw(&r.to_raw_string()).expect("clean raw text must parse");
            assert_eq!(p.title, r.title);
            assert_eq!(p.instructions.len(), r.instructions.len());
            if p.ingredients.len() == r.ingredients.len() {
                ok += 1;
            }
        }
        assert!(ok >= 95, "ingredient parse fidelity {ok}/100");
    }

    #[test]
    fn pipeline_removes_duplicates_exactly() {
        let c = corpus();
        let dups = c
            .raw_records
            .iter()
            .filter(|r| r.defect == Some(Defect::Duplicate))
            .count();
        let (_, report) = Preprocessor::new(PreprocessConfig::default()).run(&c.raw_records);
        assert_eq!(report.duplicates_removed, dups);
    }

    #[test]
    fn pipeline_drops_incomplete_records() {
        let c = corpus();
        let (_, report) = Preprocessor::new(PreprocessConfig::default()).run(&c.raw_records);
        let injected_incomplete = c
            .raw_records
            .iter()
            .filter(|r| {
                matches!(
                    r.defect,
                    Some(Defect::MissingInstructions) | Some(Defect::MissingTitle) | Some(Defect::Truncated)
                )
            })
            .count();
        let removed = report.parse_failures + report.invalid_removed;
        // every injected incomplete record is caught (noise-only records
        // may also trip validation, so >=)
        assert!(
            removed >= injected_incomplete * 9 / 10,
            "removed {removed} of {injected_incomplete} incomplete"
        );
    }

    #[test]
    fn output_is_well_formed_tagged_text() {
        let c = corpus();
        let (texts, report) = Preprocessor::new(PreprocessConfig::default()).run(&c.raw_records);
        assert_eq!(texts.len(), report.output_texts);
        assert!(!texts.is_empty());
        for t in &texts {
            assert!(t.starts_with("<RECIPE_START>"), "bad start: {}", &t[..40.min(t.len())]);
            assert!(t.ends_with("<RECIPE_END>"));
            assert!(!NOISE_ARTIFACTS.iter().any(|a| t.contains(a)), "noise survived");
        }
    }

    #[test]
    fn caps_apply_structurally() {
        let cfg = PreprocessConfig {
            max_chars: 400,
            sigma_band: 10.0, // disable filtering to isolate capping
            merge_short: false,
            ..PreprocessConfig::default()
        };
        let c = corpus();
        let (texts, report) = Preprocessor::new(cfg).run(&c.raw_records);
        assert!(report.capped > 0);
        for t in &texts {
            // capped records stay valid tagged recipes
            assert!(t.contains("<INSTR_START>"));
            assert!(t.ends_with("<RECIPE_END>"));
        }
    }

    #[test]
    fn sigma_band_keeps_bulk_of_distribution() {
        let c = corpus();
        let (texts, report) = Preprocessor::new(PreprocessConfig::default()).run(&c.raw_records);
        // With a 2σ band the filter should remove only a small tail.
        let kept = texts.len() as f64 / (report.input_records as f64);
        assert!(kept > 0.7, "kept fraction {kept}");
        assert!(report.mean_len > 0.0);
        assert!(report.std_len > 0.0);
    }

    #[test]
    fn merging_combines_adjacent_short_records() {
        // Deterministic bimodal corpus: 20 long records and 4 adjacent
        // short ones. With a 1σ band the shorts fall below the merge
        // threshold and must coalesce into multi-recipe chunks.
        let long_steps: Vec<String> = (0..8)
            .map(|i| format!("cook the mixture thoroughly over medium heat step {i}"))
            .collect();
        let long = |i: usize| {
            format!(
                "Long Recipe {i}\nIngredients: 2 cups flour ; 1 cup sugar ; 3 cloves garlic\n{} . \n",
                long_steps.join(" . ")
            )
        };
        let short = |i: usize| {
            format!("Short {i}\nIngredients: 1 cup rice ; 1 teaspoon salt\nrinse . simmer . \n")
        };
        let mut records: Vec<RawRecord> = (0..20)
            .map(|i| RawRecord { text: long(i), source_id: i as u64, defect: None })
            .collect();
        for i in 0..4 {
            records.push(RawRecord {
                text: short(i),
                source_id: 100 + i as u64,
                defect: None,
            });
        }
        let cfg = PreprocessConfig {
            sigma_band: 1.0,
            ..PreprocessConfig::default()
        };
        let (texts, rep) = Preprocessor::new(cfg).run(&records);
        assert_eq!(rep.merged, 4, "{rep:?}");
        let multi = texts
            .iter()
            .filter(|t| t.matches("<RECIPE_START>").count() >= 2)
            .count();
        assert!(multi >= 1, "no merged chunk in output: {rep:?}");
        // merging never loses recipe content before the σ filter
        let total_recipes: usize = texts.iter().map(|t| t.matches("<RECIPE_START>").count()).sum();
        assert!(total_recipes >= 20, "total {total_recipes}");
    }

    #[test]
    fn empty_input_is_empty_output() {
        let (texts, report) = Preprocessor::new(PreprocessConfig::default()).run(&[]);
        assert!(texts.is_empty());
        assert_eq!(report.output_texts, 0);
    }
}

//! Corpus generation: the raw "as scraped" dataset with injected defects
//! (Fig. 1), train/test splitting, and tagged-text rendering.

use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::{RngExt, SeedableRng};

use crate::grammar::RecipeGenerator;
use crate::recipe::Recipe;

/// A raw-data defect the preprocessing pipeline must handle. RecipeDB's
/// web-scraped sources contain all of these (the paper: "the dataset is
/// unorganised and needed more manual preprocessing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Defect {
    /// Exact duplicate of an earlier record.
    Duplicate,
    /// Record cut off mid-text (lost instructions tail).
    Truncated,
    /// Instructions section missing entirely.
    MissingInstructions,
    /// Title line missing.
    MissingTitle,
    /// Scraping artifacts embedded in the text ("!1", entity escapes…).
    NoiseArtifacts,
}

/// One record of the raw corpus: the text as "scraped", plus ground truth
/// about which recipe produced it and what defect (if any) was injected.
/// The ground truth is *not* visible to the preprocessing pipeline — tests
/// use it to verify the pipeline's decisions.
#[derive(Debug, Clone)]
pub struct RawRecord {
    /// The raw text form.
    pub text: String,
    /// Id of the source recipe.
    pub source_id: u64,
    /// Injected defect, if any.
    pub defect: Option<Defect>,
}

/// Configuration for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// RNG seed; the whole corpus is a pure function of this config.
    pub seed: u64,
    /// Number of base recipes to generate.
    pub num_recipes: usize,
    /// Probability a record is followed by a duplicate of itself.
    pub duplicate_rate: f64,
    /// Probability a record is truncated mid-text.
    pub truncated_rate: f64,
    /// Probability a record loses its instructions or title.
    pub incomplete_rate: f64,
    /// Probability scraping noise is injected.
    pub noise_rate: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 42,
            num_recipes: 2000,
            duplicate_rate: 0.05,
            truncated_rate: 0.03,
            incomplete_rate: 0.04,
            noise_rate: 0.05,
        }
    }
}

/// The generated corpus: clean structured recipes plus the defect-injected
/// raw records derived from them.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Clean structured recipes (the "database" view of RecipeDB).
    pub recipes: Vec<Recipe>,
    /// Raw textual records with injected defects (the "scraped" view).
    pub raw_records: Vec<RawRecord>,
    config: CorpusConfig,
}

impl Corpus {
    /// Generate a corpus from the config. Deterministic.
    pub fn generate(config: CorpusConfig) -> Self {
        let mut gen = RecipeGenerator::new(config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9));
        let recipes: Vec<Recipe> = (0..config.num_recipes).map(|_| gen.generate()).collect();

        let mut raw_records = Vec::with_capacity(recipes.len() + recipes.len() / 10);
        for r in &recipes {
            let mut text = r.to_raw_string();
            let mut defect = None;
            if rng.random::<f64>() < config.incomplete_rate {
                if rng.random::<f64>() < 0.5 {
                    // drop the instructions paragraph (last line)
                    let without: Vec<&str> = text.lines().take(2).collect();
                    text = without.join("\n");
                    defect = Some(Defect::MissingInstructions);
                } else {
                    let without: Vec<&str> = text.lines().skip(1).collect();
                    text = without.join("\n");
                    defect = Some(Defect::MissingTitle);
                }
            } else if rng.random::<f64>() < config.truncated_rate {
                let keep = text.len() / 2 + rng.random_range(0..text.len() / 4);
                let cut = text
                    .char_indices()
                    .map(|(i, _)| i)
                    .take_while(|&i| i <= keep)
                    .last()
                    .unwrap_or(0);
                text.truncate(cut);
                defect = Some(Defect::Truncated);
            }
            if rng.random::<f64>() < config.noise_rate {
                let artifact = ["!1", "&nbsp;", "\\u00bd", "  <br/>"]
                    [rng.random_range(0..4usize)];
                text.push_str(artifact);
                defect = defect.or(Some(Defect::NoiseArtifacts));
            }
            raw_records.push(RawRecord {
                text,
                source_id: r.id,
                defect,
            });
            if rng.random::<f64>() < config.duplicate_rate {
                let last = raw_records.last().unwrap().clone();
                raw_records.push(RawRecord {
                    defect: Some(Defect::Duplicate),
                    ..last
                });
            }
        }
        Corpus {
            recipes,
            raw_records,
            config,
        }
    }

    /// The config this corpus was generated from.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Deterministic train/test split of the *clean* recipes: every
    /// `1/test_frac`-th recipe goes to test (interleaved, so both splits
    /// cover all regions and dish kinds).
    pub fn split(&self, test_frac: f64) -> (Vec<&Recipe>, Vec<&Recipe>) {
        assert!(
            (0.0..1.0).contains(&test_frac),
            "test_frac must be in [0,1), got {test_frac}"
        );
        if test_frac == 0.0 {
            return (self.recipes.iter().collect(), Vec::new());
        }
        let every = (1.0 / test_frac).round() as usize;
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, r) in self.recipes.iter().enumerate() {
            if i % every == every - 1 {
                test.push(r);
            } else {
                train.push(r);
            }
        }
        (train, test)
    }

    /// Tagged training strings for a set of recipes (Fig. 2 format).
    pub fn tagged_texts(recipes: &[&Recipe]) -> Vec<String> {
        recipes.iter().map(|r| r.to_tagged_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CorpusConfig {
        CorpusConfig {
            num_recipes: 300,
            ..CorpusConfig::default()
        }
    }

    #[test]
    fn deterministic() {
        let a = Corpus::generate(small());
        let b = Corpus::generate(small());
        assert_eq!(a.recipes, b.recipes);
        assert_eq!(a.raw_records.len(), b.raw_records.len());
        for (x, y) in a.raw_records.iter().zip(&b.raw_records) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.defect, y.defect);
        }
    }

    #[test]
    fn defects_injected_at_roughly_configured_rates() {
        let c = Corpus::generate(CorpusConfig {
            num_recipes: 2000,
            ..CorpusConfig::default()
        });
        let count = |d: Defect| c.raw_records.iter().filter(|r| r.defect == Some(d)).count();
        let n = c.recipes.len() as f64;
        let dup = count(Defect::Duplicate) as f64 / n;
        assert!((0.02..0.09).contains(&dup), "dup rate {dup}");
        let incomplete =
            (count(Defect::MissingInstructions) + count(Defect::MissingTitle)) as f64 / n;
        assert!((0.015..0.08).contains(&incomplete), "incomplete rate {incomplete}");
        // most records are clean
        let clean = c.raw_records.iter().filter(|r| r.defect.is_none()).count() as f64
            / c.raw_records.len() as f64;
        assert!(clean > 0.8, "clean fraction {clean}");
    }

    #[test]
    fn duplicates_are_exact_copies() {
        let c = Corpus::generate(small());
        for (i, rec) in c.raw_records.iter().enumerate() {
            if rec.defect == Some(Defect::Duplicate) {
                assert!(i > 0);
                assert_eq!(rec.text, c.raw_records[i - 1].text);
            }
        }
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let c = Corpus::generate(small());
        let (train, test) = c.split(0.1);
        assert_eq!(train.len() + test.len(), c.recipes.len());
        assert!((test.len() as f64 / c.recipes.len() as f64 - 0.1).abs() < 0.02);
        let train_ids: std::collections::HashSet<u64> = train.iter().map(|r| r.id).collect();
        assert!(test.iter().all(|r| !train_ids.contains(&r.id)));
    }

    #[test]
    fn split_zero_test() {
        let c = Corpus::generate(small());
        let (train, test) = c.split(0.0);
        assert_eq!(train.len(), c.recipes.len());
        assert!(test.is_empty());
    }

    #[test]
    fn tagged_texts_wrap_each_recipe() {
        let c = Corpus::generate(small());
        let (train, _) = c.split(0.1);
        let texts = Corpus::tagged_texts(&train);
        assert_eq!(texts.len(), train.len());
        for t in &texts {
            assert!(t.starts_with("<RECIPE_START>"));
            assert!(t.ends_with("<RECIPE_END>"));
        }
    }
}

//! Dietary-style classification — RecipeDB interlinks recipes with
//! "dietary styles" and disease associations (DietRx); this module
//! provides the dietary-style half: vegetarian/vegan/pescatarian/
//! gluten-free classification derived from the ontology, plus corpus
//! filters (used by the `fusion_cuisine` exploration and available to
//! downstream users for constrained generation corpora).

use crate::ontology::{self, IngredientCategory};
use crate::recipe::Recipe;

/// A dietary style a recipe can satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Diet {
    /// No meat or seafood.
    Vegetarian,
    /// No animal products at all.
    Vegan,
    /// Fish/seafood allowed, no other meat.
    Pescatarian,
    /// No wheat-flour-based ingredients.
    GlutenFree,
}

/// Ingredients with gluten (by name, from the ontology's grain entries).
const GLUTEN_SOURCES: &[&str] = &["flour", "pasta", "bread crumbs", "noodles", "couscous", "tortillas"];

/// Animal products that are not meat/seafood (for the vegan check).
const ANIMAL_PRODUCTS: &[&str] = &[
    "butter", "milk", "egg", "cheese", "yogurt", "cream", "parmesan", "paneer", "feta",
    "honey", "ghee", "gelatin", "stock", "fish sauce", "worcestershire sauce",
];

/// Does `recipe` satisfy `diet`? Unknown ingredients are treated
/// conservatively (fail the check) so the classifier never over-claims.
pub fn satisfies(recipe: &Recipe, diet: Diet) -> bool {
    recipe.ingredients.iter().all(|line| {
        let Some(ing) = ontology::ingredient(&line.name) else {
            return false; // unknown: be conservative
        };
        match diet {
            Diet::Vegetarian => !matches!(
                ing.category,
                IngredientCategory::Meat | IngredientCategory::Seafood
            ),
            Diet::Pescatarian => ing.category != IngredientCategory::Meat,
            Diet::Vegan => {
                !matches!(
                    ing.category,
                    IngredientCategory::Meat | IngredientCategory::Seafood
                ) && !ANIMAL_PRODUCTS.contains(&ing.name)
            }
            Diet::GlutenFree => !GLUTEN_SOURCES.contains(&ing.name),
        }
    })
}

/// All diets a recipe satisfies.
pub fn classify(recipe: &Recipe) -> Vec<Diet> {
    [Diet::Vegetarian, Diet::Vegan, Diet::Pescatarian, Diet::GlutenFree]
        .into_iter()
        .filter(|&d| satisfies(recipe, d))
        .collect()
}

/// Filter a recipe set by diet.
pub fn filter_by_diet<'a>(recipes: &'a [Recipe], diet: Diet) -> Vec<&'a Recipe> {
    recipes.iter().filter(|r| satisfies(r, diet)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::{IngredientLine, Quantity};

    fn recipe_with(names: &[&str]) -> Recipe {
        Recipe {
            id: 0,
            title: "test".into(),
            region: "US General".into(),
            country: "United States".into(),
            servings: 4,
            ingredients: names
                .iter()
                .map(|n| IngredientLine {
                    name: n.to_string(),
                    qty: Quantity(1.0),
                    unit: "cup".into(),
                })
                .collect(),
            processes: vec![],
            instructions: vec!["mix".into()],
        }
    }

    #[test]
    fn meat_fails_vegetarian() {
        let r = recipe_with(&["chicken", "onion"]);
        assert!(!satisfies(&r, Diet::Vegetarian));
        assert!(!satisfies(&r, Diet::Vegan));
        assert!(!satisfies(&r, Diet::Pescatarian));
    }

    #[test]
    fn fish_is_pescatarian_not_vegetarian() {
        let r = recipe_with(&["salmon", "lemon"]);
        assert!(satisfies(&r, Diet::Pescatarian));
        assert!(!satisfies(&r, Diet::Vegetarian));
    }

    #[test]
    fn dairy_is_vegetarian_not_vegan() {
        let r = recipe_with(&["butter", "flour", "sugar"]);
        assert!(satisfies(&r, Diet::Vegetarian));
        assert!(!satisfies(&r, Diet::Vegan));
        assert!(!satisfies(&r, Diet::GlutenFree)); // flour
    }

    #[test]
    fn vegan_and_gluten_free() {
        let r = recipe_with(&["rice", "lentils", "onion", "olive oil", "cumin"]);
        assert_eq!(
            classify(&r),
            vec![Diet::Vegetarian, Diet::Vegan, Diet::Pescatarian, Diet::GlutenFree]
        );
    }

    #[test]
    fn hidden_animal_products_caught() {
        for sneaky in ["fish sauce", "stock", "honey", "gelatin"] {
            let r = recipe_with(&[sneaky, "rice"]);
            assert!(!satisfies(&r, Diet::Vegan), "{sneaky} passed vegan");
        }
    }

    #[test]
    fn unknown_ingredient_is_conservative() {
        let r = recipe_with(&["mystery goo"]);
        assert!(!satisfies(&r, Diet::Vegan));
        assert!(!satisfies(&r, Diet::Vegetarian));
    }

    #[test]
    fn corpus_filter_finds_vegetarian_recipes() {
        use crate::corpus::{Corpus, CorpusConfig};
        let c = Corpus::generate(CorpusConfig {
            num_recipes: 300,
            ..CorpusConfig::default()
        });
        let veg = filter_by_diet(&c.recipes, Diet::Vegetarian);
        assert!(!veg.is_empty(), "no vegetarian recipes in 300");
        assert!(veg.len() < c.recipes.len(), "everything vegetarian?");
        for r in veg.iter().take(20) {
            assert!(satisfies(r, Diet::Vegetarian));
        }
    }
}

//! # ratatouille-recipedb
//!
//! A deterministic, seedable synthetic substitute for the RecipeDB corpus
//! the paper trains on (118,171 recipes, 20,262 ingredients, 268 cooking
//! processes, 26 geo-cultural regions, flavor/nutrition links).
//!
//! RecipeDB itself is served from IIIT-Delhi behind a registration wall and
//! has no redistributable offline copy, so this crate generates a corpus
//! with the same *schema* and the statistical properties the paper's
//! pipeline depends on:
//!
//! * recipes with title, region/country, servings, ingredient lines
//!   (quantity + unit + name — the paper's highlighted contribution),
//!   cooking processes, and step-by-step instructions;
//! * a culinary ontology ([`ontology`]) linking ingredients to categories,
//!   flavor molecules (FlavorDB-style), nutrition (USDA-style) and region
//!   affinities;
//! * Zipf-distributed ingredient frequencies and a long-tailed
//!   recipe-length distribution, so the paper's preprocessing steps
//!   (2000-character cap, ±2σ filtering, short-recipe merging) have real
//!   work to do;
//! * ingredient ↔ instruction consistency, so BLEU against held-out
//!   references measures genuine learning rather than template noise;
//! * injectable raw-data defects (duplicates, truncated records, empty
//!   sections) reproducing the "before preprocessing" state of Fig. 1.
//!
//! ```
//! use ratatouille_recipedb::{corpus::CorpusConfig, grammar::RecipeGenerator};
//!
//! let mut gen = RecipeGenerator::new(42);
//! let recipe = gen.generate();
//! assert!(!recipe.ingredients.is_empty());
//! assert!(!recipe.instructions.is_empty());
//! let _ = CorpusConfig::default(); // corpus-level entry point
//! ```
#![warn(missing_docs)]


pub mod corpus;
pub mod diet;
pub mod export;
pub mod grammar;
pub mod ontology;
pub mod pairing;
pub mod preprocess;
pub mod recipe;
pub mod stats;

pub use corpus::{Corpus, CorpusConfig, RawRecord};
pub use grammar::RecipeGenerator;
pub use preprocess::{PreprocessConfig, PreprocessReport, Preprocessor};
pub use recipe::{IngredientLine, Quantity, Recipe};

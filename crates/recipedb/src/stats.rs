//! Corpus statistics: the recipe-size distribution behind the paper's
//! 2σ/2000-character preprocessing decisions, plus ingredient frequency
//! accounting.

use ratatouille_util::accum::sum_f32;
use ratatouille_util::collections::{det_map, DetMap};

use crate::recipe::Recipe;

/// A fixed-width histogram over text lengths.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Inclusive lower bound of the first bucket.
    pub min: usize,
    /// Width of each bucket.
    pub bucket_width: usize,
    /// Counts per bucket.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Build a histogram of `values` with `buckets` equal-width buckets.
    pub fn build(values: &[usize], buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        if values.is_empty() {
            return Histogram {
                min: 0,
                bucket_width: 1,
                counts: vec![0; buckets],
            };
        }
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let width = ((max - min) / buckets + 1).max(1);
        let mut counts = vec![0usize; buckets];
        for &v in values {
            let b = ((v - min) / width).min(buckets - 1);
            counts[b] += 1;
        }
        Histogram {
            min,
            bucket_width: width,
            counts,
        }
    }

    /// Render as an ASCII bar chart (one line per bucket).
    pub fn render(&self, bar_width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = self.min + i * self.bucket_width;
            let hi = lo + self.bucket_width - 1;
            let bar = "#".repeat(c * bar_width / max);
            out.push_str(&format!("{lo:>6}-{hi:<6} | {bar} {c}\n"));
        }
        out
    }
}

/// Summary statistics of a length distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthStats {
    /// Sample count.
    pub n: usize,
    /// Mean length.
    pub mean: f32,
    /// Standard deviation.
    pub std: f32,
    /// Minimum.
    pub min: usize,
    /// Maximum.
    pub max: usize,
    /// Fraction of samples within mean ± 2σ.
    pub within_2_sigma: f32,
}

/// Compute [`LengthStats`] for a set of texts.
pub fn length_stats<S: AsRef<str>>(texts: &[S]) -> LengthStats {
    if texts.is_empty() {
        return LengthStats {
            n: 0,
            mean: 0.0,
            std: 0.0,
            min: 0,
            max: 0,
            within_2_sigma: 0.0,
        };
    }
    let lens: Vec<usize> = texts.iter().map(|t| t.as_ref().len()).collect();
    let n = lens.len() as f32;
    let mean = lens.iter().sum::<usize>() as f32 / n;
    let var = sum_f32(lens.iter().map(|&l| {
        let d = l as f32 - mean;
        d * d
    })) / n;
    let std = var.sqrt();
    let lo = mean - 2.0 * std;
    let hi = mean + 2.0 * std;
    let within = lens
        .iter()
        .filter(|&&l| (l as f32) >= lo && (l as f32) <= hi)
        .count() as f32
        / n;
    LengthStats {
        n: lens.len(),
        mean,
        std,
        min: *lens.iter().min().unwrap(),
        max: *lens.iter().max().unwrap(),
        within_2_sigma: within,
    }
}

/// Ingredient usage counts over a recipe set, most frequent first.
pub fn ingredient_frequencies(recipes: &[&Recipe]) -> Vec<(String, usize)> {
    let mut counts: DetMap<&str, usize> = det_map();
    for r in recipes {
        for line in &r.ingredients {
            *counts.entry(line.name.as_str()).or_insert(0) += 1;
        }
    }
    let mut v: Vec<(String, usize)> = counts
        .into_iter()
        .map(|(k, c)| (k.to_string(), c))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

/// Region usage counts over a recipe set.
pub fn region_frequencies(recipes: &[&Recipe]) -> Vec<(String, usize)> {
    let mut counts: DetMap<&str, usize> = det_map();
    for r in recipes {
        *counts.entry(r.region.as_str()).or_insert(0) += 1;
    }
    let mut v: Vec<(String, usize)> = counts
        .into_iter()
        .map(|(k, c)| (k.to_string(), c))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};

    #[test]
    fn histogram_covers_all_values() {
        let values = vec![1, 5, 9, 9, 9, 20];
        let h = Histogram::build(&values, 4);
        assert_eq!(h.counts.iter().sum::<usize>(), values.len());
        let rendered = h.render(20);
        assert_eq!(rendered.lines().count(), 4);
    }

    #[test]
    fn histogram_empty_and_uniform() {
        let h = Histogram::build(&[], 3);
        assert_eq!(h.counts, vec![0, 0, 0]);
        let h = Histogram::build(&[7, 7, 7], 3);
        assert_eq!(h.counts.iter().sum::<usize>(), 3);
    }

    #[test]
    fn length_stats_reference() {
        let texts = ["aa", "aaaa", "aaaaaa"]; // lens 2,4,6
        let s = length_stats(&texts);
        assert_eq!(s.n, 3);
        assert!((s.mean - 4.0).abs() < 1e-5);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 6);
        assert_eq!(s.within_2_sigma, 1.0);
    }

    #[test]
    fn corpus_lengths_are_long_tailed_but_mostly_within_2_sigma() {
        let c = Corpus::generate(CorpusConfig {
            num_recipes: 800,
            ..CorpusConfig::default()
        });
        let texts: Vec<String> = c.recipes.iter().map(|r| r.to_tagged_string()).collect();
        let s = length_stats(&texts);
        // The paper relies on ~95% of recipes falling within 2σ.
        assert!(s.within_2_sigma > 0.9, "within 2σ: {}", s.within_2_sigma);
        assert!(s.std > 0.0);
    }

    #[test]
    fn ingredient_frequencies_sorted_desc() {
        let c = Corpus::generate(CorpusConfig {
            num_recipes: 200,
            ..CorpusConfig::default()
        });
        let refs: Vec<&crate::recipe::Recipe> = c.recipes.iter().collect();
        let freqs = ingredient_frequencies(&refs);
        assert!(!freqs.is_empty());
        for w in freqs.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Zipf head: top ingredient should be very common.
        assert!(freqs[0].1 > c.recipes.len() / 5);
    }

    #[test]
    fn region_frequencies_cover_many_regions() {
        let c = Corpus::generate(CorpusConfig {
            num_recipes: 500,
            ..CorpusConfig::default()
        });
        let refs: Vec<&crate::recipe::Recipe> = c.recipes.iter().collect();
        let regions = region_frequencies(&refs);
        assert!(regions.len() >= 20, "only {} regions hit", regions.len());
    }
}

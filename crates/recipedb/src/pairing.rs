//! Flavor-pairing analysis — the FlavorDB side of RecipeDB's pitch
//! ("scientific explorations of the culinary space … to taste attributes").
//!
//! The food-pairing hypothesis scores ingredient pairs by shared flavor
//! molecules; this module computes those scores over the ontology and
//! checks whether the recipe grammar's region conditioning produces the
//! co-occurrence structure real cuisines show.

use crate::ontology::{self, Ingredient, INGREDIENTS};
use crate::recipe::Recipe;

/// Flavor molecules two ingredients share.
pub fn shared_molecules(a: &Ingredient, b: &Ingredient) -> Vec<&'static str> {
    a.flavor_molecules
        .iter()
        .filter(|m| b.flavor_molecules.contains(m))
        .copied()
        .collect()
}

/// Jaccard similarity of two ingredients' molecule sets (0 when either
/// has no catalogued molecules).
pub fn pairing_score(a: &Ingredient, b: &Ingredient) -> f64 {
    let shared = shared_molecules(a, b).len();
    let union = a.flavor_molecules.len() + b.flavor_molecules.len() - shared;
    if union == 0 {
        0.0
    } else {
        shared as f64 / union as f64
    }
}

/// The strongest flavor pairings for `name`, best first.
pub fn best_pairings(name: &str, top: usize) -> Vec<(&'static str, f64)> {
    let Some(ing) = ontology::ingredient(name) else {
        return Vec::new();
    };
    let mut scored: Vec<(&'static str, f64)> = INGREDIENTS
        .iter()
        .filter(|other| other.name != ing.name)
        .map(|other| (other.name, pairing_score(ing, other)))
        .filter(|&(_, s)| s > 0.0)
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(b.0)));
    scored.truncate(top);
    scored
}

/// Mean pairwise pairing score across a recipe's ingredients — a crude
/// "flavor coherence" signal.
pub fn recipe_pairing_score(recipe: &Recipe) -> f64 {
    let ings: Vec<&Ingredient> = recipe
        .ingredients
        .iter()
        .filter_map(|l| ontology::ingredient(&l.name))
        .collect();
    if ings.len() < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for i in 0..ings.len() {
        for j in i + 1..ings.len() {
            // xlint: allow(accum-discipline): f64 sum over the (i, j) pair order, which is fixed by the loops
            sum += pairing_score(ings[i], ings[j]);
            n += 1;
        }
    }
    sum / n as f64
}

/// Ingredient co-occurrence count over a recipe set, strongest first —
/// the statistic region conditioning is supposed to shape.
pub fn co_occurrence(recipes: &[&Recipe], min_count: usize) -> Vec<((String, String), usize)> {
    use ratatouille_util::collections::{det_map, DetMap};
    let mut counts: DetMap<(String, String), usize> = det_map();
    for r in recipes {
        let mut names: Vec<&str> = r.ingredients.iter().map(|l| l.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        for i in 0..names.len() {
            for j in i + 1..names.len() {
                *counts
                    .entry((names[i].to_string(), names[j].to_string()))
                    .or_insert(0) += 1;
            }
        }
    }
    let mut v: Vec<((String, String), usize)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};

    fn ing(name: &str) -> &'static Ingredient {
        ontology::ingredient(name).unwrap()
    }

    #[test]
    fn shared_molecules_symmetric() {
        let a = ing("sesame oil");
        let b = ing("sesame seeds");
        let ab = shared_molecules(a, b);
        let ba = shared_molecules(b, a);
        assert_eq!(ab.len(), ba.len());
        assert!(ab.contains(&"sesamol"), "{ab:?}");
    }

    #[test]
    fn pairing_score_bounds_and_symmetry() {
        for (x, y) in [("butter", "cream"), ("lemon", "lime"), ("salt", "flour")] {
            let s1 = pairing_score(ing(x), ing(y));
            let s2 = pairing_score(ing(y), ing(x));
            assert!((0.0..=1.0).contains(&s1));
            assert_eq!(s1, s2, "{x}/{y}");
        }
        // identical molecule sets → 1.0
        assert_eq!(pairing_score(ing("lemon"), ing("lemon")), 1.0);
        // salt has no molecules catalogued → 0 with everything
        assert_eq!(pairing_score(ing("salt"), ing("flour")), 0.0);
    }

    #[test]
    fn classic_pairings_rank_high() {
        // butter–cream share diacetyl & lactones: should be a top pairing
        let tops = best_pairings("butter", 8);
        assert!(
            tops.iter().any(|(n, _)| *n == "cream"),
            "butter's best pairings: {tops:?}"
        );
        // citrus pairs: lemon ↔ lime / orange share limonene+citral
        let tops = best_pairings("lemon", 5);
        assert!(tops.iter().any(|(n, _)| *n == "lime"), "{tops:?}");
    }

    #[test]
    fn unknown_ingredient_is_empty() {
        assert!(best_pairings("unobtanium", 5).is_empty());
    }

    #[test]
    fn recipe_scores_are_bounded() {
        let c = Corpus::generate(CorpusConfig {
            num_recipes: 50,
            ..CorpusConfig::default()
        });
        for r in &c.recipes {
            let s = recipe_pairing_score(r);
            assert!((0.0..=1.0).contains(&s), "recipe {} score {s}", r.id);
        }
    }

    #[test]
    fn region_conditioning_shapes_cooccurrence() {
        // Classic regional pairs should co-occur often in a corpus.
        let c = Corpus::generate(CorpusConfig {
            num_recipes: 600,
            ..CorpusConfig::default()
        });
        let refs: Vec<&Recipe> = c.recipes.iter().collect();
        let pairs = co_occurrence(&refs, 3);
        assert!(!pairs.is_empty());
        let find = |a: &str, b: &str| -> usize {
            let key = if a < b { (a, b) } else { (b, a) };
            pairs
                .iter()
                .find(|((x, y), _)| x == key.0 && y == key.1)
                .map(|&(_, c)| c)
                .unwrap_or(0)
        };
        // soy sauce & ginger (East Asian) should co-occur far more than
        // soy sauce & parmesan (cross-cuisine)
        let coherent = find("ginger", "soy sauce");
        let incoherent = find("parmesan", "soy sauce");
        assert!(
            coherent > incoherent,
            "ginger+soy {coherent} vs parmesan+soy {incoherent}"
        );
    }
}

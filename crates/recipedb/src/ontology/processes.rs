//! Cooking processes (RecipeDB catalogs 268; we model a representative
//! 64 spanning preparation, heat application, combination and finishing).

/// Broad class of a cooking process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessKind {
    /// Knife work and other pre-cooking preparation.
    Prep,
    /// Applying heat.
    Heat,
    /// Combining or transforming mixtures.
    Combine,
    /// Plating, garnishing, resting.
    Finish,
}

/// One cooking process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Process {
    /// Imperative verb as it appears in instructions ("simmer").
    pub verb: &'static str,
    /// Process class.
    pub kind: ProcessKind,
    /// Typical duration in minutes (0 for instantaneous actions).
    pub minutes: u16,
}

use ProcessKind::*;

/// All cooking processes the grammar can emit.
pub const PROCESSES: &[Process] = &[
    // --- Prep -------------------------------------------------------
    Process { verb: "chop", kind: Prep, minutes: 5 },
    Process { verb: "dice", kind: Prep, minutes: 5 },
    Process { verb: "mince", kind: Prep, minutes: 4 },
    Process { verb: "slice", kind: Prep, minutes: 4 },
    Process { verb: "julienne", kind: Prep, minutes: 6 },
    Process { verb: "grate", kind: Prep, minutes: 3 },
    Process { verb: "peel", kind: Prep, minutes: 3 },
    Process { verb: "trim", kind: Prep, minutes: 2 },
    Process { verb: "rinse", kind: Prep, minutes: 1 },
    Process { verb: "drain", kind: Prep, minutes: 1 },
    Process { verb: "soak", kind: Prep, minutes: 30 },
    Process { verb: "marinate", kind: Prep, minutes: 60 },
    Process { verb: "season", kind: Prep, minutes: 1 },
    Process { verb: "measure", kind: Prep, minutes: 2 },
    Process { verb: "crush", kind: Prep, minutes: 2 },
    Process { verb: "zest", kind: Prep, minutes: 2 },
    Process { verb: "core", kind: Prep, minutes: 2 },
    Process { verb: "shred", kind: Prep, minutes: 4 },
    Process { verb: "cube", kind: Prep, minutes: 5 },
    Process { verb: "butterfly", kind: Prep, minutes: 4 },
    // --- Heat -------------------------------------------------------
    Process { verb: "boil", kind: Heat, minutes: 10 },
    Process { verb: "simmer", kind: Heat, minutes: 20 },
    Process { verb: "steam", kind: Heat, minutes: 12 },
    Process { verb: "blanch", kind: Heat, minutes: 3 },
    Process { verb: "poach", kind: Heat, minutes: 8 },
    Process { verb: "fry", kind: Heat, minutes: 8 },
    Process { verb: "deep-fry", kind: Heat, minutes: 6 },
    Process { verb: "stir-fry", kind: Heat, minutes: 6 },
    Process { verb: "saute", kind: Heat, minutes: 5 },
    Process { verb: "sear", kind: Heat, minutes: 4 },
    Process { verb: "grill", kind: Heat, minutes: 12 },
    Process { verb: "broil", kind: Heat, minutes: 8 },
    Process { verb: "roast", kind: Heat, minutes: 45 },
    Process { verb: "bake", kind: Heat, minutes: 30 },
    Process { verb: "toast", kind: Heat, minutes: 3 },
    Process { verb: "braise", kind: Heat, minutes: 90 },
    Process { verb: "stew", kind: Heat, minutes: 60 },
    Process { verb: "caramelize", kind: Heat, minutes: 15 },
    Process { verb: "reduce", kind: Heat, minutes: 10 },
    Process { verb: "preheat", kind: Heat, minutes: 10 },
    Process { verb: "melt", kind: Heat, minutes: 3 },
    Process { verb: "scald", kind: Heat, minutes: 4 },
    Process { verb: "smoke", kind: Heat, minutes: 120 },
    Process { verb: "temper", kind: Heat, minutes: 5 },
    // --- Combine ----------------------------------------------------
    Process { verb: "mix", kind: Combine, minutes: 3 },
    Process { verb: "stir", kind: Combine, minutes: 2 },
    Process { verb: "whisk", kind: Combine, minutes: 3 },
    Process { verb: "beat", kind: Combine, minutes: 4 },
    Process { verb: "fold", kind: Combine, minutes: 2 },
    Process { verb: "knead", kind: Combine, minutes: 10 },
    Process { verb: "blend", kind: Combine, minutes: 2 },
    Process { verb: "puree", kind: Combine, minutes: 3 },
    Process { verb: "toss", kind: Combine, minutes: 1 },
    Process { verb: "coat", kind: Combine, minutes: 2 },
    Process { verb: "stuff", kind: Combine, minutes: 8 },
    Process { verb: "layer", kind: Combine, minutes: 5 },
    Process { verb: "roll", kind: Combine, minutes: 5 },
    Process { verb: "emulsify", kind: Combine, minutes: 3 },
    // --- Finish -----------------------------------------------------
    Process { verb: "garnish", kind: Finish, minutes: 2 },
    Process { verb: "rest", kind: Finish, minutes: 10 },
    Process { verb: "chill", kind: Finish, minutes: 60 },
    Process { verb: "cool", kind: Finish, minutes: 15 },
    Process { verb: "serve", kind: Finish, minutes: 1 },
    Process { verb: "plate", kind: Finish, minutes: 2 },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_present() {
        for kind in [Prep, Heat, Combine, Finish] {
            assert!(
                PROCESSES.iter().any(|p| p.kind == kind),
                "no process of kind {kind:?}"
            );
        }
    }

    #[test]
    fn verbs_lowercase_single_token() {
        for p in PROCESSES {
            assert_eq!(p.verb, p.verb.to_lowercase(), "verb {} not lowercase", p.verb);
            assert!(!p.verb.contains(' '), "verb {} contains space", p.verb);
        }
    }

    #[test]
    fn catalog_size() {
        assert!(PROCESSES.len() >= 60, "got {}", PROCESSES.len());
    }
}

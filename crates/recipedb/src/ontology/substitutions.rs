//! Ingredient substitutions — the practical side of culinary-space
//! exploration: what can stand in for what, and at what ratio.
//!
//! Used by downstream applications (e.g. dietary adaptation: swap butter
//! for coconut oil to veganize) and validated against the ontology so a
//! substitution never dangles.

/// One directed substitution rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Substitution {
    /// Ingredient being replaced.
    pub from: &'static str,
    /// Ingredient standing in.
    pub to: &'static str,
    /// Quantity multiplier (1 unit of `from` ≈ `ratio` units of `to`).
    pub ratio: f32,
    /// When this substitution is appropriate.
    pub note: &'static str,
}

/// The substitution catalog (both directions are listed explicitly when
/// valid — ratios are not generally symmetric).
pub const SUBSTITUTIONS: &[Substitution] = &[
    Substitution { from: "butter", to: "coconut oil", ratio: 1.0, note: "vegan baking/sautéing" },
    Substitution { from: "butter", to: "olive oil", ratio: 0.75, note: "savory cooking" },
    Substitution { from: "butter", to: "ghee", ratio: 1.0, note: "higher smoke point" },
    Substitution { from: "cream", to: "coconut milk", ratio: 1.0, note: "dairy-free curries/soups" },
    Substitution { from: "milk", to: "coconut milk", ratio: 1.0, note: "dairy-free" },
    Substitution { from: "yogurt", to: "cream", ratio: 1.0, note: "richer, less tang" },
    Substitution { from: "sugar", to: "honey", ratio: 0.75, note: "reduce other liquid slightly" },
    Substitution { from: "sugar", to: "maple syrup", ratio: 0.75, note: "reduce other liquid slightly" },
    Substitution { from: "sugar", to: "jaggery", ratio: 1.0, note: "south-asian desserts" },
    Substitution { from: "honey", to: "maple syrup", ratio: 1.0, note: "vegan" },
    Substitution { from: "soy sauce", to: "fish sauce", ratio: 0.5, note: "stronger; use less" },
    Substitution { from: "soy sauce", to: "miso", ratio: 1.0, note: "paste: thin with water" },
    Substitution { from: "fish sauce", to: "soy sauce", ratio: 1.5, note: "vegetarian" },
    Substitution { from: "lemon", to: "lime", ratio: 1.0, note: "interchangeable acidity" },
    Substitution { from: "lime", to: "lemon", ratio: 1.0, note: "interchangeable acidity" },
    Substitution { from: "lemon", to: "vinegar", ratio: 0.5, note: "acidity only, no aroma" },
    Substitution { from: "cilantro", to: "parsley", ratio: 1.0, note: "for cilantro-averse eaters" },
    Substitution { from: "basil", to: "mint", ratio: 1.0, note: "southeast-asian dishes" },
    Substitution { from: "chicken", to: "tofu", ratio: 1.0, note: "vegetarian protein" },
    Substitution { from: "chicken", to: "turkey", ratio: 1.0, note: "leaner" },
    Substitution { from: "beef", to: "lamb", ratio: 1.0, note: "richer stews" },
    Substitution { from: "shrimp", to: "tofu", ratio: 1.0, note: "vegetarian" },
    Substitution { from: "flour", to: "cornmeal", ratio: 1.0, note: "gluten-free breading only" },
    Substitution { from: "cornstarch", to: "flour", ratio: 2.0, note: "thickening: use double" },
    Substitution { from: "flour", to: "cornstarch", ratio: 0.5, note: "thickening: use half" },
    Substitution { from: "baking powder", to: "baking soda", ratio: 0.33, note: "needs an acid present" },
    Substitution { from: "stock", to: "coconut milk", ratio: 1.0, note: "creamy soups" },
    Substitution { from: "parmesan", to: "feta", ratio: 1.0, note: "salty garnish; different melt" },
    Substitution { from: "paneer", to: "tofu", ratio: 1.0, note: "vegan curries" },
    Substitution { from: "gochujang", to: "harissa", ratio: 1.0, note: "different cuisine, similar heat/paste" },
    Substitution { from: "tahini", to: "peanut butter", ratio: 1.0, note: "sauces; nuttier" },
    Substitution { from: "vegetable oil", to: "olive oil", ratio: 1.0, note: "savory cooking" },
    Substitution { from: "rice", to: "quinoa", ratio: 1.0, note: "higher protein" },
    Substitution { from: "rice", to: "couscous", ratio: 1.0, note: "faster cooking" },
];

/// All substitutes for an ingredient.
pub fn substitutes(name: &str) -> Vec<&'static Substitution> {
    SUBSTITUTIONS.iter().filter(|s| s.from == name).collect()
}

/// Apply a substitution to a quantity.
pub fn substituted_quantity(sub: &Substitution, qty: f32) -> f32 {
    qty * sub.ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology;

    #[test]
    fn every_rule_references_real_ingredients() {
        for s in SUBSTITUTIONS {
            assert!(
                ontology::ingredient(s.from).is_some(),
                "unknown `from` ingredient: {}",
                s.from
            );
            assert!(
                ontology::ingredient(s.to).is_some(),
                "unknown `to` ingredient: {}",
                s.to
            );
            assert!(s.ratio > 0.0, "{} -> {} has nonpositive ratio", s.from, s.to);
            assert!(!s.note.is_empty());
            assert_ne!(s.from, s.to);
        }
    }

    #[test]
    fn lookup_and_ratio() {
        let subs = substitutes("butter");
        assert!(subs.len() >= 3);
        assert!(subs.iter().any(|s| s.to == "coconut oil"));
        let oil = subs.iter().find(|s| s.to == "olive oil").unwrap();
        assert_eq!(substituted_quantity(oil, 4.0), 3.0);
    }

    #[test]
    fn unknown_ingredient_has_no_rules() {
        assert!(substitutes("unobtanium").is_empty());
    }

    #[test]
    fn vegan_escape_hatches_exist() {
        // every common animal product has at least one plant substitute
        use crate::diet::{satisfies, Diet};
        use crate::recipe::{IngredientLine, Quantity, Recipe};
        for animal in ["butter", "cream", "chicken", "paneer"] {
            let subs = substitutes(animal);
            let has_vegan = subs.iter().any(|s| {
                let r = Recipe {
                    id: 0,
                    title: "t".into(),
                    region: "US General".into(),
                    country: "United States".into(),
                    servings: 2,
                    ingredients: vec![IngredientLine {
                        name: s.to.to_string(),
                        qty: Quantity(1.0),
                        unit: "cup".into(),
                    }],
                    processes: vec![],
                    instructions: vec!["mix".into()],
                };
                satisfies(&r, Diet::Vegan)
            });
            assert!(has_vegan, "{animal} has no vegan substitute");
        }
    }
}

//! Geo-cultural regions: 26 regions across 6 continents with
//! representative countries, mirroring RecipeDB's geography (6 continents,
//! 26 geo-cultural regions, 74 countries).

/// A geo-cultural region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Region name as used throughout the corpus.
    pub name: &'static str,
    /// Continent the region belongs to.
    pub continent: &'static str,
    /// Representative countries.
    pub countries: &'static [&'static str],
    /// Adjective used in generated titles ("thai chicken curry").
    pub adjective: &'static str,
}

/// All 26 regions.
pub const REGIONS: &[Region] = &[
    // --- Africa -----------------------------------------------------
    Region { name: "Northern Africa", continent: "Africa", countries: &["Egypt", "Morocco", "Tunisia"], adjective: "moroccan" },
    Region { name: "Western Africa", continent: "Africa", countries: &["Nigeria", "Ghana", "Senegal"], adjective: "west african" },
    Region { name: "Eastern Africa", continent: "Africa", countries: &["Ethiopia", "Kenya"], adjective: "ethiopian" },
    Region { name: "Southern Africa", continent: "Africa", countries: &["South Africa", "Mozambique"], adjective: "south african" },
    // --- Asia -------------------------------------------------------
    Region { name: "Middle Eastern", continent: "Asia", countries: &["Lebanon", "Turkey", "Iran", "Israel"], adjective: "lebanese" },
    Region { name: "Indian Subcontinent", continent: "Asia", countries: &["India", "Pakistan", "Bangladesh", "Sri Lanka"], adjective: "indian" },
    Region { name: "Southeast Asian", continent: "Asia", countries: &["Thailand", "Vietnam", "Indonesia", "Malaysia", "Philippines"], adjective: "thai" },
    Region { name: "Chinese", continent: "Asia", countries: &["China"], adjective: "chinese" },
    Region { name: "Japanese", continent: "Asia", countries: &["Japan"], adjective: "japanese" },
    Region { name: "Korean", continent: "Asia", countries: &["South Korea"], adjective: "korean" },
    Region { name: "Central Asian", continent: "Asia", countries: &["Uzbekistan", "Kazakhstan"], adjective: "central asian" },
    // --- Europe -----------------------------------------------------
    Region { name: "Eastern European", continent: "Europe", countries: &["Poland", "Ukraine", "Hungary", "Russia"], adjective: "polish" },
    Region { name: "Scandinavian", continent: "Europe", countries: &["Sweden", "Norway", "Denmark", "Finland"], adjective: "swedish" },
    Region { name: "British Isles", continent: "Europe", countries: &["United Kingdom", "Ireland"], adjective: "british" },
    Region { name: "Western European", continent: "Europe", countries: &["France", "Belgium", "Netherlands", "Germany", "Austria", "Switzerland"], adjective: "french" },
    Region { name: "Southern European", continent: "Europe", countries: &["Italy", "Spain", "Portugal", "Greece"], adjective: "italian" },
    // --- North America ----------------------------------------------
    Region { name: "US General", continent: "North America", countries: &["United States"], adjective: "american" },
    Region { name: "US Southern", continent: "North America", countries: &["United States"], adjective: "cajun" },
    Region { name: "Canadian", continent: "North America", countries: &["Canada"], adjective: "canadian" },
    Region { name: "Mexican", continent: "North America", countries: &["Mexico"], adjective: "mexican" },
    Region { name: "Central American", continent: "North America", countries: &["Guatemala", "Costa Rica", "Panama"], adjective: "central american" },
    Region { name: "Caribbean", continent: "North America", countries: &["Jamaica", "Cuba", "Trinidad and Tobago"], adjective: "jamaican" },
    // --- South America ----------------------------------------------
    Region { name: "South American", continent: "South America", countries: &["Brazil", "Argentina", "Peru", "Colombia", "Chile"], adjective: "brazilian" },
    Region { name: "Andean", continent: "South America", countries: &["Peru", "Bolivia", "Ecuador"], adjective: "peruvian" },
    // --- Oceania ----------------------------------------------------
    Region { name: "Australian", continent: "Oceania", countries: &["Australia", "New Zealand"], adjective: "australian" },
    Region { name: "Pacific Islander", continent: "Oceania", countries: &["Fiji", "Samoa", "Hawaii"], adjective: "hawaiian" },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn countries_nonempty() {
        for r in REGIONS {
            assert!(!r.countries.is_empty(), "region {} has no countries", r.name);
            assert!(!r.adjective.is_empty());
        }
    }

    #[test]
    fn country_count_is_paper_scale() {
        let mut countries: Vec<&str> = REGIONS.iter().flat_map(|r| r.countries.iter().copied()).collect();
        countries.sort_unstable();
        countries.dedup();
        // RecipeDB spans 74 countries; a representative subset is fine but
        // it should be a real spread, not a handful.
        assert!(countries.len() >= 50, "only {} countries", countries.len());
    }
}

//! The culinary ontology: ingredients, cooking processes, units, and
//! geo-cultural regions, interlinked the way RecipeDB links recipes to
//! FlavorDB molecules, USDA nutrition and region metadata.

pub mod ingredients;
pub mod processes;
pub mod regions;
pub mod substitutions;
pub mod units;

pub use ingredients::{Ingredient, IngredientCategory, INGREDIENTS};
pub use processes::{Process, ProcessKind, PROCESSES};
pub use regions::{Region, REGIONS};
pub use substitutions::{substitutes, Substitution, SUBSTITUTIONS};
pub use units::{Unit, UnitKind, UNITS};

/// Look up an ingredient definition by name.
pub fn ingredient(name: &str) -> Option<&'static Ingredient> {
    INGREDIENTS.iter().find(|i| i.name == name)
}

/// Look up a process by verb.
pub fn process(verb: &str) -> Option<&'static Process> {
    PROCESSES.iter().find(|p| p.verb == verb)
}

/// Look up a unit by singular name.
pub fn unit(name: &str) -> Option<&'static Unit> {
    UNITS.iter().find(|u| u.name == name)
}

/// Look up a region by name.
pub fn region(name: &str) -> Option<&'static Region> {
    REGIONS.iter().find(|r| r.name == name)
}

/// All ingredients in a category.
pub fn ingredients_in(cat: IngredientCategory) -> Vec<&'static Ingredient> {
    INGREDIENTS.iter().filter(|i| i.category == cat).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_is_well_formed() {
        // Every ingredient references a real unit and at least one region.
        for ing in INGREDIENTS {
            assert!(
                unit(ing.default_unit).is_some(),
                "ingredient `{}` has unknown unit `{}`",
                ing.name,
                ing.default_unit
            );
            assert!(
                !ing.regions.is_empty(),
                "ingredient `{}` has no region affinity",
                ing.name
            );
            for r in ing.regions {
                assert!(
                    region(r).is_some(),
                    "ingredient `{}` references unknown region `{r}`",
                    ing.name
                );
            }
            assert!(ing.kcal_per_100g >= 0.0);
            assert!(ing.typical_qty > 0.0, "ingredient `{}` typical_qty", ing.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for ing in INGREDIENTS {
            assert!(seen.insert(ing.name), "duplicate ingredient `{}`", ing.name);
        }
        let mut seen = std::collections::HashSet::new();
        for p in PROCESSES {
            assert!(seen.insert(p.verb), "duplicate process `{}`", p.verb);
        }
        let mut seen = std::collections::HashSet::new();
        for r in REGIONS {
            assert!(seen.insert(r.name), "duplicate region `{}`", r.name);
        }
    }

    #[test]
    fn paper_scale_shape() {
        // The paper: 6 continents, 26 regions. We model all 26 regions.
        let continents: std::collections::HashSet<_> =
            REGIONS.iter().map(|r| r.continent).collect();
        assert_eq!(continents.len(), 6, "expected 6 continents");
        assert_eq!(REGIONS.len(), 26, "expected 26 regions");
        // A useful spread of processes and ingredients.
        assert!(PROCESSES.len() >= 50, "got {} processes", PROCESSES.len());
        assert!(INGREDIENTS.len() >= 120, "got {} ingredients", INGREDIENTS.len());
    }

    #[test]
    fn every_category_is_populated() {
        use IngredientCategory::*;
        for cat in [
            Grain, Vegetable, Fruit, Meat, Seafood, Dairy, Spice, Herb, Oil, Sweetener,
            Legume, Nut, Condiment, Baking,
        ] {
            assert!(
                !ingredients_in(cat).is_empty(),
                "category {cat:?} has no ingredients"
            );
        }
    }

    #[test]
    fn lookups_work() {
        assert!(ingredient("flour").is_some());
        assert!(ingredient("unobtanium").is_none());
        assert!(process("simmer").is_some());
        assert!(unit("cup").is_some());
    }
}

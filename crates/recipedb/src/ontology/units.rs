//! Measurement units with approximate gram equivalents (for nutrition
//! aggregation) and pluralization.

/// What a unit measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitKind {
    /// Volume (cup, tablespoon, millilitre…).
    Volume,
    /// Mass (gram, pound, ounce…).
    Mass,
    /// Discrete count (clove, piece, slice…).
    Count,
}

/// A measurement unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Unit {
    /// Singular name ("cup").
    pub name: &'static str,
    /// Plural name ("cups").
    pub plural: &'static str,
    /// What kind of measurement this is.
    pub kind: UnitKind,
    /// Approximate grams of a typical ingredient per 1 unit (used for
    /// nutrition aggregation; volume figures assume water-like density).
    pub grams: f32,
}

/// All units the grammar can emit.
pub const UNITS: &[Unit] = &[
    Unit { name: "cup", plural: "cups", kind: UnitKind::Volume, grams: 240.0 },
    Unit { name: "tablespoon", plural: "tablespoons", kind: UnitKind::Volume, grams: 15.0 },
    Unit { name: "teaspoon", plural: "teaspoons", kind: UnitKind::Volume, grams: 5.0 },
    Unit { name: "millilitre", plural: "millilitres", kind: UnitKind::Volume, grams: 1.0 },
    Unit { name: "litre", plural: "litres", kind: UnitKind::Volume, grams: 1000.0 },
    Unit { name: "gram", plural: "grams", kind: UnitKind::Mass, grams: 1.0 },
    Unit { name: "kilogram", plural: "kilograms", kind: UnitKind::Mass, grams: 1000.0 },
    Unit { name: "ounce", plural: "ounces", kind: UnitKind::Mass, grams: 28.35 },
    Unit { name: "pound", plural: "pounds", kind: UnitKind::Mass, grams: 453.6 },
    Unit { name: "pinch", plural: "pinches", kind: UnitKind::Volume, grams: 0.4 },
    Unit { name: "dash", plural: "dashes", kind: UnitKind::Volume, grams: 0.6 },
    Unit { name: "clove", plural: "cloves", kind: UnitKind::Count, grams: 5.0 },
    Unit { name: "piece", plural: "pieces", kind: UnitKind::Count, grams: 100.0 },
    Unit { name: "slice", plural: "slices", kind: UnitKind::Count, grams: 30.0 },
    Unit { name: "bunch", plural: "bunches", kind: UnitKind::Count, grams: 150.0 },
    Unit { name: "can", plural: "cans", kind: UnitKind::Count, grams: 400.0 },
    Unit { name: "stalk", plural: "stalks", kind: UnitKind::Count, grams: 40.0 },
    Unit { name: "sprig", plural: "sprigs", kind: UnitKind::Count, grams: 2.0 },
    Unit { name: "head", plural: "heads", kind: UnitKind::Count, grams: 500.0 },
    Unit { name: "fillet", plural: "fillets", kind: UnitKind::Count, grams: 170.0 },
];

impl Unit {
    /// "cup" for 1, "cups" otherwise (fractions < 1 read as singular:
    /// "1/2 cup").
    pub fn display(&self, qty: f32) -> &'static str {
        if qty <= 1.0 {
            self.name
        } else {
            self.plural
        }
    }

    /// Grams represented by `qty` of this unit.
    pub fn to_grams(&self, qty: f32) -> f32 {
        self.grams * qty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pluralization() {
        let cup = UNITS.iter().find(|u| u.name == "cup").unwrap();
        assert_eq!(cup.display(0.5), "cup");
        assert_eq!(cup.display(1.0), "cup");
        assert_eq!(cup.display(2.0), "cups");
    }

    #[test]
    fn gram_conversion_sane() {
        let lb = UNITS.iter().find(|u| u.name == "pound").unwrap();
        assert!((lb.to_grams(2.0) - 907.2).abs() < 0.1);
        for u in UNITS {
            assert!(u.grams > 0.0, "unit {} has nonpositive grams", u.name);
        }
    }

    #[test]
    fn names_unique_and_plural_differs() {
        let mut seen = std::collections::HashSet::new();
        for u in UNITS {
            assert!(seen.insert(u.name));
            assert_ne!(u.name, u.plural, "unit {} lacks plural", u.name);
        }
    }
}

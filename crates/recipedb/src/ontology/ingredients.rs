//! The ingredient catalog: names, categories, default measures,
//! FlavorDB-style flavor molecules, USDA-style nutrition per 100 g, and
//! region affinities. RecipeDB links 20,262 ingredients; this catalog is a
//! representative 140-ingredient core that covers every category the
//! recipe grammar composes from.

/// Culinary category of an ingredient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IngredientCategory {
    /// Flours, rice, pasta, oats…
    Grain,
    /// Vegetables and aromatics.
    Vegetable,
    /// Fruit, fresh or dried.
    Fruit,
    /// Meat and poultry.
    Meat,
    /// Fish and shellfish.
    Seafood,
    /// Milk, cheese, butter, yogurt…
    Dairy,
    /// Dried spices.
    Spice,
    /// Fresh herbs.
    Herb,
    /// Cooking fats and oils.
    Oil,
    /// Sugars, honey, syrups.
    Sweetener,
    /// Beans, lentils, chickpeas…
    Legume,
    /// Nuts and seeds.
    Nut,
    /// Sauces and condiments.
    Condiment,
    /// Leaveners and other baking staples.
    Baking,
}

/// One ingredient definition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ingredient {
    /// Canonical lowercase name.
    pub name: &'static str,
    /// Culinary category.
    pub category: IngredientCategory,
    /// Default unit the grammar measures it in.
    pub default_unit: &'static str,
    /// Typical quantity in that unit for a 4-serving recipe.
    pub typical_qty: f32,
    /// FlavorDB-style key flavor molecules.
    pub flavor_molecules: &'static [&'static str],
    /// Kilocalories per 100 g.
    pub kcal_per_100g: f32,
    /// Protein grams per 100 g.
    pub protein_g: f32,
    /// Fat grams per 100 g.
    pub fat_g: f32,
    /// Carbohydrate grams per 100 g.
    pub carbs_g: f32,
    /// Regions where this ingredient is characteristic.
    pub regions: &'static [&'static str],
}

use IngredientCategory::*;

/// The full catalog, ordered by global popularity within each category —
/// the grammar samples with Zipfian weights over this order, so earlier
/// entries appear far more often (matching RecipeDB's long-tailed
/// ingredient frequency distribution).
pub const INGREDIENTS: &[Ingredient] = &[
    // --- Grains -------------------------------------------------------
    Ingredient { name: "flour", category: Grain, default_unit: "cup", typical_qty: 2.0, flavor_molecules: &["hexanal", "vanillin"], kcal_per_100g: 364.0, protein_g: 10.3, fat_g: 1.0, carbs_g: 76.3, regions: &["US General", "Western European", "British Isles"] },
    Ingredient { name: "rice", category: Grain, default_unit: "cup", typical_qty: 1.5, flavor_molecules: &["2-acetyl-1-pyrroline"], kcal_per_100g: 360.0, protein_g: 6.6, fat_g: 0.6, carbs_g: 79.3, regions: &["Chinese", "Japanese", "Indian Subcontinent", "Southeast Asian"] },
    Ingredient { name: "pasta", category: Grain, default_unit: "pound", typical_qty: 1.0, flavor_molecules: &["hexanal"], kcal_per_100g: 371.0, protein_g: 13.0, fat_g: 1.5, carbs_g: 74.7, regions: &["Southern European"] },
    Ingredient { name: "bread crumbs", category: Grain, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &["maltol", "furfural"], kcal_per_100g: 395.0, protein_g: 13.4, fat_g: 5.3, carbs_g: 71.9, regions: &["US General", "Western European"] },
    Ingredient { name: "oats", category: Grain, default_unit: "cup", typical_qty: 1.5, flavor_molecules: &["hexanal", "nonanal"], kcal_per_100g: 389.0, protein_g: 16.9, fat_g: 6.9, carbs_g: 66.3, regions: &["British Isles", "Scandinavian"] },
    Ingredient { name: "cornmeal", category: Grain, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &["dimethyl sulfide"], kcal_per_100g: 370.0, protein_g: 7.1, fat_g: 1.8, carbs_g: 79.5, regions: &["US Southern", "Mexican", "Central American"] },
    Ingredient { name: "noodles", category: Grain, default_unit: "pound", typical_qty: 0.75, flavor_molecules: &["hexanal"], kcal_per_100g: 384.0, protein_g: 14.0, fat_g: 4.4, carbs_g: 71.3, regions: &["Chinese", "Japanese", "Southeast Asian", "Korean"] },
    Ingredient { name: "quinoa", category: Grain, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &["nonanal"], kcal_per_100g: 368.0, protein_g: 14.1, fat_g: 6.1, carbs_g: 64.2, regions: &["Andean", "South American"] },
    Ingredient { name: "couscous", category: Grain, default_unit: "cup", typical_qty: 1.5, flavor_molecules: &["hexanal"], kcal_per_100g: 376.0, protein_g: 12.8, fat_g: 0.6, carbs_g: 77.4, regions: &["Northern Africa", "Middle Eastern"] },
    Ingredient { name: "tortillas", category: Grain, default_unit: "piece", typical_qty: 8.0, flavor_molecules: &["dimethyl sulfide", "maltol"], kcal_per_100g: 312.0, protein_g: 8.2, fat_g: 7.1, carbs_g: 50.9, regions: &["Mexican", "Central American"] },
    // --- Vegetables -----------------------------------------------------
    Ingredient { name: "onion", category: Vegetable, default_unit: "piece", typical_qty: 1.0, flavor_molecules: &["allyl propyl disulfide", "dipropyl disulfide"], kcal_per_100g: 40.0, protein_g: 1.1, fat_g: 0.1, carbs_g: 9.3, regions: &["US General", "Indian Subcontinent", "Western European", "Chinese"] },
    Ingredient { name: "garlic", category: Vegetable, default_unit: "clove", typical_qty: 3.0, flavor_molecules: &["allicin", "diallyl disulfide"], kcal_per_100g: 149.0, protein_g: 6.4, fat_g: 0.5, carbs_g: 33.1, regions: &["Southern European", "Chinese", "Korean", "US General"] },
    Ingredient { name: "tomato", category: Vegetable, default_unit: "piece", typical_qty: 3.0, flavor_molecules: &["cis-3-hexenal", "beta-ionone"], kcal_per_100g: 18.0, protein_g: 0.9, fat_g: 0.2, carbs_g: 3.9, regions: &["Southern European", "Mexican", "Indian Subcontinent", "Middle Eastern"] },
    Ingredient { name: "carrot", category: Vegetable, default_unit: "piece", typical_qty: 2.0, flavor_molecules: &["beta-carotene", "terpinolene"], kcal_per_100g: 41.0, protein_g: 0.9, fat_g: 0.2, carbs_g: 9.6, regions: &["Western European", "British Isles", "US General"] },
    Ingredient { name: "potato", category: Vegetable, default_unit: "piece", typical_qty: 4.0, flavor_molecules: &["methional", "2-isopropyl-3-methoxypyrazine"], kcal_per_100g: 77.0, protein_g: 2.0, fat_g: 0.1, carbs_g: 17.5, regions: &["Eastern European", "British Isles", "Andean", "US General"] },
    Ingredient { name: "bell pepper", category: Vegetable, default_unit: "piece", typical_qty: 2.0, flavor_molecules: &["2-isobutyl-3-methoxypyrazine"], kcal_per_100g: 31.0, protein_g: 1.0, fat_g: 0.3, carbs_g: 6.0, regions: &["Mexican", "US Southern", "Southern European", "Chinese"] },
    Ingredient { name: "celery", category: Vegetable, default_unit: "stalk", typical_qty: 2.0, flavor_molecules: &["sedanolide", "limonene"], kcal_per_100g: 16.0, protein_g: 0.7, fat_g: 0.2, carbs_g: 3.0, regions: &["US General", "Western European", "US Southern"] },
    Ingredient { name: "spinach", category: Vegetable, default_unit: "cup", typical_qty: 2.0, flavor_molecules: &["cis-3-hexenol"], kcal_per_100g: 23.0, protein_g: 2.9, fat_g: 0.4, carbs_g: 3.6, regions: &["Indian Subcontinent", "Middle Eastern", "Southern European"] },
    Ingredient { name: "broccoli", category: Vegetable, default_unit: "head", typical_qty: 1.0, flavor_molecules: &["dimethyl trisulfide", "sulforaphane"], kcal_per_100g: 34.0, protein_g: 2.8, fat_g: 0.4, carbs_g: 6.6, regions: &["Chinese", "US General"] },
    Ingredient { name: "mushroom", category: Vegetable, default_unit: "cup", typical_qty: 2.0, flavor_molecules: &["1-octen-3-ol", "lenthionine"], kcal_per_100g: 22.0, protein_g: 3.1, fat_g: 0.3, carbs_g: 3.3, regions: &["Japanese", "Chinese", "Western European"] },
    Ingredient { name: "ginger", category: Vegetable, default_unit: "tablespoon", typical_qty: 1.0, flavor_molecules: &["gingerol", "zingiberene"], kcal_per_100g: 80.0, protein_g: 1.8, fat_g: 0.8, carbs_g: 17.8, regions: &["Chinese", "Indian Subcontinent", "Southeast Asian", "Japanese"] },
    Ingredient { name: "cabbage", category: Vegetable, default_unit: "head", typical_qty: 0.5, flavor_molecules: &["allyl isothiocyanate"], kcal_per_100g: 25.0, protein_g: 1.3, fat_g: 0.1, carbs_g: 5.8, regions: &["Korean", "Eastern European", "Chinese"] },
    Ingredient { name: "zucchini", category: Vegetable, default_unit: "piece", typical_qty: 2.0, flavor_molecules: &["cis-3-hexenal"], kcal_per_100g: 17.0, protein_g: 1.2, fat_g: 0.3, carbs_g: 3.1, regions: &["Southern European", "Western European"] },
    Ingredient { name: "eggplant", category: Vegetable, default_unit: "piece", typical_qty: 1.0, flavor_molecules: &["nasunin"], kcal_per_100g: 25.0, protein_g: 1.0, fat_g: 0.2, carbs_g: 5.9, regions: &["Middle Eastern", "Indian Subcontinent", "Southern European", "Chinese"] },
    Ingredient { name: "cucumber", category: Vegetable, default_unit: "piece", typical_qty: 1.0, flavor_molecules: &["2,6-nonadienal"], kcal_per_100g: 15.0, protein_g: 0.7, fat_g: 0.1, carbs_g: 3.6, regions: &["Middle Eastern", "Scandinavian", "Korean"] },
    Ingredient { name: "corn", category: Vegetable, default_unit: "cup", typical_qty: 1.5, flavor_molecules: &["dimethyl sulfide"], kcal_per_100g: 86.0, protein_g: 3.3, fat_g: 1.4, carbs_g: 19.0, regions: &["Mexican", "US Southern", "Central American"] },
    Ingredient { name: "green beans", category: Vegetable, default_unit: "cup", typical_qty: 2.0, flavor_molecules: &["cis-3-hexenol"], kcal_per_100g: 31.0, protein_g: 1.8, fat_g: 0.2, carbs_g: 7.0, regions: &["US General", "Western European", "Chinese"] },
    Ingredient { name: "peas", category: Vegetable, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &["2-isopropyl-3-methoxypyrazine"], kcal_per_100g: 81.0, protein_g: 5.4, fat_g: 0.4, carbs_g: 14.5, regions: &["British Isles", "Indian Subcontinent"] },
    Ingredient { name: "cauliflower", category: Vegetable, default_unit: "head", typical_qty: 1.0, flavor_molecules: &["dimethyl trisulfide"], kcal_per_100g: 25.0, protein_g: 1.9, fat_g: 0.3, carbs_g: 5.0, regions: &["Indian Subcontinent", "British Isles"] },
    Ingredient { name: "sweet potato", category: Vegetable, default_unit: "piece", typical_qty: 2.0, flavor_molecules: &["beta-carotene", "maltol"], kcal_per_100g: 86.0, protein_g: 1.6, fat_g: 0.1, carbs_g: 20.1, regions: &["US Southern", "Western Africa", "Pacific Islander", "Japanese"] },
    Ingredient { name: "scallion", category: Vegetable, default_unit: "bunch", typical_qty: 1.0, flavor_molecules: &["dipropyl disulfide"], kcal_per_100g: 32.0, protein_g: 1.8, fat_g: 0.2, carbs_g: 7.3, regions: &["Chinese", "Korean", "Japanese"] },
    Ingredient { name: "leek", category: Vegetable, default_unit: "piece", typical_qty: 2.0, flavor_molecules: &["dipropyl disulfide"], kcal_per_100g: 61.0, protein_g: 1.5, fat_g: 0.3, carbs_g: 14.2, regions: &["Western European", "British Isles"] },
    Ingredient { name: "pumpkin", category: Vegetable, default_unit: "cup", typical_qty: 2.0, flavor_molecules: &["beta-ionone"], kcal_per_100g: 26.0, protein_g: 1.0, fat_g: 0.1, carbs_g: 6.5, regions: &["US General", "Australian", "Pacific Islander"] },
    Ingredient { name: "okra", category: Vegetable, default_unit: "cup", typical_qty: 2.0, flavor_molecules: &["cis-3-hexenal"], kcal_per_100g: 33.0, protein_g: 1.9, fat_g: 0.2, carbs_g: 7.5, regions: &["US Southern", "Western Africa", "Indian Subcontinent"] },
    Ingredient { name: "bok choy", category: Vegetable, default_unit: "head", typical_qty: 2.0, flavor_molecules: &["allyl isothiocyanate"], kcal_per_100g: 13.0, protein_g: 1.5, fat_g: 0.2, carbs_g: 2.2, regions: &["Chinese", "Southeast Asian"] },
    Ingredient { name: "plantain", category: Vegetable, default_unit: "piece", typical_qty: 2.0, flavor_molecules: &["isoamyl acetate"], kcal_per_100g: 122.0, protein_g: 1.3, fat_g: 0.4, carbs_g: 31.9, regions: &["Caribbean", "Western Africa", "Central American"] },
    Ingredient { name: "beetroot", category: Vegetable, default_unit: "piece", typical_qty: 3.0, flavor_molecules: &["geosmin"], kcal_per_100g: 43.0, protein_g: 1.6, fat_g: 0.2, carbs_g: 9.6, regions: &["Eastern European", "Scandinavian"] },
    // --- Fruit ----------------------------------------------------------
    Ingredient { name: "lemon", category: Fruit, default_unit: "piece", typical_qty: 1.0, flavor_molecules: &["limonene", "citral"], kcal_per_100g: 29.0, protein_g: 1.1, fat_g: 0.3, carbs_g: 9.3, regions: &["Southern European", "Middle Eastern", "US General"] },
    Ingredient { name: "lime", category: Fruit, default_unit: "piece", typical_qty: 2.0, flavor_molecules: &["limonene", "citral"], kcal_per_100g: 30.0, protein_g: 0.7, fat_g: 0.2, carbs_g: 10.5, regions: &["Mexican", "Southeast Asian", "Caribbean"] },
    Ingredient { name: "apple", category: Fruit, default_unit: "piece", typical_qty: 3.0, flavor_molecules: &["hexyl acetate", "ethyl 2-methylbutanoate"], kcal_per_100g: 52.0, protein_g: 0.3, fat_g: 0.2, carbs_g: 13.8, regions: &["US General", "Western European", "British Isles"] },
    Ingredient { name: "banana", category: Fruit, default_unit: "piece", typical_qty: 3.0, flavor_molecules: &["isoamyl acetate"], kcal_per_100g: 89.0, protein_g: 1.1, fat_g: 0.3, carbs_g: 22.8, regions: &["Caribbean", "Central American", "Pacific Islander"] },
    Ingredient { name: "mango", category: Fruit, default_unit: "piece", typical_qty: 2.0, flavor_molecules: &["delta-3-carene", "myrcene"], kcal_per_100g: 60.0, protein_g: 0.8, fat_g: 0.4, carbs_g: 15.0, regions: &["Indian Subcontinent", "Southeast Asian", "Caribbean"] },
    Ingredient { name: "coconut", category: Fruit, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &["delta-octalactone"], kcal_per_100g: 354.0, protein_g: 3.3, fat_g: 33.5, carbs_g: 15.2, regions: &["Southeast Asian", "Pacific Islander", "Indian Subcontinent", "Caribbean"] },
    Ingredient { name: "pineapple", category: Fruit, default_unit: "cup", typical_qty: 2.0, flavor_molecules: &["ethyl butanoate", "furaneol"], kcal_per_100g: 50.0, protein_g: 0.5, fat_g: 0.1, carbs_g: 13.1, regions: &["Pacific Islander", "Caribbean", "Central American"] },
    Ingredient { name: "raisins", category: Fruit, default_unit: "cup", typical_qty: 0.5, flavor_molecules: &["furaneol"], kcal_per_100g: 299.0, protein_g: 3.1, fat_g: 0.5, carbs_g: 79.2, regions: &["Middle Eastern", "Northern Africa", "US General"] },
    Ingredient { name: "dates", category: Fruit, default_unit: "cup", typical_qty: 0.5, flavor_molecules: &["furfural"], kcal_per_100g: 277.0, protein_g: 1.8, fat_g: 0.2, carbs_g: 75.0, regions: &["Middle Eastern", "Northern Africa"] },
    Ingredient { name: "orange", category: Fruit, default_unit: "piece", typical_qty: 2.0, flavor_molecules: &["limonene", "octanal"], kcal_per_100g: 47.0, protein_g: 0.9, fat_g: 0.1, carbs_g: 11.8, regions: &["Southern European", "US General", "Northern Africa"] },
    Ingredient { name: "berries", category: Fruit, default_unit: "cup", typical_qty: 2.0, flavor_molecules: &["furaneol", "linalool"], kcal_per_100g: 57.0, protein_g: 0.7, fat_g: 0.3, carbs_g: 14.5, regions: &["Scandinavian", "US General", "Canadian"] },
    Ingredient { name: "tamarind", category: Fruit, default_unit: "tablespoon", typical_qty: 2.0, flavor_molecules: &["furfural", "2-acetylfuran"], kcal_per_100g: 239.0, protein_g: 2.8, fat_g: 0.6, carbs_g: 62.5, regions: &["Indian Subcontinent", "Southeast Asian", "Mexican"] },
    // --- Meat -----------------------------------------------------------
    Ingredient { name: "chicken", category: Meat, default_unit: "pound", typical_qty: 1.5, flavor_molecules: &["2-methyl-3-furanthiol"], kcal_per_100g: 239.0, protein_g: 27.3, fat_g: 13.6, carbs_g: 0.0, regions: &["US General", "Indian Subcontinent", "Chinese", "Middle Eastern"] },
    Ingredient { name: "beef", category: Meat, default_unit: "pound", typical_qty: 1.5, flavor_molecules: &["bis(2-methyl-3-furyl) disulfide"], kcal_per_100g: 250.0, protein_g: 26.0, fat_g: 15.0, carbs_g: 0.0, regions: &["US General", "South American", "Korean", "Western European"] },
    Ingredient { name: "pork", category: Meat, default_unit: "pound", typical_qty: 1.5, flavor_molecules: &["2-methyl-3-furanthiol"], kcal_per_100g: 242.0, protein_g: 27.3, fat_g: 14.0, carbs_g: 0.0, regions: &["Chinese", "Eastern European", "US Southern", "Central American"] },
    Ingredient { name: "lamb", category: Meat, default_unit: "pound", typical_qty: 1.5, flavor_molecules: &["4-methyloctanoic acid"], kcal_per_100g: 294.0, protein_g: 25.0, fat_g: 21.0, carbs_g: 0.0, regions: &["Middle Eastern", "Indian Subcontinent", "British Isles", "Northern Africa", "Australian"] },
    Ingredient { name: "bacon", category: Meat, default_unit: "slice", typical_qty: 6.0, flavor_molecules: &["2-methyl-3-furanthiol", "guaiacol"], kcal_per_100g: 541.0, protein_g: 37.0, fat_g: 42.0, carbs_g: 1.4, regions: &["US General", "British Isles", "Western European"] },
    Ingredient { name: "turkey", category: Meat, default_unit: "pound", typical_qty: 2.0, flavor_molecules: &["2-methyl-3-furanthiol"], kcal_per_100g: 189.0, protein_g: 29.0, fat_g: 7.0, carbs_g: 0.0, regions: &["US General", "Canadian"] },
    Ingredient { name: "sausage", category: Meat, default_unit: "piece", typical_qty: 4.0, flavor_molecules: &["guaiacol"], kcal_per_100g: 301.0, protein_g: 12.0, fat_g: 27.0, carbs_g: 2.0, regions: &["Western European", "Eastern European", "US Southern"] },
    Ingredient { name: "duck", category: Meat, default_unit: "pound", typical_qty: 2.0, flavor_molecules: &["2,4-decadienal"], kcal_per_100g: 337.0, protein_g: 19.0, fat_g: 28.0, carbs_g: 0.0, regions: &["Chinese", "Western European", "Southeast Asian"] },
    // --- Seafood ----------------------------------------------------------
    Ingredient { name: "salmon", category: Seafood, default_unit: "fillet", typical_qty: 4.0, flavor_molecules: &["2,6-nonadienal"], kcal_per_100g: 208.0, protein_g: 20.0, fat_g: 13.0, carbs_g: 0.0, regions: &["Scandinavian", "Japanese", "Canadian", "US General"] },
    Ingredient { name: "shrimp", category: Seafood, default_unit: "pound", typical_qty: 1.0, flavor_molecules: &["pyrazines", "trimethylamine"], kcal_per_100g: 99.0, protein_g: 24.0, fat_g: 0.3, carbs_g: 0.2, regions: &["Southeast Asian", "US Southern", "Chinese", "Caribbean"] },
    Ingredient { name: "white fish", category: Seafood, default_unit: "fillet", typical_qty: 4.0, flavor_molecules: &["2,6-nonadienal"], kcal_per_100g: 82.0, protein_g: 18.0, fat_g: 0.7, carbs_g: 0.0, regions: &["British Isles", "Scandinavian", "Pacific Islander"] },
    Ingredient { name: "tuna", category: Seafood, default_unit: "can", typical_qty: 2.0, flavor_molecules: &["trimethylamine"], kcal_per_100g: 132.0, protein_g: 28.0, fat_g: 1.3, carbs_g: 0.0, regions: &["Japanese", "Southern European", "Pacific Islander"] },
    Ingredient { name: "mussels", category: Seafood, default_unit: "pound", typical_qty: 2.0, flavor_molecules: &["dimethyl sulfide"], kcal_per_100g: 86.0, protein_g: 12.0, fat_g: 2.2, carbs_g: 3.7, regions: &["Western European", "Southern European", "Australian"] },
    Ingredient { name: "squid", category: Seafood, default_unit: "pound", typical_qty: 1.0, flavor_molecules: &["trimethylamine"], kcal_per_100g: 92.0, protein_g: 15.6, fat_g: 1.4, carbs_g: 3.1, regions: &["Japanese", "Southern European", "Southeast Asian", "Korean"] },
    // --- Dairy ------------------------------------------------------------
    Ingredient { name: "butter", category: Dairy, default_unit: "tablespoon", typical_qty: 4.0, flavor_molecules: &["diacetyl", "butyric acid"], kcal_per_100g: 717.0, protein_g: 0.9, fat_g: 81.0, carbs_g: 0.1, regions: &["Western European", "US General", "British Isles"] },
    Ingredient { name: "milk", category: Dairy, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &["delta-decalactone"], kcal_per_100g: 61.0, protein_g: 3.2, fat_g: 3.3, carbs_g: 4.8, regions: &["US General", "Western European", "Indian Subcontinent"] },
    Ingredient { name: "egg", category: Dairy, default_unit: "piece", typical_qty: 2.0, flavor_molecules: &["hydrogen sulfide"], kcal_per_100g: 155.0, protein_g: 13.0, fat_g: 11.0, carbs_g: 1.1, regions: &["US General", "Western European", "Chinese", "Japanese"] },
    Ingredient { name: "cheese", category: Dairy, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &["butyric acid", "methyl ketones"], kcal_per_100g: 402.0, protein_g: 25.0, fat_g: 33.0, carbs_g: 1.3, regions: &["Southern European", "Western European", "US General"] },
    Ingredient { name: "yogurt", category: Dairy, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &["acetaldehyde", "diacetyl"], kcal_per_100g: 59.0, protein_g: 10.0, fat_g: 0.7, carbs_g: 3.6, regions: &["Middle Eastern", "Indian Subcontinent", "Eastern European"] },
    Ingredient { name: "cream", category: Dairy, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &["delta-decalactone", "diacetyl"], kcal_per_100g: 345.0, protein_g: 2.1, fat_g: 37.0, carbs_g: 2.8, regions: &["Western European", "US General", "British Isles"] },
    Ingredient { name: "parmesan", category: Dairy, default_unit: "cup", typical_qty: 0.5, flavor_molecules: &["butyric acid", "2-heptanone"], kcal_per_100g: 431.0, protein_g: 38.0, fat_g: 29.0, carbs_g: 4.1, regions: &["Southern European"] },
    Ingredient { name: "paneer", category: Dairy, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &["diacetyl"], kcal_per_100g: 265.0, protein_g: 18.3, fat_g: 20.8, carbs_g: 1.2, regions: &["Indian Subcontinent"] },
    Ingredient { name: "feta", category: Dairy, default_unit: "cup", typical_qty: 0.5, flavor_molecules: &["butyric acid"], kcal_per_100g: 264.0, protein_g: 14.0, fat_g: 21.0, carbs_g: 4.1, regions: &["Southern European", "Middle Eastern"] },
    // --- Spices -------------------------------------------------------------
    Ingredient { name: "salt", category: Spice, default_unit: "teaspoon", typical_qty: 1.0, flavor_molecules: &[], kcal_per_100g: 0.0, protein_g: 0.0, fat_g: 0.0, carbs_g: 0.0, regions: &["US General", "Chinese", "Indian Subcontinent", "Western European"] },
    Ingredient { name: "black pepper", category: Spice, default_unit: "teaspoon", typical_qty: 0.5, flavor_molecules: &["piperine", "beta-caryophyllene"], kcal_per_100g: 251.0, protein_g: 10.4, fat_g: 3.3, carbs_g: 63.9, regions: &["US General", "Indian Subcontinent", "Western European"] },
    Ingredient { name: "cumin", category: Spice, default_unit: "teaspoon", typical_qty: 1.0, flavor_molecules: &["cuminaldehyde"], kcal_per_100g: 375.0, protein_g: 17.8, fat_g: 22.3, carbs_g: 44.2, regions: &["Indian Subcontinent", "Mexican", "Middle Eastern", "Northern Africa"] },
    Ingredient { name: "paprika", category: Spice, default_unit: "teaspoon", typical_qty: 1.0, flavor_molecules: &["beta-ionone", "capsaicin"], kcal_per_100g: 282.0, protein_g: 14.1, fat_g: 12.9, carbs_g: 54.0, regions: &["Eastern European", "US Southern", "Southern European"] },
    Ingredient { name: "turmeric", category: Spice, default_unit: "teaspoon", typical_qty: 1.0, flavor_molecules: &["turmerone", "curcumin"], kcal_per_100g: 354.0, protein_g: 7.8, fat_g: 9.9, carbs_g: 64.9, regions: &["Indian Subcontinent", "Southeast Asian", "Middle Eastern"] },
    Ingredient { name: "chili powder", category: Spice, default_unit: "teaspoon", typical_qty: 1.0, flavor_molecules: &["capsaicin"], kcal_per_100g: 282.0, protein_g: 13.5, fat_g: 14.3, carbs_g: 49.7, regions: &["Mexican", "Indian Subcontinent", "US Southern", "Korean"] },
    Ingredient { name: "cinnamon", category: Spice, default_unit: "teaspoon", typical_qty: 1.0, flavor_molecules: &["cinnamaldehyde", "eugenol"], kcal_per_100g: 247.0, protein_g: 4.0, fat_g: 1.2, carbs_g: 80.6, regions: &["Middle Eastern", "US General", "Northern Africa", "Indian Subcontinent"] },
    Ingredient { name: "coriander", category: Spice, default_unit: "teaspoon", typical_qty: 1.0, flavor_molecules: &["linalool", "decanal"], kcal_per_100g: 298.0, protein_g: 12.4, fat_g: 17.8, carbs_g: 55.0, regions: &["Indian Subcontinent", "Middle Eastern", "Mexican"] },
    Ingredient { name: "cardamom", category: Spice, default_unit: "teaspoon", typical_qty: 0.5, flavor_molecules: &["1,8-cineole", "alpha-terpinyl acetate"], kcal_per_100g: 311.0, protein_g: 10.8, fat_g: 6.7, carbs_g: 68.5, regions: &["Indian Subcontinent", "Scandinavian", "Middle Eastern"] },
    Ingredient { name: "nutmeg", category: Spice, default_unit: "teaspoon", typical_qty: 0.25, flavor_molecules: &["myristicin", "sabinene"], kcal_per_100g: 525.0, protein_g: 5.8, fat_g: 36.3, carbs_g: 49.3, regions: &["Western European", "Caribbean", "US General"] },
    Ingredient { name: "cayenne", category: Spice, default_unit: "teaspoon", typical_qty: 0.5, flavor_molecules: &["capsaicin"], kcal_per_100g: 318.0, protein_g: 12.0, fat_g: 17.3, carbs_g: 56.6, regions: &["US Southern", "Mexican", "Caribbean"] },
    Ingredient { name: "garam masala", category: Spice, default_unit: "teaspoon", typical_qty: 2.0, flavor_molecules: &["cuminaldehyde", "cinnamaldehyde", "eugenol"], kcal_per_100g: 379.0, protein_g: 15.0, fat_g: 15.1, carbs_g: 50.0, regions: &["Indian Subcontinent"] },
    Ingredient { name: "five spice", category: Spice, default_unit: "teaspoon", typical_qty: 1.0, flavor_molecules: &["anethole", "cinnamaldehyde"], kcal_per_100g: 347.0, protein_g: 11.0, fat_g: 9.0, carbs_g: 65.0, regions: &["Chinese"] },
    Ingredient { name: "za'atar", category: Spice, default_unit: "tablespoon", typical_qty: 1.0, flavor_molecules: &["thymol", "carvacrol"], kcal_per_100g: 264.0, protein_g: 9.0, fat_g: 7.0, carbs_g: 49.0, regions: &["Middle Eastern"] },
    Ingredient { name: "sumac", category: Spice, default_unit: "teaspoon", typical_qty: 1.0, flavor_molecules: &["malic acid"], kcal_per_100g: 324.0, protein_g: 4.0, fat_g: 15.0, carbs_g: 60.0, regions: &["Middle Eastern"] },
    Ingredient { name: "saffron", category: Spice, default_unit: "pinch", typical_qty: 1.0, flavor_molecules: &["safranal", "picrocrocin"], kcal_per_100g: 310.0, protein_g: 11.4, fat_g: 5.9, carbs_g: 65.4, regions: &["Middle Eastern", "Southern European", "Indian Subcontinent"] },
    Ingredient { name: "berbere", category: Spice, default_unit: "tablespoon", typical_qty: 1.0, flavor_molecules: &["capsaicin", "gingerol"], kcal_per_100g: 300.0, protein_g: 12.0, fat_g: 10.0, carbs_g: 55.0, regions: &["Eastern Africa"] },
    Ingredient { name: "wasabi", category: Spice, default_unit: "teaspoon", typical_qty: 1.0, flavor_molecules: &["allyl isothiocyanate"], kcal_per_100g: 292.0, protein_g: 2.2, fat_g: 10.9, carbs_g: 40.0, regions: &["Japanese"] },
    Ingredient { name: "gochugaru", category: Spice, default_unit: "tablespoon", typical_qty: 2.0, flavor_molecules: &["capsaicin"], kcal_per_100g: 282.0, protein_g: 13.0, fat_g: 13.0, carbs_g: 50.0, regions: &["Korean"] },
    // --- Herbs -----------------------------------------------------------
    Ingredient { name: "parsley", category: Herb, default_unit: "bunch", typical_qty: 0.5, flavor_molecules: &["apiole", "myristicin"], kcal_per_100g: 36.0, protein_g: 3.0, fat_g: 0.8, carbs_g: 6.3, regions: &["Middle Eastern", "Western European", "Southern European"] },
    Ingredient { name: "cilantro", category: Herb, default_unit: "bunch", typical_qty: 0.5, flavor_molecules: &["decanal", "dodecanal"], kcal_per_100g: 23.0, protein_g: 2.1, fat_g: 0.5, carbs_g: 3.7, regions: &["Mexican", "Indian Subcontinent", "Southeast Asian", "Chinese"] },
    Ingredient { name: "basil", category: Herb, default_unit: "cup", typical_qty: 0.5, flavor_molecules: &["estragole", "linalool", "eugenol"], kcal_per_100g: 23.0, protein_g: 3.2, fat_g: 0.6, carbs_g: 2.7, regions: &["Southern European", "Southeast Asian"] },
    Ingredient { name: "mint", category: Herb, default_unit: "cup", typical_qty: 0.25, flavor_molecules: &["menthol", "carvone"], kcal_per_100g: 70.0, protein_g: 3.8, fat_g: 0.9, carbs_g: 14.9, regions: &["Middle Eastern", "Indian Subcontinent", "Northern Africa", "British Isles"] },
    Ingredient { name: "rosemary", category: Herb, default_unit: "sprig", typical_qty: 2.0, flavor_molecules: &["1,8-cineole", "camphor", "alpha-pinene"], kcal_per_100g: 131.0, protein_g: 3.3, fat_g: 5.9, carbs_g: 20.7, regions: &["Southern European", "Western European"] },
    Ingredient { name: "thyme", category: Herb, default_unit: "sprig", typical_qty: 3.0, flavor_molecules: &["thymol", "carvacrol"], kcal_per_100g: 101.0, protein_g: 5.6, fat_g: 1.7, carbs_g: 24.5, regions: &["Western European", "Caribbean", "US Southern"] },
    Ingredient { name: "oregano", category: Herb, default_unit: "teaspoon", typical_qty: 2.0, flavor_molecules: &["carvacrol", "thymol"], kcal_per_100g: 265.0, protein_g: 9.0, fat_g: 4.3, carbs_g: 68.9, regions: &["Southern European", "Mexican"] },
    Ingredient { name: "dill", category: Herb, default_unit: "bunch", typical_qty: 0.25, flavor_molecules: &["carvone", "limonene"], kcal_per_100g: 43.0, protein_g: 3.5, fat_g: 1.1, carbs_g: 7.0, regions: &["Scandinavian", "Eastern European"] },
    Ingredient { name: "lemongrass", category: Herb, default_unit: "stalk", typical_qty: 2.0, flavor_molecules: &["citral", "geraniol"], kcal_per_100g: 99.0, protein_g: 1.8, fat_g: 0.5, carbs_g: 25.3, regions: &["Southeast Asian"] },
    Ingredient { name: "bay leaf", category: Herb, default_unit: "piece", typical_qty: 2.0, flavor_molecules: &["1,8-cineole"], kcal_per_100g: 313.0, protein_g: 7.6, fat_g: 8.4, carbs_g: 75.0, regions: &["Western European", "Indian Subcontinent", "US Southern"] },
    Ingredient { name: "sage", category: Herb, default_unit: "teaspoon", typical_qty: 1.0, flavor_molecules: &["thujone", "camphor"], kcal_per_100g: 315.0, protein_g: 10.6, fat_g: 12.8, carbs_g: 60.7, regions: &["Southern European", "British Isles", "US General"] },
    // --- Oils ---------------------------------------------------------------
    Ingredient { name: "olive oil", category: Oil, default_unit: "tablespoon", typical_qty: 3.0, flavor_molecules: &["oleocanthal", "hexanal"], kcal_per_100g: 884.0, protein_g: 0.0, fat_g: 100.0, carbs_g: 0.0, regions: &["Southern European", "Middle Eastern", "Northern Africa"] },
    Ingredient { name: "vegetable oil", category: Oil, default_unit: "tablespoon", typical_qty: 2.0, flavor_molecules: &[], kcal_per_100g: 884.0, protein_g: 0.0, fat_g: 100.0, carbs_g: 0.0, regions: &["US General", "Chinese", "Indian Subcontinent"] },
    Ingredient { name: "sesame oil", category: Oil, default_unit: "teaspoon", typical_qty: 2.0, flavor_molecules: &["2-furylmethanethiol", "sesamol"], kcal_per_100g: 884.0, protein_g: 0.0, fat_g: 100.0, carbs_g: 0.0, regions: &["Chinese", "Korean", "Japanese"] },
    Ingredient { name: "coconut oil", category: Oil, default_unit: "tablespoon", typical_qty: 2.0, flavor_molecules: &["delta-octalactone"], kcal_per_100g: 862.0, protein_g: 0.0, fat_g: 100.0, carbs_g: 0.0, regions: &["Southeast Asian", "Pacific Islander", "Indian Subcontinent"] },
    Ingredient { name: "ghee", category: Oil, default_unit: "tablespoon", typical_qty: 3.0, flavor_molecules: &["diacetyl", "delta-decalactone"], kcal_per_100g: 900.0, protein_g: 0.0, fat_g: 100.0, carbs_g: 0.0, regions: &["Indian Subcontinent"] },
    // --- Sweeteners -----------------------------------------------------------
    Ingredient { name: "sugar", category: Sweetener, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &[], kcal_per_100g: 387.0, protein_g: 0.0, fat_g: 0.0, carbs_g: 100.0, regions: &["US General", "Western European", "British Isles"] },
    Ingredient { name: "brown sugar", category: Sweetener, default_unit: "cup", typical_qty: 0.75, flavor_molecules: &["maltol", "furaneol"], kcal_per_100g: 380.0, protein_g: 0.1, fat_g: 0.0, carbs_g: 98.1, regions: &["US General", "British Isles", "Caribbean"] },
    Ingredient { name: "honey", category: Sweetener, default_unit: "tablespoon", typical_qty: 3.0, flavor_molecules: &["phenylacetaldehyde", "furaneol"], kcal_per_100g: 304.0, protein_g: 0.3, fat_g: 0.0, carbs_g: 82.4, regions: &["Middle Eastern", "US General", "Eastern European"] },
    Ingredient { name: "maple syrup", category: Sweetener, default_unit: "cup", typical_qty: 0.5, flavor_molecules: &["sotolon", "maltol"], kcal_per_100g: 260.0, protein_g: 0.0, fat_g: 0.1, carbs_g: 67.0, regions: &["Canadian", "US General"] },
    Ingredient { name: "molasses", category: Sweetener, default_unit: "tablespoon", typical_qty: 2.0, flavor_molecules: &["maltol"], kcal_per_100g: 290.0, protein_g: 0.0, fat_g: 0.1, carbs_g: 74.7, regions: &["US Southern", "Caribbean"] },
    Ingredient { name: "jaggery", category: Sweetener, default_unit: "tablespoon", typical_qty: 2.0, flavor_molecules: &["maltol", "furaneol"], kcal_per_100g: 383.0, protein_g: 0.4, fat_g: 0.1, carbs_g: 97.3, regions: &["Indian Subcontinent"] },
    // --- Legumes ---------------------------------------------------------------
    Ingredient { name: "lentils", category: Legume, default_unit: "cup", typical_qty: 1.5, flavor_molecules: &["hexanal"], kcal_per_100g: 353.0, protein_g: 25.8, fat_g: 1.1, carbs_g: 60.1, regions: &["Indian Subcontinent", "Middle Eastern", "Eastern Africa"] },
    Ingredient { name: "chickpeas", category: Legume, default_unit: "can", typical_qty: 2.0, flavor_molecules: &["hexanal"], kcal_per_100g: 364.0, protein_g: 19.3, fat_g: 6.0, carbs_g: 60.7, regions: &["Middle Eastern", "Indian Subcontinent", "Northern Africa", "Southern European"] },
    Ingredient { name: "black beans", category: Legume, default_unit: "can", typical_qty: 2.0, flavor_molecules: &["hexanal"], kcal_per_100g: 341.0, protein_g: 21.6, fat_g: 1.4, carbs_g: 62.4, regions: &["Mexican", "Caribbean", "South American", "Central American"] },
    Ingredient { name: "kidney beans", category: Legume, default_unit: "can", typical_qty: 2.0, flavor_molecules: &["hexanal"], kcal_per_100g: 333.0, protein_g: 23.6, fat_g: 0.8, carbs_g: 60.0, regions: &["Indian Subcontinent", "US Southern", "Caribbean"] },
    Ingredient { name: "tofu", category: Legume, default_unit: "pound", typical_qty: 1.0, flavor_molecules: &["hexanal"], kcal_per_100g: 76.0, protein_g: 8.0, fat_g: 4.8, carbs_g: 1.9, regions: &["Chinese", "Japanese", "Korean", "Southeast Asian"] },
    Ingredient { name: "edamame", category: Legume, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &["cis-3-hexenol"], kcal_per_100g: 121.0, protein_g: 12.0, fat_g: 5.2, carbs_g: 8.9, regions: &["Japanese", "Chinese"] },
    // --- Nuts -------------------------------------------------------------------
    Ingredient { name: "almonds", category: Nut, default_unit: "cup", typical_qty: 0.5, flavor_molecules: &["benzaldehyde"], kcal_per_100g: 579.0, protein_g: 21.2, fat_g: 49.9, carbs_g: 21.6, regions: &["Middle Eastern", "Southern European", "US General", "Indian Subcontinent"] },
    Ingredient { name: "peanuts", category: Nut, default_unit: "cup", typical_qty: 0.5, flavor_molecules: &["2,5-dimethylpyrazine"], kcal_per_100g: 567.0, protein_g: 25.8, fat_g: 49.2, carbs_g: 16.1, regions: &["Western Africa", "Southeast Asian", "US Southern", "Chinese"] },
    Ingredient { name: "cashews", category: Nut, default_unit: "cup", typical_qty: 0.5, flavor_molecules: &["2,5-dimethylpyrazine"], kcal_per_100g: 553.0, protein_g: 18.2, fat_g: 43.9, carbs_g: 30.2, regions: &["Indian Subcontinent", "Southeast Asian", "Western Africa"] },
    Ingredient { name: "walnuts", category: Nut, default_unit: "cup", typical_qty: 0.5, flavor_molecules: &["hexanal", "pentanal"], kcal_per_100g: 654.0, protein_g: 15.2, fat_g: 65.2, carbs_g: 13.7, regions: &["US General", "Western European", "Middle Eastern"] },
    Ingredient { name: "sesame seeds", category: Nut, default_unit: "tablespoon", typical_qty: 2.0, flavor_molecules: &["sesamol", "2-furylmethanethiol"], kcal_per_100g: 573.0, protein_g: 17.7, fat_g: 49.7, carbs_g: 23.4, regions: &["Middle Eastern", "Japanese", "Korean", "Chinese"] },
    Ingredient { name: "pine nuts", category: Nut, default_unit: "tablespoon", typical_qty: 3.0, flavor_molecules: &["alpha-pinene"], kcal_per_100g: 673.0, protein_g: 13.7, fat_g: 68.4, carbs_g: 13.1, regions: &["Southern European", "Middle Eastern"] },
    // --- Condiments -----------------------------------------------------------------
    Ingredient { name: "soy sauce", category: Condiment, default_unit: "tablespoon", typical_qty: 3.0, flavor_molecules: &["sotolon", "methionol"], kcal_per_100g: 53.0, protein_g: 8.1, fat_g: 0.6, carbs_g: 4.9, regions: &["Chinese", "Japanese", "Korean", "Southeast Asian"] },
    Ingredient { name: "fish sauce", category: Condiment, default_unit: "tablespoon", typical_qty: 2.0, flavor_molecules: &["trimethylamine", "butyric acid"], kcal_per_100g: 35.0, protein_g: 5.1, fat_g: 0.0, carbs_g: 3.6, regions: &["Southeast Asian"] },
    Ingredient { name: "vinegar", category: Condiment, default_unit: "tablespoon", typical_qty: 2.0, flavor_molecules: &["acetic acid"], kcal_per_100g: 18.0, protein_g: 0.0, fat_g: 0.0, carbs_g: 0.0, regions: &["Chinese", "Western European", "US General", "Eastern European"] },
    Ingredient { name: "mustard", category: Condiment, default_unit: "tablespoon", typical_qty: 1.0, flavor_molecules: &["allyl isothiocyanate"], kcal_per_100g: 66.0, protein_g: 4.4, fat_g: 4.0, carbs_g: 5.8, regions: &["Western European", "US General", "British Isles"] },
    Ingredient { name: "tomato paste", category: Condiment, default_unit: "tablespoon", typical_qty: 2.0, flavor_molecules: &["beta-ionone", "furaneol"], kcal_per_100g: 82.0, protein_g: 4.3, fat_g: 0.5, carbs_g: 18.9, regions: &["Southern European", "Middle Eastern", "US General"] },
    Ingredient { name: "coconut milk", category: Condiment, default_unit: "can", typical_qty: 1.0, flavor_molecules: &["delta-octalactone"], kcal_per_100g: 230.0, protein_g: 2.3, fat_g: 23.8, carbs_g: 5.5, regions: &["Southeast Asian", "Indian Subcontinent", "Caribbean", "Pacific Islander"] },
    Ingredient { name: "stock", category: Condiment, default_unit: "cup", typical_qty: 4.0, flavor_molecules: &["2-methyl-3-furanthiol"], kcal_per_100g: 5.0, protein_g: 0.5, fat_g: 0.2, carbs_g: 0.4, regions: &["US General", "Western European", "Chinese", "British Isles"] },
    Ingredient { name: "salsa", category: Condiment, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &["cis-3-hexenal", "capsaicin"], kcal_per_100g: 36.0, protein_g: 1.5, fat_g: 0.2, carbs_g: 7.0, regions: &["Mexican", "Central American"] },
    Ingredient { name: "miso", category: Condiment, default_unit: "tablespoon", typical_qty: 2.0, flavor_molecules: &["sotolon", "methionol"], kcal_per_100g: 199.0, protein_g: 12.8, fat_g: 6.0, carbs_g: 26.5, regions: &["Japanese"] },
    Ingredient { name: "gochujang", category: Condiment, default_unit: "tablespoon", typical_qty: 2.0, flavor_molecules: &["capsaicin", "sotolon"], kcal_per_100g: 177.0, protein_g: 4.5, fat_g: 1.2, carbs_g: 38.0, regions: &["Korean"] },
    Ingredient { name: "tahini", category: Condiment, default_unit: "tablespoon", typical_qty: 3.0, flavor_molecules: &["sesamol"], kcal_per_100g: 595.0, protein_g: 17.0, fat_g: 53.8, carbs_g: 21.2, regions: &["Middle Eastern", "Northern Africa"] },
    Ingredient { name: "harissa", category: Condiment, default_unit: "tablespoon", typical_qty: 1.0, flavor_molecules: &["capsaicin", "cuminaldehyde"], kcal_per_100g: 70.0, protein_g: 3.0, fat_g: 2.8, carbs_g: 10.0, regions: &["Northern Africa"] },
    Ingredient { name: "worcestershire sauce", category: Condiment, default_unit: "tablespoon", typical_qty: 1.0, flavor_molecules: &["acetic acid", "sotolon"], kcal_per_100g: 78.0, protein_g: 0.0, fat_g: 0.0, carbs_g: 19.5, regions: &["British Isles", "US General"] },
    Ingredient { name: "hot sauce", category: Condiment, default_unit: "teaspoon", typical_qty: 2.0, flavor_molecules: &["capsaicin", "acetic acid"], kcal_per_100g: 12.0, protein_g: 0.5, fat_g: 0.4, carbs_g: 1.8, regions: &["US Southern", "Mexican", "Caribbean"] },
    Ingredient { name: "peanut butter", category: Condiment, default_unit: "cup", typical_qty: 0.5, flavor_molecules: &["2,5-dimethylpyrazine"], kcal_per_100g: 588.0, protein_g: 25.1, fat_g: 50.4, carbs_g: 19.6, regions: &["US General", "Western Africa", "Southeast Asian"] },
    // --- Baking ---------------------------------------------------------------------
    Ingredient { name: "baking powder", category: Baking, default_unit: "teaspoon", typical_qty: 2.0, flavor_molecules: &[], kcal_per_100g: 53.0, protein_g: 0.0, fat_g: 0.0, carbs_g: 27.7, regions: &["US General", "Western European", "British Isles"] },
    Ingredient { name: "baking soda", category: Baking, default_unit: "teaspoon", typical_qty: 1.0, flavor_molecules: &[], kcal_per_100g: 0.0, protein_g: 0.0, fat_g: 0.0, carbs_g: 0.0, regions: &["US General", "British Isles"] },
    Ingredient { name: "yeast", category: Baking, default_unit: "teaspoon", typical_qty: 2.0, flavor_molecules: &["3-methylbutanol"], kcal_per_100g: 325.0, protein_g: 40.4, fat_g: 7.6, carbs_g: 41.2, regions: &["Western European", "US General", "Middle Eastern"] },
    Ingredient { name: "vanilla extract", category: Baking, default_unit: "teaspoon", typical_qty: 1.0, flavor_molecules: &["vanillin"], kcal_per_100g: 288.0, protein_g: 0.1, fat_g: 0.1, carbs_g: 12.7, regions: &["US General", "Western European"] },
    Ingredient { name: "cocoa powder", category: Baking, default_unit: "cup", typical_qty: 0.5, flavor_molecules: &["tetramethylpyrazine", "vanillin"], kcal_per_100g: 228.0, protein_g: 19.6, fat_g: 13.7, carbs_g: 57.9, regions: &["US General", "Western European", "South American"] },
    Ingredient { name: "chocolate", category: Baking, default_unit: "cup", typical_qty: 1.0, flavor_molecules: &["tetramethylpyrazine", "vanillin"], kcal_per_100g: 546.0, protein_g: 4.9, fat_g: 31.3, carbs_g: 61.2, regions: &["US General", "Western European", "South American"] },
    Ingredient { name: "cornstarch", category: Baking, default_unit: "tablespoon", typical_qty: 2.0, flavor_molecules: &[], kcal_per_100g: 381.0, protein_g: 0.3, fat_g: 0.1, carbs_g: 91.3, regions: &["US General", "Chinese"] },
    Ingredient { name: "gelatin", category: Baking, default_unit: "tablespoon", typical_qty: 1.0, flavor_molecules: &[], kcal_per_100g: 335.0, protein_g: 85.6, fat_g: 0.1, carbs_g: 0.0, regions: &["US General", "Western European"] },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_large_enough_for_grammar() {
        assert!(INGREDIENTS.len() >= 120, "got {}", INGREDIENTS.len());
    }

    #[test]
    fn names_are_lowercase() {
        for i in INGREDIENTS {
            assert_eq!(i.name, i.name.to_lowercase(), "`{}` not lowercase", i.name);
        }
    }

    #[test]
    fn macronutrients_bounded() {
        for i in INGREDIENTS {
            let total = i.protein_g + i.fat_g + i.carbs_g;
            assert!(
                total <= 101.0,
                "`{}` macronutrients exceed 100g/100g: {total}",
                i.name
            );
        }
    }
}

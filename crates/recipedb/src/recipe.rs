//! The recipe schema: the structured record RecipeDB stores per recipe,
//! plus the two textual renderings the pipeline needs — the raw "scraped"
//! form (Fig. 1) and the tagged training form (Fig. 2).

use ratatouille_tokenizers::special;

use crate::ontology;

/// A cooking quantity, stored as a rational-friendly float and displayed
/// with kitchen fractions ("1 1/2 cups"). The paper emphasizes that its
/// models, unlike prior work, generate quantities and units — the special
/// fraction tokens exist for exactly these values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantity(pub f32);

impl Quantity {
    /// Nearest kitchen-friendly representation: whole part plus one of the
    /// common fractions in [`special::FRACTIONS`].
    pub fn display(&self) -> String {
        let whole = self.0.floor() as u32;
        let frac = self.0 - whole as f32;
        let frac_str = nearest_fraction(frac);
        match (whole, frac_str) {
            (0, Some(f)) => f.to_string(),
            (0, None) => "0".to_string(),
            (w, Some(f)) => format!("{w} {f}"),
            (w, None) => w.to_string(),
        }
    }
}

/// Closest common cooking fraction to `frac` within 1/32, if any.
fn nearest_fraction(frac: f32) -> Option<&'static str> {
    const TABLE: &[(f32, &str)] = &[
        (0.0625, "1/16"),
        (0.125, "1/8"),
        (0.25, "1/4"),
        (1.0 / 3.0, "1/3"),
        (0.375, "3/8"),
        (0.5, "1/2"),
        (0.625, "5/8"),
        (2.0 / 3.0, "2/3"),
        (0.75, "3/4"),
        (0.875, "7/8"),
    ];
    if frac < 0.03125 {
        return None;
    }
    let mut best: Option<(f32, &str)> = None;
    for &(v, s) in TABLE {
        let d = (v - frac).abs();
        if best.map(|(bd, _)| d < bd).unwrap_or(true) {
            best = Some((d, s));
        }
    }
    best.map(|(_, s)| s)
}

/// One line of the ingredient list: quantity, unit, ingredient.
#[derive(Debug, Clone, PartialEq)]
pub struct IngredientLine {
    /// Ingredient name (a key into the ontology).
    pub name: String,
    /// Amount in `unit`s.
    pub qty: Quantity,
    /// Unit name (a key into [`ontology::UNITS`]).
    pub unit: String,
}

impl IngredientLine {
    /// "1 1/2 cups flour".
    pub fn display(&self) -> String {
        let unit = ontology::unit(&self.unit)
            .map(|u| u.display(self.qty.0))
            .unwrap_or(self.unit.as_str());
        format!("{} {} {}", self.qty.display(), unit, self.name)
    }

    /// Approximate grams this line contributes.
    pub fn grams(&self) -> f32 {
        ontology::unit(&self.unit)
            .map(|u| u.to_grams(self.qty.0))
            .unwrap_or(0.0)
    }
}

/// Aggregated nutrition for a whole recipe (USDA-style, per recipe).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Nutrition {
    /// Total kilocalories.
    pub kcal: f32,
    /// Total protein grams.
    pub protein_g: f32,
    /// Total fat grams.
    pub fat_g: f32,
    /// Total carbohydrate grams.
    pub carbs_g: f32,
}

/// A full structured recipe record.
#[derive(Debug, Clone, PartialEq)]
pub struct Recipe {
    /// Unique id within its corpus.
    pub id: u64,
    /// Title ("thai chicken stir-fry").
    pub title: String,
    /// Geo-cultural region name.
    pub region: String,
    /// Country within the region.
    pub country: String,
    /// Number of servings.
    pub servings: u8,
    /// Ingredient lines, in use order.
    pub ingredients: Vec<IngredientLine>,
    /// Cooking processes used (verbs from the ontology), in order.
    pub processes: Vec<String>,
    /// Instruction steps, in order.
    pub instructions: Vec<String>,
}

impl Recipe {
    /// Aggregate FlavorDB-style flavor molecules across ingredients
    /// (deduplicated, in first-appearance order).
    pub fn flavor_profile(&self) -> Vec<&'static str> {
        let mut seen = ratatouille_util::collections::det_set();
        let mut out = Vec::new();
        for line in &self.ingredients {
            if let Some(ing) = ontology::ingredient(&line.name) {
                for &m in ing.flavor_molecules {
                    if seen.insert(m) {
                        out.push(m);
                    }
                }
            }
        }
        out
    }

    /// Aggregate nutrition across ingredient lines.
    pub fn nutrition(&self) -> Nutrition {
        let mut n = Nutrition::default();
        for line in &self.ingredients {
            if let Some(ing) = ontology::ingredient(&line.name) {
                let factor = line.grams() / 100.0;
                n.kcal += ing.kcal_per_100g * factor;
                n.protein_g += ing.protein_g * factor;
                n.fat_g += ing.fat_g * factor;
                n.carbs_g += ing.carbs_g * factor;
            }
        }
        n
    }

    /// The tagged training rendering (Fig. 2 / Fig. 3): the prompt section
    /// lists the bare input ingredients, then title, full ingredient lines
    /// (with quantity and unit), and instructions, each section delimited
    /// by its special tokens. Fractions are replaced by their atomic
    /// tokens.
    pub fn to_tagged_string(&self) -> String {
        use special::*;
        let mut s = String::with_capacity(1024);
        s.push_str(RECIPE_START);
        s.push_str(INPUT_START);
        for (i, line) in self.ingredients.iter().enumerate() {
            if i > 0 {
                s.push_str(NEXT_INPUT);
            }
            s.push(' ');
            s.push_str(&line.name);
            s.push(' ');
        }
        s.push_str(INPUT_END);
        s.push_str(TITLE_START);
        s.push(' ');
        s.push_str(&self.title);
        s.push(' ');
        s.push_str(TITLE_END);
        s.push_str(INGR_START);
        for (i, line) in self.ingredients.iter().enumerate() {
            if i > 0 {
                s.push_str(NEXT_INGR);
            }
            s.push(' ');
            s.push_str(&line.display());
            s.push(' ');
        }
        s.push_str(INGR_END);
        s.push_str(INSTR_START);
        for (i, step) in self.instructions.iter().enumerate() {
            if i > 0 {
                s.push_str(NEXT_INSTR);
            }
            s.push(' ');
            s.push_str(step);
            s.push(' ');
        }
        s.push_str(INSTR_END);
        s.push_str(RECIPE_END);
        special::encode_fractions(&s)
    }

    /// The raw "as scraped" rendering (Fig. 1): title-case headerless
    /// text with inconsistent casing/punctuation — what preprocessing has
    /// to clean up.
    pub fn to_raw_string(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str(&title_case(&self.title));
        s.push('\n');
        s.push_str("Ingredients: ");
        for (i, line) in self.ingredients.iter().enumerate() {
            if i > 0 {
                s.push_str(" ; ");
            }
            s.push_str(&line.display());
        }
        s.push('\n');
        for step in &self.instructions {
            s.push_str(step);
            s.push_str(" . ");
        }
        s.push('\n');
        s
    }
}

/// Uppercase the first letter of each word.
fn title_case(s: &str) -> String {
    s.split(' ')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Recipe {
        Recipe {
            id: 7,
            title: "simple flatbread".into(),
            region: "Middle Eastern".into(),
            country: "Lebanon".into(),
            servings: 4,
            ingredients: vec![
                IngredientLine { name: "flour".into(), qty: Quantity(2.0), unit: "cup".into() },
                IngredientLine { name: "salt".into(), qty: Quantity(0.5), unit: "teaspoon".into() },
                IngredientLine { name: "olive oil".into(), qty: Quantity(1.5), unit: "tablespoon".into() },
            ],
            processes: vec!["mix".into(), "knead".into(), "bake".into()],
            instructions: vec![
                "mix the flour and salt".into(),
                "knead until smooth".into(),
                "bake until lightly browned".into(),
            ],
        }
    }

    #[test]
    fn quantity_fraction_display() {
        assert_eq!(Quantity(0.5).display(), "1/2");
        assert_eq!(Quantity(1.5).display(), "1 1/2");
        assert_eq!(Quantity(2.0).display(), "2");
        assert_eq!(Quantity(0.25).display(), "1/4");
        assert_eq!(Quantity(0.33).display(), "1/3");
        assert_eq!(Quantity(0.0).display(), "0");
        assert_eq!(Quantity(3.75).display(), "3 3/4");
    }

    #[test]
    fn ingredient_line_display_pluralizes() {
        let line = IngredientLine { name: "flour".into(), qty: Quantity(2.0), unit: "cup".into() };
        assert_eq!(line.display(), "2 cups flour");
        let line = IngredientLine { name: "salt".into(), qty: Quantity(0.5), unit: "teaspoon".into() };
        assert_eq!(line.display(), "1/2 teaspoon salt");
    }

    #[test]
    fn tagged_string_structure() {
        use ratatouille_tokenizers::special::*;
        let s = sample().to_tagged_string();
        for tag in [
            RECIPE_START, INPUT_START, INPUT_END, TITLE_START, TITLE_END, INGR_START,
            INGR_END, INSTR_START, INSTR_END, RECIPE_END,
        ] {
            assert!(s.contains(tag), "missing {tag} in {s}");
        }
        // sections are ordered
        let pos = |t: &str| s.find(t).unwrap();
        assert!(pos(INPUT_START) < pos(TITLE_START));
        assert!(pos(TITLE_END) < pos(INGR_START));
        assert!(pos(INGR_END) < pos(INSTR_START));
        // fractions became atomic tokens
        assert!(s.contains("<FRAC_1_2>"), "{s}");
        assert!(!s.contains("1/2"));
    }

    #[test]
    fn raw_string_is_messier_than_tagged() {
        let raw = sample().to_raw_string();
        assert!(raw.contains("Simple Flatbread"));
        assert!(raw.contains("Ingredients:"));
        assert!(!raw.contains("<RECIPE_START>"));
    }

    #[test]
    fn flavor_profile_dedups() {
        let r = sample();
        let prof = r.flavor_profile();
        let set: std::collections::HashSet<_> = prof.iter().collect();
        assert_eq!(set.len(), prof.len());
        assert!(prof.contains(&"hexanal")); // from flour and olive oil, once
    }

    #[test]
    fn nutrition_positive_and_scales() {
        let r = sample();
        let n = r.nutrition();
        assert!(n.kcal > 1000.0, "2 cups flour alone ≈ 1700 kcal, got {}", n.kcal);
        assert!(n.carbs_g > n.fat_g);
    }
}

//! The probabilistic recipe grammar.
//!
//! Generates structured recipes with the statistical properties the
//! reproduction depends on:
//!
//! * **Zipfian ingredient frequencies** — within each category the sampler
//!   weights ingredients by `1/(rank+1)^s`, giving the long-tailed
//!   distribution real recipe corpora show;
//! * **region conditioning** — ingredients with an affinity for the
//!   recipe's region get a large weight boost, producing region-coherent
//!   co-occurrence (soy sauce with ginger, garam masala with lentils);
//! * **ingredient ↔ instruction consistency** — instruction steps are
//!   rendered from templates that reference the chosen ingredients by
//!   name, so a model that attends to the prompt can genuinely predict
//!   the instructions (this is what BLEU measures in Table I);
//! * **bounded lexical variety** — each step has a small number of
//!   phrasings, so corpus entropy is low enough for laptop-scale models
//!   to learn while still distinguishing model capacities.

use ratatouille_util::rng::StdRng;
use ratatouille_util::rng::{RngExt, SeedableRng};

use crate::ontology::{self, Ingredient, IngredientCategory as Cat};
use crate::recipe::{IngredientLine, Quantity, Recipe};

/// Dish archetypes the grammar composes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DishKind {
    /// Brothy soups and stews.
    Soup,
    /// Wok-fired stir-fries.
    StirFry,
    /// Simmered, spiced curries.
    Curry,
    /// Yeasted and quick breads.
    Bread,
    /// Cakes and cookies.
    Dessert,
    /// Composed salads.
    Salad,
    /// Oven roasts.
    Roast,
    /// Pasta dishes.
    Pasta,
    /// Rice bowls and pilafs.
    RiceBowl,
    /// Grilled mains.
    Grill,
}

/// All dish kinds, for iteration.
pub const ALL_DISH_KINDS: &[DishKind] = &[
    DishKind::Soup,
    DishKind::StirFry,
    DishKind::Curry,
    DishKind::Bread,
    DishKind::Dessert,
    DishKind::Salad,
    DishKind::Roast,
    DishKind::Pasta,
    DishKind::RiceBowl,
    DishKind::Grill,
];

impl DishKind {
    /// Noun used in generated titles.
    pub fn title_noun(&self) -> &'static str {
        match self {
            DishKind::Soup => "soup",
            DishKind::StirFry => "stir-fry",
            DishKind::Curry => "curry",
            DishKind::Bread => "bread",
            DishKind::Dessert => "cake",
            DishKind::Salad => "salad",
            DishKind::Roast => "roast",
            DishKind::Pasta => "pasta",
            DishKind::RiceBowl => "rice bowl",
            DishKind::Grill => "grill",
        }
    }
}

/// Deterministic, seedable recipe generator.
pub struct RecipeGenerator {
    rng: StdRng,
    next_id: u64,
    zipf_s: f64,
}

impl RecipeGenerator {
    /// A generator whose whole output stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        RecipeGenerator {
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            zipf_s: 0.9,
        }
    }

    /// Generate one recipe with a random region and dish kind.
    pub fn generate(&mut self) -> Recipe {
        let region_idx = self.rng.random_range(0..ontology::REGIONS.len());
        let region = ontology::REGIONS[region_idx];
        let kind = ALL_DISH_KINDS[self.rng.random_range(0..ALL_DISH_KINDS.len())];
        self.generate_dish(region.name, kind)
    }

    /// Generate one recipe of a specific kind in a specific region.
    pub fn generate_dish(&mut self, region_name: &str, kind: DishKind) -> Recipe {
        let region = ontology::region(region_name)
            .unwrap_or_else(|| panic!("unknown region `{region_name}`"));
        let id = self.next_id;
        self.next_id += 1;

        let slots = dish_slots(kind);
        let mut chosen: Vec<&'static Ingredient> = Vec::new();
        for (cat, min, max) in slots {
            let n = if max > min {
                self.rng.random_range(min..=max)
            } else {
                min
            };
            let picks = self.sample_category(cat, n, region.name, &chosen);
            chosen.extend(picks);
        }

        let ingredients: Vec<IngredientLine> = chosen
            .iter()
            .map(|ing| {
                let factor = *pick(&mut self.rng, &[0.5, 0.75, 1.0, 1.0, 1.5, 2.0]);
                IngredientLine {
                    name: ing.name.to_string(),
                    qty: Quantity(round_kitchen(ing.typical_qty * factor)),
                    unit: ing.default_unit.to_string(),
                }
            })
            .collect();

        let main = main_ingredient(kind, &chosen);
        let title = self.make_title(region.adjective, main, kind);
        let (instructions, processes) = self.make_instructions(kind, &chosen);
        let country_idx = self.rng.random_range(0..region.countries.len());

        Recipe {
            id,
            title,
            region: region.name.to_string(),
            country: region.countries[country_idx].to_string(),
            servings: *pick(&mut self.rng, &[2, 4, 4, 4, 6, 8]),
            ingredients,
            processes,
            instructions,
        }
    }

    /// Zipf-weighted, region-boosted sampling without replacement.
    fn sample_category(
        &mut self,
        cat: Cat,
        n: usize,
        region: &str,
        already: &[&'static Ingredient],
    ) -> Vec<&'static Ingredient> {
        let pool: Vec<&'static Ingredient> = ontology::ingredients_in(cat)
            .into_iter()
            .filter(|i| !already.iter().any(|a| a.name == i.name))
            .collect();
        let mut weights: Vec<f64> = pool
            .iter()
            .enumerate()
            .map(|(rank, ing)| {
                let zipf = 1.0 / ((rank + 1) as f64).powf(self.zipf_s);
                let boost = if ing.regions.contains(&region) { 4.0 } else { 1.0 };
                zipf * boost
            })
            .collect();
        let mut picks = Vec::with_capacity(n);
        for _ in 0..n.min(pool.len()) {
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                break;
            }
            let mut x = self.rng.random::<f64>() * total;
            let mut idx = 0;
            for (i, w) in weights.iter().enumerate() {
                x -= w;
                if x <= 0.0 {
                    idx = i;
                    break;
                }
            }
            picks.push(pool[idx]);
            weights[idx] = 0.0;
        }
        picks
    }

    fn make_title(&mut self, adjective: &str, main: &str, kind: DishKind) -> String {
        let prefix = pick(
            &mut self.rng,
            &["", "", "", "classic ", "easy ", "homestyle ", "spicy "],
        );
        format!("{prefix}{adjective} {main} {}", kind.title_noun())
    }

    /// Render the step list for `kind` over the chosen ingredients.
    /// Returns `(instructions, processes_used)`.
    fn make_instructions(
        &mut self,
        kind: DishKind,
        chosen: &[&'static Ingredient],
    ) -> (Vec<String>, Vec<String>) {
        let by = |cat: Cat| -> Vec<&str> {
            chosen
                .iter()
                .filter(|i| i.category == cat)
                .map(|i| i.name)
                .collect()
        };
        let first = |cat: Cat, fallback: &'static str| -> String {
            by(cat).first().copied().unwrap_or(fallback).to_string()
        };
        let rng = &mut self.rng;
        let mut steps: Vec<String> = Vec::new();
        let mut procs: Vec<String> = Vec::new();
        let push = |steps: &mut Vec<String>, procs: &mut Vec<String>, verb: &str, s: String| {
            procs.push(verb.to_string());
            steps.push(s);
        };

        let oil = first(Cat::Oil, "vegetable oil");
        let veg = by(Cat::Vegetable);
        let protein: Vec<&str> = chosen
            .iter()
            .filter(|i| matches!(i.category, Cat::Meat | Cat::Seafood | Cat::Legume))
            .map(|i| i.name)
            .collect();
        let spice = by(Cat::Spice);
        let herb = first(Cat::Herb, "parsley");

        match kind {
            DishKind::StirFry => {
                let w = pick(rng, &["wok", "large skillet"]);
                push(&mut steps, &mut procs, "chop", format!("chop the {} into bite-size pieces", join(&veg)));
                push(&mut steps, &mut procs, "saute", format!("heat the {oil} in a {w} over high heat"));
                if let Some(p) = protein.first() {
                    let mins = pick(rng, &["4 to 5 minutes", "5 to 6 minutes"]);
                    push(&mut steps, &mut procs, "stir-fry", format!("add the {p} and stir-fry until browned , {mins}"));
                }
                push(&mut steps, &mut procs, "toss", format!("toss in the {} and cook for 3 minutes", join(&veg)));
                let sauce = first(Cat::Condiment, "soy sauce");
                push(&mut steps, &mut procs, "stir", format!("stir in the {sauce} and cook for 2 minutes more"));
                push(&mut steps, &mut procs, "serve", format!("garnish with {herb} and serve hot over rice"));
            }
            DishKind::Soup => {
                push(&mut steps, &mut procs, "dice", format!("dice the {}", join(&veg)));
                push(&mut steps, &mut procs, "saute", format!("heat the {oil} in a large pot over medium heat and saute the aromatics until soft"));
                if let Some(p) = protein.first() {
                    push(&mut steps, &mut procs, "sear", format!("add the {p} and cook until no longer pink"));
                }
                let liquid = first(Cat::Condiment, "stock");
                let mins = pick(rng, &["20 minutes", "25 minutes", "30 minutes"]);
                push(&mut steps, &mut procs, "simmer", format!("pour in the {liquid} , bring to a boil , then simmer for {mins}"));
                if let Some(s) = spice.first() {
                    push(&mut steps, &mut procs, "season", format!("season with {s} to taste"));
                }
                push(&mut steps, &mut procs, "serve", format!("ladle into bowls and garnish with {herb}"));
            }
            DishKind::Curry => {
                push(&mut steps, &mut procs, "chop", format!("chop the {} finely", join(&veg)));
                push(&mut steps, &mut procs, "saute", format!("heat the {oil} in a heavy pot and saute until golden"));
                push(&mut steps, &mut procs, "season", format!("stir in the {} and toast until fragrant , about 1 minute", join(&spice)));
                if let Some(p) = protein.first() {
                    push(&mut steps, &mut procs, "sear", format!("add the {p} and coat well with the spices"));
                }
                let liquid = first(Cat::Condiment, "coconut milk");
                let mins = pick(rng, &["15 minutes", "20 minutes", "25 minutes"]);
                push(&mut steps, &mut procs, "simmer", format!("pour in the {liquid} and simmer gently for {mins}"));
                push(&mut steps, &mut procs, "serve", format!("sprinkle with {herb} and serve with rice"));
            }
            DishKind::Bread => {
                let grain = first(Cat::Grain, "flour");
                let leaven = first(Cat::Baking, "yeast");
                push(&mut steps, &mut procs, "mix", format!("mix the {grain} , {leaven} and salt in a large bowl until a shaggy dough forms"));
                let mins = pick(rng, &["10 to 15 minutes", "8 to 10 minutes"]);
                push(&mut steps, &mut procs, "knead", format!("turn the dough out onto a lightly floured surface and knead until smooth and pliable , {mins}"));
                push(&mut steps, &mut procs, "rest", "cover and set the dough aside to rest until doubled".to_string());
                push(&mut steps, &mut procs, "preheat", format!("preheat the oven to {} degrees", pick(rng, &["375", "400", "425", "450"])));
                let bake = pick(rng, &["25 to 30 minutes", "30 to 35 minutes"]);
                push(&mut steps, &mut procs, "bake", format!("bake in the preheated oven until lightly browned , {bake}"));
                push(&mut steps, &mut procs, "cool", "cool on a wire rack before slicing".to_string());
            }
            DishKind::Dessert => {
                let sweet = first(Cat::Sweetener, "sugar");
                let fat = first(Cat::Dairy, "butter");
                push(&mut steps, &mut procs, "preheat", format!("preheat the oven to {} degrees and grease a baking pan", pick(rng, &["325", "350", "375"])));
                push(&mut steps, &mut procs, "beat", format!("beat the {fat} and {sweet} together until light and fluffy"));
                push(&mut steps, &mut procs, "whisk", "whisk in the eggs one at a time".to_string());
                let grain = first(Cat::Grain, "flour");
                push(&mut steps, &mut procs, "fold", format!("fold in the {grain} until just combined"));
                let bake = pick(rng, &["25 to 30 minutes", "35 to 40 minutes"]);
                push(&mut steps, &mut procs, "bake", format!("bake until a toothpick comes out clean , {bake}"));
                push(&mut steps, &mut procs, "cool", "cool completely before serving".to_string());
            }
            DishKind::Salad => {
                push(&mut steps, &mut procs, "chop", format!("chop the {} into even pieces", join(&veg)));
                let acid = pick(rng, &["lemon juice", "vinegar"]);
                push(&mut steps, &mut procs, "whisk", format!("whisk the {oil} with {acid} , salt and pepper to make a dressing"));
                push(&mut steps, &mut procs, "toss", "toss the vegetables with the dressing until well coated".to_string());
                push(&mut steps, &mut procs, "chill", format!("chill for {} before serving", pick(rng, &["15 minutes", "30 minutes"])));
                push(&mut steps, &mut procs, "garnish", format!("scatter {herb} on top and serve"));
            }
            DishKind::Roast => {
                let p = protein.first().copied().unwrap_or("chicken");
                push(&mut steps, &mut procs, "preheat", format!("preheat the oven to {} degrees", pick(rng, &["375", "400", "425"])));
                push(&mut steps, &mut procs, "season", format!("rub the {p} all over with {oil} , salt and {}", spice.first().copied().unwrap_or("black pepper")));
                push(&mut steps, &mut procs, "roast", format!("arrange the {} around the {p} in a roasting pan", join(&veg)));
                let mins = pick(rng, &["45 minutes", "1 hour", "75 minutes"]);
                push(&mut steps, &mut procs, "roast", format!("roast until cooked through , about {mins}"));
                push(&mut steps, &mut procs, "rest", "rest for 10 minutes before carving".to_string());
            }
            DishKind::Pasta => {
                push(&mut steps, &mut procs, "boil", "bring a large pot of salted water to a boil and cook the pasta until al dente".to_string());
                push(&mut steps, &mut procs, "saute", format!("meanwhile heat the {oil} in a skillet and saute the {}", join(&veg)));
                if let Some(p) = protein.first() {
                    push(&mut steps, &mut procs, "sear", format!("add the {p} and cook through"));
                }
                push(&mut steps, &mut procs, "toss", "drain the pasta and toss with the sauce , loosening with pasta water as needed".to_string());
                let cheese = first(Cat::Dairy, "parmesan");
                push(&mut steps, &mut procs, "serve", format!("serve topped with {cheese} and {herb}"));
            }
            DishKind::RiceBowl => {
                push(&mut steps, &mut procs, "rinse", "rinse the rice until the water runs clear".to_string());
                push(&mut steps, &mut procs, "simmer", format!("simmer the rice , covered , for {}", pick(rng, &["15 minutes", "18 minutes"])));
                push(&mut steps, &mut procs, "saute", format!("heat the {oil} and cook the {} until tender", join(&veg)));
                if let Some(p) = protein.first() {
                    let sauce = first(Cat::Condiment, "soy sauce");
                    push(&mut steps, &mut procs, "stir-fry", format!("add the {p} with the {sauce} and cook until glazed"));
                }
                push(&mut steps, &mut procs, "plate", format!("spoon over the rice and top with {herb}"));
            }
            DishKind::Grill => {
                let p = protein.first().copied().unwrap_or("chicken");
                push(&mut steps, &mut procs, "marinate", format!("marinate the {p} in {oil} , {} and salt for at least 30 minutes", spice.first().copied().unwrap_or("black pepper")));
                push(&mut steps, &mut procs, "preheat", "preheat the grill to medium-high heat".to_string());
                let mins = pick(rng, &["4 to 5 minutes per side", "6 to 7 minutes per side"]);
                push(&mut steps, &mut procs, "grill", format!("grill the {p} until charred and cooked through , {mins}"));
                push(&mut steps, &mut procs, "grill", format!("grill the {} alongside until tender", join(&veg)));
                push(&mut steps, &mut procs, "rest", format!("rest briefly , then serve with {herb}"));
            }
        }
        (steps, procs)
    }
}

/// Ingredient slots per dish kind: `(category, min, max)` counts.
fn dish_slots(kind: DishKind) -> Vec<(Cat, usize, usize)> {
    match kind {
        DishKind::Soup => vec![
            (Cat::Oil, 1, 1),
            (Cat::Vegetable, 3, 4),
            (Cat::Meat, 0, 1),
            (Cat::Condiment, 1, 1),
            (Cat::Spice, 2, 2),
            (Cat::Herb, 1, 1),
        ],
        DishKind::StirFry => vec![
            (Cat::Oil, 1, 1),
            (Cat::Meat, 1, 1),
            (Cat::Vegetable, 3, 4),
            (Cat::Condiment, 1, 2),
            (Cat::Spice, 1, 2),
            (Cat::Herb, 1, 1),
            (Cat::Grain, 1, 1),
        ],
        DishKind::Curry => vec![
            (Cat::Oil, 1, 1),
            (Cat::Vegetable, 2, 3),
            (Cat::Legume, 0, 1),
            (Cat::Meat, 0, 1),
            (Cat::Spice, 3, 4),
            (Cat::Condiment, 1, 1),
            (Cat::Herb, 1, 1),
        ],
        DishKind::Bread => vec![
            (Cat::Grain, 1, 2),
            (Cat::Baking, 1, 2),
            (Cat::Spice, 1, 1),
            (Cat::Oil, 1, 1),
            (Cat::Sweetener, 0, 1),
        ],
        DishKind::Dessert => vec![
            (Cat::Grain, 1, 1),
            (Cat::Sweetener, 1, 2),
            (Cat::Dairy, 2, 3),
            (Cat::Baking, 1, 2),
            (Cat::Fruit, 0, 2),
        ],
        DishKind::Salad => vec![
            (Cat::Vegetable, 3, 5),
            (Cat::Oil, 1, 1),
            (Cat::Herb, 1, 2),
            (Cat::Spice, 1, 1),
            (Cat::Nut, 0, 1),
            (Cat::Dairy, 0, 1),
        ],
        DishKind::Roast => vec![
            (Cat::Meat, 1, 1),
            (Cat::Vegetable, 2, 4),
            (Cat::Oil, 1, 1),
            (Cat::Spice, 1, 2),
            (Cat::Herb, 1, 2),
        ],
        DishKind::Pasta => vec![
            (Cat::Grain, 1, 1),
            (Cat::Oil, 1, 1),
            (Cat::Vegetable, 2, 3),
            (Cat::Meat, 0, 1),
            (Cat::Dairy, 1, 1),
            (Cat::Herb, 1, 1),
            (Cat::Spice, 1, 1),
        ],
        DishKind::RiceBowl => vec![
            (Cat::Grain, 1, 1),
            (Cat::Oil, 1, 1),
            (Cat::Vegetable, 2, 3),
            (Cat::Meat, 0, 1),
            (Cat::Legume, 0, 1),
            (Cat::Condiment, 1, 2),
            (Cat::Herb, 1, 1),
        ],
        DishKind::Grill => vec![
            (Cat::Meat, 1, 1),
            (Cat::Vegetable, 2, 3),
            (Cat::Oil, 1, 1),
            (Cat::Spice, 2, 2),
            (Cat::Herb, 1, 1),
        ],
    }
}

/// The ingredient that headlines the title.
fn main_ingredient(kind: DishKind, chosen: &[&'static Ingredient]) -> &'static str {
    let want = match kind {
        DishKind::Bread | DishKind::Dessert => Cat::Fruit,
        DishKind::Salad => Cat::Vegetable,
        _ => Cat::Meat,
    };
    chosen
        .iter()
        .find(|i| i.category == want)
        .or_else(|| {
            chosen.iter().find(|i| {
                matches!(
                    i.category,
                    Cat::Meat | Cat::Seafood | Cat::Legume | Cat::Vegetable
                )
            })
        })
        .map(|i| i.name)
        .unwrap_or("vegetable")
}

/// "a", "a and b", or "a , b and c".
fn join(names: &[&str]) -> String {
    match names.len() {
        0 => "vegetables".to_string(),
        1 => names[0].to_string(),
        2 => format!("{} and {}", names[0], names[1]),
        _ => {
            let head = names[..names.len() - 1].join(" , ");
            format!("{head} and {}", names[names.len() - 1])
        }
    }
}

/// Uniform choice from a slice.
fn pick<'a, T>(rng: &mut StdRng, options: &'a [T]) -> &'a T {
    &options[rng.random_range(0..options.len())]
}

/// Snap a quantity to the nearest 1/4 (kitchen-friendly).
fn round_kitchen(q: f32) -> f32 {
    (q * 4.0).round().max(1.0) / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = RecipeGenerator::new(99);
        let mut b = RecipeGenerator::new(99);
        for _ in 0..20 {
            assert_eq!(a.generate(), b.generate());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let r1 = RecipeGenerator::new(1).generate();
        let r2 = RecipeGenerator::new(2).generate();
        assert_ne!(r1, r2);
    }

    #[test]
    fn recipes_are_well_formed() {
        let mut g = RecipeGenerator::new(7);
        for _ in 0..200 {
            let r = g.generate();
            assert!(!r.title.is_empty());
            assert!(r.ingredients.len() >= 3, "{:?}", r.title);
            assert!(r.instructions.len() >= 4);
            assert_eq!(r.processes.len(), r.instructions.len());
            assert!(ontology::region(&r.region).is_some());
            for line in &r.ingredients {
                assert!(ontology::ingredient(&line.name).is_some(), "{}", line.name);
                assert!(line.qty.0 > 0.0);
            }
            for p in &r.processes {
                assert!(ontology::process(p).is_some(), "unknown process {p}");
            }
        }
    }

    #[test]
    fn instructions_mention_chosen_ingredients() {
        let mut g = RecipeGenerator::new(21);
        let mut mentioned = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            let r = g.generate();
            let all_steps = r.instructions.join(" ");
            for line in &r.ingredients {
                total += 1;
                if all_steps.contains(&line.name) {
                    mentioned += 1;
                }
            }
        }
        let frac = mentioned as f64 / total as f64;
        assert!(frac > 0.5, "only {frac:.2} of ingredients appear in steps");
    }

    #[test]
    fn region_conditioning_biases_selection() {
        // Soy sauce should appear far more often in Chinese recipes than in
        // Southern European ones.
        let mut g = RecipeGenerator::new(5);
        let count = |region: &str, g: &mut RecipeGenerator| -> usize {
            (0..150)
                .map(|_| g.generate_dish(region, DishKind::StirFry))
                .filter(|r| r.ingredients.iter().any(|l| l.name == "soy sauce"))
                .count()
        };
        let chinese = count("Chinese", &mut g);
        let european = count("Southern European", &mut g);
        assert!(
            chinese > european,
            "soy sauce: chinese={chinese} european={european}"
        );
    }

    #[test]
    fn zipf_head_dominates() {
        // The first-ranked vegetable (onion) should appear much more often
        // than a tail vegetable (beetroot).
        let mut g = RecipeGenerator::new(11);
        let mut onion = 0;
        let mut beet = 0;
        for _ in 0..300 {
            let r = g.generate();
            if r.ingredients.iter().any(|l| l.name == "onion") {
                onion += 1;
            }
            if r.ingredients.iter().any(|l| l.name == "beetroot") {
                beet += 1;
            }
        }
        assert!(onion > 4 * beet.max(1), "onion={onion} beetroot={beet}");
    }

    #[test]
    fn all_dish_kinds_generate() {
        let mut g = RecipeGenerator::new(3);
        for &kind in ALL_DISH_KINDS {
            let r = g.generate_dish("US General", kind);
            assert!(r.title.contains(kind.title_noun()), "{}", r.title);
        }
    }

    #[test]
    fn ids_are_sequential() {
        let mut g = RecipeGenerator::new(1);
        assert_eq!(g.generate().id, 0);
        assert_eq!(g.generate().id, 1);
        assert_eq!(g.generate().id, 2);
    }

    #[test]
    fn join_grammar() {
        assert_eq!(join(&[]), "vegetables");
        assert_eq!(join(&["a"]), "a");
        assert_eq!(join(&["a", "b"]), "a and b");
        assert_eq!(join(&["a", "b", "c"]), "a , b and c");
    }

    #[test]
    fn round_kitchen_quarters() {
        assert_eq!(round_kitchen(1.1), 1.0);
        assert_eq!(round_kitchen(1.13), 1.25);
        assert_eq!(round_kitchen(0.1), 0.25);
    }
}

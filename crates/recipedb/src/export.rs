//! Tabular export of the structured database view — RecipeDB is "a
//! resource for exploring recipes", so the synthetic substitute exports
//! the same relational tables (recipes, ingredient usage, nutrition,
//! flavor links) as CSV for downstream analysis outside Rust.

use std::io::Write;

use crate::recipe::Recipe;

/// Escape one CSV field (RFC 4180: quote when needed, double quotes).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Write one CSV row.
fn write_row<W: Write>(w: &mut W, fields: &[String]) -> std::io::Result<()> {
    let line: Vec<String> = fields.iter().map(|f| csv_field(f)).collect();
    writeln!(w, "{}", line.join(","))
}

/// `recipes.csv`: one row per recipe with metadata and aggregates.
pub fn export_recipes<W: Write>(recipes: &[Recipe], w: &mut W) -> std::io::Result<()> {
    write_row(
        w,
        &["id", "title", "region", "country", "servings", "n_ingredients",
           "n_steps", "kcal", "protein_g", "fat_g", "carbs_g"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    )?;
    for r in recipes {
        let n = r.nutrition();
        write_row(
            w,
            &[
                r.id.to_string(),
                r.title.clone(),
                r.region.clone(),
                r.country.clone(),
                r.servings.to_string(),
                r.ingredients.len().to_string(),
                r.instructions.len().to_string(),
                format!("{:.1}", n.kcal),
                format!("{:.1}", n.protein_g),
                format!("{:.1}", n.fat_g),
                format!("{:.1}", n.carbs_g),
            ],
        )?;
    }
    Ok(())
}

/// `ingredient_usage.csv`: one row per (recipe, ingredient line) — the
/// join table for co-occurrence analysis.
pub fn export_ingredient_usage<W: Write>(recipes: &[Recipe], w: &mut W) -> std::io::Result<()> {
    write_row(
        w,
        &["recipe_id", "ingredient", "quantity", "unit"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    )?;
    for r in recipes {
        for line in &r.ingredients {
            write_row(
                w,
                &[
                    r.id.to_string(),
                    line.name.clone(),
                    format!("{}", line.qty.0),
                    line.unit.clone(),
                ],
            )?;
        }
    }
    Ok(())
}

/// `flavor_links.csv`: one row per (recipe, flavor molecule) — the
/// FlavorDB-style link table.
pub fn export_flavor_links<W: Write>(recipes: &[Recipe], w: &mut W) -> std::io::Result<()> {
    write_row(
        w,
        &["recipe_id", "molecule"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    )?;
    for r in recipes {
        for m in r.flavor_profile() {
            write_row(w, &[r.id.to_string(), m.to_string()])?;
        }
    }
    Ok(())
}

/// Export all three tables into a directory
/// (`recipes.csv`, `ingredient_usage.csv`, `flavor_links.csv`).
pub fn export_all(recipes: &[Recipe], dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join("recipes.csv"))?;
    export_recipes(recipes, &mut f)?;
    let mut f = std::fs::File::create(dir.join("ingredient_usage.csv"))?;
    export_ingredient_usage(recipes, &mut f)?;
    let mut f = std::fs::File::create(dir.join("flavor_links.csv"))?;
    export_flavor_links(recipes, &mut f)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::RecipeGenerator;

    fn sample_recipes(n: usize) -> Vec<Recipe> {
        let mut g = RecipeGenerator::new(5);
        (0..n).map(|_| g.generate()).collect()
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn recipes_csv_row_count_and_header() {
        let recipes = sample_recipes(10);
        let mut buf = Vec::new();
        export_recipes(&recipes, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 11);
        assert!(lines[0].starts_with("id,title,region"));
        // every data row has the full column count
        for l in &lines[1..] {
            assert!(l.split(',').count() >= 11, "short row: {l}");
        }
    }

    #[test]
    fn usage_rows_match_ingredient_counts() {
        let recipes = sample_recipes(5);
        let expected: usize = recipes.iter().map(|r| r.ingredients.len()).sum();
        let mut buf = Vec::new();
        export_ingredient_usage(&recipes, &mut buf).unwrap();
        let rows = String::from_utf8(buf).unwrap().lines().count() - 1;
        assert_eq!(rows, expected);
    }

    #[test]
    fn flavor_links_reference_valid_recipes() {
        let recipes = sample_recipes(5);
        let mut buf = Vec::new();
        export_flavor_links(&recipes, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let ids: std::collections::HashSet<String> =
            recipes.iter().map(|r| r.id.to_string()).collect();
        for line in text.lines().skip(1) {
            let id = line.split(',').next().unwrap();
            assert!(ids.contains(id), "dangling recipe_id {id}");
        }
    }

    #[test]
    fn export_all_writes_three_files() {
        let dir = std::env::temp_dir().join(format!("rt-export-{}", std::process::id()));
        export_all(&sample_recipes(3), &dir).unwrap();
        for name in ["recipes.csv", "ingredient_usage.csv", "flavor_links.csv"] {
            let p = dir.join(name);
            assert!(p.exists(), "{name} missing");
            assert!(std::fs::metadata(&p).unwrap().len() > 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

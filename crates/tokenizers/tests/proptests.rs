//! Property-based tests on tokenizer invariants.

use ratatouille_util::proptest::prelude::*;
use ratatouille_tokenizers::{special, BpeTokenizer, CharTokenizer, Tokenizer, WordTokenizer};

proptest! {
    /// BPE is byte-complete: any string round-trips exactly, trained or not.
    #[test]
    fn bpe_roundtrips_arbitrary_text(s in "[a-z0-9 ,./-]{0,120}") {
        let tok = BpeTokenizer::train(&["mix the flour with water and salt"], 64);
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    /// Char tokenizer round-trips text over its training alphabet.
    #[test]
    fn char_roundtrips_training_alphabet(s in "[a-z ]{0,80}") {
        let tok = CharTokenizer::train(&["abcdefghijklmnopqrstuvwxyz "]);
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    /// All ids produced by encode are within the declared vocab size.
    #[test]
    fn ids_in_range(s in "[a-z 0-9]{0,100}") {
        let corpus = ["the quick brown fox 0 1 2 3 4 5 6 7 8 9"];
        let toks: Vec<Box<dyn Tokenizer>> = vec![
            Box::new(CharTokenizer::train(&corpus)),
            Box::new(WordTokenizer::train(&corpus, 1)),
            Box::new(BpeTokenizer::train(&corpus, 32)),
        ];
        for tok in &toks {
            for id in tok.encode(&s) {
                prop_assert!((id as usize) < tok.vocab_size());
            }
        }
    }

    /// Word tokenizer round-trips canonical text: known words joined by
    /// single spaces (its lossy normalizations — unknown words and
    /// whitespace runs — are excluded by construction).
    #[test]
    fn word_roundtrips_canonical_text(picks in collection::vec(0usize..6, 1..12)) {
        let words = ["mix", "the", "flour", "with", "water", "salt"];
        let tok = WordTokenizer::train(&["mix the flour with water salt"], 1);
        let text: String = picks
            .iter()
            .map(|&i| words[i])
            .collect::<Vec<_>>()
            .join(" ");
        prop_assert_eq!(tok.decode(&tok.encode(&text)), text);
    }

    /// Char tokenizer encode→decode→encode is stable even off-alphabet
    /// (unknown chars collapse to <UNK> once, then stay fixed).
    #[test]
    fn char_double_roundtrip_stable(s in "\\PC{0,60}") {
        let tok = CharTokenizer::train(&["abcdefghijklmnopqrstuvwxyz "]);
        let once = tok.decode(&tok.encode(&s));
        let twice = tok.decode(&tok.encode(&once));
        prop_assert_eq!(once, twice);
    }

    /// Word tokenizer never panics and decodes unknowns to <UNK>.
    #[test]
    fn word_tokenizer_total(s in "\\PC{0,60}") {
        let tok = WordTokenizer::train(&["some training words"], 1);
        let decoded = tok.decode(&tok.encode(&s));
        // output is valid text mentioning only trained words or <UNK>
        let all_known = decoded
            .split_whitespace()
            .all(|w| w == special::UNK || tok.vocab().id(w).is_some());
        prop_assert!(all_known);
    }

    /// Specials embedded anywhere stay atomic for every tokenizer.
    #[test]
    fn specials_atomic_everywhere(pre in "[a-z ]{0,20}", post in "[a-z ]{0,20}") {
        let text = format!("{pre}{}{post}", special::NEXT_INGR);
        let corpus = [text.clone(), "abcdefghijklmnopqrstuvwxyz ".to_string()];
        let toks: Vec<Box<dyn Tokenizer>> = vec![
            Box::new(CharTokenizer::train(&corpus)),
            Box::new(WordTokenizer::train(&corpus, 1)),
            Box::new(BpeTokenizer::train(&corpus, 16)),
        ];
        for tok in &toks {
            let ids = tok.encode(&text);
            let tag_id = tok.special_id(special::NEXT_INGR).unwrap();
            prop_assert_eq!(ids.iter().filter(|&&i| i == tag_id).count(), 1);
        }
    }
}

//! Bidirectional token ↔ id vocabulary with reserved special tokens.

use ratatouille_util::collections::{det_map, DetMap};

use crate::special;

/// A dense `0..len` vocabulary. Ids `0..` are assigned in registration
/// order; every vocabulary starts with [`special::ALL_SPECIAL_TAGS`] and
/// the fraction tokens, so special ids are identical across tokenizers.
#[derive(Debug, Clone)]
pub struct Vocab {
    token_to_id: DetMap<String, u32>,
    id_to_token: Vec<String>,
}

impl Vocab {
    /// A vocabulary pre-seeded with all special and fraction tokens.
    pub fn with_specials() -> Self {
        let mut v = Vocab {
            token_to_id: det_map(),
            id_to_token: Vec::new(),
        };
        for &tag in special::ALL_SPECIAL_TAGS {
            v.add(tag);
        }
        for tok in special::fraction_tokens() {
            v.add(tok);
        }
        v
    }

    /// Add a token if absent; returns its id either way.
    pub fn add(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len() as u32;
        self.token_to_id.insert(token.to_string(), id);
        self.id_to_token.push(token.to_string());
        id
    }

    /// Id for a token, if present.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    /// Token for an id, if in range.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.id_to_token.get(id as usize).map(String::as_str)
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Id of [`special::PAD`] (always 0 by construction).
    pub fn pad_id(&self) -> u32 {
        self.id(special::PAD).expect("vocab built without specials")
    }

    /// Id of [`special::UNK`].
    pub fn unk_id(&self) -> u32 {
        self.id(special::UNK).expect("vocab built without specials")
    }

    /// Number of reserved (special + fraction) tokens at the front.
    pub fn reserved_len() -> usize {
        special::ALL_SPECIAL_TAGS.len() + special::FRACTIONS.len()
    }

    /// Iterate `(id, token)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.id_to_token
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u32, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_have_stable_ids() {
        let a = Vocab::with_specials();
        let b = Vocab::with_specials();
        assert_eq!(a.pad_id(), 0);
        assert_eq!(a.unk_id(), 1);
        assert_eq!(a.id(special::RECIPE_START), b.id(special::RECIPE_START));
        assert_eq!(a.len(), Vocab::reserved_len());
    }

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocab::with_specials();
        let id1 = v.add("flour");
        let id2 = v.add("flour");
        assert_eq!(id1, id2);
        assert_eq!(v.token(id1), Some("flour"));
    }

    #[test]
    fn roundtrip_all_ids() {
        let mut v = Vocab::with_specials();
        v.add("salt");
        v.add("pepper");
        for (id, tok) in v.clone().iter() {
            assert_eq!(v.id(tok), Some(id));
        }
    }

    #[test]
    fn unknown_lookups_are_none() {
        let v = Vocab::with_specials();
        assert_eq!(v.id("nonexistent"), None);
        assert_eq!(v.token(9999), None);
    }
}

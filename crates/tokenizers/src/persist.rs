//! Tokenizer persistence: a trained model checkpoint is useless without
//! the exact tokenizer it was trained with, so tokenizers serialize to a
//! simple line-oriented text format (human-inspectable, like HF's
//! `vocab.txt` / `merges.txt`).
//!
//! Format: a header line `ratatouille-tokenizer v1 <kind>`, then
//! kind-specific sections. All tokens are written with `\n`, `\\` and
//! leading-space escapes so the format survives arbitrary vocabulary.

use crate::bpe::BpeTokenizer;
use crate::char_level::CharTokenizer;
use crate::word_level::WordTokenizer;
use crate::Vocab;

/// Errors from loading a persisted tokenizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Header missing or wrong version.
    BadHeader(String),
    /// The payload declares a different tokenizer kind.
    WrongKind {
        /// Kind in the file.
        found: String,
        /// Kind the caller asked for.
        expected: String,
    },
    /// A malformed body line.
    BadLine(usize, String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadHeader(h) => write!(f, "bad tokenizer header: {h}"),
            PersistError::WrongKind { found, expected } => {
                write!(f, "tokenizer kind mismatch: file has `{found}`, expected `{expected}`")
            }
            PersistError::BadLine(n, l) => write!(f, "bad line {n}: {l}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Escape a token for one-per-line storage.
fn escape(tok: &str) -> String {
    let mut out = String::with_capacity(tok.len() + 2);
    for c in tok.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            ' ' => out.push_str("\\s"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`].
fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                's' => out.push(' '),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

fn header(kind: &str) -> String {
    format!("ratatouille-tokenizer v1 {kind}")
}

fn check_header<'a>(text: &'a str, expected: &str) -> Result<&'a str, PersistError> {
    let (first, rest) = text
        .split_once('\n')
        .ok_or_else(|| PersistError::BadHeader("empty file".into()))?;
    let parts: Vec<&str> = first.split(' ').collect();
    if parts.len() != 3 || parts[0] != "ratatouille-tokenizer" || parts[1] != "v1" {
        return Err(PersistError::BadHeader(first.to_string()));
    }
    if parts[2] != expected {
        return Err(PersistError::WrongKind {
            found: parts[2].to_string(),
            expected: expected.to_string(),
        });
    }
    Ok(rest)
}

/// Serialize a [`Vocab`]-backed tokenizer body: the non-reserved tokens
/// in id order (reserved specials are reconstructed, not stored).
fn vocab_body(vocab: &Vocab) -> String {
    let mut out = String::new();
    for (id, tok) in vocab.iter() {
        if (id as usize) < Vocab::reserved_len() {
            continue;
        }
        out.push_str(&escape(tok));
        out.push('\n');
    }
    out
}

fn vocab_from_body(body: &str) -> Result<Vocab, PersistError> {
    let mut vocab = Vocab::with_specials();
    for (i, line) in body.lines().enumerate() {
        let tok = unescape(line).ok_or_else(|| PersistError::BadLine(i + 2, line.to_string()))?;
        vocab.add(&tok);
    }
    Ok(vocab)
}

impl CharTokenizer {
    /// Serialize to the persistence format.
    pub fn save_to_string(&self) -> String {
        format!("{}\n{}", header("char"), vocab_body(self.vocab()))
    }

    /// Load from the persistence format.
    pub fn load_from_string(text: &str) -> Result<CharTokenizer, PersistError> {
        let body = check_header(text, "char")?;
        Ok(CharTokenizer::from_vocab(vocab_from_body(body)?))
    }
}

impl WordTokenizer {
    /// Serialize to the persistence format.
    pub fn save_to_string(&self) -> String {
        format!("{}\n{}", header("word"), vocab_body(self.vocab()))
    }

    /// Load from the persistence format.
    pub fn load_from_string(text: &str) -> Result<WordTokenizer, PersistError> {
        let body = check_header(text, "word")?;
        Ok(WordTokenizer::from_vocab(vocab_from_body(body)?))
    }
}

impl BpeTokenizer {
    /// Serialize to the persistence format: merge pairs in rank order
    /// (ids are reconstructible because merge order defines them).
    pub fn save_to_string(&self) -> String {
        let mut out = header("bpe");
        out.push('\n');
        for (left, right) in self.merges_in_rank_order() {
            out.push_str(&format!("{left} {right}\n"));
        }
        out
    }

    /// Load from the persistence format.
    pub fn load_from_string(text: &str) -> Result<BpeTokenizer, PersistError> {
        let body = check_header(text, "bpe")?;
        let mut merges = Vec::new();
        for (i, line) in body.lines().enumerate() {
            let (a, b) = line
                .split_once(' ')
                .ok_or_else(|| PersistError::BadLine(i + 2, line.to_string()))?;
            let left: u32 = a
                .parse()
                .map_err(|_| PersistError::BadLine(i + 2, line.to_string()))?;
            let right: u32 = b
                .parse()
                .map_err(|_| PersistError::BadLine(i + 2, line.to_string()))?;
            merges.push((left, right));
        }
        Ok(BpeTokenizer::from_merges(&merges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tokenizer;

    const CORPUS: &[&str] = &[
        "mix the flour and water until smooth",
        "bake the bread until golden brown ok",
        "<RECIPE_START> 1/2 cup sugar <RECIPE_END>",
    ];

    #[test]
    fn escape_roundtrip() {
        for s in ["plain", "has space", "back\\slash", "new\nline", ""] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s));
        }
        assert_eq!(unescape("\\q"), None);
        assert_eq!(unescape("trailing\\"), None);
    }

    #[test]
    fn char_tokenizer_roundtrip() {
        let tok = CharTokenizer::train(CORPUS);
        let loaded = CharTokenizer::load_from_string(&tok.save_to_string()).unwrap();
        assert_eq!(loaded.vocab_size(), tok.vocab_size());
        for text in CORPUS {
            assert_eq!(loaded.encode(text), tok.encode(text));
        }
    }

    #[test]
    fn word_tokenizer_roundtrip() {
        let tok = WordTokenizer::train(CORPUS, 1);
        let loaded = WordTokenizer::load_from_string(&tok.save_to_string()).unwrap();
        assert_eq!(loaded.vocab_size(), tok.vocab_size());
        for text in CORPUS {
            assert_eq!(loaded.encode(text), tok.encode(text));
        }
    }

    #[test]
    fn bpe_tokenizer_roundtrip() {
        let tok = BpeTokenizer::train(CORPUS, 64);
        let loaded = BpeTokenizer::load_from_string(&tok.save_to_string()).unwrap();
        assert_eq!(loaded.vocab_size(), tok.vocab_size());
        for text in CORPUS {
            assert_eq!(loaded.encode(text), tok.encode(text));
            assert_eq!(loaded.decode(&loaded.encode(text)), *text);
        }
    }

    #[test]
    fn kind_mismatch_detected() {
        let tok = CharTokenizer::train(CORPUS);
        let err = WordTokenizer::load_from_string(&tok.save_to_string()).unwrap_err();
        assert!(matches!(err, PersistError::WrongKind { .. }), "{err}");
    }

    #[test]
    fn corrupt_payloads_rejected() {
        assert!(CharTokenizer::load_from_string("").is_err());
        assert!(CharTokenizer::load_from_string("nonsense header\nx").is_err());
        assert!(BpeTokenizer::load_from_string(
            "ratatouille-tokenizer v1 bpe\nnot numbers\n"
        )
        .is_err());
    }
}

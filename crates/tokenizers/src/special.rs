//! Recipe-structure special tokens.
//!
//! The paper preprocesses RecipeDB into "one long string with all the
//! recipes with different tags that differentiate between different
//! sections of the recipe" (Fig. 3), in the RecipeGPT style, and adds
//! dedicated tokens for fractions and numbers so quantities survive
//! tokenization as atomic, learnable units.

/// Padding.
pub const PAD: &str = "<PAD>";
/// Unknown token.
pub const UNK: &str = "<UNK>";
/// Start of a recipe record.
pub const RECIPE_START: &str = "<RECIPE_START>";
/// End of a recipe record.
pub const RECIPE_END: &str = "<RECIPE_END>";
/// Start of the title section.
pub const TITLE_START: &str = "<TITLE_START>";
/// End of the title section.
pub const TITLE_END: &str = "<TITLE_END>";
/// Start of the ingredient list.
pub const INGR_START: &str = "<INGR_START>";
/// Separator between ingredients.
pub const NEXT_INGR: &str = "<NEXT_INGR>";
/// End of the ingredient list.
pub const INGR_END: &str = "<INGR_END>";
/// Start of the instruction list.
pub const INSTR_START: &str = "<INSTR_START>";
/// Separator between instruction steps.
pub const NEXT_INSTR: &str = "<NEXT_INSTR>";
/// End of the instruction list.
pub const INSTR_END: &str = "<INSTR_END>";
/// Start of the input-ingredients prompt section (what the user typed).
pub const INPUT_START: &str = "<INPUT_START>";
/// Separator between prompt ingredients.
pub const NEXT_INPUT: &str = "<NEXT_INPUT>";
/// End of the input-ingredients prompt section.
pub const INPUT_END: &str = "<INPUT_END>";

/// Every structural tag, in the id order tokenizers register them.
pub const ALL_SPECIAL_TAGS: &[&str] = &[
    PAD,
    UNK,
    RECIPE_START,
    RECIPE_END,
    TITLE_START,
    TITLE_END,
    INGR_START,
    NEXT_INGR,
    INGR_END,
    INSTR_START,
    NEXT_INSTR,
    INSTR_END,
    INPUT_START,
    NEXT_INPUT,
    INPUT_END,
];

/// Common cooking fractions that get atomic tokens (the paper's "special
/// tokens to account the fractions"). Maps surface text → token.
pub const FRACTIONS: &[(&str, &str)] = &[
    ("1/2", "<FRAC_1_2>"),
    ("1/3", "<FRAC_1_3>"),
    ("2/3", "<FRAC_2_3>"),
    ("1/4", "<FRAC_1_4>"),
    ("3/4", "<FRAC_3_4>"),
    ("1/8", "<FRAC_1_8>"),
    ("3/8", "<FRAC_3_8>"),
    ("5/8", "<FRAC_5_8>"),
    ("7/8", "<FRAC_7_8>"),
    ("1/16", "<FRAC_1_16>"),
];

/// All fraction tokens (the token side of [`FRACTIONS`]).
pub fn fraction_tokens() -> Vec<&'static str> {
    FRACTIONS.iter().map(|&(_, t)| t).collect()
}

/// Replace fraction literals in text with their atomic tokens.
///
/// Longer fractions are substituted first so `1/16` is not shadowed by
/// `1/1` prefixes of other patterns.
pub fn encode_fractions(text: &str) -> String {
    let mut pairs: Vec<(&str, &str)> = FRACTIONS.to_vec();
    pairs.sort_by_key(|(s, _)| std::cmp::Reverse(s.len()));
    let mut out = text.to_string();
    for (surface, token) in pairs {
        out = out.replace(surface, &format!(" {token} "));
    }
    collapse_spaces(&out)
}

/// Replace fraction tokens back with their surface text.
pub fn decode_fractions(text: &str) -> String {
    let mut out = text.to_string();
    for &(surface, token) in FRACTIONS {
        out = out.replace(token, surface);
    }
    out
}

/// Collapse runs of whitespace to single spaces and trim.
pub fn collapse_spaces(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Split `text` into alternating plain segments and special tokens, so
/// tokenizers can treat tags atomically. Returns `(segment, is_special)`
/// pairs in order; empty plain segments are dropped.
pub fn split_on_specials<'a>(text: &'a str, specials: &[&str]) -> Vec<(&'a str, bool)> {
    let mut out = Vec::new();
    let mut rest = text;
    'outer: while !rest.is_empty() {
        // find the earliest special occurrence
        let mut best: Option<(usize, &str)> = None;
        for &sp in specials {
            if let Some(pos) = rest.find(sp) {
                match best {
                    Some((bpos, bsp)) if pos > bpos || (pos == bpos && sp.len() <= bsp.len()) => {}
                    _ => best = Some((pos, sp)),
                }
            }
        }
        match best {
            Some((pos, sp)) => {
                if pos > 0 {
                    out.push((&rest[..pos], false));
                }
                out.push((&rest[pos..pos + sp.len()], true));
                rest = &rest[pos + sp.len()..];
            }
            None => {
                out.push((rest, false));
                break 'outer;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_roundtrip() {
        let text = "add 1/2 cup sugar and 1/16 tsp salt";
        let enc = encode_fractions(text);
        assert!(enc.contains("<FRAC_1_2>"), "{enc}");
        assert!(enc.contains("<FRAC_1_16>"), "{enc}");
        assert!(!enc.contains("1/2"));
        let dec = decode_fractions(&enc);
        assert_eq!(collapse_spaces(&dec), collapse_spaces(text));
    }

    #[test]
    fn sixteenth_not_shadowed() {
        let enc = encode_fractions("1/16");
        assert_eq!(enc.trim(), "<FRAC_1_16>");
    }

    #[test]
    fn split_isolates_tags() {
        let text = format!("{TITLE_START} pasta {TITLE_END}{INGR_START}salt{INGR_END}");
        let parts = split_on_specials(&text, ALL_SPECIAL_TAGS);
        let specials: Vec<&str> = parts.iter().filter(|(_, s)| *s).map(|(t, _)| *t).collect();
        assert_eq!(specials, vec![TITLE_START, TITLE_END, INGR_START, INGR_END]);
        let plains: Vec<&str> = parts.iter().filter(|(_, s)| !*s).map(|(t, _)| *t).collect();
        assert_eq!(plains, vec![" pasta ", "salt"]);
    }

    #[test]
    fn split_plain_text_is_single_segment() {
        let parts = split_on_specials("no tags here", ALL_SPECIAL_TAGS);
        assert_eq!(parts, vec![("no tags here", false)]);
    }

    #[test]
    fn tags_are_unique() {
        let mut set = std::collections::HashSet::new();
        for &t in ALL_SPECIAL_TAGS {
            assert!(set.insert(t), "duplicate tag {t}");
        }
        for t in fraction_tokens() {
            assert!(set.insert(t), "fraction token collides with tag {t}");
        }
    }
}

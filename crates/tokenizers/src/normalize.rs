//! Text normalization applied before tokenization.
//!
//! Mirrors the paper's preprocessing (Fig. 1 → Fig. 2): lowercase
//! free text, separate punctuation so it tokenizes cleanly, and collapse
//! whitespace. Special tags are preserved verbatim (they are upper-case
//! on purpose, so lowercasing plain segments never corrupts them —
//! normalization runs on tag-free segments).

/// Punctuation characters that get space-separated into their own tokens.
const SEPARABLE: &[char] = &[',', '.', ';', ':', '!', '?', '(', ')'];

/// Normalize a tag-free text segment: lowercase, separate punctuation,
/// collapse whitespace.
pub fn normalize_segment(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 8);
    for ch in text.chars() {
        if SEPARABLE.contains(&ch) {
            out.push(' ');
            out.push(ch);
            out.push(' ');
        } else {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
        }
    }
    crate::special::collapse_spaces(&out)
}

/// Split a normalized segment into word tokens (whitespace separated;
/// punctuation is already isolated by [`normalize_segment`]).
pub fn split_words(text: &str) -> Vec<&str> {
    text.split_whitespace().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_separates_punctuation() {
        let n = normalize_segment("Mix Flour, then KNEAD.");
        assert_eq!(n, "mix flour , then knead .");
    }

    #[test]
    fn collapses_whitespace() {
        assert_eq!(normalize_segment("a   b\t\nc"), "a b c");
    }

    #[test]
    fn keeps_hyphens_and_slashes() {
        assert_eq!(normalize_segment("all-purpose 1/2"), "all-purpose 1/2");
    }

    #[test]
    fn split_words_on_normalized() {
        let n = normalize_segment("boil water; add salt");
        assert_eq!(split_words(&n), vec!["boil", "water", ";", "add", "salt"]);
    }

    #[test]
    fn unicode_lowercase() {
        assert_eq!(normalize_segment("Crème FRAÎCHE"), "crème fraîche");
    }
}

//! # ratatouille-tokenizers
//!
//! The three tokenizations the paper trains language models over:
//!
//! * [`CharTokenizer`] — character level (for the char-LSTM baseline),
//! * [`WordTokenizer`] — word level with a frequency cutoff and `<unk>`
//!   (for the word-LSTM baseline),
//! * [`BpeTokenizer`] — byte-level byte-pair encoding trained on the
//!   corpus (the GPT-2 tokenization).
//!
//! All three share the [`Tokenizer`] trait and treat the recipe-structure
//! tags and fraction/number markers in [`special`] as atomic units — the
//! paper highlights "special tokens to account the fractions and numbers"
//! as the feature distinguishing it from RecipeGPT/RecipeNLG.
//!
//! ```
//! use ratatouille_tokenizers::{CharTokenizer, Tokenizer};
//!
//! let tok = CharTokenizer::train(&["mix flour and water"]);
//! let ids = tok.encode("mix flour");
//! assert_eq!(tok.decode(&ids), "mix flour");
//! ```
#![warn(missing_docs)]


pub mod bpe;
pub mod char_level;
pub mod normalize;
pub mod persist;
pub mod special;
pub mod vocab;
pub mod word_level;

pub use bpe::BpeTokenizer;
pub use char_level::CharTokenizer;
pub use vocab::Vocab;
pub use word_level::WordTokenizer;

/// A reversible mapping between text and token-id sequences.
///
/// Implementations guarantee:
/// * `decode(encode(s)) == s` for text drawn from the training alphabet
///   (word-level maps out-of-vocabulary words to `<unk>`, so its
///   round-trip is exact only on in-vocabulary text);
/// * special tokens from [`special::ALL_SPECIAL_TAGS`] encode to exactly
///   one id each and round-trip verbatim.
pub trait Tokenizer: Send + Sync {
    /// Encode text into token ids.
    fn encode(&self, text: &str) -> Vec<u32>;

    /// Clone into a boxed trait object (tokenizers are value types; this
    /// lets pipelines ship them across worker threads).
    fn clone_box(&self) -> Box<dyn Tokenizer>;

    /// Decode token ids back into text. Unknown ids render as
    /// [`special::UNK`].
    fn decode(&self, ids: &[u32]) -> String;

    /// Total vocabulary size (dense ids `0..vocab_size`).
    fn vocab_size(&self) -> usize;

    /// Id of the padding token.
    fn pad_id(&self) -> u32;

    /// Id of the unknown token.
    fn unk_id(&self) -> u32;

    /// Id of the beginning-of-recipe token ([`special::RECIPE_START`]).
    fn bos_id(&self) -> u32;

    /// Id of the end-of-recipe token ([`special::RECIPE_END`]).
    fn eos_id(&self) -> u32;

    /// Id for an arbitrary special tag, if registered.
    fn special_id(&self, tag: &str) -> Option<u32>;

    /// Human-readable name (used in experiment reports).
    fn name(&self) -> &'static str;
}

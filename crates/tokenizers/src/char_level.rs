//! Character-level tokenizer (the char-LSTM baseline's vocabulary).

use crate::special::{self, ALL_SPECIAL_TAGS};
use crate::vocab::Vocab;
use crate::Tokenizer;

/// Character-level tokenizer: every distinct character in the training
/// corpus becomes a token; special tags stay atomic single ids.
#[derive(Debug, Clone)]
pub struct CharTokenizer {
    vocab: Vocab,
    specials: Vec<&'static str>,
}

impl CharTokenizer {
    /// Build a vocabulary from the characters appearing in `corpus`.
    pub fn train<S: AsRef<str>>(corpus: &[S]) -> Self {
        let mut vocab = Vocab::with_specials();
        let specials = all_atomic_tags();
        for doc in corpus {
            for (seg, is_special) in special::split_on_specials(doc.as_ref(), &specials) {
                if is_special {
                    continue; // already registered
                }
                for ch in seg.chars() {
                    vocab.add(&ch.to_string());
                }
            }
        }
        CharTokenizer {
            vocab,
            specials: specials.to_vec(),
        }
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Rebuild from a persisted vocabulary (see `crate::persist`).
    pub fn from_vocab(vocab: Vocab) -> Self {
        CharTokenizer {
            vocab,
            specials: all_atomic_tags(),
        }
    }
}

/// Structural tags plus fraction tokens — everything that must stay atomic.
pub(crate) fn all_atomic_tags() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = ALL_SPECIAL_TAGS.to_vec();
    v.extend(special::fraction_tokens());
    v
}

impl Tokenizer for CharTokenizer {
    fn clone_box(&self) -> Box<dyn Tokenizer> {
        Box::new(self.clone())
    }

    fn encode(&self, text: &str) -> Vec<u32> {
        let mut ids = Vec::with_capacity(text.len());
        for (seg, is_special) in special::split_on_specials(text, &self.specials) {
            if is_special {
                ids.push(self.vocab.id(seg).expect("registered special"));
            } else {
                for ch in seg.chars() {
                    ids.push(
                        self.vocab
                            .id(&ch.to_string())
                            .unwrap_or_else(|| self.vocab.unk_id()),
                    );
                }
            }
        }
        ids
    }

    fn decode(&self, ids: &[u32]) -> String {
        let mut out = String::with_capacity(ids.len());
        for &id in ids {
            out.push_str(self.vocab.token(id).unwrap_or(special::UNK));
        }
        out
    }

    fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    fn pad_id(&self) -> u32 {
        self.vocab.pad_id()
    }

    fn unk_id(&self) -> u32 {
        self.vocab.unk_id()
    }

    fn bos_id(&self) -> u32 {
        self.vocab.id(special::RECIPE_START).expect("specials present")
    }

    fn eos_id(&self) -> u32 {
        self.vocab.id(special::RECIPE_END).expect("specials present")
    }

    fn special_id(&self, tag: &str) -> Option<u32> {
        self.vocab.id(tag)
    }

    fn name(&self) -> &'static str {
        "char"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::{INGR_START, RECIPE_START};

    #[test]
    fn roundtrip_plain_text() {
        let tok = CharTokenizer::train(&["mix flour and water"]);
        let ids = tok.encode("flour and water");
        assert_eq!(tok.decode(&ids), "flour and water");
    }

    #[test]
    fn specials_are_single_ids() {
        let text = format!("{RECIPE_START}mix{INGR_START}");
        let tok = CharTokenizer::train(&[text.clone()]);
        let ids = tok.encode(&text);
        assert_eq!(ids.len(), 2 + 3); // two tags + 'm' 'i' 'x'
        assert_eq!(tok.decode(&ids), text);
        assert_eq!(ids[0], tok.bos_id());
    }

    #[test]
    fn unknown_chars_become_unk() {
        let tok = CharTokenizer::train(&["abc"]);
        let ids = tok.encode("azb");
        assert_eq!(ids[1], tok.unk_id());
        assert_eq!(tok.decode(&ids), format!("a{}b", special::UNK));
    }

    #[test]
    fn vocab_is_corpus_chars_plus_reserved() {
        let tok = CharTokenizer::train(&["aab"]);
        // 'a', 'b' = 2 distinct chars
        assert_eq!(tok.vocab_size(), Vocab::reserved_len() + 2);
    }

    #[test]
    fn unicode_roundtrip() {
        let tok = CharTokenizer::train(&["crème fraîche + jalapeño"]);
        let s = "crème jalapeño";
        assert_eq!(tok.decode(&tok.encode(s)), s);
    }
}

//! Byte-level byte-pair encoding, trained on the recipe corpus.
//!
//! This is the GPT-2 tokenization: the base alphabet is the 256 bytes (so
//! *any* input encodes without `<UNK>`), and training greedily merges the
//! most frequent adjacent token pair until the merge budget is exhausted.
//! As in GPT-2, a word's leading space is kept attached to the word and
//! merges never cross word boundaries.

use ratatouille_util::collections::{det_map, DetMap};

use crate::char_level::all_atomic_tags;
use crate::special;
use crate::Tokenizer;

/// Byte-level BPE tokenizer.
///
/// Id layout: `0..R` are the reserved special/fraction tokens (same order
/// as the other tokenizers), `R..R+256` are the byte tokens, and merged
/// tokens follow in the order they were learned (id order == merge rank,
/// which the encoder exploits).
#[derive(Debug, Clone)]
pub struct BpeTokenizer {
    specials: Vec<&'static str>,
    special_ids: DetMap<String, u32>,
    /// Byte string for each non-reserved id (`id - reserved`).
    token_bytes: Vec<Vec<u8>>,
    /// (left id, right id) → merged id.
    merges: DetMap<(u32, u32), u32>,
}

impl BpeTokenizer {
    /// Number of reserved token ids at the front of the space.
    fn reserved(&self) -> u32 {
        self.specials.len() as u32
    }

    /// Train a BPE vocabulary with up to `num_merges` merges.
    ///
    /// Deterministic: pair-frequency ties break on the lexicographically
    /// smaller pair, so identical corpora yield identical vocabularies.
    pub fn train<S: AsRef<str>>(corpus: &[S], num_merges: usize) -> Self {
        let specials = all_atomic_tags();
        let special_ids: DetMap<String, u32> = specials
            .iter()
            .enumerate()
            .map(|(i, &s)| (s.to_string(), i as u32))
            .collect();
        let reserved = specials.len() as u32;

        let mut tok = BpeTokenizer {
            specials,
            special_ids,
            token_bytes: (0..=255u8).map(|b| vec![b]).collect(),
            merges: det_map(),
        };

        // Collect word frequencies (words carry their leading space).
        let mut word_counts: DetMap<Vec<u32>, usize> = det_map();
        for doc in corpus {
            for (seg, is_special) in special::split_on_specials(doc.as_ref(), &tok.specials) {
                if is_special {
                    continue;
                }
                for w in split_space_words(seg) {
                    let ids: Vec<u32> = w.bytes().map(|b| reserved + b as u32).collect();
                    *word_counts.entry(ids).or_insert(0) += 1;
                }
            }
        }
        let mut words: Vec<(Vec<u32>, usize)> = word_counts.into_iter().collect();
        words.sort(); // deterministic iteration order

        for _ in 0..num_merges {
            // Count adjacent pairs across all words.
            let mut pair_counts: DetMap<(u32, u32), usize> = det_map();
            for (w, c) in &words {
                for pair in w.windows(2) {
                    *pair_counts.entry((pair[0], pair[1])).or_insert(0) += c;
                }
            }
            let Some((&best_pair, &best_count)) = pair_counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            else {
                break;
            };
            if best_count < 2 {
                break;
            }
            let new_id = reserved + tok.token_bytes.len() as u32;
            let mut merged_bytes = tok.bytes_of(best_pair.0).to_vec();
            merged_bytes.extend_from_slice(tok.bytes_of(best_pair.1));
            tok.token_bytes.push(merged_bytes);
            tok.merges.insert(best_pair, new_id);
            for (w, _) in words.iter_mut() {
                merge_in_place(w, best_pair, new_id);
            }
        }
        tok
    }

    fn bytes_of(&self, id: u32) -> &[u8] {
        &self.token_bytes[(id - self.reserved()) as usize]
    }

    /// Number of learned merges.
    pub fn num_merges(&self) -> usize {
        self.merges.len()
    }

    /// Merge pairs in rank (learning) order — together with the fixed
    /// byte alphabet this fully determines the tokenizer.
    pub fn merges_in_rank_order(&self) -> Vec<(u32, u32)> {
        let mut v: Vec<((u32, u32), u32)> =
            self.merges.iter().map(|(&p, &id)| (p, id)).collect();
        v.sort_by_key(|&(_, id)| id);
        v.into_iter().map(|(p, _)| p).collect()
    }

    /// Rebuild a tokenizer from an ordered merge list (see
    /// `crate::persist`). Merge ids are assigned in list order, exactly
    /// as training assigned them.
    pub fn from_merges(ordered: &[(u32, u32)]) -> Self {
        let specials = all_atomic_tags();
        let special_ids: DetMap<String, u32> = specials
            .iter()
            .enumerate()
            .map(|(i, &s)| (s.to_string(), i as u32))
            .collect();
        let reserved = specials.len() as u32;
        let mut tok = BpeTokenizer {
            specials,
            special_ids,
            token_bytes: (0..=255u8).map(|b| vec![b]).collect(),
            merges: det_map(),
        };
        for &(left, right) in ordered {
            let new_id = reserved + tok.token_bytes.len() as u32;
            let mut bytes = tok.bytes_of(left).to_vec();
            bytes.extend_from_slice(tok.bytes_of(right));
            tok.token_bytes.push(bytes);
            tok.merges.insert((left, right), new_id);
        }
        tok
    }

    /// Encode one space-word by applying merges in rank order.
    fn encode_word(&self, word: &str) -> Vec<u32> {
        let reserved = self.reserved();
        let mut ids: Vec<u32> = word.bytes().map(|b| reserved + b as u32).collect();
        loop {
            // The applicable merge with the lowest rank (smallest new id).
            let mut best: Option<((u32, u32), u32)> = None;
            for pair in ids.windows(2) {
                if let Some(&m) = self.merges.get(&(pair[0], pair[1])) {
                    if best.map(|(_, b)| m < b).unwrap_or(true) {
                        best = Some(((pair[0], pair[1]), m));
                    }
                }
            }
            match best {
                Some((pair, new_id)) => merge_in_place(&mut ids, pair, new_id),
                None => break,
            }
        }
        ids
    }

    /// Average tokens per byte on `text` (compression diagnostic).
    pub fn tokens_per_byte(&self, text: &str) -> f64 {
        if text.is_empty() {
            return 0.0;
        }
        self.encode(text).len() as f64 / text.len() as f64
    }
}

/// Replace every occurrence of `pair` in `ids` with `new_id`, in place.
fn merge_in_place(ids: &mut Vec<u32>, pair: (u32, u32), new_id: u32) {
    let mut out = Vec::with_capacity(ids.len());
    let mut i = 0;
    while i < ids.len() {
        if i + 1 < ids.len() && ids[i] == pair.0 && ids[i + 1] == pair.1 {
            out.push(new_id);
            i += 2;
        } else {
            out.push(ids[i]);
            i += 1;
        }
    }
    *ids = out;
}

/// Split text into words where each word (except possibly the first)
/// carries its leading space: `"mix the dough"` → `["mix", " the", " dough"]`.
fn split_space_words(text: &str) -> Vec<&str> {
    let mut words = Vec::new();
    let bytes = text.as_bytes();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b' ' && i > start {
            words.push(&text[start..i]);
            start = i;
        }
        i += 1;
    }
    if start < bytes.len() {
        words.push(&text[start..]);
    }
    words
}

impl Tokenizer for BpeTokenizer {
    fn clone_box(&self) -> Box<dyn Tokenizer> {
        Box::new(self.clone())
    }

    fn encode(&self, text: &str) -> Vec<u32> {
        let mut ids = Vec::new();
        for (seg, is_special) in special::split_on_specials(text, &self.specials) {
            if is_special {
                ids.push(self.special_ids[seg]);
            } else {
                for w in split_space_words(seg) {
                    ids.extend(self.encode_word(w));
                }
            }
        }
        ids
    }

    fn decode(&self, ids: &[u32]) -> String {
        let reserved = self.reserved();
        let mut bytes = Vec::new();
        for &id in ids {
            if id < reserved {
                bytes.extend_from_slice(self.specials[id as usize].as_bytes());
            } else if ((id - reserved) as usize) < self.token_bytes.len() {
                bytes.extend_from_slice(self.bytes_of(id));
            } else {
                bytes.extend_from_slice(special::UNK.as_bytes());
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    fn vocab_size(&self) -> usize {
        self.specials.len() + self.token_bytes.len()
    }

    fn pad_id(&self) -> u32 {
        self.special_ids[special::PAD]
    }

    fn unk_id(&self) -> u32 {
        self.special_ids[special::UNK]
    }

    fn bos_id(&self) -> u32 {
        self.special_ids[special::RECIPE_START]
    }

    fn eos_id(&self) -> u32 {
        self.special_ids[special::RECIPE_END]
    }

    fn special_id(&self, tag: &str) -> Option<u32> {
        self.special_ids.get(tag).copied()
    }

    fn name(&self) -> &'static str {
        "bpe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::{INGR_START, RECIPE_START};

    #[test]
    fn roundtrip_any_text_without_unk() {
        let tok = BpeTokenizer::train(&["mix flour and water"], 50);
        // text with characters never seen in training still round-trips
        let s = "Zörk! 漢字 #42";
        assert_eq!(tok.decode(&tok.encode(s)), s);
    }

    #[test]
    fn merges_compress_frequent_text() {
        let corpus = vec!["the dough the dough the dough the dough"; 20];
        let trained = BpeTokenizer::train(&corpus, 100);
        let untrained = BpeTokenizer::train(&[""], 0);
        let text = "the dough the dough";
        assert!(trained.encode(text).len() < untrained.encode(text).len());
        assert_eq!(trained.decode(&trained.encode(text)), text);
    }

    #[test]
    fn merge_budget_respected() {
        let tok = BpeTokenizer::train(&["aaaa bbbb aaaa bbbb"], 3);
        assert!(tok.num_merges() <= 3);
        assert_eq!(tok.vocab_size(), tok.specials.len() + 256 + tok.num_merges());
    }

    #[test]
    fn specials_stay_atomic() {
        let text = format!("{RECIPE_START}mix{INGR_START}");
        let tok = BpeTokenizer::train(&[text.clone()], 10);
        let ids = tok.encode(&text);
        assert_eq!(ids[0], tok.bos_id());
        assert!(ids.len() <= 2 + 3);
        assert_eq!(tok.decode(&ids), text);
    }

    #[test]
    fn deterministic_training() {
        let corpus = ["knead the dough until smooth and pliable"];
        let a = BpeTokenizer::train(&corpus, 30);
        let b = BpeTokenizer::train(&corpus, 30);
        assert_eq!(a.encode(corpus[0]), b.encode(corpus[0]));
    }

    #[test]
    fn space_words_keep_leading_space() {
        assert_eq!(split_space_words("mix the dough"), vec!["mix", " the", " dough"]);
        assert_eq!(split_space_words(" leading"), vec![" leading"]);
        assert_eq!(split_space_words(""), Vec::<&str>::new());
        assert_eq!(split_space_words("  double"), vec![" ", " double"]);
    }

    #[test]
    fn merges_never_cross_word_boundaries() {
        // "ab ab" repeated: merge of 'a'+'b' is fine but "b a" (across the
        // boundary) must never merge because words are processed separately.
        let corpus = vec!["ab ab ab ab ab ab"; 10];
        let tok = BpeTokenizer::train(&corpus, 50);
        let ids = tok.encode("ab ab");
        assert_eq!(tok.decode(&ids), "ab ab");
        // encoding "ba" (no space) still round-trips
        assert_eq!(tok.decode(&tok.encode("ba")), "ba");
    }

    #[test]
    fn tokens_per_byte_decreases_with_training() {
        let corpus = vec!["preheat the oven to 350 degrees"; 30];
        let small = BpeTokenizer::train(&corpus, 0);
        let big = BpeTokenizer::train(&corpus, 200);
        let t = "preheat the oven";
        assert!(big.tokens_per_byte(t) < small.tokens_per_byte(t));
    }
}

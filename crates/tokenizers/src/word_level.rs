//! Word-level tokenizer with a frequency cutoff (the word-LSTM baseline).

use ratatouille_util::collections::{det_map, DetMap};

use crate::char_level::all_atomic_tags;
use crate::normalize;
use crate::special::{self};
use crate::vocab::Vocab;
use crate::Tokenizer;

/// Word-level tokenizer. Words occurring fewer than `min_freq` times in
/// the training corpus are dropped from the vocabulary and encode to
/// `<UNK>` — the standard trick that keeps the softmax tractable on
/// long-tailed recipe vocabulary.
#[derive(Debug, Clone)]
pub struct WordTokenizer {
    vocab: Vocab,
    specials: Vec<&'static str>,
}

impl WordTokenizer {
    /// Build a vocabulary from whitespace/punctuation-split words with at
    /// least `min_freq` occurrences.
    pub fn train<S: AsRef<str>>(corpus: &[S], min_freq: usize) -> Self {
        let specials = all_atomic_tags();
        let mut counts: DetMap<String, usize> = det_map();
        for doc in corpus {
            for (seg, is_special) in special::split_on_specials(doc.as_ref(), &specials) {
                if is_special {
                    continue;
                }
                for w in normalize::split_words(seg) {
                    *counts.entry(w.to_string()).or_insert(0) += 1;
                }
            }
        }
        // Deterministic id assignment: sort by (-count, word).
        let mut words: Vec<(String, usize)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= min_freq.max(1))
            .collect();
        words.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut vocab = Vocab::with_specials();
        for (w, _) in words {
            vocab.add(&w);
        }
        WordTokenizer { vocab, specials }
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Rebuild from a persisted vocabulary (see `crate::persist`).
    pub fn from_vocab(vocab: Vocab) -> Self {
        WordTokenizer {
            vocab,
            specials: all_atomic_tags(),
        }
    }

    /// Fraction of `text`'s words that are in-vocabulary (diagnostic for
    /// choosing `min_freq`).
    pub fn coverage(&self, text: &str) -> f64 {
        let mut total = 0usize;
        let mut known = 0usize;
        for (seg, is_special) in special::split_on_specials(text, &self.specials) {
            if is_special {
                total += 1;
                known += 1;
                continue;
            }
            for w in normalize::split_words(seg) {
                total += 1;
                if self.vocab.id(w).is_some() {
                    known += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            known as f64 / total as f64
        }
    }
}

impl Tokenizer for WordTokenizer {
    fn clone_box(&self) -> Box<dyn Tokenizer> {
        Box::new(self.clone())
    }

    fn encode(&self, text: &str) -> Vec<u32> {
        let mut ids = Vec::new();
        for (seg, is_special) in special::split_on_specials(text, &self.specials) {
            if is_special {
                ids.push(self.vocab.id(seg).expect("registered special"));
            } else {
                for w in normalize::split_words(seg) {
                    ids.push(self.vocab.id(w).unwrap_or_else(|| self.vocab.unk_id()));
                }
            }
        }
        ids
    }

    fn decode(&self, ids: &[u32]) -> String {
        let mut parts = Vec::with_capacity(ids.len());
        for &id in ids {
            parts.push(self.vocab.token(id).unwrap_or(special::UNK));
        }
        parts.join(" ")
    }

    fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    fn pad_id(&self) -> u32 {
        self.vocab.pad_id()
    }

    fn unk_id(&self) -> u32 {
        self.vocab.unk_id()
    }

    fn bos_id(&self) -> u32 {
        self.vocab.id(special::RECIPE_START).expect("specials present")
    }

    fn eos_id(&self) -> u32 {
        self.vocab.id(special::RECIPE_END).expect("specials present")
    }

    fn special_id(&self, tag: &str) -> Option<u32> {
        self.vocab.id(tag)
    }

    fn name(&self) -> &'static str {
        "word"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::{NEXT_INGR, RECIPE_START};

    #[test]
    fn roundtrip_in_vocab_text() {
        let tok = WordTokenizer::train(&["mix the flour , add the water"], 1);
        let s = "mix the water , add flour";
        assert_eq!(tok.decode(&tok.encode(s)), s);
    }

    #[test]
    fn min_freq_prunes_rare_words() {
        let tok = WordTokenizer::train(&["common common common rare"], 2);
        let ids = tok.encode("common rare");
        assert_ne!(ids[0], tok.unk_id());
        assert_eq!(ids[1], tok.unk_id());
    }

    #[test]
    fn specials_atomic_between_words() {
        let text = format!("flour {NEXT_INGR} water");
        let tok = WordTokenizer::train(&[text.clone()], 1);
        let ids = tok.encode(&text);
        assert_eq!(ids.len(), 3);
        assert_eq!(tok.decode(&ids), text);
    }

    #[test]
    fn deterministic_ids_across_trainings() {
        let corpus = ["salt pepper salt oil pepper salt"];
        let a = WordTokenizer::train(&corpus, 1);
        let b = WordTokenizer::train(&corpus, 1);
        assert_eq!(a.encode("salt pepper oil"), b.encode("salt pepper oil"));
        // most frequent word gets the first non-reserved id
        assert_eq!(
            a.encode("salt")[0],
            Vocab::reserved_len() as u32
        );
    }

    #[test]
    fn coverage_metric() {
        let tok = WordTokenizer::train(&["a b c"], 1);
        assert_eq!(tok.coverage("a b c"), 1.0);
        assert!(tok.coverage("a b z z") < 1.0);
        assert_eq!(tok.coverage(""), 1.0);
    }

    #[test]
    fn bos_eos_stable() {
        let tok = WordTokenizer::train(&[format!("{RECIPE_START} x")], 1);
        assert_eq!(tok.special_id(RECIPE_START), Some(tok.bos_id()));
        assert_ne!(tok.bos_id(), tok.eos_id());
    }
}

//! Property tests for the serving substrate: JSON totality and HTTP
//! parser robustness (a public-facing parser must never panic).

use ratatouille_util::proptest::prelude::*;
use ratatouille_serving::http::parse_request;
use ratatouille_serving::json::Json;
use std::io::Cursor;

proptest! {
    /// The JSON parser never panics on arbitrary input — it returns
    /// Ok or Err, totally.
    #[test]
    fn json_parser_is_total(input in "\\PC{0,200}") {
        let _ = Json::parse(&input);
    }

    /// Print∘parse is the identity on anything the parser accepts.
    #[test]
    fn json_fixpoint(input in "[\\x20-\\x7e]{0,80}") {
        if let Ok(v) = Json::parse(&input) {
            let printed = v.to_string();
            let again = Json::parse(&printed).expect("printed JSON must parse");
            prop_assert_eq!(again, v);
        }
    }

    /// JSON numbers round-trip within float precision.
    #[test]
    fn json_numbers_roundtrip(n in -1e12f64..1e12f64) {
        let v = Json::Number(n);
        let back = Json::parse(&v.to_string()).unwrap();
        let m = back.as_f64().unwrap();
        prop_assert!((m - n).abs() <= 1e-6 * (1.0 + n.abs()));
    }

    /// The HTTP request parser never panics on arbitrary bytes.
    #[test]
    fn http_parser_is_total(input in collection::vec(any::<u8>(), 0..400)) {
        let _ = parse_request(&mut Cursor::new(input));
    }

    /// Well-formed requests always parse, whatever the path/body content.
    #[test]
    fn wellformed_requests_parse(path in "/[a-z0-9/]{0,20}", body in "[a-z ]{0,50}") {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\nX-Test: 1\r\n\r\n{}",
            body.len(),
            body
        );
        let req = parse_request(&mut Cursor::new(raw.into_bytes())).expect("must parse");
        prop_assert_eq!(&req.path, &path);
        prop_assert_eq!(req.body_str(), body);
        prop_assert_eq!(req.header("x-test"), Some("1"));
    }
}
